"""Ablation: packed-numpy bit matrix vs pure-Python int bitsets.

The paper's OM is a bit-vector structure; this ablation quantifies how
much the vectorised AND-compare buys over the literal per-pair
``a AND b == b`` conditional function.
"""

import pytest

from repro.core import OccurrenceMatrix

SIZES = (100, 200, 400)


@pytest.mark.parametrize("n", SIZES)
def test_ocm_numpy_backend(benchmark, subset_cache, n):
    space = subset_cache("realworld", n)
    benchmark.group = f"ablation bitset n={n}"
    matrix = OccurrenceMatrix(space, backend="numpy")
    benchmark.pedantic(lambda: matrix.compute_ocm(keep_cms=False), rounds=3, iterations=1)


@pytest.mark.parametrize("n", SIZES)
def test_ocm_python_backend(benchmark, subset_cache, n):
    space = subset_cache("realworld", n)
    benchmark.group = f"ablation bitset n={n}"
    matrix = OccurrenceMatrix(space, backend="python")
    benchmark.pedantic(lambda: matrix.compute_ocm(keep_cms=False), rounds=1, iterations=1)
