"""Ablation: streaming-baseline block size (memory/time trade-off).

The blocked baseline trades peak memory (O(block·n)) for per-block
overhead; this sweep locates the plateau and compares against the
full-matrix baseline.
"""

import pytest

from repro.core import compute_baseline
from repro.core.streaming import compute_baseline_streaming

BLOCKS = (16, 64, 256, 1024)
N = 400


@pytest.mark.parametrize("block", BLOCKS)
def test_streaming_block_size(benchmark, subset_cache, block):
    space = subset_cache("realworld", N)
    benchmark.group = f"ablation streaming block n={N}"
    benchmark.pedantic(
        lambda: compute_baseline_streaming(
            space, block_size=block, collect_partial_dimensions=False
        ),
        rounds=2,
        iterations=1,
    )


def test_full_matrix_reference(benchmark, subset_cache):
    space = subset_cache("realworld", N)
    benchmark.group = f"ablation streaming block n={N}"
    benchmark.pedantic(
        lambda: compute_baseline(space, collect_partial_dimensions=False),
        rounds=2,
        iterations=1,
    )
