"""Ablation: OCM broadcast chunk size.

The vectorised CM computation processes row blocks of ``chunk`` rows at
a time (memory/throughput trade-off).  This sweep shows the plateau.
"""

import pytest

from repro.core import OccurrenceMatrix

CHUNKS = (32, 128, 512, 2048)
N = 400


@pytest.mark.parametrize("chunk", CHUNKS)
def test_ocm_chunk_size(benchmark, subset_cache, chunk):
    space = subset_cache("realworld", N)
    benchmark.group = f"ablation OCM chunk n={N}"
    matrix = OccurrenceMatrix(space, backend="numpy")
    benchmark.pedantic(
        lambda: matrix.compute_ocm(keep_cms=False, chunk=chunk), rounds=3, iterations=1
    )
