"""Ablation: cube density — when does cubeMasking stop helping?

Section 4.2 warns: "in extreme cases where the number of cubes is large
and the distribution of observations in these cubes is sparse, the
cubeMasking method will resemble the baseline."  The synthetic
generator's ``alpha`` exponent controls exactly that: higher alpha means
more active lattice nodes for the same n, hence sparser cubes.  This
sweep measures cubeMasking across the density regimes and records the
pruning statistics.
"""

import pytest

from repro.core import compute_baseline, compute_cubemask
from repro.data.synthetic import build_synthetic_space

N = 800
# alpha: lattice-node growth exponent.  0.3 -> few dense cubes,
# 0.85 -> many sparse cubes (approaching one observation per cube).
ALPHAS = (0.3, 0.55, 0.85)

_spaces = {}


def space_for(alpha):
    if alpha not in _spaces:
        _spaces[alpha] = build_synthetic_space(N, dimension_count=4, seed=7, alpha=alpha)
    return _spaces[alpha]


@pytest.mark.parametrize("alpha", ALPHAS)
def test_cubemask_by_density(benchmark, alpha):
    space = space_for(alpha)
    benchmark.group = f"ablation cube density n={N}"
    stats: dict = {}
    benchmark.pedantic(
        lambda: compute_cubemask(space, targets=("full", "complementary"), stats=stats),
        rounds=2,
        iterations=1,
    )
    benchmark.extra_info["alpha"] = alpha
    benchmark.extra_info["cubes"] = stats["cubes"]
    benchmark.extra_info["comparisons_vs_n2"] = round(
        stats["instance_comparisons"] / (N * N), 4
    )


@pytest.mark.parametrize("alpha", ALPHAS)
def test_baseline_by_density(benchmark, alpha):
    space = space_for(alpha)
    benchmark.group = f"ablation cube density n={N}"
    benchmark.pedantic(
        lambda: compute_baseline(space, targets=("full", "complementary")),
        rounds=2,
        iterations=1,
    )
    benchmark.extra_info["alpha"] = alpha


def test_density_increases_cube_count():
    """More alpha -> more cubes (the knob actually works)."""
    from repro.core import CubeLattice

    counts = [len(CubeLattice(space_for(alpha))) for alpha in ALPHAS]
    assert counts[0] < counts[1] < counts[2]
