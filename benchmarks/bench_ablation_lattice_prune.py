"""Ablation: lattice signature pruning vs brute-force pair checks.

cubeMasking's win comes from checking cube signatures before comparing
observations.  The brute-force arm runs the *same* instance-level
checks over all n² pairs (no lattice), isolating the pruning benefit.
"""

import pytest

from repro.core import compute_cubemask
from repro.core.results import RelationshipSet

SIZES = (200, 400)
TARGETS = ("full",)


def brute_force_full(space) -> RelationshipSet:
    """All-pairs full containment with the cubeMasking instance checks."""
    result = RelationshipSet()
    dimensions = space.dimensions
    ancestor_sets = [space.hierarchies[d]._ancestors for d in dimensions]
    codes = [record.codes for record in space.observations]
    uris = [record.uri for record in space.observations]
    measures = [record.measures for record in space.observations]
    n = len(space)
    for a in range(n):
        code_a = codes[a]
        for b in range(n):
            if a == b or measures[a].isdisjoint(measures[b]):
                continue
            code_b = codes[b]
            contained = True
            for position in range(len(dimensions)):
                if code_a[position] not in ancestor_sets[position][code_b[position]]:
                    contained = False
                    break
            if contained:
                result.add_full(uris[a], uris[b])
    return result


@pytest.mark.parametrize("n", SIZES)
def test_with_lattice_pruning(benchmark, subset_cache, n):
    space = subset_cache("realworld", n)
    benchmark.group = f"ablation lattice prune n={n}"
    result = benchmark.pedantic(
        lambda: compute_cubemask(space, targets=TARGETS), rounds=3, iterations=1
    )
    benchmark.extra_info["pairs"] = len(result.full)


@pytest.mark.parametrize("n", SIZES)
def test_brute_force_pairs(benchmark, subset_cache, n):
    space = subset_cache("realworld", n)
    benchmark.group = f"ablation lattice prune n={n}"
    result = benchmark.pedantic(lambda: brute_force_full(space), rounds=3, iterations=1)
    benchmark.extra_info["pairs"] = len(result.full)


def test_pruning_is_lossless(subset_cache):
    space = subset_cache("realworld", 200)
    assert compute_cubemask(space, targets=TARGETS).full == brute_force_full(space).full
