"""Ablation: clustering sample rate (the paper fits on a 10% sample).

Sweeps the sample rate and records time plus recall — quantifying the
cost of fitting clusters on more (or less) of the data.
"""

import pytest

from repro.core import compute_baseline, compute_clustering

RATES = (0.05, 0.1, 0.25, 1.0)
N = 400

_truth = {}


@pytest.mark.parametrize("rate", RATES)
def test_sample_rate(benchmark, subset_cache, rate):
    space = subset_cache("realworld", N)
    if N not in _truth:
        _truth[N] = compute_baseline(space, collect_partial_dimensions=False)
    benchmark.group = f"ablation sample rate n={N}"
    result = benchmark.pedantic(
        lambda: compute_clustering(
            space, algorithm="xmeans", sample_rate=rate, seed=7,
            collect_partial_dimensions=False,
        ),
        rounds=1,
        iterations=1,
    )
    recall = result.recall_against(_truth[N])
    benchmark.extra_info["recall_overall"] = round(recall.overall, 4)
