"""Ablation: SPARQL BGP join-order optimisation on the comparator query.

Shows what the greedy selectivity-based reordering buys on the paper's
full-containment query — the gap between a naive engine and one with a
Virtuoso-style optimiser.
"""

import pytest

from repro.core.export import space_to_graph
from repro.core.sparql_method import FAITHFUL_QUERIES
from repro.sparql import parse_query
from repro.sparql.evaluator import select

SIZES = (25, 50)

_graph_cache = {}


def graph_for(subset_cache, n):
    if n not in _graph_cache:
        _graph_cache[n] = space_to_graph(subset_cache("realworld", n))
    return _graph_cache[n]


@pytest.mark.parametrize("n", SIZES)
def test_optimized(benchmark, subset_cache, n):
    graph = graph_for(subset_cache, n)
    parsed = parse_query(FAITHFUL_QUERIES["full"])
    benchmark.group = f"ablation sparql optimizer n={n}"
    benchmark.pedantic(lambda: select(graph, parsed, optimize=True), rounds=2, iterations=1)


@pytest.mark.parametrize("n", SIZES)
def test_naive_order(benchmark, subset_cache, n):
    graph = graph_for(subset_cache, n)
    parsed = parse_query(FAITHFUL_QUERIES["full"])
    benchmark.group = f"ablation sparql optimizer n={n}"
    benchmark.pedantic(lambda: select(graph, parsed, optimize=False), rounds=2, iterations=1)
