"""Chaos benchmark: crash consistency at scale, fail-fast under faults.

Three phases, all driven through the :mod:`repro.resilience` seam (no
monkeypatching — the same named fault sites ``repro serve --chaos``
exposes):

1. **Crash consistency** — the acceptance run for the storage engine's
   durability protocol: ≥200 randomized SIGKILL points (forked writers
   hard-exited mid-``wal.append``/``wal.fsync``/``segment.write``/
   ``manifest.commit``, torn appends included).  Every trial must
   recover with zero silent data loss and zero unrecoverable states;
   the phase prints the per-crash-point distribution so uncovered
   sites are visible.
2. **Fail-fast** — storage reads degraded by an injected 50 ms delay
   per segment decode; the circuit breaker's latency trigger must trip
   and convert ~50 ms stalls into microsecond rejections.
3. **Load shedding** — concurrent clients against a deliberately tiny
   admission bound on a live HTTP server with slow handlers; overload
   must surface as fast 503s, not queue collapse.

Run with::

    PYTHONPATH=src python benchmarks/bench_chaos.py [--quick] [--points N]
"""

from __future__ import annotations

import argparse
import statistics
import sys
import tempfile
import threading
import time
import urllib.error
import urllib.request
from pathlib import Path

from repro.core import compute_baseline
from repro.data.synthetic import build_synthetic_space
from repro.errors import CircuitOpenError
from repro.resilience.breaker import OPEN, CircuitBreaker
from repro.resilience.chaos import build_seed_store, run_crash_trials
from repro.resilience.faults import clear_injector, install_injector
from repro.resilience.shed import LoadShedder
from repro.service import QueryEngine, start_server
from repro.storage import SegmentStore


def bench_crash_consistency(points: int, seed: int = 0) -> dict:
    print(f"crash consistency — {points} randomized SIGKILL points")
    started = time.perf_counter()
    with tempfile.TemporaryDirectory(prefix="repro-chaos-") as scratch:

        def progress(done, total, outcome):
            if done % 50 == 0 or done == total:
                print(f"  {done}/{total} trials, all consistent so far")

        report = run_crash_trials(Path(scratch), points=points, seed=seed, progress=progress)
    elapsed = time.perf_counter() - started
    print(f"  {report['crashed']} crashed / {report['clean']} ran clean in {elapsed:.1f}s")
    for point, count in report["by_crash_point"].items():
        print(f"    {point}: {count} trials")
    print("  zero silent losses, zero unrecoverable states")
    return {**report, "seconds": elapsed}


def bench_breaker_fail_fast(reads: int = 40) -> dict:
    print(f"fail-fast — {reads} store loads against 50 ms/segment storage")
    with tempfile.TemporaryDirectory(prefix="repro-chaos-") as scratch:
        store_dir = Path(scratch) / "links.rseg"
        build_seed_store(store_dir)
        store = SegmentStore.open(store_dir)
        store.breaker = CircuitBreaker(
            window=16,
            min_samples=4,
            latency_threshold=0.01,
            latency_fraction=0.5,
            reset_timeout=300.0,
            name="bench",
        )
        install_injector("segment.read:delay:seconds=0.05:times=inf")
        slow, rejected = [], []
        try:
            for _ in range(reads):
                begin = time.perf_counter()
                try:
                    store.load(apply_wal=False)
                    slow.append(time.perf_counter() - begin)
                except CircuitOpenError:
                    rejected.append(time.perf_counter() - begin)
        finally:
            clear_injector()
            tripped = store.breaker.state == OPEN
            store.close()
    assert tripped, "latency trigger never tripped the breaker"
    assert rejected, "no loads were rejected after the trip"
    slow_ms = statistics.mean(slow) * 1e3
    fast_us = statistics.mean(rejected) * 1e6
    print(f"  {len(slow)} degraded loads: {slow_ms:.1f} ms mean")
    print(f"  {len(rejected)} breaker rejections: {fast_us:.1f} us mean")
    print(f"  fail-fast factor: {slow_ms * 1e3 / fast_us:.0f}x")
    return {"slow_ms": slow_ms, "rejected_us": fast_us, "rejections": len(rejected)}


def bench_load_shedding(clients: int = 12, per_client: int = 8) -> dict:
    print(f"load shedding — {clients} clients x {per_client} requests, 2 admission slots")
    space = build_synthetic_space(300, dimension_count=4, seed=11)
    engine = QueryEngine(compute_baseline(space), space)
    shedder = LoadShedder(max_inflight=2, max_queued=2, queue_timeout=0.05)
    server = start_server(engine, shedder=shedder)
    host, port = server.server_address
    install_injector("http.handler:delay:seconds=0.02:times=inf")
    statuses: dict[int, int] = {}
    shed_latencies: list[float] = []
    lock = threading.Lock()

    def client():
        for _ in range(per_client):
            begin = time.perf_counter()
            try:
                with urllib.request.urlopen(f"http://{host}:{port}/healthz") as response:
                    code = response.status
            except urllib.error.HTTPError as exc:
                code = exc.code
                exc.close()
            elapsed = time.perf_counter() - begin
            with lock:
                statuses[code] = statuses.get(code, 0) + 1
                if code == 503:
                    shed_latencies.append(elapsed)

    threads = [threading.Thread(target=client) for _ in range(clients)]
    started = time.perf_counter()
    for thread in threads:
        thread.start()
    for thread in threads:
        thread.join()
    elapsed = time.perf_counter() - started
    clear_injector()
    server.shutdown()
    server.server_close()
    total = clients * per_client
    served = statuses.get(200, 0)
    shed = statuses.get(503, 0)
    assert served + shed == total, f"unexpected statuses: {statuses}"
    assert shed > 0, "overload never shed — bound too generous for the load"
    shed_ms = statistics.mean(shed_latencies) * 1e3 if shed_latencies else 0.0
    print(f"  {served} served / {shed} shed of {total} in {elapsed:.2f}s")
    print(f"  mean shed turnaround: {shed_ms:.1f} ms (fast refusal, not a stall)")
    return {"served": served, "shed": shed, "seconds": elapsed, "shed_ms": shed_ms}


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--quick", action="store_true", help="small run (for CI smoke)")
    parser.add_argument(
        "--points", type=int, default=None, help="crash points (default 200, quick 25)"
    )
    parser.add_argument("--seed", type=int, default=0)
    args = parser.parse_args(argv)
    points = args.points or (25 if args.quick else 200)

    print("== chaos benchmark ==")
    crash = bench_crash_consistency(points, seed=args.seed)
    breaker = bench_breaker_fail_fast()
    shed = bench_load_shedding()
    print("== summary ==")
    print(
        f"crash consistency: {crash['points']} points "
        f"({crash['crashed']} crashed), 0 losses, 0 unrecoverable"
    )
    print(
        f"fail-fast: {breaker['slow_ms']:.1f} ms degraded load -> "
        f"{breaker['rejected_us']:.0f} us breaker rejection"
    )
    print(f"load shedding: {shed['served']} served / {shed['shed']} shed, fast 503s")
    return 0


if __name__ == "__main__":
    sys.exit(main())
