"""Extension benchmark: the hybrid method (future work §6, implemented).

Compares hybrid (exact full/complementary via cubeMasking + clustered
partial) against the pure methods on the all-three-relationships
workload, recording recall in ``extra_info``.
"""

import pytest

from repro.core import (
    compute_baseline,
    compute_clustering,
    compute_cubemask,
    compute_hybrid,
)

SIZES = (200, 400)

_truth = {}


def ground_truth(space, n):
    if n not in _truth:
        _truth[n] = compute_baseline(space, collect_partial_dimensions=False)
    return _truth[n]


@pytest.mark.parametrize("n", SIZES)
def test_hybrid(benchmark, subset_cache, n):
    space = subset_cache("realworld", n)
    truth = ground_truth(space, n)
    benchmark.group = f"extension hybrid n={n}"
    result = benchmark.pedantic(lambda: compute_hybrid(space, seed=3), rounds=2, iterations=1)
    recall = result.recall_against(truth)
    benchmark.extra_info["recall_full"] = round(recall.full, 4)
    benchmark.extra_info["recall_partial"] = round(recall.partial, 4)


@pytest.mark.parametrize("n", SIZES)
def test_pure_cubemask(benchmark, subset_cache, n):
    space = subset_cache("realworld", n)
    benchmark.group = f"extension hybrid n={n}"
    result = benchmark.pedantic(lambda: compute_cubemask(space), rounds=2, iterations=1)
    benchmark.extra_info["recall_full"] = 1.0
    benchmark.extra_info["recall_partial"] = 1.0


@pytest.mark.parametrize("n", SIZES)
def test_pure_clustering(benchmark, subset_cache, n):
    space = subset_cache("realworld", n)
    truth = ground_truth(space, n)
    benchmark.group = f"extension hybrid n={n}"
    result = benchmark.pedantic(
        lambda: compute_clustering(space, seed=3, collect_partial_dimensions=False),
        rounds=2,
        iterations=1,
    )
    recall = result.recall_against(truth)
    benchmark.extra_info["recall_full"] = round(recall.full, 4)
    benchmark.extra_info["recall_partial"] = round(recall.partial, 4)


@pytest.mark.parametrize("n", SIZES)
def test_pure_baseline(benchmark, subset_cache, n):
    space = subset_cache("realworld", n)
    benchmark.group = f"extension hybrid n={n}"
    benchmark.pedantic(
        lambda: compute_baseline(space, collect_partial_dimensions=False),
        rounds=2,
        iterations=1,
    )
