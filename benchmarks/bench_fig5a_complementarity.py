"""Figure 5(a): execution time for complementarity, five methods.

Paper shape: cubeMasking fastest, clustering next, baseline quadratic,
SPARQL and rules orders of magnitude slower and dying early (the
comparators only get the small sizes here, as in the paper where they
time out / run out of memory beyond ~20k observations).
"""

import pytest

from repro.core import (
    compute_baseline,
    compute_clustering,
    compute_cubemask,
    compute_rules,
    compute_sparql,
)

from workload import COMPARATOR_SIZES, REALWORLD_SIZES, RULES_SIZES

TARGETS = ("complementary",)


@pytest.mark.parametrize("n", REALWORLD_SIZES)
def test_complementarity_baseline(benchmark, subset_cache, n):
    space = subset_cache("realworld", n)
    benchmark.group = f"fig5a complementarity n={n}"
    result = benchmark.pedantic(
        lambda: compute_baseline(space, targets=TARGETS), rounds=3, iterations=1
    )
    benchmark.extra_info["pairs"] = len(result.complementary)


@pytest.mark.parametrize("n", REALWORLD_SIZES)
def test_complementarity_clustering(benchmark, subset_cache, n):
    space = subset_cache("realworld", n)
    benchmark.group = f"fig5a complementarity n={n}"
    result = benchmark.pedantic(
        lambda: compute_clustering(space, targets=TARGETS, seed=0), rounds=3, iterations=1
    )
    benchmark.extra_info["pairs"] = len(result.complementary)


@pytest.mark.parametrize("n", REALWORLD_SIZES)
def test_complementarity_cubemask(benchmark, subset_cache, n):
    space = subset_cache("realworld", n)
    benchmark.group = f"fig5a complementarity n={n}"
    result = benchmark.pedantic(
        lambda: compute_cubemask(space, targets=TARGETS), rounds=3, iterations=1
    )
    benchmark.extra_info["pairs"] = len(result.complementary)


@pytest.mark.parametrize("n", COMPARATOR_SIZES)
def test_complementarity_sparql(benchmark, subset_cache, n):
    space = subset_cache("realworld", n)
    benchmark.group = f"fig5a complementarity n={n}"
    result = benchmark.pedantic(
        lambda: compute_sparql(space, targets=TARGETS), rounds=1, iterations=1
    )
    benchmark.extra_info["pairs"] = len(result.complementary)


@pytest.mark.parametrize("n", RULES_SIZES)
def test_complementarity_rules(benchmark, subset_cache, n):
    space = subset_cache("realworld", n)
    benchmark.group = f"fig5a complementarity n={n}"
    result = benchmark.pedantic(
        lambda: compute_rules(space, targets=TARGETS), rounds=1, iterations=1
    )
    benchmark.extra_info["pairs"] = len(result.complementary)
