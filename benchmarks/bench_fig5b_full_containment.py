"""Figure 5(b): execution time for full containment, five methods.

Same protocol as Figure 5(a) with ``targets=("full",)``.  Expected
shape: cubeMasking ~1 order of magnitude faster than the baseline;
SPARQL/rules uncompetitive.
"""

import pytest

from repro.core import (
    compute_baseline,
    compute_clustering,
    compute_cubemask,
    compute_rules,
    compute_sparql,
)

from workload import COMPARATOR_SIZES, REALWORLD_SIZES, RULES_SIZES

TARGETS = ("full",)


@pytest.mark.parametrize("n", REALWORLD_SIZES)
def test_full_containment_baseline(benchmark, subset_cache, n):
    space = subset_cache("realworld", n)
    benchmark.group = f"fig5b full containment n={n}"
    result = benchmark.pedantic(
        lambda: compute_baseline(space, targets=TARGETS), rounds=3, iterations=1
    )
    benchmark.extra_info["pairs"] = len(result.full)


@pytest.mark.parametrize("n", REALWORLD_SIZES)
def test_full_containment_clustering(benchmark, subset_cache, n):
    space = subset_cache("realworld", n)
    benchmark.group = f"fig5b full containment n={n}"
    result = benchmark.pedantic(
        lambda: compute_clustering(space, targets=TARGETS, seed=0), rounds=3, iterations=1
    )
    benchmark.extra_info["pairs"] = len(result.full)


@pytest.mark.parametrize("n", REALWORLD_SIZES)
def test_full_containment_cubemask(benchmark, subset_cache, n):
    space = subset_cache("realworld", n)
    benchmark.group = f"fig5b full containment n={n}"
    result = benchmark.pedantic(
        lambda: compute_cubemask(space, targets=TARGETS), rounds=3, iterations=1
    )
    benchmark.extra_info["pairs"] = len(result.full)


@pytest.mark.parametrize("n", COMPARATOR_SIZES)
def test_full_containment_sparql(benchmark, subset_cache, n):
    space = subset_cache("realworld", n)
    benchmark.group = f"fig5b full containment n={n}"
    result = benchmark.pedantic(
        lambda: compute_sparql(space, targets=TARGETS), rounds=1, iterations=1
    )
    benchmark.extra_info["pairs"] = len(result.full)


@pytest.mark.parametrize("n", RULES_SIZES)
def test_full_containment_rules(benchmark, subset_cache, n):
    space = subset_cache("realworld", n)
    benchmark.group = f"fig5b full containment n={n}"
    result = benchmark.pedantic(
        lambda: compute_rules(space, targets=TARGETS), rounds=1, iterations=1
    )
    benchmark.extra_info["pairs"] = len(result.full)
