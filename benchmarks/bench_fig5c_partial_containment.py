"""Figure 5(c): execution time for partial containment.

Partial containment enumerates the largest pair sets, so the native
methods run with ``collect_partial_dimensions=False`` (degree only) —
the paper likewise notes that its SPARQL comparator only *detects*
partial containment without quantifying it.
"""

import pytest

from repro.core import (
    compute_baseline,
    compute_clustering,
    compute_cubemask,
    compute_rules,
    compute_sparql,
)

from workload import PARTIAL_SIZES, RULES_SIZES

TARGETS = ("partial",)
SPARQL_SIZES = (25, 50)


@pytest.mark.parametrize("n", PARTIAL_SIZES)
def test_partial_baseline(benchmark, subset_cache, n):
    space = subset_cache("realworld", n)
    benchmark.group = f"fig5c partial containment n={n}"
    result = benchmark.pedantic(
        lambda: compute_baseline(space, targets=TARGETS, collect_partial_dimensions=False),
        rounds=2,
        iterations=1,
    )
    benchmark.extra_info["pairs"] = len(result.partial)


@pytest.mark.parametrize("n", PARTIAL_SIZES)
def test_partial_clustering(benchmark, subset_cache, n):
    space = subset_cache("realworld", n)
    benchmark.group = f"fig5c partial containment n={n}"
    result = benchmark.pedantic(
        lambda: compute_clustering(
            space, targets=TARGETS, collect_partial_dimensions=False, seed=0
        ),
        rounds=2,
        iterations=1,
    )
    benchmark.extra_info["pairs"] = len(result.partial)


@pytest.mark.parametrize("n", PARTIAL_SIZES)
def test_partial_cubemask(benchmark, subset_cache, n):
    space = subset_cache("realworld", n)
    benchmark.group = f"fig5c partial containment n={n}"
    result = benchmark.pedantic(
        lambda: compute_cubemask(space, targets=TARGETS), rounds=2, iterations=1
    )
    benchmark.extra_info["pairs"] = len(result.partial)


@pytest.mark.parametrize("n", SPARQL_SIZES)
def test_partial_sparql_detection(benchmark, subset_cache, n):
    """The paper's SPARQL comparator: detection only (paper mode)."""
    space = subset_cache("realworld", n)
    benchmark.group = f"fig5c partial containment n={n}"
    result = benchmark.pedantic(
        lambda: compute_sparql(space, mode="paper", targets=TARGETS), rounds=1, iterations=1
    )
    benchmark.extra_info["pairs"] = len(result.partial)


@pytest.mark.parametrize("n", RULES_SIZES[:2])
def test_partial_rules(benchmark, subset_cache, n):
    space = subset_cache("realworld", n)
    benchmark.group = f"fig5c partial containment n={n}"
    result = benchmark.pedantic(
        lambda: compute_rules(space, targets=TARGETS), rounds=1, iterations=1
    )
    benchmark.extra_info["pairs"] = len(result.partial)
