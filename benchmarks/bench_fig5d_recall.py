"""Figure 5(d): recall of the three clustering algorithms vs input size.

Each benchmark times the clustering run and records the achieved
recall (vs the baseline ground truth) in ``extra_info`` — the series
the paper plots.  Expected shape: x-means dominates canopy and
hierarchical clustering; recall declines with input size.
"""

import pytest

from repro.core import compute_baseline, compute_clustering

from workload import REALWORLD_SIZES

ALGORITHMS = ("xmeans", "canopy", "hierarchical")

_truth_cache: dict[int, object] = {}


def _ground_truth(space, n):
    if n not in _truth_cache:
        _truth_cache[n] = compute_baseline(space, collect_partial_dimensions=False)
    return _truth_cache[n]


@pytest.mark.parametrize("n", REALWORLD_SIZES)
@pytest.mark.parametrize("algorithm", ALGORITHMS)
def test_clustering_recall(benchmark, subset_cache, algorithm, n):
    space = subset_cache("realworld", n)
    truth = _ground_truth(space, n)
    benchmark.group = f"fig5d recall n={n}"
    result = benchmark.pedantic(
        lambda: compute_clustering(
            space,
            algorithm=algorithm,
            sample_rate=0.1,  # the paper's 10% sample
            seed=7,
            collect_partial_dimensions=False,
        ),
        rounds=1,
        iterations=1,
    )
    recall = result.recall_against(truth)
    benchmark.extra_info["recall_full"] = round(recall.full, 4)
    benchmark.extra_info["recall_partial"] = round(recall.partial, 4)
    benchmark.extra_info["recall_complementary"] = round(recall.complementary, 4)
    benchmark.extra_info["recall_overall"] = round(recall.overall, 4)
