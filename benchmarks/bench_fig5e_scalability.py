"""Figure 5(e): log-log execution time vs input size (synthetic data).

The paper's synthetic corpus reaches 2.5M observations; this sweep uses
the same generator recipe at laptop scale.  Expected shape on the
log-log plot: the baseline's slope ≈ 2 (quadratic), clustering ≈ 1.5,
cubeMasking clearly below the baseline.
"""

import pytest

from repro.core import compute_baseline, compute_clustering, compute_cubemask

from workload import SYNTHETIC_SIZES

TARGETS = ("full", "complementary")


@pytest.mark.parametrize("n", SYNTHETIC_SIZES)
def test_scalability_baseline(benchmark, subset_cache, n):
    space = subset_cache("synthetic", n)
    benchmark.group = f"fig5e scalability n={n}"
    benchmark.pedantic(lambda: compute_baseline(space, targets=TARGETS), rounds=2, iterations=1)


@pytest.mark.parametrize("n", SYNTHETIC_SIZES)
def test_scalability_clustering(benchmark, subset_cache, n):
    space = subset_cache("synthetic", n)
    benchmark.group = f"fig5e scalability n={n}"
    benchmark.pedantic(
        lambda: compute_clustering(space, targets=TARGETS, seed=0), rounds=2, iterations=1
    )


@pytest.mark.parametrize("n", SYNTHETIC_SIZES)
def test_scalability_cubemask(benchmark, subset_cache, n):
    space = subset_cache("synthetic", n)
    benchmark.group = f"fig5e scalability n={n}"
    benchmark.pedantic(lambda: compute_cubemask(space, targets=TARGETS), rounds=2, iterations=1)
