"""Figure 5(f): ratio of discovered cubes per observation count.

Times the lattice construction (the linear cube-identification pass of
Algorithm 4) and records the cube count and cubes/observation ratio in
``extra_info``.  Expected shape: the ratio *decreases* as input size
grows — the property that makes cubeMasking scale.
"""

import pytest

from repro.core import CubeLattice

from workload import REALWORLD_SIZES, SYNTHETIC_SIZES


@pytest.mark.parametrize("n", REALWORLD_SIZES)
def test_cube_ratio_realworld(benchmark, subset_cache, n):
    space = subset_cache("realworld", n)
    benchmark.group = "fig5f cube ratio (realworld)"
    lattice = benchmark.pedantic(lambda: CubeLattice(space), rounds=3, iterations=1)
    benchmark.extra_info["cubes"] = len(lattice)
    benchmark.extra_info["ratio"] = round(lattice.cube_ratio, 4)


@pytest.mark.parametrize("n", SYNTHETIC_SIZES)
def test_cube_ratio_synthetic(benchmark, subset_cache, n):
    space = subset_cache("synthetic", n)
    benchmark.group = "fig5f cube ratio (synthetic)"
    lattice = benchmark.pedantic(lambda: CubeLattice(space), rounds=3, iterations=1)
    benchmark.extra_info["cubes"] = len(lattice)
    benchmark.extra_info["ratio"] = round(lattice.cube_ratio, 4)


def test_cube_ratio_decreases(subset_cache):
    """The headline property of Figure 5(f), asserted outright."""
    ratios = [
        CubeLattice(subset_cache("realworld", n)).cube_ratio for n in REALWORLD_SIZES
    ]
    assert all(a >= b for a, b in zip(ratios, ratios[1:])), ratios
