"""Figure 5(g): children pre-fetching vs normal cubeMasking.

The paper measures a ~15-20% speed-up for full containment when each
cube's dominated-cube list is pre-fetched into memory instead of being
re-derived during the pair loops.
"""

import pytest

from repro.core import compute_cubemask

from workload import REALWORLD_SIZES

# Full containment + complementarity: the configuration where the
# children mapping is reused across passes (Section 4.1's discussion).
TARGETS = ("full", "complementary")


@pytest.mark.parametrize("n", REALWORLD_SIZES)
def test_prefetch_enabled(benchmark, subset_cache, n):
    space = subset_cache("realworld", n)
    benchmark.group = f"fig5g prefetch n={n}"
    benchmark.pedantic(
        lambda: compute_cubemask(space, prefetch_children=True, targets=TARGETS),
        rounds=3,
        iterations=1,
    )


@pytest.mark.parametrize("n", REALWORLD_SIZES)
def test_prefetch_disabled(benchmark, subset_cache, n):
    space = subset_cache("realworld", n)
    benchmark.group = f"fig5g prefetch n={n}"
    benchmark.pedantic(
        lambda: compute_cubemask(space, prefetch_children=False, targets=TARGETS),
        rounds=3,
        iterations=1,
    )
