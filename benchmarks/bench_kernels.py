"""Kernel-path benchmark: python vs numpy vs shared-memory parallel.

Times cubeMasking's three instance-check paths on one fixed synthetic
space (fixed seed, 4 dimensions) and writes a machine-readable
``BENCH_kernels.json``:

* ``python`` — the tuple-at-a-time loop (``kernel="python"``),
* ``numpy`` — the vectorised cube-pair kernel (``kernel="numpy"``),
* ``parallel`` — the zero-copy shared-memory fan-out
  (:func:`repro.core.parallel.compute_cubemask_parallel`), whose
  workers run the same numpy kernel (the reported ``kernel_pairs``
  count proves it).

Two series are reported: the ``headline`` ``("full", "complementary")``
passes and the ``all_targets`` series including partial containment,
which the bitset kernel now vectorises end to end.  A ``per_target``
breakdown times each relationship type alone.  Timings cover the
compute call itself; the numpy/parallel paths return partial results
as columnar blocks, and the cost of materialising those into the
classic ``set``/``dict`` views is reported separately as
``materialise_seconds`` (the python path builds the sets inline, so
its ``seconds`` already includes that work — see
docs/performance.md).  Every path is asserted to produce the identical
RelationshipSet (including degrees) before any number is written.

Host facts (``cpus``) are recorded so single-core CI numbers are not
mistaken for multi-core ones.  With ``--floor FILE`` the run fails if
the all-targets numpy-vs-python speedup regresses below the committed
guard value (see BENCH_kernels_floor.json and the CI smoke job).

Run with::

    python benchmarks/bench_kernels.py [--quick] [--n N] [--seed S]
        [--workers W] [--reps R] [--output PATH] [--floor FILE]
"""

from __future__ import annotations

import argparse
import json
import os
import platform
import sys
import time
from pathlib import Path

from repro.core import compute_cubemask, compute_cubemask_parallel
from repro.data.synthetic import build_synthetic_space

HEADLINE_TARGETS = ("full", "complementary")
ALL_TARGETS = ("complementary", "full", "partial")
PER_TARGET = ("full", "complementary", "partial")


def _timed(fn, reps: int):
    best = None
    result = None
    for _ in range(max(1, reps)):
        started = time.perf_counter()
        result = fn()
        elapsed = time.perf_counter() - started
        best = elapsed if best is None else min(best, elapsed)
    return best, result


def _materialise(result) -> float:
    """Drain the columnar partial blocks; returns the wall-clock cost."""
    started = time.perf_counter()
    result.partial, result.degrees  # noqa: B018 — property access drains
    return time.perf_counter() - started


def bench_targets(space, targets, workers: int, reps: int, parallel: bool = True) -> dict:
    """One benchmark series; asserts all paths agree before reporting."""
    # Time each rep with its own stats dict and keep the best rep's pair
    # so ``kernel_seconds`` always describes the same run as ``seconds``.
    t_numpy = None
    stats: dict = {}
    r_numpy = None
    for _ in range(max(1, reps)):
        rep_stats: dict = {}
        started = time.perf_counter()
        r_numpy = compute_cubemask(
            space, targets=targets, kernel="numpy", stats=rep_stats
        )
        elapsed = time.perf_counter() - started
        if t_numpy is None or elapsed < t_numpy:
            t_numpy, stats = elapsed, rep_stats
    t_materialise = _materialise(r_numpy)
    pairs = stats["instance_comparisons"]
    # The python baseline is the slow side; one reading is plenty.
    t_python, r_python = _timed(
        lambda: compute_cubemask(space, targets=targets, kernel="python"), 1
    )
    if r_numpy != r_python or r_numpy.degrees != r_python.degrees:
        raise AssertionError("kernel paths disagree — benchmark aborted")
    series = {
        "targets": list(targets),
        "pairs": int(pairs),
        "python": {
            "seconds": round(t_python, 4),
            "pairs_per_sec": round(pairs / t_python) if t_python else None,
        },
        "numpy": {
            "seconds": round(t_numpy, 4),
            "kernel_seconds": round(stats["kernel_ns"] / 1e9, 4),
            "materialise_seconds": round(t_materialise, 4),
            "pairs_per_sec": round(pairs / t_numpy) if t_numpy else None,
        },
        "speedup_numpy_vs_python": round(t_python / t_numpy, 2) if t_numpy else None,
    }
    if parallel:
        par_stats: dict = {}

        def run_parallel():
            par_stats.clear()
            return compute_cubemask_parallel(
                space,
                workers=workers,
                targets=targets,
                min_parallel_observations=0,
                kernel="numpy",
                stats=par_stats,
            )

        t_par, r_par = _timed(run_parallel, reps)
        if r_par != r_numpy or r_par.degrees != r_numpy.degrees:
            raise AssertionError("parallel path disagrees — benchmark aborted")
        series["parallel"] = {
            "seconds": round(t_par, 4),
            "workers": workers,
            # Pairs the *workers* scored with the vectorised kernel —
            # nonzero proves parallel composes with numpy.
            "kernel_pairs": int(par_stats.get("kernel_pairs", 0)),
            "pairs_per_sec": round(pairs / t_par) if t_par else None,
        }
        series["speedup_parallel_vs_python"] = round(t_python / t_par, 2) if t_par else None
        series["speedup_parallel_vs_numpy"] = round(t_numpy / t_par, 2) if t_par else None
    return series


def bench_per_target(space, reps: int) -> dict:
    """numpy-vs-python columns for each relationship type alone."""
    breakdown: dict = {}
    for target in PER_TARGET:
        stats: dict = {}
        t_numpy, r_numpy = _timed(
            lambda: compute_cubemask(space, targets=(target,), kernel="numpy", stats=stats),
            reps,
        )
        t_materialise = _materialise(r_numpy)
        t_python, r_python = _timed(
            lambda: compute_cubemask(space, targets=(target,), kernel="python"), 1
        )
        if r_numpy != r_python or r_numpy.degrees != r_python.degrees:
            raise AssertionError(f"kernel paths disagree on {target} — benchmark aborted")
        breakdown[target] = {
            "python_seconds": round(t_python, 4),
            "numpy_seconds": round(t_numpy, 4),
            "numpy_materialise_seconds": round(t_materialise, 4),
            "speedup": round(t_python / t_numpy, 2) if t_numpy else None,
        }
    return breakdown


def run_bench(n: int, seed: int, workers: int, reps: int = 1, all_targets: bool = True) -> dict:
    space = build_synthetic_space(n, dimension_count=4, seed=seed)
    report = {
        "benchmark": "cubeMasking kernel paths",
        "n": n,
        "seed": seed,
        "dimension_count": 4,
        "python": platform.python_version(),
        "cpus": os.cpu_count(),
        "headline": bench_targets(space, HEADLINE_TARGETS, workers, reps),
    }
    if all_targets:
        report["all_targets"] = bench_targets(space, ALL_TARGETS, workers, reps)
        report["per_target"] = bench_per_target(space, reps)
    return report


def check_floor(report: dict, floor_path: Path) -> list[str]:
    """Compare a report against the committed regression floor."""
    floor = json.loads(floor_path.read_text())
    failures: list[str] = []
    minimum = floor.get("all_targets_speedup_numpy_vs_python_min")
    series = report.get("all_targets")
    if minimum is not None:
        speedup = (series or {}).get("speedup_numpy_vs_python")
        if speedup is None:
            failures.append("all-targets series missing — cannot check the speedup floor")
        elif speedup < minimum:
            failures.append(
                f"all-targets numpy-vs-python speedup {speedup}x is below the "
                f"{minimum}x floor ({floor_path.name})"
            )
    if floor.get("parallel_workers_use_numpy_kernel") and series is not None:
        if not series.get("parallel", {}).get("kernel_pairs"):
            failures.append("parallel workers scored no pairs with the numpy kernel")
    return failures


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--n", type=int, default=10_000, help="observation count")
    parser.add_argument("--seed", type=int, default=42)
    parser.add_argument("--workers", type=int, default=4)
    parser.add_argument("--reps", type=int, default=2, help="repetitions; the best time wins")
    parser.add_argument(
        "--quick", action="store_true", help="CI smoke configuration (n=1500, 1 rep)"
    )
    parser.add_argument(
        "--skip-all-targets",
        action="store_true",
        help="skip the (slow) all-targets series",
    )
    parser.add_argument(
        "--floor",
        type=Path,
        help="fail (exit 1) if the report regresses below this floor file "
        "(see BENCH_kernels_floor.json)",
    )
    parser.add_argument(
        "--output",
        type=Path,
        default=Path(__file__).resolve().parent.parent / "BENCH_kernels.json",
    )
    args = parser.parse_args(argv)
    if args.quick:
        args.n = 1500
        args.reps = 1
    report = run_bench(
        args.n, args.seed, args.workers, args.reps, all_targets=not args.skip_all_targets
    )
    args.output.write_text(json.dumps(report, indent=2) + "\n")
    headline = report["headline"]
    print(
        f"n={report['n']} seed={report['seed']} cpus={report['cpus']} "
        f"pairs={headline['pairs']:,}"
    )
    for name, series in (("headline", headline), ("all_targets", report.get("all_targets"))):
        if series is None:
            continue
        print(f"  [{name}]")
        for path in ("python", "numpy", "parallel"):
            if path not in series:
                continue
            entry = series[path]
            print(f"    {path:<9} {entry['seconds']:>9.3f}s  {entry['pairs_per_sec']:>13,} pairs/s")
        print(
            f"    numpy speedup {series['speedup_numpy_vs_python']}x"
            + (
                f", parallel vs numpy {series['speedup_parallel_vs_numpy']}x"
                if "speedup_parallel_vs_numpy" in series
                else ""
            )
        )
    print(f"  -> {args.output}")
    if args.floor is not None:
        failures = check_floor(report, args.floor)
        for failure in failures:
            print(f"FLOOR REGRESSION: {failure}", file=sys.stderr)
        if failures:
            return 1
        print(f"  floor check passed ({args.floor.name})")
    return 0


if __name__ == "__main__":
    sys.exit(main())
