"""Kernel-path benchmark: python vs numpy vs shared-memory parallel.

Times cubeMasking's three instance-check paths on one fixed synthetic
space (fixed seed, 4 dimensions) and writes a machine-readable
``BENCH_kernels.json``:

* ``python`` — the tuple-at-a-time loop (``kernel="python"``),
* ``numpy`` — the vectorised cube-pair kernel (``kernel="numpy"``),
* ``parallel`` — the zero-copy shared-memory fan-out
  (:func:`repro.core.parallel.compute_cubemask_parallel`).

The headline series uses ``targets=("full", "complementary")`` — the
relationship passes the kernel vectorises end to end.  An all-targets
series is reported alongside: there the partial-containment pass
materialises millions of result pairs, a cost both paths share, so the
ratio is intentionally smaller.  Every path is asserted to produce the
identical RelationshipSet before any number is written.

Run with::

    python benchmarks/bench_kernels.py [--quick] [--n N] [--seed S]
        [--workers W] [--reps R] [--output PATH]
"""

from __future__ import annotations

import argparse
import json
import platform
import sys
import time
from pathlib import Path

from repro.core import compute_cubemask, compute_cubemask_parallel
from repro.data.synthetic import build_synthetic_space

HEADLINE_TARGETS = ("full", "complementary")
ALL_TARGETS = ("complementary", "full", "partial")


def _timed(fn, reps: int):
    best = None
    result = None
    for _ in range(max(1, reps)):
        started = time.perf_counter()
        result = fn()
        elapsed = time.perf_counter() - started
        best = elapsed if best is None else min(best, elapsed)
    return best, result


def bench_targets(space, targets, workers: int, reps: int, parallel: bool = True) -> dict:
    """One benchmark series; asserts all paths agree before reporting."""
    stats: dict = {}
    t_numpy, r_numpy = _timed(
        lambda: compute_cubemask(space, targets=targets, kernel="numpy", stats=stats), reps
    )
    pairs = stats["instance_comparisons"]
    t_python, r_python = _timed(
        lambda: compute_cubemask(space, targets=targets, kernel="python"), reps
    )
    if r_numpy != r_python or r_numpy.degrees != r_python.degrees:
        raise AssertionError("kernel paths disagree — benchmark aborted")
    series = {
        "targets": list(targets),
        "pairs": int(pairs),
        "python": {
            "seconds": round(t_python, 4),
            "pairs_per_sec": round(pairs / t_python) if t_python else None,
        },
        "numpy": {
            "seconds": round(t_numpy, 4),
            "kernel_seconds": round(stats["kernel_ns"] / 1e9, 4),
            "pairs_per_sec": round(pairs / t_numpy) if t_numpy else None,
        },
        "speedup_numpy_vs_python": round(t_python / t_numpy, 2) if t_numpy else None,
    }
    if parallel:
        t_par, r_par = _timed(
            lambda: compute_cubemask_parallel(
                space,
                workers=workers,
                targets=targets,
                min_parallel_observations=0,
                kernel="numpy",
            ),
            reps,
        )
        if r_par != r_numpy or r_par.degrees != r_numpy.degrees:
            raise AssertionError("parallel path disagrees — benchmark aborted")
        series["parallel"] = {
            "seconds": round(t_par, 4),
            "workers": workers,
            "pairs_per_sec": round(pairs / t_par) if t_par else None,
        }
        series["speedup_parallel_vs_python"] = round(t_python / t_par, 2) if t_par else None
    return series


def run_bench(n: int, seed: int, workers: int, reps: int = 1, all_targets: bool = True) -> dict:
    space = build_synthetic_space(n, dimension_count=4, seed=seed)
    report = {
        "benchmark": "cubeMasking kernel paths",
        "n": n,
        "seed": seed,
        "dimension_count": 4,
        "python": platform.python_version(),
        "headline": bench_targets(space, HEADLINE_TARGETS, workers, reps),
    }
    if all_targets:
        report["all_targets"] = bench_targets(space, ALL_TARGETS, workers, reps, parallel=False)
    return report


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--n", type=int, default=10_000, help="observation count")
    parser.add_argument("--seed", type=int, default=42)
    parser.add_argument("--workers", type=int, default=4)
    parser.add_argument("--reps", type=int, default=2, help="repetitions; the best time wins")
    parser.add_argument(
        "--quick", action="store_true", help="CI smoke configuration (n=1500, 1 rep)"
    )
    parser.add_argument(
        "--skip-all-targets",
        action="store_true",
        help="skip the (slow) all-targets series",
    )
    parser.add_argument(
        "--output",
        type=Path,
        default=Path(__file__).resolve().parent.parent / "BENCH_kernels.json",
    )
    args = parser.parse_args(argv)
    if args.quick:
        args.n = 1500
        args.reps = 1
    report = run_bench(
        args.n, args.seed, args.workers, args.reps, all_targets=not args.skip_all_targets
    )
    args.output.write_text(json.dumps(report, indent=2) + "\n")
    headline = report["headline"]
    print(f"n={report['n']} seed={report['seed']} pairs={headline['pairs']:,}")
    for path in ("python", "numpy", "parallel"):
        if path not in headline:
            continue
        entry = headline[path]
        print(f"  {path:<9} {entry['seconds']:>8.3f}s  {entry['pairs_per_sec']:>12,} pairs/s")
    print(f"  numpy speedup {headline['speedup_numpy_vs_python']}x -> {args.output}")
    return 0


if __name__ == "__main__":
    sys.exit(main())
