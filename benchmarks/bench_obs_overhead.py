"""Telemetry-overhead benchmark: always-on observability must stay ≤5%.

The telemetry layer (span ring + JSONL persistence, slow-query log
gating, 10 Hz continuous profiler) is designed to be left on in
production, so this benchmark measures exactly what it costs.  Two
probes, each run with telemetry fully installed vs fully uninstalled,
interleaved A/B so clock drift and thermal state hit both sides
equally:

1. **Kernel** — ``compute_cubemask`` over a synthetic corpus; reports
   candidate pairs/s.  The numpy kernel dominates, so the telemetry
   delta bounds the per-compute cost of spans + counters.
2. **Service** — point lookups against a live ``start_server``; reports
   requests/s.  Every request makes a span record, a slow-log gating
   check and rides under the sampling profiler — the worst case for
   always-on overhead.

Run with::

    PYTHONPATH=src python benchmarks/bench_obs_overhead.py [--quick] \
        [--json BENCH_obs.json]
"""

from __future__ import annotations

import argparse
import contextlib
import json
import os
import platform
import statistics
import tempfile
import time
import urllib.request
from pathlib import Path

from repro.core import compute_cubemask
from repro.data.synthetic import build_synthetic_space
from repro.obs.profile import start_continuous_profiler, stop_continuous_profiler
from repro.obs.slowlog import install_slow_log, uninstall_slow_log
from repro.obs.spanstore import install_span_store, uninstall_span_store
from repro.service import QueryEngine, start_server

#: The documented budget: telemetry may cost at most this fraction.
BUDGET_PCT = 5.0


@contextlib.contextmanager
def telemetry(enabled: bool, tmp: Path):
    """The always-on production telemetry stack, or a bare process."""
    uninstall_span_store()
    uninstall_slow_log()
    stop_continuous_profiler()
    if enabled:
        install_span_store(tmp / "spans")
        install_slow_log(tmp / "slow.jsonl", threshold_ms=100.0)
        start_continuous_profiler(interval=0.1)
    try:
        yield
    finally:
        uninstall_span_store()
        uninstall_slow_log()
        stop_continuous_profiler()


def _paired_overhead(rates: dict[bool, list[float]]) -> float:
    """Median per-pair overhead percentage.

    Process speed drifts between reps (frequency scaling, allocator
    state) by more than the telemetry cost itself, so comparing the
    two sides' medians measures drift, not telemetry.  Each rep's
    on/off runs are back-to-back, so the per-pair ratio cancels the
    drift; the median pair is the honest estimate.
    """
    per_pair = [
        100.0 * (off - on) / off
        for off, on in zip(rates[False], rates[True])
        if off
    ]
    return statistics.median(per_pair) if per_pair else 0.0


def bench_kernel(n: int, reps: int, tmp: Path) -> dict:
    """Paired A/B: compute_cubemask pairs/s with telemetry on/off."""
    space = build_synthetic_space(n, seed=7)
    pairs = n * (n - 1) / 2
    compute_cubemask(space, targets=("full", "complementary"))  # warm caches
    rates: dict[bool, list[float]] = {True: [], False: []}
    for rep in range(reps):
        # Alternate which side goes first within the pair so any
        # first-run advantage does not land on one side of the A/B.
        for enabled in (False, True) if rep % 2 == 0 else (True, False):
            with telemetry(enabled, tmp):
                started = time.perf_counter()
                compute_cubemask(space, targets=("full", "complementary"))
                elapsed = time.perf_counter() - started
            rates[enabled].append(pairs / elapsed)
    on = statistics.median(rates[True])
    off = statistics.median(rates[False])
    overhead = _paired_overhead(rates)
    print(
        f"kernel    n={n}: {off:>12.0f} pairs/s bare, {on:>12.0f} with "
        f"telemetry ({overhead:+.1f}% overhead)"
    )
    return {
        "n": n,
        "reps": reps,
        "pairs_per_s_off": off,
        "pairs_per_s_on": on,
        "overhead_pct": overhead,
    }


def _hammer(base: str, paths: list[str], requests: int) -> float:
    started = time.perf_counter()
    for i in range(requests):
        with urllib.request.urlopen(base + paths[i % len(paths)]) as response:
            response.read()
    return requests / (time.perf_counter() - started)


def bench_service(n: int, requests: int, reps: int, tmp: Path) -> dict:
    """Interleaved A/B: live-server requests/s with telemetry on/off."""
    space = build_synthetic_space(n, seed=7)
    result = compute_cubemask(space, targets=("full", "complementary"))
    rates: dict[bool, list[float]] = {True: [], False: []}
    for rep in range(reps):
        for enabled in (False, True) if rep % 2 == 0 else (True, False):
            with telemetry(enabled, tmp):
                engine = QueryEngine(result, space)
                server = start_server(
                    engine,
                    threads=2,
                    profiler=enabled,
                    slow_log_path=None,
                    span_dir=None,
                )
                host, port = server.server_address
                base = f"http://{host}:{port}"
                paths = ["/healthz", "/stats"]
                try:
                    _hammer(base, paths, max(20, requests // 10))  # warm
                    rates[enabled].append(_hammer(base, paths, requests))
                finally:
                    server.shutdown()
                    server.server_close()
    on = statistics.median(rates[True])
    off = statistics.median(rates[False])
    overhead = _paired_overhead(rates)
    print(
        f"service   n={n}: {off:>12.0f} req/s bare, {on:>12.0f} with "
        f"telemetry ({overhead:+.1f}% overhead)"
    )
    return {
        "n": n,
        "requests": requests,
        "reps": reps,
        "requests_per_s_off": off,
        "requests_per_s_on": on,
        "overhead_pct": overhead,
    }


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "--quick", action="store_true", help="small corpora (for CI smoke)"
    )
    parser.add_argument("--n", type=int, default=None, help="corpus size")
    parser.add_argument("--reps", type=int, default=None, help="A/B repetitions")
    parser.add_argument(
        "--json",
        metavar="PATH",
        default=None,
        help="record results to PATH (e.g. BENCH_obs.json)",
    )
    args = parser.parse_args(argv)
    n = args.n or (300 if args.quick else 1000)
    reps = args.reps or (3 if args.quick else 5)
    requests = 150 if args.quick else 600

    print("== telemetry overhead (A/B, telemetry installed vs bare) ==")
    with tempfile.TemporaryDirectory(prefix="repro-bench-obs-") as tmpdir:
        tmp = Path(tmpdir)
        kernel = bench_kernel(n, reps, tmp)
        service = bench_service(n, requests, reps, tmp)

    worst = max(kernel["overhead_pct"], service["overhead_pct"])
    verdict = "within" if worst <= BUDGET_PCT else "EXCEEDS"
    print(
        f"== summary == worst overhead {worst:+.1f}% — {verdict} the "
        f"{BUDGET_PCT:.0f}% budget"
    )
    if args.json:
        payload = {
            "benchmark": "telemetry overhead",
            "python": platform.python_version(),
            "cpus": os.cpu_count(),
            "quick": bool(args.quick),
            "budget_pct": BUDGET_PCT,
            "within_budget": worst <= BUDGET_PCT,
            "kernel": kernel,
            "service": service,
        }
        Path(args.json).write_text(json.dumps(payload, indent=2) + "\n")
        print(f"recorded {args.json}")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
