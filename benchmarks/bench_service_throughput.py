"""Query-throughput benchmark for the relationship service.

Measures, on synthetic corpora (Section 4.2 generator):

1. **Point lookups** on a 10k-observation corpus: after the one-off
   index build, ``containers``/``contained``/``complements`` answer
   from adjacency probes — O(answer size), never a scan over the pair
   sets — so per-query latency stays in the microseconds even with
   hundreds of thousands of indexed pairs.
2. **Cached vs uncached** repeated top-k ``related`` queries on a
   partial-containment-dense corpus: the generation-stamped LRU should
   serve a repeated query at least an order of magnitude faster than
   recomputing the merge/sort (the ISSUE's >=10x criterion).
3. **Concurrent HTTP clients** against a live server, healthy and
   **degraded** (a 10 ms handler delay injected on half the requests
   through the ``repro.resilience`` fault seam, behind a bounded
   admission queue).  The degraded column shows what the hardening
   buys: throughput falls but tail latency stays bounded because
   overload turns into fast 503s instead of an unbounded queue.

Run with::

    PYTHONPATH=src python benchmarks/bench_service_throughput.py [--quick]
"""

from __future__ import annotations

import argparse
import json
import os
import platform
import statistics
import sys
import tempfile
import threading
import time
import urllib.error
import urllib.parse
import urllib.request
from pathlib import Path

from repro.core import compute_cubemask
from repro.data.synthetic import build_synthetic_space
from repro.resilience.faults import clear_injector, install_injector
from repro.resilience.shed import LoadShedder
from repro.service import QueryEngine, start_server


def _timed(label: str, fn):
    started = time.perf_counter()
    value = fn()
    elapsed = time.perf_counter() - started
    print(f"  {label}: {elapsed:.3f}s")
    return value, elapsed


def bench_point_lookups(n: int, probes: int = 1000, seed: int = 42) -> dict:
    """Index-probe latency on a corpus with full+complementary pairs."""
    print(f"point lookups — synthetic corpus, n={n}")
    space = build_synthetic_space(n, dimension_count=4, seed=seed)
    result, compute_s = _timed(
        "materialise S_F+S_C (cubeMasking)",
        lambda: compute_cubemask(space, targets=("full", "complementary")),
    )
    engine, build_s = _timed(
        "index + engine build", lambda: QueryEngine(result, space, cache_size=0)
    )
    uris = [record.uri for record in space.observations]
    step = max(1, len(uris) // probes)
    probe_uris = uris[::step][:probes]
    started = time.perf_counter()
    answered = 0
    for uri in probe_uris:
        answered += len(engine.containers(uri))
        answered += len(engine.contained(uri))
        answered += len(engine.complements(uri))
    elapsed = time.perf_counter() - started
    per_query = elapsed / (3 * len(probe_uris))
    print(
        f"  {3 * len(probe_uris)} point lookups over "
        f"{result.total()} indexed pairs: {per_query * 1e6:.1f} us/query "
        f"({answered} uris returned)"
    )
    return {
        "n": n,
        "pairs": result.total(),
        "compute_s": compute_s,
        "build_s": build_s,
        "point_lookup_us": per_query * 1e6,
    }


def bench_cached_speedup(
    n: int, hot: int = 128, rounds: int = 5, k: int = 10, seed: int = 7
) -> dict:
    """Repeated top-k related queries, LRU cache on vs off."""
    print(f"cached vs uncached — synthetic corpus, n={n} (with partial containment)")
    space = build_synthetic_space(n, dimension_count=4, seed=seed)
    result, _ = _timed("materialise S_F+S_P+S_C", lambda: compute_cubemask(space))
    hot_uris = [record.uri for record in space.observations[:hot]]

    uncached = QueryEngine(result, space, cache_size=0)
    started = time.perf_counter()
    for _ in range(rounds):
        for uri in hot_uris:
            uncached.related(uri, k)
    uncached_s = time.perf_counter() - started
    uncached_qps = rounds * len(hot_uris) / uncached_s

    cached = QueryEngine(result, space, cache_size=4 * hot)
    for uri in hot_uris:  # warm the cache once
        cached.related(uri, k)
    started = time.perf_counter()
    for _ in range(rounds):
        for uri in hot_uris:
            cached.related(uri, k)
    cached_s = time.perf_counter() - started
    cached_qps = rounds * len(hot_uris) / cached_s

    speedup = uncached_s / cached_s if cached_s else float("inf")
    print(f"  uncached related(k={k}): {uncached_qps:,.0f} queries/s")
    print(
        f"  cached   related(k={k}): {cached_qps:,.0f} queries/s "
        f"(hit rate {cached.cache.hit_rate:.0%})"
    )
    print(f"  cached vs uncached speedup: {speedup:.1f}x")
    return {
        "n": n,
        "uncached_qps": uncached_qps,
        "cached_qps": cached_qps,
        "speedup": speedup,
        "hit_rate": cached.cache.hit_rate,
    }


def _percentile(samples: list[float], q: float) -> float:
    ordered = sorted(samples)
    return ordered[min(len(ordered) - 1, int(q * len(ordered)))]


def _http_round(base: str, uris: list[str], clients: int, per_client: int) -> dict:
    """Fan ``clients`` threads over point-lookup requests; tally the replies."""
    latencies: list[float] = []
    statuses: dict[int, int] = {}
    lock = threading.Lock()

    def worker(offset: int):
        for i in range(per_client):
            uri = urllib.parse.quote(uris[(offset + i) % len(uris)], safe="")
            begin = time.perf_counter()
            try:
                with urllib.request.urlopen(f"{base}/observations/{uri}/containers") as r:
                    code = r.status
                    r.read()
            except urllib.error.HTTPError as exc:
                code = exc.code
                exc.close()
            elapsed = time.perf_counter() - begin
            with lock:
                statuses[code] = statuses.get(code, 0) + 1
                if code == 200:
                    latencies.append(elapsed)

    threads = [
        threading.Thread(target=worker, args=(n * per_client,)) for n in range(clients)
    ]
    started = time.perf_counter()
    for thread in threads:
        thread.start()
    for thread in threads:
        thread.join()
    wall = time.perf_counter() - started
    served = statuses.get(200, 0)
    return {
        "qps": served / wall if wall else 0.0,
        "p50_ms": _percentile(latencies, 0.50) * 1e3 if latencies else 0.0,
        "p99_ms": _percentile(latencies, 0.99) * 1e3 if latencies else 0.0,
        "served": served,
        "shed": statuses.get(503, 0),
        "total": clients * per_client,
    }


def bench_concurrent_clients(n: int, clients: int = 8, per_client: int = 25, seed: int = 42) -> dict:
    """Healthy vs degraded throughput over a live HTTP server."""
    print(f"concurrent clients — n={n}, {clients} clients x {per_client} requests")
    space = build_synthetic_space(n, dimension_count=4, seed=seed)
    result = compute_cubemask(space, targets=("full", "complementary"))
    engine = QueryEngine(result, space)
    uris = [record.uri for record in space.observations[: 4 * clients]]
    shedder = LoadShedder(max_inflight=4, max_queued=2 * clients, queue_timeout=0.25)
    server = start_server(engine, shedder=shedder)
    host, port = server.server_address
    base = f"http://{host}:{port}"
    try:
        healthy = _http_round(base, uris, clients, per_client)
        install_injector("http.handler:delay:seconds=0.01:p=0.5:times=inf")
        try:
            degraded = _http_round(base, uris, clients, per_client)
        finally:
            clear_injector()
    finally:
        server.shutdown()
        server.server_close()
    print(f"  {'mode':<9} {'qps':>8} {'p50 ms':>8} {'p99 ms':>8} {'served':>7} {'shed':>5}")
    for mode, row in (("healthy", healthy), ("degraded", degraded)):
        print(
            f"  {mode:<9} {row['qps']:>8.0f} {row['p50_ms']:>8.2f} "
            f"{row['p99_ms']:>8.2f} {row['served']:>7} {row['shed']:>5}"
        )
    return {"healthy": healthy, "degraded": degraded}


def bench_cluster_scaling(
    n: int,
    clients: int = 8,
    per_client: int = 25,
    shard_counts: tuple[int, ...] = (1, 2, 4),
    seed: int = 42,
    threads: int = 8,
) -> dict:
    """Aggregate read throughput: single-process serve vs ``repro cluster``.

    Spawns *real* shard worker processes through the supervisor (the
    exact ``repro cluster --shards N`` tree) and drives the same
    point-lookup workload through the router.  On a multi-core host the
    shard processes sidestep the GIL and aggregate throughput scales
    with shards; the recorded ``cpus`` field says how many cores the
    numbers were taken on — on a 1-core container the cluster mostly
    pays routing overhead, and that is the honest result.
    """
    from repro.cluster import ClusterSupervisor
    from repro.storage import save_segments

    print(
        f"cluster scaling — n={n}, {clients} clients x {per_client} requests, "
        f"shards {list(shard_counts)} ({os.cpu_count()} cpu)"
    )
    space = build_synthetic_space(n, dimension_count=4, seed=seed)
    result = compute_cubemask(space, targets=("full", "complementary"))
    uris = [str(record.uri) for record in space.observations[: 4 * clients]]

    def warmup(base: str) -> None:
        # One sequential pass so every tier is measured steady-state:
        # shard workers materialise their partitions lazily on first touch.
        for uri in uris:
            quoted = urllib.parse.quote(uri, safe="")
            with urllib.request.urlopen(f"{base}/observations/{quoted}/containers") as r:
                r.read()

    engine = QueryEngine(result, space)
    server = start_server(engine, threads=threads)
    host, port = server.server_address
    try:
        base = f"http://{host}:{port}"
        warmup(base)
        single = _http_round(base, uris, clients, per_client)
    finally:
        server.shutdown()
        server.server_close()

    rows: dict[str, dict] = {"single": single}
    with tempfile.TemporaryDirectory(prefix="repro-cluster-bench-") as scratch:
        store_path = Path(scratch) / "links.rseg"
        save_segments(result, store_path, space=space)
        for shards in shard_counts:
            supervisor = ClusterSupervisor(
                store=str(store_path),
                shards=shards,
                replicas=1,
                rundir=Path(scratch) / f"run-{shards}",
                port=0,
                router_threads=threads,
                shard_threads=4,
                spawn_timeout=120.0,
            )
            # Routing affinity without re-parsing RDF: the bench already
            # holds the observation space the store was partitioned by.
            supervisor._space = space
            try:
                router_server = supervisor.start()
                host, port = router_server.server_address
                base = f"http://{host}:{port}"
                warmup(base)
                rows[f"shards_{shards}"] = _http_round(base, uris, clients, per_client)
            finally:
                supervisor.shutdown(drain_timeout=5.0)

    print(
        f"  {'tier':<10} {'qps':>8} {'p50 ms':>8} {'p99 ms':>8} "
        f"{'served':>7} {'speedup':>8}"
    )
    base_qps = single["qps"] or 1.0
    for tier, row in rows.items():
        print(
            f"  {tier:<10} {row['qps']:>8.0f} {row['p50_ms']:>8.2f} "
            f"{row['p99_ms']:>8.2f} {row['served']:>7} {row['qps'] / base_qps:>7.2f}x"
        )
    return {
        "n": n,
        "clients": clients,
        "per_client": per_client,
        "cpus": os.cpu_count(),
        "tiers": rows,
    }


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "--quick", action="store_true", help="small corpora (for CI smoke)"
    )
    parser.add_argument("--n-lookup", type=int, default=None, help="point-lookup corpus size")
    parser.add_argument("--n-cache", type=int, default=None, help="cache-benchmark corpus size")
    parser.add_argument(
        "--no-cluster", action="store_true", help="skip the multi-process cluster sweep"
    )
    parser.add_argument(
        "--json",
        metavar="PATH",
        default=None,
        help="record results to PATH (e.g. BENCH_service.json)",
    )
    args = parser.parse_args(argv)
    n_lookup = args.n_lookup or (2000 if args.quick else 10000)
    n_cache = args.n_cache or (500 if args.quick else 2000)
    n_http = 300 if args.quick else 1000
    clients = 4 if args.quick else 8
    shard_counts = (1, 2) if args.quick else (1, 2, 4)

    print("== relationship service throughput ==")
    lookup = bench_point_lookups(n_lookup)
    cache = bench_cached_speedup(n_cache)
    concurrent = bench_concurrent_clients(n_http, clients=clients)
    cluster = (
        None
        if args.no_cluster
        else bench_cluster_scaling(n_http, clients=clients, shard_counts=shard_counts)
    )
    print("== summary ==")
    print(
        f"point lookups: {lookup['point_lookup_us']:.1f} us/query over "
        f"{lookup['pairs']} pairs (index build {lookup['build_s']:.2f}s)"
    )
    print(f"cache speedup: {cache['speedup']:.1f}x (target >= 10x)")
    healthy, degraded = concurrent["healthy"], concurrent["degraded"]
    print(
        f"concurrent http: {healthy['qps']:.0f} qps healthy / "
        f"{degraded['qps']:.0f} qps degraded "
        f"(p99 {healthy['p99_ms']:.1f} -> {degraded['p99_ms']:.1f} ms, "
        f"{degraded['shed']} shed)"
    )
    if cluster is not None:
        best = max(
            (tier for tier in cluster["tiers"] if tier.startswith("shards_")),
            key=lambda tier: cluster["tiers"][tier]["qps"],
            default=None,
        )
        if best:
            ratio = cluster["tiers"][best]["qps"] / (cluster["tiers"]["single"]["qps"] or 1.0)
            print(
                f"cluster ({best.replace('_', ' ')}): "
                f"{cluster['tiers'][best]['qps']:.0f} qps aggregate, "
                f"{ratio:.2f}x single-process on {cluster['cpus']} cpu"
            )
    if args.json:
        payload = {
            "benchmark": "relationship service throughput",
            "python": platform.python_version(),
            "cpus": os.cpu_count(),
            "quick": bool(args.quick),
            "point_lookups": lookup,
            "cache": cache,
            "concurrent_http": concurrent,
            "cluster": cluster,
        }
        Path(args.json).write_text(json.dumps(payload, indent=2) + "\n")
        print(f"wrote {args.json}")
    return 0 if cache["speedup"] >= 10 else 1


if __name__ == "__main__":
    sys.exit(main())
