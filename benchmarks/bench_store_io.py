"""Store I/O benchmark: JSON vs gzip vs binary segments.

Measures, at 1k / 10k / 50k relationship pairs:

1. **save** — serialisation wall-clock per backend,
2. **load** — full deserialisation wall-clock per backend,
3. **startup** — time until a :class:`~repro.service.QueryEngine` is
   constructed and could bind a socket.  For JSON that is parse +
   eager index build; for a segment store it is manifest read + lazy
   views, i.e. O(manifest) — the ISSUE's acceptance criterion is a
   >=10x startup advantage at 50k pairs,
4. **bytes on disk** per backend.

The pair corpus is synthesised directly (uniform URIs, degrees on
every partial pair, dimension maps on a third of them) so the store,
not the materialisation, dominates the clock.

Run with::

    PYTHONPATH=src python benchmarks/bench_store_io.py [--quick]
"""

from __future__ import annotations

import argparse
import shutil
import sys
import tempfile
import time
from pathlib import Path

from repro.core.results import RelationshipSet
from repro.rdf.terms import URIRef
from repro.service import QueryEngine
from repro.store import load_relationships, save_relationships
from repro.storage import LazyRelationshipIndex, SegmentStore

SIZES = (1_000, 10_000, 50_000)
DIMENSIONS = tuple(URIRef(f"http://bench.example/dim/{i}") for i in range(4))


def build_result(pairs: int) -> RelationshipSet:
    """A relationship set with exactly ``pairs`` pairs, degree-annotated.

    Pairs enumerate distinct ``(k % n, k // n)`` index combinations, so
    no two generated pairs collide and the requested count is exact.
    """
    result = RelationshipSet()
    uris = [URIRef(f"http://bench.example/obs/{i}") for i in range(max(64, pairs // 8))]
    n = len(uris)

    def unique_pairs(count: int, counter: int, ordered: bool = True):
        produced = 0
        while produced < count:
            a, b = counter % n, counter // n
            counter += 1
            if a == b or (not ordered and a > b):
                continue
            produced += 1
            yield uris[a], uris[b]
        return

    full = pairs // 10
    complementary = pairs // 10
    partial = pairs - full - complementary
    for a, b in unique_pairs(full, 0):
        result.add_full(a, b)
    # Complementarity canonicalises (a, b); emitting only a < b keeps
    # the canonical pairs distinct.
    for a, b in unique_pairs(complementary, 0, ordered=False):
        result.add_complementary(a, b)
    for i, (a, b) in enumerate(unique_pairs(partial, n * n // 2)):
        dims = frozenset({DIMENSIONS[i % len(DIMENSIONS)]}) if i % 3 == 0 else None
        result.add_partial(a, b, dims, (i % 100) / 100.0)
    return result


def timed(fn) -> tuple[float, object]:
    started = time.perf_counter()
    value = fn()
    return time.perf_counter() - started, value


def path_bytes(path: Path) -> int:
    if path.is_dir():
        return sum(p.stat().st_size for p in path.iterdir())
    return path.stat().st_size


def engine_startup(path: Path, kind: str) -> float:
    """Time to a constructed QueryEngine (the serve-path startup cost)."""
    if kind == "segments":
        def build():
            store = SegmentStore.open(path)
            view = store.relationship_set()
            return QueryEngine(view, index=LazyRelationshipIndex(view))
    else:
        def build():
            result = load_relationships(path)
            return QueryEngine(result)
    elapsed, _ = timed(build)
    return elapsed


def bench_size(pairs: int, workdir: Path) -> dict:
    print(f"\n{pairs:,} pairs")
    result = build_result(pairs)
    actual = result.total()
    backends = {
        "json": workdir / f"links-{pairs}.json",
        "json.gz": workdir / f"links-{pairs}.json.gz",
        "segments": workdir / f"links-{pairs}.rseg",
    }
    row: dict = {"pairs": actual}
    for kind, path in backends.items():
        save_s, _ = timed(lambda p=path: save_relationships(result, p))
        load_s, loaded = timed(lambda p=path: load_relationships(p))
        assert loaded == result, f"{kind} round-trip diverged"
        start_s = engine_startup(path, kind)
        size = path_bytes(path)
        row[kind] = {"save": save_s, "load": load_s, "startup": start_s, "bytes": size}
        print(
            f"  {kind:>8}: save {save_s:7.3f}s   load {load_s:7.3f}s   "
            f"startup {start_s:7.4f}s   {size:>12,} bytes"
        )
    speedup = row["json"]["startup"] / max(row["segments"]["startup"], 1e-9)
    row["startup_speedup"] = speedup
    print(f"  startup speedup (segments vs json): {speedup:.1f}x")
    return row


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.split("\n")[0])
    parser.add_argument(
        "--quick", action="store_true", help="only the 1k and 10k sizes"
    )
    args = parser.parse_args(argv)
    sizes = SIZES[:2] if args.quick else SIZES
    workdir = Path(tempfile.mkdtemp(prefix="repro-bench-store-"))
    try:
        rows = [bench_size(pairs, workdir) for pairs in sizes]
    finally:
        shutil.rmtree(workdir, ignore_errors=True)
    largest = rows[-1]
    print(
        f"\nat {largest['pairs']:,} pairs the segment store starts the engine "
        f"{largest['startup_speedup']:.1f}x faster than JSON "
        f"(criterion: >=10x at 50k)"
    )
    if not args.quick and largest["startup_speedup"] < 10:
        print("FAIL: startup speedup below the 10x acceptance bar", file=sys.stderr)
        return 1
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
