"""Streaming-ingest benchmark: the WAL-backed changefeed under load.

Measures, on synthetic corpora (Section 4.2 generator):

1. **Feed publish/replay rates** — raw changefeed throughput: fsynced
   ``publish`` appends per second, then a full ``since=0`` replay
   (CRC re-verification included) in records per second.
2. **Sustained ingest with concurrent reads** — the acceptance
   scenario: a ``StreamIngester`` pumps CSV observation lines through
   ``POST /observations`` against a live server (incremental delta
   compute + WAL append + feed publish per batch) while reader
   threads long-poll ``GET /changes`` and hit point lookups the whole
   time.  Records sustained observations/sec, per-batch apply latency
   percentiles, and the readers' query rate.

Run with::

    PYTHONPATH=src python benchmarks/bench_stream.py [--quick] \
        [--json BENCH_stream.json]
"""

from __future__ import annotations

import argparse
import json
import os
import platform
import statistics
import tempfile
import threading
import time
import urllib.parse
import urllib.request
from pathlib import Path

from repro.core import compute_cubemask
from repro.core.results import RelationshipDelta
from repro.data.synthetic import build_synthetic_space
from repro.rdf.terms import URIRef
from repro.service import QueryEngine, start_server
from repro.stream import Changefeed, CsvObservationParser, HttpSink, StreamIngester


def bench_feed(n_records: int) -> dict:
    """Raw changefeed append + replay rates (one delta per record)."""
    print(f"feed publish/replay — {n_records} records")
    with tempfile.TemporaryDirectory(prefix="repro-bench-feed-") as tmp:
        feed = Changefeed(Path(tmp) / "feed")
        deltas = [
            RelationshipDelta(
                added_full={
                    (URIRef(f"http://bench/a{i}"), URIRef(f"http://bench/b{i}"))
                }
            )
            for i in range(n_records)
        ]
        started = time.perf_counter()
        for delta in deltas:
            feed.publish(delta)
        publish_s = time.perf_counter() - started

        started = time.perf_counter()
        records = feed.read(since=0)
        replay_s = time.perf_counter() - started
        assert len(records) == n_records
        feed.close()
    publish_rate = n_records / publish_s if publish_s else 0.0
    replay_rate = n_records / replay_s if replay_s else 0.0
    print(
        f"  publish: {publish_rate:.0f} rec/s (fsync per append), "
        f"replay: {replay_rate:.0f} rec/s"
    )
    return {
        "n": n_records,
        "publish_per_s": publish_rate,
        "replay_per_s": replay_rate,
    }


def _csv_lines(space, n_obs: int):
    template = space.observations[0]
    dims = "|".join(
        f"{dim}={code}"
        for dim, code in zip(space.dimensions, template.codes)
        if code is not None
    )
    yield "uri,dataset,dimensions,measures\n"
    for i in range(n_obs):
        yield (
            f'http://bench/stream{i},{template.dataset},"{dims}",'
            "http://bench/m0\n"
        )


class _TimingSink:
    """Wrap a sink to collect per-batch apply latencies."""

    def __init__(self, inner):
        self.inner = inner
        self.latencies: list[float] = []
        self._lock = threading.Lock()

    def send(self, batch, trace_id=None):
        started = time.perf_counter()
        ack = self.inner.send(batch, trace_id=trace_id)
        elapsed = time.perf_counter() - started
        with self._lock:
            self.latencies.append(elapsed)
        return ack

    def close(self):
        self.inner.close()


def bench_ingest(n_base: int, n_stream: int, readers: int, batch_size: int) -> dict:
    """Sustained HTTP ingest while reader threads query concurrently."""
    print(
        f"sustained ingest — base corpus n={n_base}, {n_stream} streamed obs, "
        f"{readers} concurrent readers"
    )
    space = build_synthetic_space(n_base, dimension_count=3, seed=11)
    result = compute_cubemask(space, targets=("full", "complementary"))
    with tempfile.TemporaryDirectory(prefix="repro-bench-stream-") as tmp:
        feed = Changefeed(Path(tmp) / "feed")
        engine = QueryEngine(result, space, changefeed=feed)
        server = start_server(engine, threads=max(4, readers + 2))
        host, port = server.server_address
        base = f"http://{host}:{port}"
        stop = threading.Event()
        read_counts = [0] * readers
        probe = urllib.parse.quote(str(space.observations[0].uri), safe="")

        def reader(slot: int) -> None:
            cursor = 0
            while not stop.is_set():
                try:
                    with urllib.request.urlopen(
                        f"{base}/changes?since={cursor}&timeout=0.2&limit=500",
                        timeout=10,
                    ) as response:
                        body = json.load(response)
                    cursor = body["next"]
                    with urllib.request.urlopen(
                        f"{base}/observations/{probe}/containers", timeout=10
                    ) as response:
                        response.read()
                    read_counts[slot] += 2
                except OSError:
                    if stop.is_set():
                        break

        threads = [
            threading.Thread(target=reader, args=(slot,), daemon=True)
            for slot in range(readers)
        ]
        for thread in threads:
            thread.start()

        sink = _TimingSink(HttpSink(base))
        pump = StreamIngester(
            sink, CsvObservationParser(), batch_size=batch_size, max_inflight=2
        )
        read_started = time.perf_counter()
        stats = pump.run(_csv_lines(space, n_stream))
        read_elapsed = time.perf_counter() - read_started
        stop.set()
        for thread in threads:
            thread.join(timeout=10)
        head = feed.head_offset
        server.shutdown()
        server.server_close()
        feed.close()

    total_reads = sum(read_counts)
    reader_qps = total_reads / read_elapsed if read_elapsed else 0.0
    latencies_ms = sorted(x * 1000 for x in sink.latencies)
    p50 = statistics.median(latencies_ms) if latencies_ms else 0.0
    p99 = (
        latencies_ms[min(len(latencies_ms) - 1, int(0.99 * len(latencies_ms)))]
        if latencies_ms
        else 0.0
    )
    print(
        f"  {stats.observations} obs in {stats.seconds:.2f}s = "
        f"{stats.obs_per_sec:.0f} obs/s sustained "
        f"({stats.batches} batches, p50 {p50:.1f} ms, p99 {p99:.1f} ms/batch)"
    )
    print(
        f"  concurrent readers: {total_reads} requests = {reader_qps:.0f} qps, "
        f"feed head {head} (all {stats.batches} batches visible)"
    )
    return {
        "n_base": n_base,
        "n_stream": n_stream,
        "batch_size": batch_size,
        "obs_per_sec": stats.obs_per_sec,
        "batches": stats.batches,
        "batch_p50_ms": p50,
        "batch_p99_ms": p99,
        "readers": readers,
        "reader_qps": reader_qps,
        "head_offset": head,
        "last_offset": stats.last_offset,
    }


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "--quick", action="store_true", help="small corpora (for CI smoke)"
    )
    parser.add_argument("--n-feed", type=int, default=None, help="feed benchmark records")
    parser.add_argument("--n-stream", type=int, default=None, help="streamed observations")
    parser.add_argument("--readers", type=int, default=None, help="concurrent reader threads")
    parser.add_argument(
        "--json",
        metavar="PATH",
        default=None,
        help="record results to PATH (e.g. BENCH_stream.json)",
    )
    args = parser.parse_args(argv)
    n_feed = args.n_feed or (300 if args.quick else 2000)
    n_base = 300 if args.quick else 1500
    n_stream = args.n_stream or (120 if args.quick else 600)
    readers = args.readers if args.readers is not None else (2 if args.quick else 4)
    batch_size = 20 if args.quick else 50

    print("== streaming ingest / changefeed ==")
    feed = bench_feed(n_feed)
    ingest = bench_ingest(n_base, n_stream, readers=readers, batch_size=batch_size)
    print("== summary ==")
    print(
        f"feed: {feed['publish_per_s']:.0f} publish/s, "
        f"{feed['replay_per_s']:.0f} replay/s"
    )
    print(
        f"ingest: {ingest['obs_per_sec']:.0f} obs/s sustained with "
        f"{ingest['readers']} concurrent readers ({ingest['reader_qps']:.0f} qps)"
    )
    if args.json:
        payload = {
            "benchmark": "streaming ingest and changefeed",
            "python": platform.python_version(),
            "cpus": os.cpu_count(),
            "quick": bool(args.quick),
            "feed": feed,
            "ingest": ingest,
        }
        Path(args.json).write_text(json.dumps(payload, indent=2) + "\n")
        print(f"recorded {args.json}")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
