"""Tables 2 and 3: occurrence-matrix and OCM construction.

Micro-benchmarks of the matrix pipeline on the paper's running example
and on a realistic slice — the building blocks behind Tables 2 (OM),
3(a) (CM_i) and 3(b) (OCM).
"""

import pytest

from repro.core import OccurrenceMatrix
from repro.data.example import EXNS, build_example_space


@pytest.fixture(scope="module")
def example_space():
    return build_example_space()


def test_om_construction_example(benchmark, example_space):
    benchmark.group = "table2 OM construction"
    matrix = benchmark(lambda: OccurrenceMatrix(example_space))
    dense, columns = matrix.dense()
    benchmark.extra_info["rows"] = dense.shape[0]
    benchmark.extra_info["columns"] = dense.shape[1]


def test_om_construction_realworld(benchmark, subset_cache):
    space = subset_cache("realworld", 400)
    benchmark.group = "table2 OM construction"
    matrix = benchmark(lambda: OccurrenceMatrix(space))
    benchmark.extra_info["rows"] = len(space)


def test_cm_single_dimension(benchmark, example_space):
    benchmark.group = "table3a CM per dimension"
    matrix = OccurrenceMatrix(example_space)
    cm = benchmark(lambda: matrix.containment_matrix(EXNS.refArea))
    benchmark.extra_info["true_cells"] = int(cm.sum())


def test_ocm_example(benchmark, example_space):
    benchmark.group = "table3b OCM"
    matrix = OccurrenceMatrix(example_space)
    ocm = benchmark(lambda: matrix.compute_ocm())
    benchmark.extra_info["dimensions"] = ocm.dimension_count


def test_ocm_realworld(benchmark, subset_cache):
    space = subset_cache("realworld", 400)
    benchmark.group = "table3b OCM"
    matrix = OccurrenceMatrix(space)
    benchmark.pedantic(lambda: matrix.compute_ocm(keep_cms=False), rounds=3, iterations=1)
