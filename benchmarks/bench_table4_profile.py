"""Table 4: the seven-dataset corpus profile.

Times the corpus generation and records the Table 4 statistics
(dataset sizes, dimension counts, measures, distinct codes) in
``extra_info`` so the benchmark output regenerates the table's rows.
"""

from repro.core.space import ObservationSpace
from repro.data.realworld import REALWORLD_PROFILES, build_realworld_cubespace, standard_hierarchies


def test_corpus_generation(benchmark):
    benchmark.group = "table4 corpus"
    cube = benchmark.pedantic(
        lambda: build_realworld_cubespace(scale=0.005, seed=42), rounds=2, iterations=1
    )
    benchmark.extra_info["datasets"] = len(cube.datasets)
    benchmark.extra_info["observations"] = cube.observation_count()


def test_table4_rows(benchmark):
    """Regenerate Table 4's rows (dims per dataset, measure, #obs)."""
    benchmark.group = "table4 corpus"

    def build_rows():
        rows = []
        for profile in REALWORLD_PROFILES:
            rows.append(
                (
                    profile.name,
                    profile.observations,
                    len(profile.dimensions),
                    profile.measure.local_name(),
                )
            )
        return rows

    rows = benchmark(build_rows)
    for name, observations, dimension_count, measure in rows:
        benchmark.extra_info[name] = f"{observations} obs, {dimension_count} dims, {measure}"


def test_distinct_code_count(benchmark):
    """The paper reports ~2.6k distinct hierarchical values."""
    benchmark.group = "table4 corpus"
    hierarchies = standard_hierarchies()
    total = benchmark(lambda: sum(len(h) for h in hierarchies.values()))
    benchmark.extra_info["distinct_codes"] = total
    assert 500 <= total <= 5000


def test_flattening(benchmark):
    """Cube space -> observation space (dimension-bus padding)."""
    benchmark.group = "table4 corpus"
    cube = build_realworld_cubespace(scale=0.005, seed=42)
    space = benchmark.pedantic(
        lambda: ObservationSpace.from_cubespace(cube), rounds=2, iterations=1
    )
    benchmark.extra_info["bus_dimensions"] = len(space.dimensions)
