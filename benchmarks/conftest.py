"""Shared fixtures for the benchmark suite.

Corpora are generated once per session and cached; benchmarks slice
them to the requested input size, mirroring the paper's experimental
protocol (fixed dimensionality, growing observation counts).
"""

from __future__ import annotations

import pytest

from repro.core.space import ObservationSpace
from repro.data.realworld import build_realworld_cubespace
from repro.data.synthetic import build_synthetic_space

from workload import SYNTHETIC_SIZES


@pytest.fixture(scope="session")
def realworld_space() -> ObservationSpace:
    """~1.2k-observation emulation of the 7-dataset corpus (Table 4)."""
    cube = build_realworld_cubespace(scale=0.005, seed=42)
    return ObservationSpace.from_cubespace(cube)


@pytest.fixture(scope="session")
def synthetic_space() -> ObservationSpace:
    """Section 4.2 synthetic scalability corpus."""
    return build_synthetic_space(max(SYNTHETIC_SIZES), dimension_count=4, seed=42)


@pytest.fixture(scope="session")
def subset_cache(realworld_space, synthetic_space):
    """Memoised subsets so each (corpus, n) slice is built once."""
    cache: dict[tuple[str, int], ObservationSpace] = {}

    def get(corpus: str, n: int) -> ObservationSpace:
        key = (corpus, n)
        if key not in cache:
            source = realworld_space if corpus == "realworld" else synthetic_space
            cache[key] = source.subset(n)
        return cache[key]

    return get
