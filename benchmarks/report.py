"""Standalone harness: regenerate every table/figure series as text.

Prints the rows/series the paper reports (execution times per method
and input size, clustering recall, cube ratios, pre-fetch speed-up),
at laptop scale.  Used to produce EXPERIMENTS.md.

Run with::

    python benchmarks/report.py [--quick]
"""

from __future__ import annotations

import argparse
import json
import sys
import time
from pathlib import Path

from repro.core import (
    CubeLattice,
    compute_baseline,
    compute_clustering,
    compute_cubemask,
    compute_rules,
    compute_sparql,
)
from repro.core.space import ObservationSpace
from repro.data.realworld import REALWORLD_PROFILES, build_realworld_cubespace, standard_hierarchies
from repro.data.synthetic import build_synthetic_space


def timed(fn):
    started = time.perf_counter()
    result = fn()
    return time.perf_counter() - started, result


def header(title: str) -> None:
    print(f"\n=== {title} " + "=" * max(0, 60 - len(title)))


def figure_5abc(space: ObservationSpace, sizes, comparator_sizes, rules_sizes) -> None:
    # One merged size axis: the comparators' small sizes plus the native
    # methods' sweep, so every method shows its feasible range.
    all_sizes = sorted(set(sizes) | set(comparator_sizes) | set(rules_sizes))
    for figure, target in (("5a complementarity", "complementary"),
                           ("5b full containment", "full"),
                           ("5c partial containment", "partial")):
        header(f"Figure {figure}: execution time (s)")
        print(f"{'n':>6} {'baseline':>10} {'clustering':>11} {'cubeMasking':>12} {'SPARQL':>10} {'rules':>10}")
        for n in all_sizes:
            subset = space.subset(n)
            opts = {"targets": (target,), "collect_partial_dimensions": False}
            t_base, _ = timed(lambda: compute_baseline(subset, **opts))
            t_clus, _ = timed(lambda: compute_clustering(subset, seed=0, **opts))
            t_mask, _ = timed(lambda: compute_cubemask(subset, targets=(target,)))
            if n <= max(comparator_sizes):
                t_sparql, _ = timed(lambda: compute_sparql(subset, targets=(target,)))
                sparql_text = f"{t_sparql:>10.3f}"
            else:
                sparql_text = f"{'timeout':>10}"
            if n <= max(rules_sizes):
                t_rules, _ = timed(lambda: compute_rules(subset, targets=(target,)))
                rules_text = f"{t_rules:>10.3f}"
            else:
                rules_text = f"{'o/m':>10}"
            print(f"{n:>6} {t_base:>10.3f} {t_clus:>11.3f} {t_mask:>12.3f} {sparql_text} {rules_text}")


def figure_5d(space: ObservationSpace, sizes) -> None:
    header("Figure 5d: clustering recall (overall) vs input size")
    print(f"{'n':>6} {'x-means':>9} {'canopy':>9} {'hierarchical':>13}")
    for n in sizes:
        subset = space.subset(n)
        truth = compute_baseline(subset, collect_partial_dimensions=False)
        row = [f"{n:>6}"]
        for algorithm in ("xmeans", "canopy", "hierarchical"):
            result = compute_clustering(
                subset, algorithm=algorithm, sample_rate=0.1, seed=7,
                collect_partial_dimensions=False,
            )
            recall = result.recall_against(truth).overall
            row.append(f"{recall:>9.3f}" if algorithm != "hierarchical" else f"{recall:>13.3f}")
        print(" ".join(row))


def figure_5e(sizes) -> None:
    header("Figure 5e: log-log scalability (synthetic)")
    print(f"{'n':>6} {'baseline':>10} {'clustering':>11} {'cubeMasking':>12} {'mask comparisons':>17} {'vs n^2':>8}")
    times = {}
    for n in sizes:
        space = build_synthetic_space(n, dimension_count=4, seed=42)
        t_base, _ = timed(lambda: compute_baseline(space, targets=("full", "complementary")))
        t_clus, _ = timed(lambda: compute_clustering(space, targets=("full", "complementary"), seed=0))
        stats: dict = {}
        t_mask, _ = timed(
            lambda: compute_cubemask(space, targets=("full", "complementary"), stats=stats)
        )
        times[n] = (t_base, t_clus, t_mask)
        saving = stats["instance_comparisons"] / (n * n)
        print(
            f"{n:>6} {t_base:>10.3f} {t_clus:>11.3f} {t_mask:>12.3f} "
            f"{stats['instance_comparisons']:>17,} {saving:>8.2%}"
        )
    if len(sizes) >= 2:
        import math

        lo, hi = sizes[0], sizes[-1]
        print("\nEmpirical log-log slopes (paper: baseline ≈ 2):")
        for label, index in (("baseline", 0), ("clustering", 1), ("cubeMasking", 2)):
            slope = math.log(times[hi][index] / max(times[lo][index], 1e-9)) / math.log(hi / lo)
            print(f"  {label:<12} {slope:.2f}")


def figure_5f(space: ObservationSpace, sizes) -> None:
    header("Figure 5f: cubes per observation (decreasing)")
    print(f"{'n':>6} {'cubes':>7} {'ratio':>8}")
    for n in sizes:
        lattice = CubeLattice(space.subset(n))
        print(f"{n:>6} {len(lattice):>7} {lattice.cube_ratio:>8.4f}")


def figure_5g(space: ObservationSpace, sizes) -> None:
    header("Figure 5g: children pre-fetching vs normal (full containment)")
    print(f"{'n':>6} {'prefetch':>10} {'normal':>10} {'ratio':>7}")
    targets = ("full", "complementary")
    for n in sizes:
        subset = space.subset(n)
        t_pre = min(
            timed(lambda: compute_cubemask(subset, prefetch_children=True, targets=targets))[0]
            for _ in range(3)
        )
        t_norm = min(
            timed(lambda: compute_cubemask(subset, prefetch_children=False, targets=targets))[0]
            for _ in range(3)
        )
        print(f"{n:>6} {t_pre:>10.3f} {t_norm:>10.3f} {t_pre / max(t_norm, 1e-9):>7.2f}")


def kernel_speedup(sizes) -> None:
    import bench_kernels

    header("Kernel paths: python vs numpy vs parallel")
    print(
        f"{'n':>6} {'series':>12} {'pairs':>12} {'python':>9} {'numpy':>9} "
        f"{'parallel':>9} {'speedup':>8}"
    )
    for n in sizes:
        space = build_synthetic_space(n, dimension_count=4, seed=42)
        for label, targets in (
            ("full+compl", bench_kernels.HEADLINE_TARGETS),
            ("all-targets", bench_kernels.ALL_TARGETS),
        ):
            series = bench_kernels.bench_targets(space, targets, workers=4, reps=2)
            print(
                f"{n:>6} {label:>12} {series['pairs']:>12,} "
                f"{series['python']['seconds']:>9.3f} "
                f"{series['numpy']['seconds']:>9.3f} {series['parallel']['seconds']:>9.3f} "
                f"{series['speedup_numpy_vs_python']:>7.2f}x"
            )


def kernel_bench_recorded() -> None:
    """Kernel-path rows recorded by ``bench_kernels.py``.

    The full sweep (n=10k, all targets) takes minutes, so it is
    recorded once into ``BENCH_kernels.json`` and replayed here.
    Missing or pre-rework fields are *flagged*, never KeyError'd —
    an old report file marks the section stale instead of crashing
    the whole report.
    """
    header("Kernel benchmark: recorded BENCH_kernels.json")
    bench_path = Path(__file__).resolve().parent.parent / "BENCH_kernels.json"
    try:
        payload = json.loads(bench_path.read_text())
    except (OSError, json.JSONDecodeError):
        print(
            "no BENCH_kernels.json — run "
            "`PYTHONPATH=src python benchmarks/bench_kernels.py` to record it"
        )
        return
    stale = [
        field for field in ("cpus", "all_targets", "per_target") if field not in payload
    ]
    if stale:
        print(
            f"stale BENCH_kernels.json (missing: {', '.join(stale)}) — "
            "re-run benchmarks/bench_kernels.py for the full breakdown"
        )
    print(
        f"n={payload.get('n', '?')} seed={payload.get('seed', '?')} "
        f"cpus={payload.get('cpus', '?')} python={payload.get('python', '?')}"
    )

    def seconds(series: dict, path: str) -> str:
        value = (series.get(path) or {}).get("seconds")
        return f"{value:>9.3f}" if value is not None else f"{'—':>9}"

    def ratio(series: dict, key: str) -> str:
        value = series.get(key)
        return f"{value:>7.2f}x" if value is not None else f"{'—':>8}"

    print(
        f"{'series':>12} {'pairs':>14} {'python':>9} {'numpy':>9} "
        f"{'parallel':>9} {'np-vs-py':>8} {'par-vs-np':>9}"
    )
    for name in ("headline", "all_targets"):
        series = payload.get(name)
        if not isinstance(series, dict):
            continue
        pairs = series.get("pairs")
        print(
            f"{name:>12} {pairs:>14,} " if pairs is not None else f"{name:>12} {'—':>14} ",
            end="",
        )
        print(
            f"{seconds(series, 'python')} {seconds(series, 'numpy')} "
            f"{seconds(series, 'parallel')} {ratio(series, 'speedup_numpy_vs_python')} "
            f"{ratio(series, 'speedup_parallel_vs_numpy')}"
        )
    per_target = payload.get("per_target")
    if isinstance(per_target, dict) and per_target:
        print(f"{'target':>15} {'python':>9} {'numpy':>9} {'speedup':>8}")
        for target, row in per_target.items():
            py_s = row.get("python_seconds")
            np_s = row.get("numpy_seconds")
            speedup = row.get("speedup")
            print(
                f"{target:>15} "
                + (f"{py_s:>9.3f}" if py_s is not None else f"{'—':>9}")
                + " "
                + (f"{np_s:>9.3f}" if np_s is not None else f"{'—':>9}")
                + " "
                + (f"{speedup:>7.2f}x" if speedup is not None else f"{'—':>8}")
            )


def ablations(space: ObservationSpace) -> None:
    from repro.core import compute_hybrid
    from repro.core.matrix import OccurrenceMatrix

    header("Ablation: bit-matrix backend (OCM at n=400)")
    subset = space.subset(400)
    for backend in ("numpy", "python"):
        matrix = OccurrenceMatrix(subset, backend=backend)
        t, _ = timed(lambda: matrix.compute_ocm(keep_cms=False))
        print(f"  {backend:<8} {t:.3f}s")

    header("Ablation: cube density (§4.2 caveat, synthetic n=800)")
    print(f"{'alpha':>6} {'cubes':>6} {'cubeMasking':>12} {'baseline':>10}")
    for alpha in (0.3, 0.55, 0.85):
        synthetic = build_synthetic_space(800, dimension_count=4, seed=7, alpha=alpha)
        stats: dict = {}
        t_mask, _ = timed(
            lambda: compute_cubemask(synthetic, targets=("full", "complementary"), stats=stats)
        )
        t_base, _ = timed(
            lambda: compute_baseline(synthetic, targets=("full", "complementary"))
        )
        print(f"{alpha:>6} {stats['cubes']:>6} {t_mask:>12.3f} {t_base:>10.3f}")

    header("Extension: hybrid vs pure methods (all targets, n=400)")
    truth = compute_baseline(subset, collect_partial_dimensions=False)
    for label, fn in (
        ("baseline", lambda: compute_baseline(subset, collect_partial_dimensions=False)),
        ("cubeMasking", lambda: compute_cubemask(subset)),
        ("clustering", lambda: compute_clustering(subset, seed=3, collect_partial_dimensions=False)),
        ("hybrid", lambda: compute_hybrid(subset, seed=3)),
    ):
        t, result = timed(fn)
        recall = result.recall_against(truth)
        print(
            f"  {label:<12} {t:>7.3f}s  recall full={recall.full:.2f} "
            f"partial={recall.partial:.2f} compl={recall.complementary:.2f}"
        )


def table_4() -> None:
    header("Table 4: dataset profile (emulated)")
    print(f"{'dataset':>8} {'paper #obs':>11} {'dims':>5} measure")
    for profile in REALWORLD_PROFILES:
        print(
            f"{profile.name:>8} {profile.observations:>11,} {len(profile.dimensions):>5} "
            f"{profile.measure.local_name()}"
        )
    total_codes = sum(len(h) for h in standard_hierarchies().values())
    print(f"\nDistinct hierarchical codes: {total_codes} (paper: ~2.6k)")


def cluster_serve_tier() -> None:
    """Serve-tier scaling rows, read from ``BENCH_service.json``.

    The cluster sweep spawns real worker processes, so it is recorded
    once by ``bench_service_throughput.py --json BENCH_service.json``
    and replayed here rather than re-run on every report.
    """
    header("Cluster serve tier: aggregate read throughput")
    bench_path = Path(__file__).resolve().parent.parent / "BENCH_service.json"
    try:
        payload = json.loads(bench_path.read_text())
    except (OSError, json.JSONDecodeError):
        print(
            "no BENCH_service.json — run "
            "`PYTHONPATH=src python benchmarks/bench_service_throughput.py "
            "--json BENCH_service.json` to record the sweep"
        )
        return
    cluster = payload.get("cluster")
    if not cluster:
        print("BENCH_service.json has no cluster sweep (recorded with --no-cluster)")
        return
    print(
        f"{cluster['clients']} clients x {cluster['per_client']} point lookups, "
        f"n={cluster['n']}, {cluster['cpus']} cpu"
    )
    print(f"{'tier':>10} {'qps':>9} {'p50 ms':>8} {'p99 ms':>8} {'vs single':>10}")
    base = cluster["tiers"].get("single", {}).get("qps") or 1.0
    for tier, row in cluster["tiers"].items():
        print(
            f"{tier:>10} {row['qps']:>9.0f} {row['p50_ms']:>8.2f} "
            f"{row['p99_ms']:>8.2f} {row['qps'] / base:>9.2f}x"
        )


def streaming_ingest() -> None:
    """Ingest-throughput rows, read from ``BENCH_stream.json``.

    The streaming benchmark drives a live server with concurrent
    readers, so it is recorded once by ``bench_stream.py --json
    BENCH_stream.json`` and replayed here rather than re-run on every
    report.
    """
    header("Streaming ingest: sustained obs/sec with concurrent reads")
    bench_path = Path(__file__).resolve().parent.parent / "BENCH_stream.json"
    try:
        payload = json.loads(bench_path.read_text())
    except (OSError, json.JSONDecodeError):
        print(
            "no BENCH_stream.json — run "
            "`PYTHONPATH=src python benchmarks/bench_stream.py "
            "--json BENCH_stream.json` to record the sweep"
        )
        return
    feed = payload.get("feed") or {}
    ingest = payload.get("ingest") or {}
    if feed:
        print(
            f"changefeed: {feed['publish_per_s']:>8.0f} publish/s (fsync per "
            f"append), {feed['replay_per_s']:>8.0f} replay/s over {feed['n']} records"
        )
    if ingest:
        print(
            f"{'base n':>8} {'streamed':>9} {'obs/s':>8} {'p50 ms':>8} "
            f"{'p99 ms':>8} {'readers':>8} {'read qps':>9}"
        )
        print(
            f"{ingest['n_base']:>8} {ingest['n_stream']:>9} "
            f"{ingest['obs_per_sec']:>8.0f} {ingest['batch_p50_ms']:>8.1f} "
            f"{ingest['batch_p99_ms']:>8.1f} {ingest['readers']:>8} "
            f"{ingest['reader_qps']:>9.0f}"
        )


def telemetry_overhead() -> None:
    """Telemetry-cost rows, read from ``BENCH_obs.json``.

    The overhead probe drives a live server and paired kernel runs,
    so it is recorded once by ``bench_obs_overhead.py --json
    BENCH_obs.json`` and replayed here.
    """
    header("Telemetry overhead: always-on observability cost")
    bench_path = Path(__file__).resolve().parent.parent / "BENCH_obs.json"
    try:
        payload = json.loads(bench_path.read_text())
    except (OSError, json.JSONDecodeError):
        print(
            "no BENCH_obs.json — run "
            "`PYTHONPATH=src python benchmarks/bench_obs_overhead.py "
            "--json BENCH_obs.json` to record it"
        )
        return
    kernel = payload.get("kernel") or {}
    service = payload.get("service") or {}
    budget = payload.get("budget_pct", 5.0)
    print(f"{'probe':>10} {'bare':>14} {'telemetry on':>14} {'overhead':>9}")
    if kernel:
        print(
            f"{'kernel':>10} {kernel['pairs_per_s_off']:>12.0f}/s "
            f"{kernel['pairs_per_s_on']:>12.0f}/s "
            f"{kernel['overhead_pct']:>+8.1f}%"
        )
    if service:
        print(
            f"{'service':>10} {service['requests_per_s_off']:>12.0f}/s "
            f"{service['requests_per_s_on']:>12.0f}/s "
            f"{service['overhead_pct']:>+8.1f}%"
        )
    verdict = "within" if payload.get("within_budget") else "EXCEEDS"
    print(f"({payload.get('cpus')} cpu; {verdict} the {budget:.0f}% budget)")


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--quick", action="store_true", help="smaller sweeps")
    args = parser.parse_args(argv)

    if args.quick:
        sizes = (100, 200)
        synthetic_sizes = (250, 500)
        comparator_sizes = (25, 50)
        rules_sizes = (10,)
    else:
        sizes = (100, 200, 400, 800)
        synthetic_sizes = (500, 1000, 2000)
        comparator_sizes = (25, 50, 100)
        rules_sizes = (10, 20, 40)

    cube = build_realworld_cubespace(scale=0.005, seed=42)
    space = ObservationSpace.from_cubespace(cube)
    print(f"Real-world emulation corpus: {space}")

    table_4()
    figure_5abc(space, sizes, comparator_sizes, rules_sizes)
    figure_5d(space, sizes)
    figure_5e(synthetic_sizes)
    figure_5f(space, sizes)
    figure_5g(space, sizes)
    kernel_speedup(synthetic_sizes)
    kernel_bench_recorded()
    cluster_serve_tier()
    streaming_ingest()
    telemetry_overhead()
    if not args.quick:
        ablations(space)
    return 0


if __name__ == "__main__":
    sys.exit(main())
