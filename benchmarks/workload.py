"""Benchmark workload constants shared across the figure benches.

Scale note: the paper sweeps 2k-250k observations (and 2.5M synthetic)
in Java on a 3.6 GHz Xeon; this pure-Python reproduction sweeps
proportionally smaller sizes so the suite completes in minutes.  The
*shapes* — method ordering, crossovers, slopes — are what
EXPERIMENTS.md validates against the paper.
"""

REALWORLD_SIZES = (100, 200, 400, 800)
PARTIAL_SIZES = (100, 200, 400)
SYNTHETIC_SIZES = (500, 1000, 2000)
COMPARATOR_SIZES = (25, 50, 100)
RULES_SIZES = (10, 20, 40)
