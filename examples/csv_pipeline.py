"""CSV → QB → validate → relationships: the §4 ingestion recipe.

The paper converts CSV datasets to RDF cubes by mapping column headers
to dimension URIs and matching cell values to code-list identifiers.
This example runs that pipeline end to end on two little CSV files that
a statistics portal might publish, validates the result against the QB
integrity constraints, and computes the cross-dataset relationships.

Run with::

    python examples/csv_pipeline.py
"""

from repro import Method, Namespace, compute_relationships, cubespace_to_graph
from repro.data.codelists import geo_hierarchy, time_hierarchy
from repro.qb.csv2qb import ColumnSpec, csv_to_cubespace
from repro.qb.validation import validate_graph

NS = Namespace("http://portal.example/")

# Two CSVs over the same code lists: identifiers in the cells match the
# code URIs' local names (geo_hierarchy mints e.g. .../geo/EU-C0-R0).
POPULATION_CSV = """area,period,population
EU-C0,Y2012,10500000
EU-C0-R0,Y2012,3500000
EU-C1,Y2012,8400000
"""

BIRTHS_CSV = """area,period,births
EU-C0,Y2012,98000
EU-C1,Y2012,79000
EU-C0-R0,Y2012-Q1,8100
"""


def main() -> None:
    geo = geo_hierarchy()
    time = time_hierarchy(start_year=2012, years=1)
    columns_common = [
        ColumnSpec("area", "dimension", NS.refArea, hierarchy=geo),
        ColumnSpec("period", "dimension", NS.refPeriod, hierarchy=time),
    ]

    cube = csv_to_cubespace(
        POPULATION_CSV,
        columns_common + [ColumnSpec("population", "measure", NS.population, parser=int)],
        dataset_uri=NS.populationData,
    )
    cube = csv_to_cubespace(
        BIRTHS_CSV,
        columns_common + [ColumnSpec("births", "measure", NS.births, parser=int)],
        dataset_uri=NS.birthsData,
        space=cube,
    )
    print(f"Converted: {cube}")

    violations = validate_graph(cubespace_to_graph(cube))
    print(f"QB integrity check: {len(violations)} violation(s)")
    assert not violations

    result = compute_relationships(cube, Method.CUBE_MASKING, collect_partial_dimensions=True)
    print(f"\nRelationships: {result}")

    def short(uri):
        # .../populationData/obs/2 -> populationData#2
        parts = str(uri).rsplit("/", 3)
        return f"{parts[-3]}#{parts[-1]}"

    print("\nComplementary (joinable population + births):")
    for a, b in sorted(result.complementary):
        print(f"  {short(a)} ~ {short(b)}")
    print("\nFull containment (region rows aggregate into country rows):")
    for container, contained in sorted(result.full):
        print(f"  {short(container)} ⊒ {short(contained)}")


if __name__ == "__main__":
    main()
