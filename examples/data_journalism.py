"""The paper's motivating scenario (Section 1, Figures 1-3).

A data journalist collects three statistical datasets from different
sources — population (D1), unemployment+poverty (D2), unemployment by
city (D3) — and wants to know how their observations relate: which
aggregate which (containment), and which can be combined side-by-side
(complementarity).

Run with::

    python examples/data_journalism.py
"""

from repro import Method, compute_relationships
from repro.data.example import EXNS, build_example_space


def main() -> None:
    space = build_example_space()
    print(f"Combined space: {space}")
    print(f"Dimension bus: {[d.local_name() for d in space.dimensions]}\n")

    result = compute_relationships(space, Method.CUBE_MASKING, collect_partial_dimensions=True)

    # ------------------------------------------------------------------
    # Reproduce Figure 3: the containment/complementarity table.
    # ------------------------------------------------------------------
    def describe(uri):
        record = space.record_for(uri)
        cells = " / ".join(code.local_name() for code in record.codes)
        measures = ", ".join(sorted(m.local_name() for m in record.measures))
        return f"{uri.local_name():5} [{cells}] measuring {measures}"

    print("=== Full containment (roll-up candidates) ===")
    by_container: dict = {}
    for container, contained in sorted(result.full):
        by_container.setdefault(container, []).append(contained)
    for container, members in by_container.items():
        print(describe(container))
        for member in members:
            print(f"    contains: {describe(member)}")

    print("\n=== Complementarity (joinable side-by-side) ===")
    for a, b in sorted(result.complementary):
        print(describe(a))
        print(f"    complements: {describe(b)}")

    # ------------------------------------------------------------------
    # The journalist's question: can city-level unemployment be compared
    # with country-level poverty?  Partial containment tells which
    # dimensions must be rolled up first.
    # ------------------------------------------------------------------
    print("\n=== Partial containment o21 -> o31 (needs roll-up) ===")
    pair = (EXNS.o21, EXNS.o31)
    if pair in result.partial:
        dims = sorted(d.local_name() for d in result.partial_dimensions(*pair))
        degree = result.degree(*pair)
        print(f"o21 partially contains o31 on {dims} (degree {degree:.2f});")
        missing = sorted(
            d.local_name()
            for d in space.dimensions
            if d not in result.partial_dimensions(*pair)
        )
        print(f"rolling up on {missing} would make them comparable.")


if __name__ == "__main__":
    main()
