"""Dimension alignment across sources (the LIMES preprocessing step).

Two statistical offices publish the same geography under different URI
namespaces.  Before containment/complementarity can be computed, the
code lists must be aligned — here with the link-discovery module
configured like the paper's LIMES setup: match ``skos:Concept`` nodes
by the cosine similarity of their URI suffixes, taking the maximum with
the Levenshtein score.

Run with::

    python examples/federated_alignment.py
"""

from repro import (
    CubeSpace,
    Dataset,
    DatasetSchema,
    Hierarchy,
    Method,
    Namespace,
    Observation,
    compute_relationships,
    cubespace_to_graph,
)
from repro.align import LinkSpec, MetricExpression, discover_links
from repro.rdf.namespaces import SKOS

EUROSTAT = Namespace("http://eurostat.example/code/")
WORLDBANK = Namespace("http://worldbank.example/indicator/")
NS = Namespace("http://journalist.example/")


def eurostat_cube() -> CubeSpace:
    geo = Hierarchy(EUROSTAT.EU)
    geo.add(EUROSTAT.EL, EUROSTAT.EU)       # Eurostat codes Greece as EL
    geo.add(EUROSTAT["EL-ATH"], EUROSTAT.EL)
    space = CubeSpace()
    space.add_hierarchy(NS.refArea, geo)
    schema = DatasetSchema(dimensions=(NS.refArea,), measures=(NS.unemployment,))
    ds = Dataset(NS.eurostatData, schema)
    ds.add(Observation(NS.eu1, NS.eurostatData, {NS.refArea: EUROSTAT.EL}, {NS.unemployment: 24.9}))
    ds.add(Observation(NS.eu2, NS.eurostatData, {NS.refArea: EUROSTAT["EL-ATH"]}, {NS.unemployment: 26.3}))
    space.add_dataset(ds)
    return space


def worldbank_cube() -> CubeSpace:
    geo = Hierarchy(WORLDBANK.EU)
    geo.add(WORLDBANK.EL, WORLDBANK.EU)
    geo.add(WORLDBANK["EL-ATH"], WORLDBANK.EL)
    space = CubeSpace()
    space.add_hierarchy(NS.wbArea, geo)
    schema = DatasetSchema(dimensions=(NS.wbArea,), measures=(NS.population,))
    ds = Dataset(NS.worldbankData, schema)
    ds.add(Observation(NS.wb1, NS.worldbankData, {NS.wbArea: WORLDBANK.EL}, {NS.population: 10858018}))
    ds.add(Observation(NS.wb2, NS.worldbankData, {NS.wbArea: WORLDBANK["EL-ATH"]}, {NS.population: 664046}))
    space.add_dataset(ds)
    return space


def main() -> None:
    source = eurostat_cube()
    target = worldbank_cube()

    # ------------------------------------------------------------------
    # Step 1: discover code correspondences (LIMES-style).
    # ------------------------------------------------------------------
    spec = LinkSpec(
        expression=MetricExpression.max(
            MetricExpression.metric("cosine"),
            MetricExpression.metric("levenshtein"),
        ),
        acceptance=0.95,
        review=0.7,
        source_type=SKOS.Concept,
        target_type=SKOS.Concept,
    )
    accepted, to_review = discover_links(
        cubespace_to_graph(source), cubespace_to_graph(target), spec
    )
    print("Accepted links:")
    mapping = {}
    for link in accepted:
        print(f"  {link.source} == {link.target}  (score {link.score:.2f})")
        mapping[link.target] = link.source
    if to_review:
        print(f"({len(to_review)} links left for manual review)")

    # ------------------------------------------------------------------
    # Step 2: rewrite the target cube onto the source's vocabulary
    # (both the shared code list AND the shared dimension property).
    # ------------------------------------------------------------------
    reconciled = CubeSpace()
    reconciled.add_hierarchy(NS.refArea, source.hierarchies[NS.refArea])
    for dataset in source.datasets.values():
        reconciled.add_dataset(dataset)
    wb_schema = DatasetSchema(dimensions=(NS.refArea,), measures=(NS.population,))
    rewritten = Dataset(NS.worldbankAligned, wb_schema)
    for obs in target.observations():
        code = mapping[obs.value(NS.wbArea)]
        rewritten.add(
            Observation(obs.uri, NS.worldbankAligned, {NS.refArea: code}, obs.measures)
        )
    reconciled.add_dataset(rewritten)

    # ------------------------------------------------------------------
    # Step 3: compute relationships on the reconciled dimension bus.
    # ------------------------------------------------------------------
    result = compute_relationships(reconciled, Method.CUBE_MASKING)
    print(f"\nAfter alignment: {result}")
    for a, b in sorted(result.complementary):
        print(f"  {a.local_name()} complements {b.local_name()} "
              "(unemployment + population for the same area)")


if __name__ == "__main__":
    main()
