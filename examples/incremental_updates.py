"""Incremental relationship maintenance (the paper's future-work item).

A live statistics portal receives new observations continuously.
Instead of recomputing all pair-wise relationships (O(n²)), the
``update_relationships`` API checks only pairs that involve a new
observation (O(n·m) for m arrivals).

Run with::

    python examples/incremental_updates.py
"""

import time

from repro import Method, ObservationSpace, compute_relationships, update_relationships
from repro.data.realworld import build_realworld_cubespace


def main() -> None:
    cube = build_realworld_cubespace(scale=0.004, seed=5)
    full_space = ObservationSpace.from_cubespace(cube)
    n = len(full_space)
    batch_size = 25
    initial = n - batch_size

    # Initial batch: full computation.
    space = full_space.select(range(initial))
    started = time.perf_counter()
    result = compute_relationships(space, Method.BASELINE)
    initial_time = time.perf_counter() - started
    print(f"Initial corpus of {initial} observations: {result}")
    print(f"  full recompute took {initial_time:.2f}s")

    # m new observations arrive.
    arrivals = [
        (record.uri, record.dataset, dict(zip(full_space.dimensions, record.codes)), record.measures)
        for record in full_space.observations[initial:]
    ]
    started = time.perf_counter()
    update_relationships(space, result, arrivals)
    incremental_time = time.perf_counter() - started
    print(f"\nAfter {batch_size} arrivals (incremental): {result}")
    print(f"  incremental update took {incremental_time:.2f}s")

    # Sanity: identical to recomputing from scratch.
    started = time.perf_counter()
    recomputed = compute_relationships(full_space, Method.BASELINE)
    recompute_time = time.perf_counter() - started
    assert result == recomputed
    print(f"  full recompute would have taken {recompute_time:.2f}s — results identical ✓")
    if incremental_time > 0:
        print(f"  speed-up: {recompute_time / incremental_time:.1f}x")


if __name__ == "__main__":
    main()
