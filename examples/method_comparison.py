"""Compare all five computation methods on one corpus (Section 4 in miniature).

Sweeps a small range of input sizes and reports execution time and
recall per method — the shape of Figure 5(a-c) at laptop scale: the
SPARQL and rule comparators fall off a cliff, the baseline grows
quadratically, clustering trades recall for time, cubeMasking wins.

Run with::

    python examples/method_comparison.py
"""

import time

from repro import Method, ObservationSpace, compute_relationships
from repro.data.realworld import build_realworld_cubespace

SIZES = (50, 100, 200, 400)
# The traditional comparators only get the small sizes (they time out
# beyond that, exactly as in the paper).
COMPARATOR_LIMIT = 100
RULES_LIMIT = 50


def main() -> None:
    cube = build_realworld_cubespace(scale=0.002, seed=3)
    space = ObservationSpace.from_cubespace(cube)
    print(f"Corpus: {space}\n")
    header = f"{'n':>5} {'method':<14} {'time (s)':>9} {'full':>6} {'compl':>6} {'recall':>7}"
    print(header)
    print("-" * len(header))

    for n in SIZES:
        subset = space.subset(n)
        truth = None
        for method in (Method.BASELINE, Method.CUBE_MASKING, Method.CLUSTERING,
                       Method.SPARQL, Method.RULES):
            if method is Method.SPARQL and n > COMPARATOR_LIMIT:
                print(f"{n:>5} {method.value:<14} {'(skipped: too slow)':>9}")
                continue
            if method is Method.RULES and n > RULES_LIMIT:
                print(f"{n:>5} {method.value:<14} {'(skipped: too slow)':>9}")
                continue
            options = {"collect_partial": False}
            if method is Method.CLUSTERING:
                options["seed"] = 0
            started = time.perf_counter()
            result = compute_relationships(subset, method, **options)
            elapsed = time.perf_counter() - started
            if method is Method.BASELINE:
                truth = result
            recall = result.recall_against(truth).full if truth else 1.0
            print(
                f"{n:>5} {method.value:<14} {elapsed:>9.3f} {len(result.full):>6} "
                f"{len(result.complementary):>6} {recall:>7.2f}"
            )
        print()


if __name__ == "__main__":
    main()
