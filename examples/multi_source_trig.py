"""Multi-source cubes with named graphs (TriG + SPARQL GRAPH).

Each statistical office publishes its cube in its own named graph;
shared code lists live in the default graph.  The example loads the
whole TriG dataset, computes cross-source relationships, queries
provenance with SPARQL ``GRAPH`` patterns and ranks source relatedness.

Run with::

    python examples/multi_source_trig.py
"""

from repro import Method, ObservationSpace, compute_relationships
from repro.core.recommend import dataset_relatedness
from repro.qb.loader import load_cubespace_dataset
from repro.rdf import parse_trig
from repro.sparql import query
from repro.sparql.ast import Var

TRIG = """
@prefix qb: <http://purl.org/linked-data/cube#> .
@prefix skos: <http://www.w3.org/2004/02/skos/core#> .
@prefix ex: <http://example.org/> .

# ---- shared code lists + provenance notes (default graph) -----------
ex:geoScheme a skos:ConceptScheme ; skos:hasTopConcept ex:World .
ex:World a skos:Concept ; skos:inScheme ex:geoScheme .
ex:Greece a skos:Concept ; skos:inScheme ex:geoScheme ; skos:broader ex:World .
ex:Athens a skos:Concept ; skos:inScheme ex:geoScheme ; skos:broader ex:Greece .

ex:eurostatGraph ex:publishedBy ex:Eurostat .
ex:worldbankGraph ex:publishedBy ex:WorldBank .

# ---- Eurostat's unemployment cube ------------------------------------
GRAPH ex:eurostatGraph {
    ex:unempData a qb:DataSet ; qb:structure ex:unempDsd .
    ex:unempDsd a qb:DataStructureDefinition ;
        qb:component [ qb:dimension ex:geo ; qb:codeList ex:geoScheme ] ,
                     [ qb:measure ex:unemployment ] .
    ex:u1 a qb:Observation ; qb:dataSet ex:unempData ; ex:geo ex:Greece ; ex:unemployment 24.9 .
    ex:u2 a qb:Observation ; qb:dataSet ex:unempData ; ex:geo ex:Athens ; ex:unemployment 26.3 .
}

# ---- World Bank's population cube -------------------------------------
GRAPH ex:worldbankGraph {
    ex:popData a qb:DataSet ; qb:structure ex:popDsd .
    ex:popDsd a qb:DataStructureDefinition ;
        qb:component [ qb:dimension ex:geo ; qb:codeList ex:geoScheme ] ,
                     [ qb:measure ex:population ] .
    ex:p1 a qb:Observation ; qb:dataSet ex:popData ; ex:geo ex:Greece ; ex:population 10858018 .
    ex:p2 a qb:Observation ; qb:dataSet ex:popData ; ex:geo ex:Athens ; ex:population 664046 .
}
"""


def main() -> None:
    dataset = parse_trig(TRIG)
    print(f"Loaded TriG: {dataset}")

    # ------------------------------------------------------------------
    # Provenance query: which publisher provided which observation?
    # ------------------------------------------------------------------
    rows = query(
        dataset,
        """
        PREFIX qb: <http://purl.org/linked-data/cube#>
        PREFIX ex: <http://example.org/>
        SELECT ?publisher ?obs
        WHERE { ?g ex:publishedBy ?publisher . GRAPH ?g { ?obs a qb:Observation } }
        ORDER BY ?obs
        """,
    )
    print("\nProvenance (via SPARQL GRAPH):")
    for row in rows:
        print(f"  {row[Var('obs')].local_name():4} from {row[Var('publisher')].local_name()}")

    # ------------------------------------------------------------------
    # Cross-source relationships on the merged cube space.
    # ------------------------------------------------------------------
    cube = load_cubespace_dataset(dataset)
    print(f"\nMerged cube space: {cube}")
    space = ObservationSpace.from_cubespace(cube)
    result = compute_relationships(space, Method.CUBE_MASKING)
    print(f"Relationships: {result}")
    for a, b in sorted(result.complementary):
        print(f"  {a.local_name()} ~ {b.local_name()}  (different facts, same context)")

    scores = dataset_relatedness(space, result)
    print("\nSource relatedness:")
    for (a, b), score in sorted(scores.items()):
        print(f"  {a.local_name()} ~ {b.local_name()}: {score:.2f}")


if __name__ == "__main__":
    main()
