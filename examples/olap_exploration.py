"""OLAP-style exploration over materialised relationships.

Once containment and complementarity are materialised, an exploration
UI can offer roll-up / drill-down steps across *remote* cubes, suggest
related observations, and rank how related two data sources are —
everything the paper's introduction promises.  This example drives the
:class:`~repro.core.olap.CubeNavigator` and the recommendation API over
the running example plus the emulated corpus.

Run with::

    python examples/olap_exploration.py
"""

from repro import Method, ObservationSpace, compute_relationships
from repro.core.olap import CubeNavigator
from repro.core.recommend import dataset_relatedness, recommend_observations
from repro.data.example import EXNS, build_example_cubespace
from repro.data.realworld import build_realworld_cubespace


def explore_example() -> None:
    cube = build_example_cubespace()
    relationships = compute_relationships(cube, Method.BASELINE, collect_partial_dimensions=True)
    navigator = CubeNavigator.from_cubespace(cube, relationships)

    print("== Drill-down from o21 (Greece, 2011, unemployment+poverty) ==")
    for member in navigator.drill_down(EXNS.o21):
        print(f"   -> {member.local_name()}")
    print("Aggregated unemployment of the contained city observations:",
          navigator.aggregate(EXNS.o21, EXNS.unemployment, "avg"))

    print("\n== Roll-up from o32 (Athens, Jan 2011) ==")
    for container in navigator.roll_up(EXNS.o32):
        print(f"   -> {container.local_name()}")

    print("\n== Side-by-side facts for o11 (Athens population, 2001) ==")
    for complement in navigator.complements(EXNS.o11):
        print(f"   -> {complement.local_name()}")

    print("\n== Browsing recommendations for o21 ==")
    for suggestion in recommend_observations(EXNS.o21, relationships, limit=5):
        print(f"   {suggestion.observation.local_name():6} {suggestion.kind:<24} score {suggestion.score:.2f}")


def rank_sources() -> None:
    cube = build_realworld_cubespace(scale=0.002, seed=9)
    space = ObservationSpace.from_cubespace(cube)
    relationships = compute_relationships(space, Method.CUBE_MASKING)
    scores = dataset_relatedness(space, relationships)
    print("\n== Source relatedness (emulated 7-dataset corpus) ==")
    ranked = sorted(scores.items(), key=lambda item: -item[1])
    for (a, b), score in ranked[:8]:
        print(f"   {a.local_name():3} ~ {b.local_name():3}  {score:.4f}")


def main() -> None:
    explore_example()
    rank_sources()


if __name__ == "__main__":
    main()
