"""Quickstart: load an RDF Data Cube from Turtle and compute relationships.

Run with::

    python examples/quickstart.py
"""

from repro import Method, compute_relationships, load_cubespace, parse_turtle, relationships_to_graph, serialize_turtle

TURTLE = """
@prefix qb: <http://purl.org/linked-data/cube#> .
@prefix skos: <http://www.w3.org/2004/02/skos/core#> .
@prefix ex: <http://example.org/> .

# --- code list: a two-level geography ---------------------------------
ex:geoScheme a skos:ConceptScheme ; skos:hasTopConcept ex:World .
ex:World a skos:Concept ; skos:inScheme ex:geoScheme .
ex:Greece a skos:Concept ; skos:inScheme ex:geoScheme ; skos:broader ex:World .
ex:Athens a skos:Concept ; skos:inScheme ex:geoScheme ; skos:broader ex:Greece .

ex:timeScheme a skos:ConceptScheme ; skos:hasTopConcept ex:Always .
ex:Always a skos:Concept ; skos:inScheme ex:timeScheme .
ex:Y2015 a skos:Concept ; skos:inScheme ex:timeScheme ; skos:broader ex:Always .

# --- two datasets over shared dimensions ------------------------------
ex:popDataset a qb:DataSet ; qb:structure ex:popStructure .
ex:popStructure a qb:DataStructureDefinition ;
    qb:component [ qb:dimension ex:geo ; qb:codeList ex:geoScheme ] ,
                 [ qb:dimension ex:period ; qb:codeList ex:timeScheme ] ,
                 [ qb:measure ex:population ] .

ex:unempDataset a qb:DataSet ; qb:structure ex:unempStructure .
ex:unempStructure a qb:DataStructureDefinition ;
    qb:component [ qb:dimension ex:geo ; qb:codeList ex:geoScheme ] ,
                 [ qb:dimension ex:period ; qb:codeList ex:timeScheme ] ,
                 [ qb:measure ex:unemployment ] .

# --- observations ------------------------------------------------------
ex:pop1 a qb:Observation ; qb:dataSet ex:popDataset ;
    ex:geo ex:Greece ; ex:period ex:Y2015 ; ex:population 10858018 .
ex:pop2 a qb:Observation ; qb:dataSet ex:popDataset ;
    ex:geo ex:Athens ; ex:period ex:Y2015 ; ex:population 664046 .
ex:unemp1 a qb:Observation ; qb:dataSet ex:unempDataset ;
    ex:geo ex:Greece ; ex:period ex:Y2015 ; ex:unemployment 24.9 .
ex:unemp2 a qb:Observation ; qb:dataSet ex:unempDataset ;
    ex:geo ex:Athens ; ex:period ex:Y2015 ; ex:unemployment 26.3 .
"""


def main() -> None:
    graph = parse_turtle(TURTLE)
    cube = load_cubespace(graph)
    print(f"Loaded: {cube}")

    result = compute_relationships(cube, method=Method.CUBE_MASKING)
    print(f"Computed: {result}\n")

    print("Full containment (container -> contained):")
    for container, contained in sorted(result.full):
        print(f"  {container.local_name():8} ⊒ {contained.local_name()}")

    print("\nComplementarity (same context, different facts):")
    for a, b in sorted(result.complementary):
        print(f"  {a.local_name():8} ~ {b.local_name()}")

    print("\nMaterialised relationship triples:")
    print(serialize_turtle(relationships_to_graph(result, annotate_partial_dimensions=False)))


if __name__ == "__main__":
    main()
