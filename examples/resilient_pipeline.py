"""Kill-and-resume materialisation (docs/resilience.md in action).

A nightly job materialises containment links with a checkpoint
journal.  Half-way through, the process dies — here simulated with a
deterministic :class:`FaultPlan` that raises a real
``KeyboardInterrupt`` after two durable work units, the same
flush-then-exit path a genuine Ctrl-C (or SIGTERM handler) takes.
The rerun with ``resume=True`` finishes only the missing units and
produces a result identical to a never-interrupted run.

Run with::

    python examples/resilient_pipeline.py
"""

import json
import tempfile
from pathlib import Path

from repro import FaultPlan, Method, ObservationSpace, compute_relationships, run_materialization
from repro.data.realworld import build_realworld_cubespace


def main() -> None:
    cube = build_realworld_cubespace(scale=0.002, seed=11)
    space = ObservationSpace.from_cubespace(cube)
    print(f"Corpus: {len(space)} observations, {len(space.dimensions)} dimensions")

    with tempfile.TemporaryDirectory() as tmp:
        checkpoint = Path(tmp) / "nightly.jsonl"

        # --- Night 1: the job is killed mid-flight. -------------------
        crash = FaultPlan(interrupt_after=2)  # simulated Ctrl-C
        try:
            run_materialization(
                space,
                Method.CUBE_MASKING,
                checkpoint=checkpoint,
                unit_size=512,
                fault_plan=crash,
            )
        except KeyboardInterrupt:
            units_done = sum(
                1 for line in checkpoint.read_text().splitlines()
                if json.loads(line)["type"] == "unit"
            )
            header = json.loads(checkpoint.read_text().splitlines()[0])
            print(
                f"Interrupted after {units_done}/{header['units']} units "
                f"— journal flushed to {checkpoint.name}"
            )

        # --- Night 2: resume finishes the remaining units. ------------
        resumed = run_materialization(
            space,
            Method.CUBE_MASKING,
            checkpoint=checkpoint,
            unit_size=512,
            resume=True,
        )
        print(f"Resumed run:       {resumed}")

        # --- Sanity: identical to a run that never crashed. -----------
        uninterrupted = compute_relationships(space, Method.CUBE_MASKING)
        assert resumed == uninterrupted
        assert resumed.degrees == uninterrupted.degrees
        assert resumed.partial_map == uninterrupted.partial_map
        print(f"Uninterrupted run: {uninterrupted}")
        print("resumed ≡ uninterrupted — results identical ✓")


if __name__ == "__main__":
    main()
