"""Materialise once, serve interactively (docs/service.md in action).

The batch pipeline computes the containment/complementarity sets; the
serving layer then answers exploration queries — "what contains this
observation?", "what are its top-k related observations?" — from an
adjacency index in microseconds, with an LRU cache in front and live
inserts routed through the lattice-pruned incremental recomputation.

The example starts the real HTTP server on an ephemeral port on a
background thread and talks to it with plain ``urllib``, exactly like
an external client (or ``curl``) would.

Run with::

    python examples/serve_relationships.py
"""

import json
import urllib.request
from urllib.parse import quote

from repro import ObservationSpace, compute_relationships
from repro.data.realworld import build_realworld_cubespace
from repro.service import QueryEngine, start_server


def get(base: str, path: str) -> dict:
    with urllib.request.urlopen(base + path) as response:
        return json.load(response)


def main() -> None:
    # --- Offline: materialise the relationship sets. ------------------
    cube = build_realworld_cubespace(scale=0.002, seed=11)
    space = ObservationSpace.from_cubespace(cube)
    result = compute_relationships(space, "cube_masking")
    print(f"Materialised {result} over {len(space)} observations")

    # --- Online: index, cache, HTTP. ----------------------------------
    engine = QueryEngine(result, space, cache_size=512)
    server = start_server(engine)  # ephemeral port, background thread
    host, port = server.server_address
    base = f"http://{host}:{port}"
    print(f"Serving on {base}")

    print("health:", get(base, "/healthz"))

    # Pick an observation with containers and explore around it.
    probe = next(
        (uri for uri in engine.find() if engine.containers(uri)),
        space.observations[0].uri,
    )
    encoded = quote(str(probe), safe="")
    print(f"\nexploring {probe}")
    print("  containers:", get(base, f"/observations/{encoded}/containers")["containers"][:3])
    for entry in get(base, f"/observations/{encoded}/related?k=3")["related"]:
        print(f"  related: {entry['uri']}  score={entry['score']:.2f}  ({entry['relation']})")

    # Live insert: a twin of the probe observation joins the corpus.
    record = next(r for r in space.observations if r.uri == probe)
    payload = {
        "observations": [
            {
                "uri": "http://example.org/live/obs-1",
                "dataset": str(record.dataset),
                "dimensions": {
                    str(d): str(c) for d, c in zip(space.dimensions, record.codes)
                },
                "measures": [str(m) for m in record.measures],
            }
        ]
    }
    request = urllib.request.Request(
        base + "/observations",
        data=json.dumps(payload).encode(),
        method="POST",
        headers={"Content-Type": "application/json"},
    )
    with urllib.request.urlopen(request) as response:
        print("\ninsert:", json.load(response))
    complements = get(base, "/observations/http%3A%2F%2Fexample.org%2Flive%2Fobs-1/complements")
    print("new observation complements:", complements["complements"])

    stats = get(base, "/stats")
    print(
        f"\ncache: {stats['cache']['hits']} hits / {stats['cache']['misses']} misses, "
        f"generation {stats['generation']}"
    )
    server.shutdown()
    print("done")


if __name__ == "__main__":
    main()
