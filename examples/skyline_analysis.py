"""Skylines from materialised containment (Section 1 application).

The paper notes that once containment relationships are materialised,
skyline points — observations not dominated by any other — come for
free.  This example computes the skyline of an emulated statistical
corpus twice (directly, and from the relationship set) and shows the
k-dominant relaxation.

Run with::

    python examples/skyline_analysis.py
"""

from repro import Method, ObservationSpace, compute_relationships
from repro.core.skyline import k_dominant_skyline, skyline, skyline_from_relationships
from repro.data.realworld import build_realworld_cubespace


def main() -> None:
    cube = build_realworld_cubespace(scale=0.001, seed=11, aggregate_share=0.5)
    space = ObservationSpace.from_cubespace(cube)
    print(f"Corpus: {space}")

    direct = set(skyline(space))
    print(f"\nSkyline points (not dominated by any observation): {len(direct)} / {len(space)}")

    relationships = compute_relationships(space, Method.CUBE_MASKING, collect_partial=False)
    derived = set(skyline_from_relationships(space, relationships))
    assert direct == derived
    print("Derived from materialised full-containment links: identical ✓")

    total_dims = len(space.dimensions)
    for k in range(total_dims, max(total_dims - 3, 0), -1):
        k_sky = k_dominant_skyline(space, k=k)
        print(f"k-dominant skyline (k={k}): {len(k_sky)} points")

    print("\nSample skyline observations (top-level aggregates):")
    for uri in sorted(direct)[:5]:
        record = space.record_for(uri)
        cells = " / ".join(code.local_name() for code in record.codes)
        print(f"  {uri.local_name():10} [{cells}]")


if __name__ == "__main__":
    main()
