"""OLAP over SPARQL: aggregate a cube with GROUP BY and cross-check.

The related work the paper builds on (Kämpgen & Harth) runs OLAP
operations through SPARQL aggregate queries over QB triples.  This
example does a roll-up twice — once with a SPARQL ``GROUP BY`` over the
RDF export, once with the containment-based
:class:`~repro.core.olap.CubeNavigator` — and shows both agree.  It
also uses ``CONSTRUCT`` to materialise the derived aggregate as new
observations.

Run with::

    python examples/sparql_olap.py
"""

from repro import Method, compute_relationships, cubespace_to_graph, serialize_turtle
from repro.core.olap import CubeNavigator
from repro.data.example import EXNS, build_example_cubespace
from repro.sparql import query
from repro.sparql.ast import Var


def main() -> None:
    cube = build_example_cubespace()
    graph = cubespace_to_graph(cube)

    # ------------------------------------------------------------------
    # Roll-up via SPARQL: average unemployment per refArea parent.
    # ------------------------------------------------------------------
    # The roll-up below (Greece, 2011): strictly-contained observations
    # on refArea, periods within 2011 — the same pairs the containment
    # relationship identifies.
    rows = query(
        graph,
        f"""
        PREFIX skos: <http://www.w3.org/2004/02/skos/core#>
        SELECT ?country (AVG(?rate) AS ?avgRate) (COUNT(?obs) AS ?cities)
        WHERE {{
          ?obs <{EXNS.unemployment}> ?rate ;
               <{EXNS.refArea}> ?city ;
               <{EXNS.refPeriod}> ?period .
          ?city skos:broader ?country .
          ?period skos:broader* <{EXNS.Y2011}> .
        }}
        GROUP BY ?country
        """,
    )
    print("Average 2011 unemployment per parent area (SPARQL GROUP BY):")
    sparql_avgs = {}
    for row in sorted(rows, key=lambda r: str(r[Var("country")])):
        country = row[Var("country")]
        avg = row[Var("avgRate")].to_python()
        count = row[Var("cities")].to_python()
        sparql_avgs[country] = avg
        print(f"  {country.local_name():8} avg={avg:6.2f}  over {count} observation(s)")

    # ------------------------------------------------------------------
    # The same roll-up via containment links.
    # ------------------------------------------------------------------
    relationships = compute_relationships(cube, Method.BASELINE)
    navigator = CubeNavigator.from_cubespace(cube, relationships)
    greece_avg = navigator.aggregate(EXNS.o21, EXNS.unemployment, "avg")
    print(f"\nContainment-based roll-up below o21 (Greece 2011): avg={greece_avg:.2f}")
    assert greece_avg == sparql_avgs[EXNS.Greece], "the two roll-up paths must agree"
    print("SPARQL GROUP BY and containment aggregation agree ✓")

    # ------------------------------------------------------------------
    # Materialise the aggregates as new RDF with CONSTRUCT.
    # ------------------------------------------------------------------
    derived = query(
        graph,
        f"""
        PREFIX skos: <http://www.w3.org/2004/02/skos/core#>
        CONSTRUCT {{ ?country <{EXNS.hasCityMeasurement}> ?obs }}
        WHERE {{
          ?obs <{EXNS.unemployment}> ?rate ; <{EXNS.refArea}> ?city .
          ?city skos:broader ?country .
        }}
        """,
    )
    print("\nMaterialised derived triples:")
    print(serialize_turtle(derived))


if __name__ == "__main__":
    main()
