"""Legacy setup shim.

The offline build environment lacks the ``wheel`` package, which modern
PEP 660 editable installs require; this shim lets ``pip install -e .``
fall back to ``setup.py develop``.
"""

from setuptools import find_packages, setup

setup(
    name="repro",
    version="1.0.0",
    package_dir={"": "src"},
    packages=find_packages(where="src"),
    python_requires=">=3.10",
    install_requires=["numpy>=1.23"],
)
