"""repro — containment and complementarity in RDF data cubes.

A from-scratch reproduction of *"Efficient Computation of Containment
and Complementarity in RDF Data Cubes"* (Meimaris, Papastefanatos,
Vassiliadis, Anagnostopoulos — EDBT 2016), including every substrate
the paper depends on: an RDF triple store with Turtle/N-Triples
support, a SPARQL subset engine, a forward-chaining rule engine, the
QB cube model, a LIMES-style alignment step and dataset generators.

Quickstart::

    from repro import compute_relationships, Method
    from repro.data import build_realworld_cubespace

    cube = build_realworld_cubespace(scale=0.01, seed=7)
    result = compute_relationships(cube, method=Method.CUBE_MASKING)
    print(result)          # RelationshipSet(full=..., partial=..., complementary=...)
"""

from repro.core import (
    CubeLattice,
    CubeNavigator,
    Fault,
    FaultPlan,
    MaterializationRunner,
    Method,
    ObservationSpace,
    OccurrenceMatrix,
    Recall,
    RelationshipDelta,
    RelationshipSet,
    compute_baseline,
    compute_baseline_streaming,
    compute_clustering,
    compute_cubemask,
    compute_hybrid,
    compute_relationships,
    compute_rules,
    compute_sparql,
    dataset_relatedness,
    k_dominant_skyline,
    recommend_observations,
    remove_observations,
    rollup_dataset,
    run_materialization,
    skyline,
    skyline_from_relationships,
    update_relationships,
)
from repro.errors import (
    CheckpointError,
    ComputationError,
    ReproError,
    ServiceError,
    UnitTimeoutError,
    UnknownObservationError,
    WorkerCrashError,
)
from repro.qb import (
    CubeSpace,
    Dataset,
    DatasetSchema,
    Hierarchy,
    Observation,
    cubespace_to_graph,
    is_well_formed,
    load_cubespace,
    relationships_to_graph,
    validate_graph,
)
from repro.rdf import (
    Graph,
    Literal,
    Namespace,
    RDFDataset,
    URIRef,
    parse_trig,
    parse_turtle,
    serialize_trig,
    serialize_turtle,
)
from repro.service import QueryEngine, RelationshipIndex, start_server
from repro.storage import SegmentStore, load_segments, save_segments
from repro.store import load_relationships, save_relationships

from repro._version import __version__

__all__ = [
    "__version__",
    # facade
    "Method",
    "compute_relationships",
    "update_relationships",
    "remove_observations",
    "compute_baseline",
    "compute_baseline_streaming",
    "compute_clustering",
    "compute_cubemask",
    "compute_hybrid",
    "compute_sparql",
    "compute_rules",
    # core types
    "ObservationSpace",
    "OccurrenceMatrix",
    "CubeLattice",
    "RelationshipSet",
    "RelationshipDelta",
    "Recall",
    # applications
    "skyline",
    "k_dominant_skyline",
    "skyline_from_relationships",
    "CubeNavigator",
    "rollup_dataset",
    "recommend_observations",
    "dataset_relatedness",
    # cube model
    "CubeSpace",
    "Dataset",
    "DatasetSchema",
    "Observation",
    "Hierarchy",
    "load_cubespace",
    "cubespace_to_graph",
    "relationships_to_graph",
    "validate_graph",
    "is_well_formed",
    # RDF substrate
    "Graph",
    "RDFDataset",
    "URIRef",
    "Literal",
    "Namespace",
    "parse_turtle",
    "serialize_turtle",
    "parse_trig",
    "serialize_trig",
    # persistence
    "save_relationships",
    "load_relationships",
    "SegmentStore",
    "save_segments",
    "load_segments",
    # serving
    "RelationshipIndex",
    "QueryEngine",
    "start_server",
    # resilience
    "MaterializationRunner",
    "run_materialization",
    "FaultPlan",
    "Fault",
    # errors
    "ReproError",
    "ComputationError",
    "WorkerCrashError",
    "UnitTimeoutError",
    "CheckpointError",
    "ServiceError",
    "UnknownObservationError",
]
