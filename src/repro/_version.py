"""The single source of the package version.

Kept import-free so low-level modules (e.g. the observability
registry's ``repro_build_info`` gauge) can read it without pulling in
the :mod:`repro` facade — which imports half the package and would
turn the version lookup into a circular import.
"""

__version__ = "1.0.0"
