"""Dimension alignment (the LIMES preprocessing step of Section 4).

Before relationship computation, dimension values from different
sources must be reconciled onto shared code lists.  The paper uses the
LIMES link-discovery framework configured to match SKOS concepts by the
cosine similarity of their URI suffixes; this subpackage reproduces
that workflow:

* :mod:`repro.align.similarity` — string distance/similarity metrics
  (Levenshtein, cosine over token or character n-grams, Jaccard,
  trigram),
* :mod:`repro.align.limes` — link specifications with metric
  expressions (MAX/MIN/AVG combinators), SPARQL-style restrictions and
  acceptance/review thresholds.
"""

from repro.align.limes import Link, LinkSpec, MetricExpression, discover_links
from repro.align.reconcile import align_cubespaces, default_link_spec
from repro.align.similarity import (
    cosine_similarity,
    jaccard_similarity,
    levenshtein_distance,
    levenshtein_similarity,
    trigram_similarity,
)

__all__ = [
    "LinkSpec",
    "MetricExpression",
    "Link",
    "discover_links",
    "align_cubespaces",
    "default_link_spec",
    "levenshtein_distance",
    "levenshtein_similarity",
    "cosine_similarity",
    "jaccard_similarity",
    "trigram_similarity",
]
