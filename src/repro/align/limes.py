"""LIMES-style link discovery between two RDF graphs.

A :class:`LinkSpec` describes how to match resources of a *source* and
*target* graph: optional type restrictions (the paper restricts to
``skos:Concept``), a metric expression over the resources' URI local
names or property values, and two thresholds — links scoring at or
above ``acceptance`` are accepted, links in ``[review, acceptance)``
are returned for manual review, as in LIMES.

Metric expressions compose atomic metrics with MAX/MIN/AVG, e.g. the
paper's "maximum of the cosine and levenshtein distances"::

    MetricExpression.max(
        MetricExpression.metric("cosine"),
        MetricExpression.metric("levenshtein"),
    )
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Sequence

from repro.errors import AlignmentError
from repro.align.similarity import (
    cosine_similarity,
    jaccard_similarity,
    levenshtein_similarity,
    trigram_similarity,
)
from repro.rdf.graph import Graph
from repro.rdf.namespaces import RDF
from repro.rdf.terms import Literal, Term, URIRef

__all__ = ["MetricExpression", "LinkSpec", "Link", "discover_links"]

_METRICS: dict[str, Callable[[str, str], float]] = {
    "cosine": cosine_similarity,
    "levenshtein": levenshtein_similarity,
    "jaccard": jaccard_similarity,
    "trigrams": trigram_similarity,
    "exact": lambda a, b: 1.0 if a == b else 0.0,
}


@dataclass(frozen=True)
class MetricExpression:
    """A similarity expression tree: a named metric or a combinator."""

    operator: str  # 'metric', 'max', 'min', 'avg'
    name: str | None = None
    children: tuple["MetricExpression", ...] = ()
    property_uri: URIRef | None = None

    @classmethod
    def metric(cls, name: str, property_uri: URIRef | None = None) -> "MetricExpression":
        """An atomic metric; compares URI local names unless
        ``property_uri`` selects a literal property to compare."""
        if name not in _METRICS:
            raise AlignmentError(f"unknown metric {name!r}; known: {sorted(_METRICS)}")
        return cls("metric", name=name, property_uri=property_uri)

    @classmethod
    def max(cls, *children: "MetricExpression") -> "MetricExpression":
        return cls("max", children=tuple(children))

    @classmethod
    def min(cls, *children: "MetricExpression") -> "MetricExpression":
        return cls("min", children=tuple(children))

    @classmethod
    def avg(cls, *children: "MetricExpression") -> "MetricExpression":
        return cls("avg", children=tuple(children))

    def evaluate(
        self, source: URIRef, target: URIRef, source_graph: Graph, target_graph: Graph
    ) -> float:
        if self.operator == "metric":
            assert self.name is not None
            text_a = _comparison_text(source, source_graph, self.property_uri)
            text_b = _comparison_text(target, target_graph, self.property_uri)
            return _METRICS[self.name](text_a, text_b)
        scores = [
            child.evaluate(source, target, source_graph, target_graph)
            for child in self.children
        ]
        if not scores:
            raise AlignmentError(f"combinator {self.operator!r} has no children")
        if self.operator == "max":
            return max(scores)
        if self.operator == "min":
            return min(scores)
        if self.operator == "avg":
            return sum(scores) / len(scores)
        raise AlignmentError(f"unknown operator {self.operator!r}")


def _comparison_text(resource: URIRef, graph: Graph, property_uri: URIRef | None) -> str:
    if property_uri is None:
        return resource.local_name()
    for value in graph.objects(resource, property_uri):
        if isinstance(value, Literal):
            return value.lexical
        return URIRef(str(value)).local_name()
    return ""


@dataclass(frozen=True)
class Link:
    """A discovered correspondence with its similarity score."""

    source: URIRef
    target: URIRef
    score: float


@dataclass
class LinkSpec:
    """Configuration of one link-discovery run."""

    expression: MetricExpression
    acceptance: float = 0.95
    review: float = 0.8
    source_type: URIRef | None = None
    target_type: URIRef | None = None
    blocking_key_length: int = 1

    def __post_init__(self) -> None:
        if not 0.0 <= self.review <= self.acceptance <= 1.0:
            raise AlignmentError("thresholds need 0 <= review <= acceptance <= 1")


def _candidates(graph: Graph, rdf_type: URIRef | None) -> list[URIRef]:
    if rdf_type is not None:
        nodes = graph.subjects(RDF.type, rdf_type)
    else:
        nodes = graph.subjects()
    return sorted({n for n in nodes if isinstance(n, URIRef)}, key=str)


def discover_links(
    source_graph: Graph,
    target_graph: Graph,
    spec: LinkSpec,
) -> tuple[list[Link], list[Link]]:
    """Run link discovery; returns ``(accepted, to_review)`` link lists.

    Candidate pairs are blocked on the first ``blocking_key_length``
    lowercase characters of the URI local name, the standard cheap
    pre-filter that keeps the comparison count near-linear for
    identifier-style vocabularies.
    """
    sources = _candidates(source_graph, spec.source_type)
    targets = _candidates(target_graph, spec.target_type)
    key_len = max(0, spec.blocking_key_length)

    def block_key(resource: URIRef) -> str:
        return resource.local_name().lower()[:key_len]

    by_key: dict[str, list[URIRef]] = {}
    for target in targets:
        by_key.setdefault(block_key(target), []).append(target)

    accepted: list[Link] = []
    review: list[Link] = []
    for source in sources:
        pool = by_key.get(block_key(source), []) if key_len else targets
        best: Link | None = None
        for target in pool:
            score = spec.expression.evaluate(source, target, source_graph, target_graph)
            if best is None or score > best.score:
                best = Link(source, target, score)
        if best is None:
            continue
        if best.score >= spec.acceptance:
            accepted.append(best)
        elif best.score >= spec.review:
            review.append(best)
    return accepted, review
