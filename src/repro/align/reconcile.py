"""Cube-space reconciliation after link discovery.

Wraps the full preprocessing workflow of the paper's Section 4: run
LIMES-style link discovery between the code lists of two cube spaces,
then rewrite the *target* cubes onto the *source* vocabulary (the
"reconciled dimension bus"), so the relationship algorithms can treat
all observations as one space.
"""

from __future__ import annotations

from repro.errors import AlignmentError
from repro.align.limes import Link, LinkSpec, MetricExpression, discover_links
from repro.qb.model import CubeSpace, Dataset, Observation
from repro.qb.writer import cubespace_to_graph
from repro.rdf.namespaces import SKOS
from repro.rdf.terms import URIRef

__all__ = ["align_cubespaces", "default_link_spec"]


def default_link_spec() -> LinkSpec:
    """The paper's LIMES configuration: match SKOS concepts by the best
    of cosine and Levenshtein similarity over URI suffixes."""
    return LinkSpec(
        expression=MetricExpression.max(
            MetricExpression.metric("cosine"),
            MetricExpression.metric("levenshtein"),
        ),
        acceptance=0.95,
        review=0.7,
        source_type=SKOS.Concept,
        target_type=SKOS.Concept,
    )


def align_cubespaces(
    source: CubeSpace,
    target: CubeSpace,
    dimension_map: dict[URIRef, URIRef],
    spec: LinkSpec | None = None,
) -> tuple[CubeSpace, list[Link], list[Link]]:
    """Merge ``target`` into ``source``'s vocabulary.

    ``dimension_map`` maps each target dimension property to the source
    dimension it corresponds to (schema-level alignment is assumed
    given, as in the paper; value-level alignment is discovered).

    Returns ``(reconciled_space, accepted_links, review_links)``.  The
    reconciled space contains all source datasets unchanged plus every
    target dataset rewritten onto the source code lists.  A target code
    with no accepted link raises :class:`AlignmentError` — silent
    partial alignments corrupt downstream recall.
    """
    spec = spec if spec is not None else default_link_spec()
    unknown_dims = set(dimension_map.values()) - set(source.hierarchies)
    if unknown_dims:
        raise AlignmentError(f"dimension_map points at unknown source dimensions: {sorted(unknown_dims)}")

    accepted, review = discover_links(
        cubespace_to_graph(source), cubespace_to_graph(target), spec
    )
    # discover_links finds, for each source concept, its best target; we
    # need target -> source.
    code_map: dict[URIRef, URIRef] = {}
    for link in accepted:
        existing = code_map.get(link.target)
        if existing is None or link.score > 0:
            code_map[link.target] = link.source

    reconciled = CubeSpace()
    for dimension, hierarchy in source.hierarchies.items():
        reconciled.add_hierarchy(dimension, hierarchy)
    for dataset in source.datasets.values():
        reconciled.add_dataset(dataset)

    for dataset in target.datasets.values():
        mapped_dims = tuple(
            dimension_map.get(dimension, dimension) for dimension in dataset.schema.dimensions
        )
        missing = [d for d in mapped_dims if d not in reconciled.hierarchies]
        if missing:
            raise AlignmentError(
                f"target dataset {dataset.uri} uses dimensions with no mapping: {missing}"
            )
        schema = type(dataset.schema)(
            dimensions=mapped_dims,
            measures=dataset.schema.measures,
            attributes=dataset.schema.attributes,
        )
        rewritten = Dataset(dataset.uri, schema, label=dataset.label)
        for observation in dataset.observations:
            dims: dict[URIRef, URIRef] = {}
            for dimension, code in observation.dimensions.items():
                mapped_code = code_map.get(code)
                if mapped_code is None:
                    raise AlignmentError(
                        f"no accepted link for code {code} "
                        f"(observation {observation.uri}); lower the acceptance "
                        "threshold or review the candidate links"
                    )
                dims[dimension_map.get(dimension, dimension)] = mapped_code
            rewritten.add(
                Observation(
                    observation.uri,
                    dataset.uri,
                    dims,
                    observation.measures,
                    observation.attributes,
                )
            )
        reconciled.add_dataset(rewritten)
    return reconciled, accepted, review
