"""String similarity metrics for link discovery.

All similarities return values in [0, 1] where 1 means identical.
"""

from __future__ import annotations

import math
import re
from collections import Counter

__all__ = [
    "levenshtein_distance",
    "levenshtein_similarity",
    "cosine_similarity",
    "jaccard_similarity",
    "trigram_similarity",
    "character_ngrams",
]


def levenshtein_distance(a: str, b: str) -> int:
    """Classic edit distance with a two-row dynamic program."""
    if a == b:
        return 0
    if not a:
        return len(b)
    if not b:
        return len(a)
    if len(a) < len(b):
        a, b = b, a
    previous = list(range(len(b) + 1))
    for i, ch_a in enumerate(a, start=1):
        current = [i]
        for j, ch_b in enumerate(b, start=1):
            insert = current[j - 1] + 1
            delete = previous[j] + 1
            substitute = previous[j - 1] + (ch_a != ch_b)
            current.append(min(insert, delete, substitute))
        previous = current
    return previous[-1]


def levenshtein_similarity(a: str, b: str) -> float:
    """1 - normalised edit distance."""
    longest = max(len(a), len(b))
    if longest == 0:
        return 1.0
    return 1.0 - levenshtein_distance(a, b) / longest


_TOKEN_RE = re.compile(r"[A-Za-z0-9]+")


def _tokens(text: str) -> list[str]:
    # Split camelCase and non-alphanumerics, lowercase everything.
    spaced = re.sub(r"(?<=[a-z0-9])(?=[A-Z])", " ", text)
    return [t.lower() for t in _TOKEN_RE.findall(spaced)]


def cosine_similarity(a: str, b: str, use_tokens: bool = True) -> float:
    """Cosine of token (or character) frequency vectors.

    Token mode mirrors the LIMES configuration in the paper (cosine
    over URI-suffix identifiers).
    """
    items_a = _tokens(a) if use_tokens else list(a.lower())
    items_b = _tokens(b) if use_tokens else list(b.lower())
    if not items_a or not items_b:
        return 1.0 if items_a == items_b else 0.0
    counts_a = Counter(items_a)
    counts_b = Counter(items_b)
    dot = sum(counts_a[token] * counts_b.get(token, 0) for token in counts_a)
    norm_a = math.sqrt(sum(v * v for v in counts_a.values()))
    norm_b = math.sqrt(sum(v * v for v in counts_b.values()))
    return dot / (norm_a * norm_b)


def jaccard_similarity(a: str, b: str) -> float:
    """Jaccard coefficient of the token sets."""
    set_a, set_b = set(_tokens(a)), set(_tokens(b))
    if not set_a and not set_b:
        return 1.0
    return len(set_a & set_b) / len(set_a | set_b)


def character_ngrams(text: str, n: int = 3) -> set[str]:
    """Padded character n-grams of the lowercased string."""
    padded = f"{'#' * (n - 1)}{text.lower()}{'#' * (n - 1)}"
    return {padded[i : i + n] for i in range(len(padded) - n + 1)}


def trigram_similarity(a: str, b: str) -> float:
    """Jaccard coefficient of character trigram sets."""
    grams_a, grams_b = character_ngrams(a), character_ngrams(b)
    if not grams_a and not grams_b:
        return 1.0
    return len(grams_a & grams_b) / len(grams_a | grams_b)
