"""Command-line interface.

Eleven subcommands::

    python -m repro compute  --input cube.ttl --method cube_masking -o links.rseg
    python -m repro generate --kind realworld --scale 0.01 --output corpus.ttl
    python -m repro inspect  --input cube.ttl          # or any store path
    python -m repro validate --input cube.ttl
    python -m repro serve    --store links.rseg --input cube.ttl --port 8080
    python -m repro cluster  --store links.rseg --shards 4 --replicas 2
    python -m repro shard    --store links.rseg --manifest CLUSTER.json --shard-id 0
    python -m repro router   --manifest CLUSTER.json --port 8080
    python -m repro migrate  --input links.json --output links.rseg
    python -m repro compact  --store links.rseg --input cube.ttl
    python -m repro scrub    --store links.rseg

``compute`` loads a QB cube from Turtle or N-Triples, computes the
relationships with the chosen method and writes them back as RDF links
(or, with ``-o``, as a relationship store — plain JSON, ``.json.gz``
or a binary ``.rseg`` segment store).  ``generate`` materialises one
of the evaluation corpora.  ``inspect`` prints the cube-space profile
of a cube file, or the size/format/load-time and pair profile of a
relationship store.  ``serve`` exposes a materialised store as the
HTTP query service of :mod:`repro.service` — segment stores start in
O(manifest) and journal every incremental write to their write-ahead
log; the serving path is hardened with per-request deadlines, load
shedding, a storage circuit breaker and graceful SIGTERM drain (see
``docs/resilience.md``).  ``cluster`` runs the same store as a
sharded, replicated process tier — N shard workers partitioned by
consistent hashing over the store's (dataset, lattice-signature) keys,
fronted by a scatter/gather router with per-replica circuit breakers
and failover, under a supervisor that respawns dead workers (see
``docs/cluster.md``); ``shard`` and ``router`` run those tier members
individually.  ``migrate`` converts a store between the three formats;
``compact`` folds a segment store's WAL into fresh segments.  ``scrub``
CRC-verifies a segment store and quarantines / repairs corruption.
"""

from __future__ import annotations

import argparse
import json
import sys
import time
from pathlib import Path

from repro.core import Method, ObservationSpace, compute_relationships
from repro.data.realworld import build_realworld_cubespace
from repro.data.synthetic import build_synthetic_space
from repro.errors import ReproError
from repro.qb import cubespace_to_graph, load_cubespace, relationships_to_graph
from repro.rdf import Graph, parse_ntriples, parse_turtle, serialize_ntriples, serialize_turtle
from repro.store import atomic_write_text

__all__ = ["main"]

#: Exit code for library-level failures (parse errors, bad cubes,
#: unusable checkpoints...) — distinct from argparse's 2 and the
#: ``validate`` subcommand's 1.
EXIT_ERROR = 3
EXIT_INTERRUPTED = 130


def _read_graph(path: str) -> Graph:
    try:
        text = Path(path).read_text()
    except OSError as exc:
        raise ReproError(f"cannot read {path}: {exc}") from exc
    if path.endswith((".nt", ".ntriples")):
        return parse_ntriples(text)
    return parse_turtle(text)


def _write_graph(graph: Graph, path: str | None) -> None:
    if path is None:
        sys.stdout.write(serialize_turtle(graph))
        return
    if path.endswith((".nt", ".ntriples")):
        atomic_write_text(path, serialize_ntriples(graph) or "")
    else:
        atomic_write_text(path, serialize_turtle(graph))


def _cmd_compute(args: argparse.Namespace) -> int:
    from contextlib import ExitStack

    from repro.obs.tracing import bind_trace, trace

    with ExitStack() as stack:
        if args.trace:
            from repro.obs.logging import configure_jsonl, remove_handler

            handler = configure_jsonl(args.trace)
            stack.callback(remove_handler, handler)
            trace_id = stack.enter_context(bind_trace())
            print(f"# trace {trace_id} -> {args.trace}", file=sys.stderr)
        return _run_compute(args, trace)


def _run_compute(args: argparse.Namespace, trace) -> int:
    with trace("cli.load", input=args.input):
        graph = _read_graph(args.input)
        cube = load_cubespace(graph)
        space = ObservationSpace.from_cubespace(cube)
    options: dict = {}
    if args.targets:
        options["targets"] = tuple(args.targets)
    if args.method == Method.CLUSTERING.value:
        options["seed"] = args.seed
    if args.checkpoint:
        options["checkpoint"] = args.checkpoint
        options["resume"] = args.resume
    if args.max_retries is not None:
        options["max_retries"] = args.max_retries
    if args.timeout is not None:
        options["unit_timeout"] = args.timeout
    if args.workers is not None:
        if args.method != Method.CUBE_MASKING.value:
            raise ReproError("--workers is only supported with --method cube_masking")
        options["workers"] = args.workers
    if args.kernel is not None:
        if args.method != Method.CUBE_MASKING.value:
            raise ReproError("--kernel is only supported with --method cube_masking")
        options["kernel"] = args.kernel
    kernel_stats: dict | None = None
    if args.kernel_stats:
        if args.method != Method.CUBE_MASKING.value:
            raise ReproError("--kernel-stats is only supported with --method cube_masking")
        if args.checkpoint or args.max_retries is not None or args.timeout is not None:
            raise ReproError(
                "--kernel-stats is not supported together with checkpointed "
                "materialisation (--checkpoint/--max-retries/--timeout)"
            )
        kernel_stats = {}
        options["stats"] = kernel_stats
    profiler = None
    if args.profile:
        from repro.obs.profile import SamplingProfiler

        profiler = SamplingProfiler().start()
    started = time.perf_counter()
    try:
        with trace("cli.compute", method=args.method, observations=len(space)):
            result = compute_relationships(space, args.method, **options)
    finally:
        if profiler is not None:
            profiler.stop()
    elapsed = time.perf_counter() - started
    print(
        f"# {len(space)} observations, method={args.method}: "
        f"full={len(result.full)} partial={len(result.partial)} "
        f"complementary={len(result.complementary)} ({elapsed:.2f}s)",
        file=sys.stderr,
    )
    if kernel_stats is not None:
        print(f"# kernel stats: {json.dumps(kernel_stats, sort_keys=True)}", file=sys.stderr)
    with trace("cli.store", output=args.store_output or args.output or "-"):
        if args.store_output:
            from repro.store import save_relationships

            # The space rides along so .rseg outputs partition their
            # segments by dataset / lattice signature.
            save_relationships(result, args.store_output, indent=2, space=space)
        else:
            _write_graph(relationships_to_graph(result), args.output)
    if profiler is not None:
        print(profiler.report(), file=sys.stderr)
    return 0


def _cmd_generate(args: argparse.Namespace) -> int:
    if args.kind == "realworld":
        cube = build_realworld_cubespace(scale=args.scale, seed=args.seed)
        graph = cubespace_to_graph(cube)
    else:
        space = build_synthetic_space(args.n, dimension_count=args.dimensions, seed=args.seed)
        from repro.core.export import space_to_graph

        graph = space_to_graph(space)
    print(f"# generated {len(graph)} triples", file=sys.stderr)
    _write_graph(graph, args.output)
    return 0


def _cmd_validate(args: argparse.Namespace) -> int:
    from repro.qb.validation import validate_graph

    violations = validate_graph(_read_graph(args.input))
    for violation in violations:
        print(violation)
    if violations:
        print(f"# {len(violations)} violation(s)", file=sys.stderr)
        return 1
    print("# well-formed", file=sys.stderr)
    return 0


def _is_store_path(path: str) -> bool:
    """Relationship-store paths, as opposed to cube files."""
    from repro.storage import is_segment_store

    return (
        path.endswith((".json", ".json.gz", ".gz", ".rseg"))
        or is_segment_store(path)
    )


def _inspect_relationship_store(path: str, show_stats: bool = False) -> int:
    from repro.store import describe_store, load_relationships, profile_relationships

    try:
        info = describe_store(path)
        started = time.perf_counter()
        result = load_relationships(path)
        load_seconds = time.perf_counter() - started
    except OSError as exc:
        raise ReproError(f"cannot read {path}: {exc}") from exc
    profile = profile_relationships(result)
    print(
        f"relationship store {path} "
        f"(format {info['kind']}, version {info['version']})"
    )
    size_line = f"  size: {info['bytes']:,} bytes; loaded in {load_seconds:.3f}s"
    if info["segments"] is not None:
        size_line += f"; {info['segments']} segment(s), {info['wal_records']} WAL record(s)"
    print(size_line)
    print(
        f"  pairs: full={profile['full_pairs']} partial={profile['partial_pairs']} "
        f"complementary={profile['complementary_pairs']} (total {profile['total_pairs']})"
    )
    print(
        f"  observations referenced: {profile['observations']}; "
        f"degrees on {profile['degrees_recorded']} pair(s), "
        f"dimension maps on {profile['partial_dimensions_recorded']}"
    )
    histogram = profile["degree_histogram"]
    if any(histogram):
        width = 1 / len(histogram)
        print("  partial-containment degree histogram:")
        peak = max(histogram)
        for slot, count in enumerate(histogram):
            bar = "#" * round(30 * count / peak) if peak else ""
            print(f"    [{slot * width:.1f}, {(slot + 1) * width:.1f}): {count:6d} {bar}")
    for container, count in profile["top_containers"]:
        print(f"  top container: {container} fully contains {count} observation(s)")
    if show_stats:
        _print_storage_stats(path)
    return 0


def _print_storage_stats(path: str) -> None:
    """The ``inspect --stats`` tail: storage facts + registry counters."""
    from repro.obs.registry import get_registry
    from repro.storage import is_segment_store

    if is_segment_store(path):
        from repro.storage import SegmentStore

        info = SegmentStore.open(path).describe()
        print("  storage:")
        print(
            f"    segments: {info['segments']} (generation {info['generation']}, "
            f"partitioned={info['partitioned']})"
        )
        print(f"    wal tail: {info['wal_records']} record(s), {info['wal_bytes']:,} bytes")
        last = info.get("last_repair")
        print(f"    last repair: {time.ctime(last) if last else 'never'}")
    snapshot = get_registry().snapshot()
    counters = {
        name: entry["value"]
        for name, entry in snapshot.items()
        if name.startswith(("repro_storage_", "repro_wal_")) and "value" in entry
    }
    if counters:
        print("  storage counters (this process):")
        for name, value in sorted(counters.items()):
            print(f"    {name} = {value:g}")


def _cmd_inspect(args: argparse.Namespace) -> int:
    if _is_store_path(args.input):
        return _inspect_relationship_store(args.input, show_stats=args.stats)
    cube = load_cubespace(_read_graph(args.input))
    print(cube)
    for uri, dataset in cube.datasets.items():
        dims = ", ".join(d.local_name() for d in dataset.schema.dimensions)
        measures = ", ".join(m.local_name() for m in dataset.schema.measures)
        print(f"  {uri.local_name()}: {len(dataset)} observations; dims [{dims}]; measures [{measures}]")
    for dimension, hierarchy in cube.hierarchies.items():
        print(f"  hierarchy {dimension.local_name()}: {len(hierarchy)} codes, depth {hierarchy.max_level}")
    return 0


def _cmd_serve(args: argparse.Namespace) -> int:
    import signal
    import threading

    from repro.resilience.breaker import CircuitBreaker
    from repro.resilience.faults import install_injector
    from repro.resilience.shed import LoadShedder
    from repro.service import QueryEngine, start_server
    from repro.store import detect_store_kind, load_relationships

    if args.chaos:
        try:
            install_injector(args.chaos)
        except ValueError as exc:
            raise ReproError(f"bad --chaos spec: {exc}") from exc
        print(f"# chaos injection armed: {args.chaos}", file=sys.stderr)

    space = None
    if args.input:
        space = ObservationSpace.from_cubespace(load_cubespace(_read_graph(args.input)))
    store = None
    scrubber = None
    changefeed = None

    def _open_changefeed(default_dir):
        # The ordered delta feed behind GET /changes; defaults to
        # <store>/changefeed for segment stores, opt-in elsewhere.
        if args.no_changefeed:
            return None
        feed_dir = args.changefeed or default_dir
        if feed_dir is None:
            return None
        from repro.stream import Changefeed

        return Changefeed(feed_dir)

    if detect_store_kind(args.store) == "segments":
        # Segment store: O(manifest) startup — the set materialises and
        # the index builds on first query — and every incremental write
        # is journalled to the store's WAL before it is acknowledged.
        from repro.storage import LazyRelationshipIndex, SegmentStore

        store = SegmentStore.open(args.store)
        # Hold the writer lock for the server's lifetime: a concurrent
        # `repro compact` would rotate the WAL out from under our open
        # handle and silently drop acknowledged writes.
        store.acquire_writer_lock()
        # Fail fast once the disk is evidently sick instead of letting
        # every handler thread block on a dying device.
        store.breaker = CircuitBreaker(
            latency_threshold=args.breaker_latency, name="storage"
        )
        result = store.relationship_set()
        changefeed = _open_changefeed(str(Path(args.store) / "changefeed"))
        engine = QueryEngine(
            result,
            space,
            cache_size=args.cache_size,
            index=LazyRelationshipIndex(result, space),
            delta_sink=store.append_delta,
            storage_info=store.describe,
            changefeed=changefeed,
        )
        if args.scrub_interval > 0:
            from repro.resilience.scrub import BackgroundScrubber

            scrubber = BackgroundScrubber(store, interval=args.scrub_interval).start()
    else:
        try:
            result = load_relationships(args.store)
        except OSError as exc:
            raise ReproError(f"cannot read {args.store}: {exc}") from exc
        changefeed = _open_changefeed(None)
        engine = QueryEngine(result, space, cache_size=args.cache_size, changefeed=changefeed)

    shedder = LoadShedder(
        max_inflight=args.max_inflight,
        max_queued=args.max_queued,
        queue_timeout=args.queue_timeout,
    )
    # The server runs on a background thread; the main thread parks on
    # an event so SIGTERM/SIGINT can trigger a *graceful* stop — drain
    # in-flight requests, then flush and unlock the store — instead of
    # dying mid-request.
    stop = threading.Event()

    def _on_signal(signum, frame):
        stop.set()

    signal.signal(signal.SIGTERM, _on_signal)
    signal.signal(signal.SIGINT, _on_signal)
    try:
        server = start_server(
            engine,
            host=args.host,
            port=args.port,
            background=True,
            verbose=args.verbose,
            request_timeout=args.request_timeout,
            shedder=shedder,
            threads=args.threads,
            span_dir=args.span_dir,
            profiler=not args.no_profiler,
            slow_log_path=args.slow_query_log,
            slow_query_ms=args.slow_query_ms,
        )
    except OSError as exc:
        raise ReproError(f"cannot bind {args.host}:{args.port}: {exc}") from exc
    mutable = "enabled" if space is not None else "disabled (no --input space)"
    bound_port = server.server_address[1]
    _print_listening(args.host, bound_port, "serve")
    print(
        f"# serving {result!r} on http://{args.host}:{bound_port} "
        f"(cache {args.cache_size}, threads {args.threads or 'per-request'}, "
        f"writes {mutable}, max_inflight {args.max_inflight})",
        file=sys.stderr,
    )
    try:
        stop.wait()
        print("repro: serve: draining in-flight requests", file=sys.stderr)
        drained = server.graceful_shutdown(drain_timeout=args.drain_timeout)
        if not drained:
            print(
                "repro: serve: drain timed out with requests still running",
                file=sys.stderr,
            )
    finally:
        if scrubber is not None:
            scrubber.stop()
        if changefeed is not None:
            changefeed.close()
        if store is not None:
            # Flushes the WAL handle and releases the writer flock so
            # the next writer (serve, compact, scrub) can take over.
            store.close()
    print("repro: serve: shut down cleanly", file=sys.stderr)
    return 0


def _cmd_ingest(args: argparse.Namespace) -> int:
    import itertools
    import json
    import signal
    import threading

    from repro.stream import (
        EngineSink,
        HttpSink,
        IngestError,
        StreamIngester,
        make_parser,
        sniff_format,
        watch_directory,
    )
    from repro.stream.ingest import schema_from_graph

    if bool(args.server) == bool(args.store):
        raise ReproError("pass exactly one of --server URL or --store PATH")

    schema = None
    if args.schema:
        schema = schema_from_graph(_read_graph(args.schema))

    stop = threading.Event()

    def _on_signal(signum, frame):
        stop.set()

    signal.signal(signal.SIGTERM, _on_signal)
    signal.signal(signal.SIGINT, _on_signal)

    if args.watch:
        lines = watch_directory(args.watch, poll_interval=args.poll_interval, stop=stop)
    elif args.source == "-":
        lines = sys.stdin
    else:
        try:
            lines = open(args.source, "r", encoding="utf-8")
        except OSError as exc:
            raise ReproError(f"cannot read {args.source}: {exc}") from exc

    iterator = iter(lines)
    fmt = args.format
    if fmt == "auto":
        # A watched directory interleaves control items (idle ticks,
        # file boundaries) with text lines; sniff on the first real
        # line and replay everything consumed so far to the pump.
        consumed = []
        first = next(iterator, None)
        while first is not None and not isinstance(first, str):
            consumed.append(first)
            first = next(iterator, None)
        if first is None:
            print("repro: ingest: empty source, nothing to do", file=sys.stderr)
            return 0
        fmt = sniff_format(first)
        iterator = itertools.chain(consumed, [first], iterator)
    parser = make_parser(fmt, schema=schema)

    store = None
    changefeed = None
    if args.server:
        sink = HttpSink(args.server, timeout=args.request_timeout)
        target = args.server
    else:
        # Direct mode: this process *is* the writer — it takes the
        # store's writer lock, journals every delta to the WAL and
        # publishes the changefeed itself.  Mutually exclusive with a
        # live `repro serve` on the same store (use --server there).
        from repro.store import detect_store_kind

        if detect_store_kind(args.store) != "segments":
            raise ReproError(
                "direct ingest needs a segment store (.rseg); for JSON "
                "stores run `repro serve` and ingest with --server"
            )
        if not args.input:
            raise ReproError("direct ingest needs --input (the cube the store serves)")
        from repro.service import QueryEngine
        from repro.storage import LazyRelationshipIndex, SegmentStore

        space = ObservationSpace.from_cubespace(load_cubespace(_read_graph(args.input)))
        store = SegmentStore.open(args.store)
        store.acquire_writer_lock()
        result = store.relationship_set()
        if not args.no_changefeed:
            from repro.stream import Changefeed

            changefeed = Changefeed(args.changefeed or str(Path(args.store) / "changefeed"))
        engine = QueryEngine(
            result,
            space,
            index=LazyRelationshipIndex(result, space),
            delta_sink=store.append_delta,
            storage_info=store.describe,
            changefeed=changefeed,
        )
        sink = EngineSink(engine)
        target = args.store

    pump = StreamIngester(
        sink,
        parser,
        batch_size=args.batch_size,
        flush_interval=args.flush_interval,
        max_inflight=args.max_inflight,
    )
    print(
        f"# ingesting {fmt} observations into {target} "
        f"(batch {args.batch_size}, flush {args.flush_interval}s, "
        f"max_inflight {args.max_inflight})",
        file=sys.stderr,
    )
    try:
        stats = pump.run(iterator, stop=stop)
    except IngestError as exc:
        raise ReproError(str(exc)) from exc
    finally:
        if changefeed is not None:
            changefeed.close()
        if store is not None:
            store.close()
        if not args.watch and lines is not sys.stdin:
            lines.close()
    print(json.dumps({"ingest": stats.as_dict()}))
    print(
        f"# ingested {stats.observations} observations in {stats.batches} "
        f"batches ({stats.obs_per_sec:.0f} obs/s, "
        f"{stats.parse_errors} parse errors)",
        file=sys.stderr,
    )
    return 0


def _print_listening(host: str, port: int, role: str) -> None:
    """The machine-readable bound-endpoint line, on **stdout**.

    With ``--port 0`` the OS picks the port; scripts (and the cluster
    supervisor) parse this line — or the endpoint file / ``/healthz``
    body — instead of guessing.
    """
    print(f"listening url=http://{host}:{port} port={port} role={role}", flush=True)


def _load_space(path: str):
    return ObservationSpace.from_cubespace(load_cubespace(_read_graph(path)))


def _cmd_shard(args: argparse.Namespace) -> int:
    import os
    import signal
    import threading

    from repro.cluster import ClusterManifest, build_shard_engine, write_endpoint_file
    from repro.resilience.breaker import CircuitBreaker
    from repro.resilience.shed import LoadShedder
    from repro.service import start_server
    from repro.storage import SegmentStore, is_segment_store

    if not is_segment_store(args.store):
        raise ReproError(f"{args.store} is not a segment store (shards need one)")
    manifest = ClusterManifest.load(args.manifest)
    space = None
    input_path = args.input or manifest.input_path
    if input_path:
        space = _load_space(input_path)
    store = SegmentStore.open(args.store)
    try:
        engine, assigned = build_shard_engine(
            store,
            manifest,
            args.shard_id,
            space=space,
            cache_size=args.cache_size,
            breaker=CircuitBreaker(name=f"shard-{args.shard_id}-storage"),
        )
    except ValueError as exc:
        store.close()
        raise ReproError(str(exc)) from exc
    shedder = LoadShedder(max_inflight=args.max_inflight, max_queued=args.max_queued)
    stop = threading.Event()

    def _on_signal(signum, frame):
        stop.set()

    signal.signal(signal.SIGTERM, _on_signal)
    signal.signal(signal.SIGINT, _on_signal)
    try:
        server = start_server(
            engine,
            host=args.host,
            port=args.port,
            background=True,
            verbose=args.verbose,
            request_timeout=args.request_timeout,
            shedder=shedder,
            threads=args.threads,
            read_only=True,
            role=f"shard-{args.shard_id}",
            extra_health=lambda: {
                "shard": args.shard_id,
                "replica": args.replica,
                "partitions": len(assigned),
            },
            span_dir=args.span_dir,
            profiler=not args.no_profiler,
            slow_log_path=args.slow_query_log,
            slow_query_ms=args.slow_query_ms,
        )
    except OSError as exc:
        store.close()
        raise ReproError(f"cannot bind {args.host}:{args.port}: {exc}") from exc
    bound_port = server.server_address[1]
    if args.endpoint_file:
        write_endpoint_file(
            args.endpoint_file,
            {
                "host": args.host,
                "port": bound_port,
                "pid": os.getpid(),
                "shard": args.shard_id,
                "replica": args.replica,
            },
        )
    _print_listening(args.host, bound_port, f"shard-{args.shard_id}")
    print(
        f"# shard {args.shard_id} replica {args.replica}: "
        f"{len(assigned)} partition(s) of {len(manifest.partitions)} "
        f"on http://{args.host}:{bound_port}",
        file=sys.stderr,
    )
    try:
        stop.wait()
        server.graceful_shutdown(drain_timeout=args.drain_timeout)
    finally:
        store.close()
    return 0


def _cmd_router(args: argparse.Namespace) -> int:
    import signal
    import threading

    from repro.cluster import ClusterManifest, Router, start_router
    from repro.resilience.shed import LoadShedder

    manifest = ClusterManifest.load(args.manifest)
    space = None
    input_path = args.input or manifest.input_path
    if input_path:
        space = _load_space(input_path)
    router = Router(
        manifest,
        space=space,
        manifest_path=args.manifest,
        shard_timeout=args.shard_timeout,
    )
    stop = threading.Event()

    def _on_signal(signum, frame):
        stop.set()

    signal.signal(signal.SIGTERM, _on_signal)
    signal.signal(signal.SIGINT, _on_signal)
    try:
        server = start_router(
            router,
            host=args.host,
            port=args.port,
            background=True,
            verbose=args.verbose,
            threads=args.threads,
            reuse_port=args.reuse_port,
            shedder=LoadShedder(max_inflight=args.max_inflight, max_queued=args.max_queued),
            request_timeout=args.request_timeout,
            span_dir=args.span_dir,
            profiler=not args.no_profiler,
            slow_log_path=args.slow_query_log,
            slow_query_ms=args.slow_query_ms,
        )
    except OSError as exc:
        raise ReproError(f"cannot bind {args.host}:{args.port}: {exc}") from exc
    bound_port = server.server_address[1]
    _print_listening(args.host, bound_port, "router")
    print(
        f"# routing {manifest.shards} shard(s) x {manifest.replicas} replica(s), "
        f"{len(manifest.partitions)} partition(s) on http://{args.host}:{bound_port}",
        file=sys.stderr,
    )
    stop.wait()
    server.graceful_shutdown(drain_timeout=args.drain_timeout)
    return 0


def _cmd_cluster(args: argparse.Namespace) -> int:
    import signal
    import threading

    from repro.cluster import ClusterSupervisor

    supervisor = ClusterSupervisor(
        store=args.store,
        shards=args.shards,
        replicas=args.replicas,
        input_path=args.input,
        rundir=args.rundir,
        host=args.host,
        port=args.port,
        router_threads=args.threads,
        shard_threads=args.shard_threads,
        spawn_timeout=args.spawn_timeout,
        respawn=not args.no_respawn,
        verbose=args.verbose,
        span_dir=args.span_dir,
        profiler=not args.no_profiler,
        slow_query_dir=args.slow_query_dir,
        slow_query_ms=args.slow_query_ms,
    )
    stop = threading.Event()

    def _on_signal(signum, frame):
        stop.set()

    signal.signal(signal.SIGTERM, _on_signal)
    signal.signal(signal.SIGINT, _on_signal)
    try:
        server = supervisor.start()
    except BaseException:
        supervisor.shutdown(drain_timeout=2.0)
        raise
    bound_port = server.server_address[1]
    _print_listening(args.host, bound_port, "router")
    print(
        f"# cluster up: {args.shards} shard(s) x {args.replicas} replica(s), "
        f"{len(supervisor.manifest.partitions)} partition(s); "
        f"manifest {supervisor.manifest_path}",
        file=sys.stderr,
    )
    try:
        supervisor.run(stop)
    finally:
        print("repro: cluster: draining and stopping workers", file=sys.stderr)
        supervisor.shutdown(drain_timeout=args.drain_timeout)
    print("repro: cluster: shut down cleanly", file=sys.stderr)
    return 0


def _cmd_scrub(args: argparse.Namespace) -> int:
    from repro.resilience.scrub import scrub_store
    from repro.storage import SegmentStore, is_segment_store

    if not is_segment_store(args.store):
        raise ReproError(f"{args.store} is not a segment store (scrub needs one)")
    store = SegmentStore.open(args.store)
    try:
        report = scrub_store(store, repair=not args.check_only, deep=not args.shallow)
    finally:
        store.close()
    if args.json:
        import json as _json

        print(_json.dumps(report, indent=2))
    else:
        print(
            f"# scrub {args.store}: generation {report['generation']}, "
            f"{report['verified']}/{report['segments']} segment(s) verified"
        )
        for name in report["quarantined"]:
            print(f"#   corrupt: {name}")
        for name in report["rebuilt"]:
            print(f"#   rebuilt from prior generation: {name}")
        for loss in report["irreparable"]:
            print(
                f"#   IRREPARABLE: {loss['name']} (lost {loss['full']} full / "
                f"{loss['partial']} partial / {loss['complementary']} "
                f"complementary pair(s))"
            )
        wal = report["wal"]
        if wal.get("error"):
            print(f"#   WAL corrupt mid-file: {wal['error']}")
        elif wal.get("torn_tail"):
            print(f"#   WAL torn tail {'repaired' if not args.check_only else 'found'}")
        else:
            print(f"#   WAL clean: {wal.get('records')} record(s)")
        print(f"# store is {'healthy' if report['ok'] else 'damaged'}")
    return 0 if report["ok"] else 1


def _cmd_migrate(args: argparse.Namespace) -> int:
    from repro.store import detect_store_kind, load_relationships, save_relationships

    try:
        result = load_relationships(args.input)
    except OSError as exc:
        raise ReproError(f"cannot read {args.input}: {exc}") from exc
    space = None
    if args.cube:
        space = ObservationSpace.from_cubespace(load_cubespace(_read_graph(args.cube)))
    save_relationships(result, args.output, indent=args.indent, space=space)
    print(
        f"# migrated {detect_store_kind(args.input)} -> "
        f"{detect_store_kind(args.output)}: {result!r}",
        file=sys.stderr,
    )
    return 0


def _cmd_compact(args: argparse.Namespace) -> int:
    from repro.storage import SegmentStore

    space = None
    if args.input:
        space = ObservationSpace.from_cubespace(load_cubespace(_read_graph(args.input)))
    store = SegmentStore.open(args.store)
    outcome = store.compact(space)
    print(
        f"# compacted {args.store}: folded {outcome['folded']} WAL record(s) "
        f"into {outcome['segments']} segment(s)",
        file=sys.stderr,
    )
    return 0


def _cmd_trace(args: argparse.Namespace) -> int:
    import json as _json
    import urllib.error
    import urllib.request

    from repro.obs.spanstore import read_span_files, render_trace

    if bool(args.server) == bool(args.dir):
        raise ReproError("trace needs exactly one of --server or --dir")
    if args.server:
        url = f"{args.server.rstrip('/')}/debug/trace/{args.trace_id}"
        try:
            with urllib.request.urlopen(url, timeout=args.timeout) as response:
                payload = _json.loads(response.read())
        except (OSError, ValueError, urllib.error.URLError) as exc:
            raise ReproError(f"cannot fetch {url}: {exc}") from exc
        records = payload.get("spans", [])
        errors = payload.get("errors", [])
    else:
        try:
            records = read_span_files(args.dir, trace_id=args.trace_id)
        except OSError as exc:
            raise ReproError(f"cannot read spans from {args.dir}: {exc}") from exc
        errors = []
    if not records:
        print(f"repro: trace: no spans recorded for {args.trace_id}", file=sys.stderr)
        return EXIT_ERROR
    if args.json:
        print(_json.dumps({"trace_id": args.trace_id, "spans": records}, indent=2))
    else:
        print(render_trace(records))
        print(f"# {len(records)} span(s)", file=sys.stderr)
    for problem in errors:
        print(f"# warning: {problem}", file=sys.stderr)
    return 0


def _cmd_top(args: argparse.Namespace) -> int:
    from repro.obs.top import run_top

    clear = None
    if args.no_clear:
        clear = False
    return run_top(
        args.server,
        interval=args.interval,
        iterations=args.iterations,
        clear=clear,
    )


def _add_telemetry_args(parser: argparse.ArgumentParser) -> None:
    """The telemetry flags shared by serve, shard and router."""
    telemetry = parser.add_argument_group(
        "telemetry", "tracing, profiling and slow queries (docs/observability.md)"
    )
    telemetry.add_argument(
        "--span-dir",
        metavar="DIR",
        help="persist finished spans as per-process JSONL files here "
        "(readable offline with `repro trace --dir`); default: in-memory "
        "ring only, served via /debug/trace/<id>",
    )
    telemetry.add_argument(
        "--no-profiler",
        action="store_true",
        help="disable the always-on low-rate sampling profiler "
        "(/debug/profile)",
    )
    telemetry.add_argument(
        "--slow-query-log",
        metavar="FILE",
        help="append a structured JSONL record for every request slower "
        "than --slow-query-ms (default: disabled)",
    )
    telemetry.add_argument(
        "--slow-query-ms",
        type=float,
        default=100.0,
        help="slow-query threshold in milliseconds (default 100)",
    )


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(prog="repro", description=__doc__)
    sub = parser.add_subparsers(dest="command", required=True)

    compute = sub.add_parser("compute", help="compute containment/complementarity")
    compute.add_argument("--input", required=True, help="Turtle or N-Triples QB file")
    compute.add_argument(
        "--method",
        default=Method.CUBE_MASKING.value,
        choices=[m.value for m in Method],
    )
    compute.add_argument("--output", help="output file (.ttl / .nt); default stdout")
    compute.add_argument(
        "-o",
        "--store-output",
        "--json-output",  # pre-segment-store spelling, kept working
        dest="store_output",
        help="write a relationship store instead of RDF; format follows "
        "the extension (.json, .json.gz, .rseg segment store)",
    )
    compute.add_argument(
        "--targets",
        nargs="+",
        choices=["full", "partial", "complementary"],
        help="restrict to these relationship types",
    )
    compute.add_argument("--seed", type=int, default=0)
    resilience = compute.add_argument_group(
        "resilience", "checkpointed, fault-tolerant materialisation"
    )
    resilience.add_argument(
        "--checkpoint",
        help="JSONL journal of completed work units; an interrupted run "
        "restarted with --resume continues from the last durable unit",
    )
    resilience.add_argument(
        "--resume",
        action="store_true",
        help="continue an existing --checkpoint instead of refusing to overwrite it",
    )
    resilience.add_argument(
        "--max-retries",
        type=int,
        help="per-unit retry budget for crashed/failed workers (default 2)",
    )
    resilience.add_argument(
        "--timeout",
        type=float,
        help="wall-clock seconds allowed per work unit (parallel execution)",
    )
    resilience.add_argument(
        "--workers",
        type=int,
        help="worker processes for parallel cube_masking (zero-copy "
        "shared-memory fan-out)",
    )
    compute.add_argument(
        "--kernel",
        choices=["auto", "numpy", "python"],
        help="cube_masking instance-check path: vectorised numpy kernel, "
        "pure-Python loop, or auto per cube pair (default auto)",
    )
    compute.add_argument(
        "--kernel-stats",
        action="store_true",
        help="print the cube_masking counter breakdown (cube pairs, "
        "pruning, kernel pairs/time) as JSON on stderr; identical "
        "numbers on the sequential and --workers paths",
    )
    observability = compute.add_argument_group(
        "observability", "structured tracing and profiling (docs/observability.md)"
    )
    observability.add_argument(
        "--trace",
        nargs="?",
        const="repro-trace.jsonl",
        metavar="PATH",
        help="write spans and instrumentation events as JSONL "
        "(one JSON object per line; default path repro-trace.jsonl)",
    )
    observability.add_argument(
        "--profile",
        action="store_true",
        help="sample the computation's wall-clock stacks and print a "
        "flat self/cumulative profile to stderr",
    )
    compute.set_defaults(handler=_cmd_compute)

    generate = sub.add_parser("generate", help="generate an evaluation corpus")
    generate.add_argument("--kind", choices=["realworld", "synthetic"], default="realworld")
    generate.add_argument("--scale", type=float, default=0.01, help="realworld scale factor")
    generate.add_argument("--n", type=int, default=1000, help="synthetic observation count")
    generate.add_argument("--dimensions", type=int, default=4)
    generate.add_argument("--seed", type=int, default=0)
    generate.add_argument("--output", help="output file; default stdout")
    generate.set_defaults(handler=_cmd_generate)

    inspect = sub.add_parser("inspect", help="print a cube file's profile")
    inspect.add_argument("--input", required=True)
    inspect.add_argument(
        "--stats",
        action="store_true",
        help="for relationship stores: also print storage-layer stats "
        "(segment count, WAL tail, last repair, process counters)",
    )
    inspect.set_defaults(handler=_cmd_inspect)

    validate = sub.add_parser("validate", help="check QB integrity constraints")
    validate.add_argument("--input", required=True)
    validate.set_defaults(handler=_cmd_validate)

    serve = sub.add_parser(
        "serve", help="serve a relationship store over HTTP (JSON API)"
    )
    serve.add_argument(
        "--store",
        required=True,
        help="relationship store (.json, .json.gz or .rseg, from compute -o)",
    )
    serve.add_argument(
        "--input",
        help="the QB cube file the store was computed from; enables "
        "dataset/dimension filters and POST/DELETE incremental writes",
    )
    serve.add_argument("--host", default="127.0.0.1")
    serve.add_argument(
        "--port",
        type=int,
        default=8080,
        help="TCP port; 0 binds an ephemeral port, reported on stdout "
        "and in /healthz (default 8080)",
    )
    serve.add_argument(
        "--threads",
        type=int,
        default=8,
        help="fixed handler-thread pool size; 0 reverts to one thread "
        "per connection (default 8)",
    )
    serve.add_argument(
        "--cache-size",
        type=int,
        default=1024,
        help="query-cache entries (0 disables caching)",
    )
    serve.add_argument(
        "--verbose", action="store_true", help="log each request to stderr"
    )
    serve.add_argument(
        "--changefeed",
        metavar="DIR",
        help="changefeed directory publishing every applied delta with a "
        "monotonic offset (default: <store>/changefeed for segment "
        "stores; required to enable the feed for JSON stores)",
    )
    serve.add_argument(
        "--no-changefeed",
        action="store_true",
        help="disable the changefeed (GET /changes answers 404)",
    )
    hardening = serve.add_argument_group(
        "hardening", "overload and failure behaviour (docs/resilience.md)"
    )
    hardening.add_argument(
        "--request-timeout",
        type=float,
        default=30.0,
        help="per-connection socket timeout in seconds; a stalled client "
        "is disconnected instead of pinning a handler thread (default 30)",
    )
    hardening.add_argument(
        "--max-inflight",
        type=int,
        default=64,
        help="concurrently-executing request bound; excess waits briefly, "
        "then is shed with 503 + Retry-After (default 64)",
    )
    hardening.add_argument(
        "--max-queued",
        type=int,
        default=128,
        help="requests allowed to wait for an execution slot (default 128)",
    )
    hardening.add_argument(
        "--queue-timeout",
        type=float,
        default=0.5,
        help="seconds a queued request may wait before being shed (default 0.5)",
    )
    hardening.add_argument(
        "--breaker-latency",
        type=float,
        default=None,
        metavar="SECONDS",
        help="also trip the storage circuit breaker when most segment "
        "reads are slower than this (default: failure-rate trigger only)",
    )
    hardening.add_argument(
        "--drain-timeout",
        type=float,
        default=10.0,
        help="seconds a SIGTERM'd server waits for in-flight requests "
        "before exiting (default 10)",
    )
    hardening.add_argument(
        "--scrub-interval",
        type=float,
        default=0.0,
        metavar="SECONDS",
        help="run a background CRC scrub of the segment store this often "
        "(0 disables; see `repro scrub`)",
    )
    hardening.add_argument(
        "--chaos",
        metavar="SPEC",
        help="arm deterministic fault injection, e.g. "
        "'segment.read:error:times=2,seed=7' — testing only; the "
        "REPRO_CHAOS environment variable is honoured too "
        "(docs/resilience.md)",
    )
    _add_telemetry_args(serve)
    serve.set_defaults(handler=_cmd_serve)

    ingest = sub.add_parser(
        "ingest",
        help="tail an observation stream into a live server or a store",
        description="Tail CSV or N-Triples observation lines (stdin, a "
        "file, or a watched directory of batch files) and apply them "
        "incrementally — over HTTP against a live `repro serve` "
        "(--server) or directly into a segment store (--store).  See "
        "docs/streaming.md for the line grammar.",
    )
    ingest.add_argument(
        "--server",
        metavar="URL",
        help="live server base URL; batches go through POST /observations "
        "with retry/backoff on 503 backpressure",
    )
    ingest.add_argument(
        "--store",
        metavar="DIR",
        help="segment store to write directly (takes the writer lock; "
        "mutually exclusive with --server and with a running serve)",
    )
    ingest.add_argument(
        "--input",
        help="cube file defining the observation space (required with --store)",
    )
    ingest.add_argument(
        "--from",
        dest="source",
        default="-",
        metavar="FILE",
        help="line source; '-' (default) reads stdin",
    )
    ingest.add_argument(
        "--watch",
        metavar="DIR",
        help="instead of --from: watch a directory for batch files, "
        "ingest each in sorted order and rename it to <name>.done",
    )
    ingest.add_argument(
        "--poll-interval",
        type=float,
        default=0.5,
        help="directory poll interval for --watch (default 0.5s)",
    )
    ingest.add_argument(
        "--format",
        choices=("auto", "csv", "ntriples"),
        default="auto",
        help="line grammar; auto sniffs the first line (default auto)",
    )
    ingest.add_argument(
        "--schema",
        metavar="FILE",
        help="cube definition graph used to classify N-Triples predicates "
        "into dimensions/measures per the declared DSD (default: URI "
        "objects are dimensions, literal objects are measures)",
    )
    ingest.add_argument(
        "--batch-size",
        type=int,
        default=200,
        help="observations per insert batch (default 200)",
    )
    ingest.add_argument(
        "--flush-interval",
        type=float,
        default=1.0,
        help="flush a partial batch after this many seconds (default 1.0)",
    )
    ingest.add_argument(
        "--max-inflight",
        type=int,
        default=2,
        help="batches applied concurrently; the pump blocks (backpressure) "
        "when all slots are busy (default 2)",
    )
    ingest.add_argument(
        "--request-timeout",
        type=float,
        default=30.0,
        help="per-request timeout for --server mode (default 30)",
    )
    ingest.add_argument(
        "--changefeed",
        metavar="DIR",
        help="changefeed directory for --store mode (default <store>/changefeed)",
    )
    ingest.add_argument(
        "--no-changefeed",
        action="store_true",
        help="do not publish a changefeed in --store mode",
    )
    ingest.set_defaults(handler=_cmd_ingest)

    cluster = sub.add_parser(
        "cluster",
        help="serve a segment store as a sharded, replicated process tier",
    )
    cluster.add_argument(
        "--store", required=True, help="segment store directory (.rseg)"
    )
    cluster.add_argument(
        "--shards",
        type=int,
        required=True,
        help="shard processes; partitions spread over them by consistent hashing",
    )
    cluster.add_argument(
        "--replicas",
        type=int,
        default=1,
        help="worker processes per shard; >1 enables failover (default 1)",
    )
    cluster.add_argument(
        "--input",
        help="the QB cube the store was computed from; enables routed "
        "single-shard plans and shard-exact WAL ownership",
    )
    cluster.add_argument(
        "--rundir",
        help="directory for the cluster manifest and endpoint files "
        "(default <store>.cluster)",
    )
    cluster.add_argument("--host", default="127.0.0.1")
    cluster.add_argument(
        "--port",
        type=int,
        default=8080,
        help="router port; 0 binds an ephemeral port, reported on stdout "
        "(default 8080)",
    )
    cluster.add_argument(
        "--threads", type=int, default=8, help="router handler threads (default 8)"
    )
    cluster.add_argument(
        "--shard-threads",
        type=int,
        default=4,
        help="handler threads per shard worker (default 4)",
    )
    cluster.add_argument(
        "--spawn-timeout",
        type=float,
        default=30.0,
        help="seconds to wait for workers to bind and publish endpoints",
    )
    cluster.add_argument(
        "--no-respawn",
        action="store_true",
        help="do not restart workers that die (debugging)",
    )
    cluster.add_argument(
        "--drain-timeout",
        type=float,
        default=10.0,
        help="seconds of graceful drain on shutdown (default 10)",
    )
    cluster.add_argument("--verbose", action="store_true")
    telemetry = cluster.add_argument_group(
        "telemetry", "tracing, profiling and slow queries (docs/observability.md)"
    )
    telemetry.add_argument(
        "--span-dir",
        metavar="DIR",
        help="shared span directory; router and every shard worker "
        "persist per-process JSONL span files here (default: in-memory "
        "rings, assembled live via /debug/trace/<id>)",
    )
    telemetry.add_argument(
        "--no-profiler",
        action="store_true",
        help="disable the always-on sampling profiler on the router "
        "and every shard worker",
    )
    telemetry.add_argument(
        "--slow-query-dir",
        metavar="DIR",
        help="directory for per-process slow-query logs "
        "(slow-router.jsonl, slow-shard-<s>.<r>.jsonl)",
    )
    telemetry.add_argument(
        "--slow-query-ms",
        type=float,
        default=100.0,
        help="slow-query threshold in milliseconds (default 100)",
    )
    cluster.set_defaults(handler=_cmd_cluster)

    shard = sub.add_parser(
        "shard", help="run one cluster shard worker (normally spawned by `cluster`)"
    )
    shard.add_argument("--store", required=True, help="segment store directory (.rseg)")
    shard.add_argument("--manifest", required=True, help="cluster manifest (CLUSTER.json)")
    shard.add_argument("--shard-id", type=int, required=True)
    shard.add_argument("--replica", type=int, default=0)
    shard.add_argument(
        "--input",
        help="QB cube file (default: the manifest's recorded input)",
    )
    shard.add_argument("--host", default="127.0.0.1")
    shard.add_argument("--port", type=int, default=0)
    shard.add_argument(
        "--endpoint-file",
        help="atomically write the bound {host, port, pid} here once serving",
    )
    shard.add_argument("--threads", type=int, default=4)
    shard.add_argument("--cache-size", type=int, default=1024)
    shard.add_argument("--request-timeout", type=float, default=30.0)
    shard.add_argument("--max-inflight", type=int, default=64)
    shard.add_argument("--max-queued", type=int, default=128)
    shard.add_argument("--drain-timeout", type=float, default=10.0)
    shard.add_argument("--verbose", action="store_true")
    _add_telemetry_args(shard)
    shard.set_defaults(handler=_cmd_shard)

    router = sub.add_parser(
        "router", help="run a cluster router over an existing shard tier"
    )
    router.add_argument("--manifest", required=True, help="cluster manifest (CLUSTER.json)")
    router.add_argument(
        "--input",
        help="QB cube file for routed plans (default: the manifest's input)",
    )
    router.add_argument("--host", default="127.0.0.1")
    router.add_argument("--port", type=int, default=8080)
    router.add_argument("--threads", type=int, default=8)
    router.add_argument(
        "--reuse-port",
        action="store_true",
        help="bind with SO_REUSEPORT so several router processes share the port",
    )
    router.add_argument("--shard-timeout", type=float, default=10.0)
    router.add_argument("--request-timeout", type=float, default=30.0)
    router.add_argument("--max-inflight", type=int, default=64)
    router.add_argument("--max-queued", type=int, default=128)
    router.add_argument("--drain-timeout", type=float, default=10.0)
    router.add_argument("--verbose", action="store_true")
    _add_telemetry_args(router)
    router.set_defaults(handler=_cmd_router)

    scrub = sub.add_parser(
        "scrub", help="CRC-verify a segment store; quarantine and repair corruption"
    )
    scrub.add_argument("--store", required=True, help="segment store directory (.rseg)")
    scrub.add_argument(
        "--check-only",
        action="store_true",
        help="audit without touching disk: report corruption, repair nothing",
    )
    scrub.add_argument(
        "--shallow",
        action="store_true",
        help="verify file sizes and CRCs only, skip full segment decodes",
    )
    scrub.add_argument("--json", action="store_true", help="print the report as JSON")
    scrub.set_defaults(handler=_cmd_scrub)

    migrate = sub.add_parser(
        "migrate", help="convert a relationship store between formats"
    )
    migrate.add_argument("--input", required=True, help="source store (any format)")
    migrate.add_argument(
        "--output", required=True, help="target store; format follows the extension"
    )
    migrate.add_argument(
        "--cube",
        help="the QB cube the store was computed from; lets a segment "
        "target partition by dataset/lattice signature",
    )
    migrate.add_argument(
        "--indent", type=int, default=2, help="indentation for JSON targets"
    )
    migrate.set_defaults(handler=_cmd_migrate)

    compact = sub.add_parser(
        "compact", help="fold a segment store's write-ahead log into segments"
    )
    compact.add_argument("--store", required=True, help="segment store directory (.rseg)")
    compact.add_argument(
        "--input",
        help="the QB cube the store was computed from; re-partitions the "
        "new segments by dataset/lattice signature",
    )
    compact.set_defaults(handler=_cmd_compact)

    trace = sub.add_parser(
        "trace",
        help="render one distributed trace as a span tree",
        description="Assemble and render every span recorded for a trace "
        "ID — the value of the X-Trace-Id response header.  Either asks "
        "a live server/router (GET /debug/trace/<id>, which on a router "
        "scatter/gathers every shard replica), or reads the per-process "
        "span files a --span-dir produced, offline.",
    )
    trace.add_argument("trace_id", help="32-hex trace ID (X-Trace-Id header)")
    trace.add_argument(
        "--server",
        metavar="URL",
        help="live server or router base URL, e.g. http://127.0.0.1:8080",
    )
    trace.add_argument(
        "--dir",
        metavar="PATH",
        help="span directory (or a single spans-<pid>.jsonl file) "
        "written by --span-dir",
    )
    trace.add_argument(
        "--json", action="store_true", help="print raw span records as JSON"
    )
    trace.add_argument("--timeout", type=float, default=10.0)
    trace.set_defaults(handler=_cmd_trace)

    top = sub.add_parser(
        "top",
        help="live terminal dashboard over a server or router",
        description="Poll /metrics and /debug/vars and redraw a plain-text "
        "dashboard: qps, latency percentiles, per-endpoint table, cache "
        "hit ratio, breaker state, shard health, changefeed lag.",
    )
    top.add_argument(
        "--server",
        metavar="URL",
        default="http://127.0.0.1:8080",
        help="base URL to poll (default http://127.0.0.1:8080)",
    )
    top.add_argument(
        "--interval", type=float, default=2.0, help="refresh seconds (default 2)"
    )
    top.add_argument(
        "--iterations",
        type=int,
        default=0,
        help="stop after this many frames; 0 runs until interrupted",
    )
    top.add_argument(
        "--no-clear",
        action="store_true",
        help="never emit ANSI clear codes; print frames sequentially",
    )
    top.set_defaults(handler=_cmd_top)
    return parser


def main(argv: list[str] | None = None) -> int:
    args = build_parser().parse_args(argv)
    try:
        return args.handler(args)
    except ReproError as exc:
        print(f"repro: error: {exc}", file=sys.stderr)
        return EXIT_ERROR
    except KeyboardInterrupt:
        print("repro: interrupted (checkpoint flushed; rerun with --resume)", file=sys.stderr)
        return EXIT_INTERRUPTED
    except BrokenPipeError:
        # stdout closed early (e.g. `repro inspect ... | head`); not an error
        sys.stderr.close()
        return 0


if __name__ == "__main__":
    sys.exit(main())
