"""repro.cluster — the sharded, replicated serve tier.

One segment store, many processes:

* :mod:`~repro.cluster.ring` — consistent hashing (virtual nodes) over
  the store's ``(dataset, lattice-signature)`` partition keys;
* :mod:`~repro.cluster.manifest` — the atomically-committed topology
  file every process derives its view from;
* :mod:`~repro.cluster.shard` — a read-only worker serving only its
  assigned partitions (lazy mmap attach, shared page cache);
* :mod:`~repro.cluster.router` — scatter/gather front door with
  dominance-pruned fan-out, per-replica circuit breakers and failover;
* :mod:`~repro.cluster.supervisor` — ``repro cluster`` process tree:
  spawn, watch, respawn, drain.

See ``docs/cluster.md`` for topology and the operations runbook.
"""

from repro.cluster.manifest import CLUSTER_MANIFEST_NAME, ClusterManifest, shard_node
from repro.cluster.ring import DEFAULT_VNODES, HashRing, partition_key_str, ring_hash
from repro.cluster.router import Router, RouterServer, ShardUnavailableError, start_router
from repro.cluster.shard import build_shard_engine, prune_foreign_pairs, write_endpoint_file
from repro.cluster.supervisor import ClusterSupervisor

__all__ = [
    "CLUSTER_MANIFEST_NAME",
    "ClusterManifest",
    "ClusterSupervisor",
    "DEFAULT_VNODES",
    "HashRing",
    "Router",
    "RouterServer",
    "ShardUnavailableError",
    "build_shard_engine",
    "partition_key_str",
    "prune_foreign_pairs",
    "ring_hash",
    "shard_node",
    "start_router",
    "write_endpoint_file",
]
