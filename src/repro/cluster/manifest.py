"""The cluster manifest: one JSON file describing the whole topology.

The supervisor owns the manifest; every other process derives its view
of the cluster from it:

* **shards** read it to learn which partition keys they serve;
* **routers** read it to build the ring, the partition list and the
  live replica endpoints — and re-read it (cheap mtime poll) so a
  respawned worker's new port, or a newly added shard, shows up
  without restarting the router;
* **operators** read it to find worker PIDs and ports.

It is written atomically (temp + ``os.replace``) with a bumped
``generation`` on every change, so a reader never observes a
half-written topology — the same commit discipline as the segment
store's ``MANIFEST.json``, one level up.

Ring parameters (``vnodes``) live in the manifest, so adding a shard
re-derives the same ring everywhere and only moves the keys consistent
hashing says must move.
"""

from __future__ import annotations

import json
import os
from pathlib import Path

from repro.errors import ReproError
from repro.cluster.ring import DEFAULT_VNODES, HashRing, partition_key_str

__all__ = ["ClusterManifest", "CLUSTER_MANIFEST_NAME", "shard_node"]

CLUSTER_MANIFEST_NAME = "CLUSTER.json"
CLUSTER_FORMAT = "repro-cluster"
CLUSTER_VERSION = 1


def shard_node(shard: int) -> str:
    """The ring-node name of shard ``shard``."""
    return f"shard-{shard}"


class ClusterManifest:
    """In-memory view of (and writer for) the cluster manifest file."""

    def __init__(
        self,
        store: str,
        shards: int,
        replicas: int = 1,
        partitions: list[dict] | None = None,
        vnodes: int = DEFAULT_VNODES,
        input_path: str | None = None,
        generation: int = 0,
        workers: list[dict] | None = None,
        router: dict | None = None,
    ):
        if shards < 1:
            raise ValueError(f"shards must be >= 1, got {shards}")
        if replicas < 1:
            raise ValueError(f"replicas must be >= 1, got {replicas}")
        self.store = str(store)
        self.shards = int(shards)
        self.replicas = int(replicas)
        #: ``[{"dataset": ..., "signature": [...] | None}, ...]`` — the
        #: segment store's partition keys at supervision time.
        self.partitions = partitions if partitions is not None else []
        self.vnodes = int(vnodes)
        self.input_path = input_path
        self.generation = int(generation)
        #: ``[{"shard", "replica", "host", "port", "pid"}, ...]``
        self.workers = workers if workers is not None else []
        self.router = router

    # ------------------------------------------------------------------
    def ring(self) -> HashRing:
        return HashRing(
            (shard_node(index) for index in range(self.shards)), vnodes=self.vnodes
        )

    def partition_keys(self) -> list[str]:
        return [
            partition_key_str(entry.get("dataset"), entry.get("signature"))
            for entry in self.partitions
        ]

    def assignment(self) -> dict[str, list[str]]:
        """Partition keys per shard node, derived from the ring."""
        return self.ring().assignment(self.partition_keys())

    def partitions_for(self, shard: int) -> list[dict]:
        """The partition entries (dataset/signature dicts) shard serves."""
        node = shard_node(shard)
        ring = self.ring()
        return [
            entry
            for entry in self.partitions
            if ring.node_for(
                partition_key_str(entry.get("dataset"), entry.get("signature"))
            )
            == node
        ]

    def replicas_of(self, shard: int) -> list[dict]:
        return [worker for worker in self.workers if worker.get("shard") == shard]

    def upsert_worker(self, worker: dict) -> None:
        """Record (or replace) one worker's endpoint entry."""
        self.workers = [
            existing
            for existing in self.workers
            if not (
                existing.get("shard") == worker.get("shard")
                and existing.get("replica") == worker.get("replica")
            )
        ] + [worker]
        self.workers.sort(key=lambda w: (w.get("shard", 0), w.get("replica", 0)))

    # ------------------------------------------------------------------
    def to_dict(self) -> dict:
        return {
            "format": CLUSTER_FORMAT,
            "version": CLUSTER_VERSION,
            "generation": self.generation,
            "store": self.store,
            "input": self.input_path,
            "shards": self.shards,
            "replicas": self.replicas,
            "ring": {"vnodes": self.vnodes},
            "partitions": self.partitions,
            "workers": self.workers,
            "router": self.router,
        }

    def write(self, path: str | os.PathLike) -> None:
        """Atomically commit the manifest (bumps ``generation``)."""
        from repro.store import atomic_write_text

        self.generation += 1
        atomic_write_text(Path(path), json.dumps(self.to_dict(), indent=2))

    @classmethod
    def load(cls, path: str | os.PathLike) -> "ClusterManifest":
        target = Path(path)
        try:
            payload = json.loads(target.read_text(encoding="utf-8"))
        except FileNotFoundError:
            raise ReproError(f"no cluster manifest at {target}") from None
        except (OSError, json.JSONDecodeError) as exc:
            raise ReproError(f"cannot read cluster manifest {target}: {exc}") from exc
        if not isinstance(payload, dict) or payload.get("format") != CLUSTER_FORMAT:
            raise ReproError(f"{target} is not a cluster manifest")
        if payload.get("version") != CLUSTER_VERSION:
            raise ReproError(
                f"unsupported cluster manifest version {payload.get('version')!r}"
            )
        return cls(
            store=payload["store"],
            shards=payload["shards"],
            replicas=payload.get("replicas", 1),
            partitions=payload.get("partitions", []),
            vnodes=payload.get("ring", {}).get("vnodes", DEFAULT_VNODES),
            input_path=payload.get("input"),
            generation=payload.get("generation", 0),
            workers=payload.get("workers", []),
            router=payload.get("router"),
        )

    def __repr__(self) -> str:
        return (
            f"ClusterManifest(shards={self.shards}, replicas={self.replicas}, "
            f"partitions={len(self.partitions)}, workers={len(self.workers)}, "
            f"generation={self.generation})"
        )
