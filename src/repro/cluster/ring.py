"""Consistent-hash ring over segment partition keys.

The serve tier shards by exactly what :mod:`repro.storage` partitions
by: the ``(dataset, lattice-signature)`` key of each segment.  A
:class:`HashRing` places ``vnodes`` virtual points per shard on a
64-bit ring (BLAKE2b, stable across processes and Python versions) and
assigns every partition key to the first shard point at or after the
key's hash, walking clockwise.

Why consistent hashing instead of ``hash(key) % shards``:

* **bounded movement** — adding one shard to an ``N``-shard ring moves
  only the keys that now fall on the new shard's points, ~``1/(N+1)``
  of the total, and *never* moves a key between two pre-existing
  shards; modulo hashing reshuffles almost everything.
* **balance** — virtual nodes smooth out the arc-length variance of a
  single point per shard; with the default 128 vnodes the max/min
  shard load ratio stays small (property-tested in
  ``tests/property/test_ring_props.py``).
* **replica placement** — :meth:`HashRing.nodes_for` keeps walking
  clockwise past the owner to enumerate distinct fallback shards, so
  the same ring answers "who owns this" and "who else could".

Keys and nodes are plain strings; :func:`partition_key_str` renders
the storage layer's ``(dataset, signature)`` tuples canonically.
"""

from __future__ import annotations

import hashlib
from bisect import bisect_right, insort
from typing import Iterable, Sequence

__all__ = ["HashRing", "partition_key_str", "ring_hash"]

#: Virtual points per node; 128 keeps max/min load ratio low for the
#: shard counts this tier targets (2..64) at negligible memory cost.
DEFAULT_VNODES = 128


def ring_hash(data: str) -> int:
    """Stable 64-bit position on the ring (BLAKE2b, not ``hash()``)."""
    digest = hashlib.blake2b(data.encode("utf-8"), digest_size=8).digest()
    return int.from_bytes(digest, "big")


def partition_key_str(dataset, signature) -> str:
    """Canonical string form of a storage partition key.

    ``(None, None)`` — the storage layer's default partition for pairs
    with no recorded key — renders as ``"default"`` so every process
    (supervisor, router, shard) hashes it identically.
    """
    if dataset is None and signature is None:
        return "default"
    sig = ",".join(str(level) for level in signature) if signature is not None else ""
    return f"{dataset or ''}|{sig}"


class HashRing:
    """Consistent-hash ring with virtual nodes.

    Nodes are opaque strings (the cluster uses ``"shard-<i>"``).  All
    operations are deterministic: two rings built from the same nodes
    and ``vnodes`` agree on every assignment, which is what lets the
    router, the supervisor and each shard derive the same topology
    from the manifest without coordination.
    """

    def __init__(self, nodes: Iterable[str] = (), vnodes: int = DEFAULT_VNODES):
        if vnodes < 1:
            raise ValueError(f"vnodes must be >= 1, got {vnodes}")
        self.vnodes = int(vnodes)
        self._nodes: set[str] = set()
        #: sorted (point, node) pairs; parallel point list for bisect
        self._ring: list[tuple[int, str]] = []
        self._points: list[int] = []
        for node in nodes:
            self.add_node(node)

    # ------------------------------------------------------------------
    def add_node(self, node: str) -> None:
        if node in self._nodes:
            return
        self._nodes.add(node)
        for vnode in range(self.vnodes):
            insort(self._ring, (ring_hash(f"{node}#{vnode}"), node))
        self._points = [point for point, _ in self._ring]

    def remove_node(self, node: str) -> None:
        if node not in self._nodes:
            return
        self._nodes.discard(node)
        self._ring = [(point, owner) for point, owner in self._ring if owner != node]
        self._points = [point for point, _ in self._ring]

    @property
    def nodes(self) -> frozenset[str]:
        return frozenset(self._nodes)

    def __len__(self) -> int:
        return len(self._nodes)

    def __contains__(self, node: str) -> bool:
        return node in self._nodes

    # ------------------------------------------------------------------
    def node_for(self, key: str) -> str:
        """The shard owning ``key`` (first point clockwise from its hash)."""
        if not self._ring:
            raise ValueError("ring has no nodes")
        index = bisect_right(self._points, ring_hash(key)) % len(self._ring)
        return self._ring[index][1]

    def nodes_for(self, key: str, count: int) -> list[str]:
        """``count`` distinct shards for ``key``, owner first.

        Walks clockwise collecting distinct nodes — the canonical
        replica-placement order, also used as the failover sequence.
        """
        if not self._ring:
            raise ValueError("ring has no nodes")
        count = min(count, len(self._nodes))
        start = bisect_right(self._points, ring_hash(key))
        picked: list[str] = []
        seen: set[str] = set()
        for offset in range(len(self._ring)):
            node = self._ring[(start + offset) % len(self._ring)][1]
            if node not in seen:
                seen.add(node)
                picked.append(node)
                if len(picked) == count:
                    break
        return picked

    def assignment(self, keys: Sequence[str]) -> dict[str, list[str]]:
        """Every node's assigned keys (all nodes present, possibly empty)."""
        out: dict[str, list[str]] = {node: [] for node in sorted(self._nodes)}
        for key in keys:
            out[self.node_for(key)].append(key)
        return out

    def stats(self, keys: Sequence[str]) -> dict:
        """Balance facts for ``keys``: per-node load, max/min ratio."""
        loads = {node: len(assigned) for node, assigned in self.assignment(keys).items()}
        counts = list(loads.values())
        busiest = max(counts) if counts else 0
        quietest = min(counts) if counts else 0
        return {
            "nodes": len(self._nodes),
            "vnodes": self.vnodes,
            "keys": len(keys),
            "loads": loads,
            "max_load": busiest,
            "min_load": quietest,
            "ratio": (busiest / quietest) if quietest else float("inf"),
        }

    def __repr__(self) -> str:
        return f"HashRing(nodes={len(self._nodes)}, vnodes={self.vnodes})"
