"""The cluster router: consistent-hash fan-out over shard workers.

The router is the tier's front door.  For every query it:

1. **plans** — maps the query onto the smallest set of shards that can
   hold the answer.  Observation queries resolve the observation's
   ``(dataset, lattice-signature)`` partition (the router holds the
   observation *space* — metadata only, no relationship data) and then
   prune partitions exactly the way the storage manifest does:
   ``containers`` needs only partitions whose signature *dominates*
   the query's, ``complements`` only equal signatures, and so on.
   Partitions map to shards through the same
   :class:`~repro.cluster.ring.HashRing` the supervisor used.
2. **fans out** — a one-shard plan is *proxied* byte-for-byte (no JSON
   decode on the hot path); a multi-shard plan scatters concurrently
   and merges (union, top-k re-rank, count sums).
3. **fails over** — each shard's replicas carry a per-replica
   :class:`~repro.resilience.breaker.CircuitBreaker`; the router picks
   the **least-inflight** admitted replica and walks to the next on
   connection failure or 5xx, so killing one worker mid-load costs a
   retry, not an error.

Trace IDs (``X-Trace-Id``) and deadline budgets (``X-Deadline-Ms``,
the *remaining* budget) ride every sub-request, so one client trace
stitches through router and shard spans and a slow shard cannot
outlive its caller's patience.  The router's own admission control is
the same :class:`~repro.resilience.shed.LoadShedder` the serve path
uses.

Topology is dynamic: the router polls the cluster manifest's mtime and
rebuilds its replica table when the supervisor rewrites it (respawned
worker, added shard) — per-replica breaker state survives for
endpoints that did not change.
"""

from __future__ import annotations

import http.client
import json
import threading
import time
from concurrent.futures import ThreadPoolExecutor
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer
from pathlib import Path
from urllib.parse import parse_qs, unquote, urlsplit

from repro.errors import OverloadedError, ReproError
from repro.obs import slowlog as _slowlog
from repro.obs.tracing import (
    bind_parent_span,
    bind_trace,
    current_span_id,
    new_trace_id,
    recorder,
    trace,
)
from repro.resilience.breaker import CircuitBreaker, OPEN
from repro.resilience.deadline import Deadline, bind_deadline, remaining_ms
from repro.resilience.shed import LoadShedder
from repro.cluster.manifest import ClusterManifest, shard_node
from repro.cluster.ring import partition_key_str
from repro.service.metrics import ServiceMetrics
from repro.service.server import (
    _STREAMED,
    MAX_LONGPOLL_SECONDS,
    _HandlerPool,
    _HTTPError,
    _sse_metrics,
    pooled_handle,
)

__all__ = ["Router", "RouterServer", "ShardUnavailableError", "start_router"]

# Registry metrics resolved once per process; see docs/observability.md.
_METRICS = None


def _metrics():
    global _METRICS
    if _METRICS is None:
        from repro.obs.registry import get_registry

        registry = get_registry()
        _METRICS = {
            "shards": registry.gauge(
                "repro_cluster_shards",
                "Shards in the routed cluster topology.",
            ),
            "generation": registry.gauge(
                "repro_cluster_manifest_generation",
                "Cluster-manifest generation the router last applied.",
            ),
            "replicas_up": registry.gauge(
                "repro_cluster_replicas_up",
                "Replicas per shard whose circuit breaker is not open.",
                labelnames=("shard",),
            ),
            "fanout": registry.counter(
                "repro_cluster_fanout_requests_total",
                "Sub-requests the router sent, by shard.",
                labelnames=("shard",),
            ),
            "failovers": registry.counter(
                "repro_cluster_failovers_total",
                "Sub-requests retried on another replica, by shard.",
                labelnames=("shard",),
            ),
            "errors": registry.counter(
                "repro_cluster_shard_errors_total",
                "Failed sub-requests, by shard and failure kind.",
                labelnames=("shard", "kind"),
            ),
            "scatter": registry.histogram(
                "repro_cluster_scatter_width",
                "Shards consulted per routed query.",
                buckets=(1.0, 2.0, 4.0, 8.0, 16.0, 32.0),
            ),
            "federated": registry.counter(
                "repro_cluster_federated_scrapes_total",
                "Federated /metrics scrapes the router assembled.",
            ),
            "federation_errors": registry.counter(
                "repro_cluster_federation_errors_total",
                "Replica scrapes that failed or were unparseable during federation.",
            ),
        }
    return _METRICS


class ShardUnavailableError(ReproError):
    """Every replica of a required shard refused or failed."""

    def __init__(self, shard: int, detail: str, retry_after: float = 1.0):
        super().__init__(
            f"shard {shard} is unavailable ({detail}); the answer would be "
            "incomplete, failing instead"
        )
        self.shard = shard
        self.retry_after = retry_after


class Replica:
    """One shard worker endpoint plus its health state."""

    def __init__(self, shard: int, replica: int, host: str, port: int):
        self.shard = shard
        self.replica = replica
        self.host = host
        self.port = int(port)
        self.inflight = 0
        # Small window / fast reset: a killed worker should be noticed
        # after a handful of refused connections and re-probed within a
        # second of its respawn.
        self.breaker = CircuitBreaker(
            window=16,
            min_samples=2,
            failure_threshold=0.5,
            reset_timeout=1.0,
            half_open_probes=1,
            name=f"shard-{shard}.{replica}",
        )

    @property
    def endpoint(self) -> tuple[str, int]:
        return (self.host, self.port)

    def __repr__(self) -> str:
        return (
            f"Replica(shard={self.shard}, replica={self.replica}, "
            f"{self.host}:{self.port}, breaker={self.breaker.state})"
        )


def _dominates(container_sig, contained_sig) -> bool:
    return len(container_sig) == len(contained_sig) and all(
        a <= b for a, b in zip(container_sig, contained_sig)
    )


class Router:
    """Routing table + scatter/gather client over the shard tier."""

    def __init__(
        self,
        manifest: ClusterManifest,
        space=None,
        manifest_path: str | None = None,
        shard_timeout: float = 10.0,
        poll_interval: float = 0.5,
    ):
        self.shard_timeout = float(shard_timeout)
        self.poll_interval = float(poll_interval)
        self._lock = threading.Lock()
        self._local = threading.local()
        self._replicas: dict[int, list[Replica]] = {}
        self._partitions: list[tuple[str | None, tuple | None, str]] = []
        self._ring = None
        self.manifest = manifest
        self.manifest_path = str(manifest_path) if manifest_path else None
        self._manifest_mtime: float | None = None
        self._stop = threading.Event()
        self._poller: threading.Thread | None = None
        # Observation routing metadata: uri -> (dataset, signature).
        self._locate: dict[str, tuple[str, tuple]] = {}
        if space is not None:
            for record in space.observations:
                self._locate[str(record.uri)] = (
                    str(record.dataset),
                    space.level_signature(record.index),
                )
        self._executor = ThreadPoolExecutor(
            max_workers=max(4, 2 * manifest.shards), thread_name_prefix="repro-router"
        )
        self.apply_manifest(manifest)
        if self.manifest_path:
            self._manifest_mtime = self._mtime()
            self._poller = threading.Thread(
                target=self._poll_manifest, name="repro-router-manifest", daemon=True
            )
            self._poller.start()

    # ------------------------------------------------------------------
    # Topology
    # ------------------------------------------------------------------
    def apply_manifest(self, manifest: ClusterManifest) -> None:
        """Adopt a (new) topology, keeping state for unchanged endpoints."""
        ring = manifest.ring()
        partitions = [
            (
                entry.get("dataset"),
                tuple(entry["signature"]) if entry.get("signature") is not None else None,
                partition_key_str(entry.get("dataset"), entry.get("signature")),
            )
            for entry in manifest.partitions
        ]
        with self._lock:
            old = {
                (replica.shard, replica.replica, replica.host, replica.port): replica
                for replicas in self._replicas.values()
                for replica in replicas
            }
            table: dict[int, list[Replica]] = {i: [] for i in range(manifest.shards)}
            for worker in manifest.workers:
                shard = int(worker["shard"])
                if shard not in table or worker.get("port") in (None, 0):
                    continue
                key = (
                    shard,
                    int(worker.get("replica", 0)),
                    worker["host"],
                    int(worker["port"]),
                )
                table[shard].append(old.get(key) or Replica(*key))
            for replicas in table.values():
                replicas.sort(key=lambda replica: replica.replica)
            self.manifest = manifest
            self._ring = ring
            self._partitions = partitions
            self._replicas = table
        metrics = _metrics()
        metrics["shards"].set(manifest.shards)
        metrics["generation"].set(manifest.generation)
        self._update_replica_gauges()

    def _update_replica_gauges(self) -> None:
        with self._lock:
            table = {shard: list(replicas) for shard, replicas in self._replicas.items()}
        gauge = _metrics()["replicas_up"]
        for shard, replicas in table.items():
            gauge.set(
                sum(1 for replica in replicas if replica.breaker.state != OPEN),
                shard=shard,
            )

    def _mtime(self) -> float | None:
        try:
            return Path(self.manifest_path).stat().st_mtime
        except OSError:
            return None

    def _poll_manifest(self) -> None:
        while not self._stop.wait(self.poll_interval):
            mtime = self._mtime()
            if mtime is None or mtime == self._manifest_mtime:
                continue
            self._manifest_mtime = mtime
            try:
                self.apply_manifest(ClusterManifest.load(self.manifest_path))
            except ReproError:
                continue  # mid-rewrite or transient; next poll retries

    def close(self) -> None:
        self._stop.set()
        if self._poller is not None:
            self._poller.join(timeout=2.0)
        self._executor.shutdown(wait=False)

    # ------------------------------------------------------------------
    # Planning
    # ------------------------------------------------------------------
    def locate(self, uri: str) -> tuple[str, tuple] | None:
        return self._locate.get(uri)

    def _shard_of_key(self, key: str) -> int:
        return int(self._ring.node_for(key).rsplit("-", 1)[1])

    def plan(self, relation: str, uri: str | None = None) -> list[int]:
        """The shard ids that must be consulted for this query.

        Prunes by lattice dominance when the observation's partition is
        known, mirroring ``SegmentStore.segments_for``: ``containers``
        keeps partitions whose signature dominates the observation's,
        ``contained`` the dominated ones, ``complements`` the equal
        ones.  Unprunable relations (``related``, ``partial``,
        ``summary``) and unknown observations consult every partition.
        The ``default`` partition (pairs without a recorded key) is
        never pruned.
        """
        with self._lock:
            partitions = self._partitions
            shards = self.manifest.shards
        if not partitions:
            return list(range(shards))
        located = self.locate(uri) if uri is not None else None
        keys: set[str] = set()
        if located is None or relation not in ("containers", "contained", "complements"):
            keys = {key for _, _, key in partitions}
        else:
            _, signature = located
            for _, seg_sig, key in partitions:
                if seg_sig is None:
                    keys.add(key)  # default partition: cannot prune
                elif relation == "containers" and _dominates(seg_sig, signature):
                    keys.add(key)
                elif relation == "contained" and _dominates(signature, seg_sig):
                    keys.add(key)
                elif relation == "complements" and seg_sig == signature:
                    keys.add(key)
        return sorted({self._shard_of_key(key) for key in keys})

    def plan_single(self, affinity: str) -> list[int]:
        """One shard for queries any shard can answer (space metadata)."""
        with self._lock:
            shards = self.manifest.shards
        if self._ring is None or not len(self._ring):
            return [0]
        return [self._shard_of_key(f"affinity:{affinity}")] if shards else [0]

    # ------------------------------------------------------------------
    # Transport
    # ------------------------------------------------------------------
    def _connection(self, replica: Replica, timeout: float) -> http.client.HTTPConnection:
        cache = getattr(self._local, "conns", None)
        if cache is None:
            cache = self._local.conns = {}
        conn = cache.get(replica.endpoint)
        if conn is None:
            conn = http.client.HTTPConnection(
                replica.host, replica.port, timeout=timeout
            )
            cache[replica.endpoint] = conn
        conn.timeout = timeout
        if conn.sock is not None:
            conn.sock.settimeout(timeout)
        return conn

    def _drop_connection(self, replica: Replica) -> None:
        cache = getattr(self._local, "conns", None)
        if cache is not None:
            conn = cache.pop(replica.endpoint, None)
            if conn is not None:
                conn.close()

    def _request_once(self, replica: Replica, path: str, headers: dict, timeout: float):
        """One GET on the cached connection, absorbing benign staleness.

        A pool-served shard closes kept-alive connections under
        pressure (see :func:`~repro.service.server.pooled_keepalive`),
        and an idle one may have timed out server-side since our last
        use.  Hitting that with a *reused* connection is not a replica
        failure — retry exactly once on a fresh connection before
        letting :meth:`call_shard` count anything against the breaker.
        """
        for attempt in (0, 1):
            conn = self._connection(replica, timeout)
            reused = getattr(conn, "_repro_used", False)
            try:
                conn.request("GET", path, headers=headers)
                response = conn.getresponse()
                body = response.read()
            except (
                http.client.RemoteDisconnected,
                http.client.BadStatusLine,
                ConnectionResetError,
                BrokenPipeError,
            ):
                self._drop_connection(replica)
                if reused and attempt == 0:
                    continue
                raise
            except (OSError, http.client.HTTPException):
                self._drop_connection(replica)
                raise
            conn._repro_used = True
            return response.status, dict(response.getheaders()), body
        raise AssertionError("unreachable")  # pragma: no cover

    def _pick_order(self, shard: int) -> list[Replica]:
        """Replicas in failover order: least-inflight first."""
        with self._lock:
            replicas = list(self._replicas.get(shard, ()))
        return sorted(replicas, key=lambda replica: (replica.inflight, replica.replica))

    def call_shard(
        self, shard: int, path: str, headers: dict, timeout: float | None = None
    ) -> tuple[int, dict, bytes]:
        """One GET against shard ``shard``: ``(status, headers, body)``.

        Tries replicas in least-inflight order; a connection failure,
        timeout or 5xx records a breaker failure and fails over to the
        next replica.  Raises :class:`ShardUnavailableError` when no
        replica answers — an incomplete scatter must fail loudly, not
        return a silently partial result.

        ``timeout`` overrides the per-request socket timeout (still
        capped by the deadline budget): long-poll subrequests pass the
        poll wait *plus* the normal shard budget, so an idle feed held
        open on purpose does not look like a dead replica and trip its
        breaker.
        """
        metrics = _metrics()
        order = self._pick_order(shard)
        if not order:
            raise ShardUnavailableError(shard, "no registered replicas")
        budget = remaining_ms()
        timeout = self.shard_timeout if timeout is None else float(timeout)
        if budget is not None:
            timeout = max(0.05, min(timeout, budget / 1000.0))
        detail = "all replicas refused"
        for attempt, replica in enumerate(order):
            if not replica.breaker.allow():
                detail = f"breaker {replica.breaker.state}"
                continue
            if attempt:
                metrics["failovers"].inc(shard=shard)
            with self._lock:
                replica.inflight += 1
            started = time.monotonic()
            try:
                metrics["fanout"].inc(shard=shard)
                status, response_headers, body = self._request_once(
                    replica, path, headers, timeout
                )
            except (OSError, http.client.HTTPException) as exc:
                replica.breaker.record_failure(time.monotonic() - started)
                metrics["errors"].inc(shard=shard, kind=type(exc).__name__)
                detail = f"{type(exc).__name__}: {exc}"
                continue
            finally:
                with self._lock:
                    replica.inflight -= 1
            if status >= 500:
                # The shard answered but could not serve (breaker open,
                # shed, deadline, crash handler): count it against this
                # replica and let another one try.
                replica.breaker.record_failure(time.monotonic() - started)
                metrics["errors"].inc(shard=shard, kind=f"http_{status}")
                detail = f"HTTP {status}"
                continue
            replica.breaker.record_success(time.monotonic() - started)
            return status, response_headers, body
        self._update_replica_gauges()
        raise ShardUnavailableError(shard, detail)

    def scatter(
        self, shards: list[int], path: str, headers: dict, timeout: float | None = None
    ) -> list[tuple[int, int, dict, bytes]]:
        """Concurrent :meth:`call_shard` over ``shards`` (order kept)."""
        _metrics()["scatter"].observe(len(shards))
        if len(shards) == 1:
            status, response_headers, body = self.call_shard(
                shards[0], path, headers, timeout
            )
            return [(shards[0], status, response_headers, body)]
        futures = [
            (shard, self._executor.submit(self.call_shard, shard, path, headers, timeout))
            for shard in shards
        ]
        out = []
        error: ShardUnavailableError | None = None
        for shard, future in futures:
            try:
                status, response_headers, body = future.result()
                out.append((shard, status, response_headers, body))
            except ShardUnavailableError as exc:
                error = exc
        if error is not None:
            raise error
        return out

    def broadcast(
        self, path: str, headers: dict, timeout: float | None = None
    ) -> list[tuple[int, int, int | None, bytes]]:
        """Best-effort GET against every (shard, replica) — telemetry reads.

        Unlike :meth:`call_shard` this neither fails over nor counts
        breaker failures: a federated ``/metrics`` scrape or a
        ``/debug/trace`` gather must *show* a sick replica's absence,
        not mask it behind its healthy peer.  Returns
        ``(shard, replica, status_or_None, body)`` per endpoint, in
        (shard, replica) order; ``status None`` means the replica was
        unreachable and ``body`` carries the error text.
        """
        with self._lock:
            targets = [
                (shard, replica)
                for shard, rs in sorted(self._replicas.items())
                for replica in sorted(rs, key=lambda r: r.replica)
            ]
        if not targets:
            return []
        budget = timeout if timeout is not None else self.shard_timeout

        def one(shard: int, replica: Replica):
            try:
                status, _, body = self._request_once(replica, path, headers, budget)
                return (shard, replica.replica, status, body)
            except (OSError, http.client.HTTPException) as exc:
                return (shard, replica.replica, None, str(exc).encode("utf-8"))

        futures = [
            self._executor.submit(one, shard, replica) for shard, replica in targets
        ]
        return [future.result() for future in futures]

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------
    def stats(self) -> dict:
        with self._lock:
            manifest = self.manifest
            replicas = {
                shard: [
                    {
                        "replica": replica.replica,
                        "host": replica.host,
                        "port": replica.port,
                        "inflight": replica.inflight,
                        "breaker": replica.breaker.state,
                    }
                    for replica in rs
                ]
                for shard, rs in self._replicas.items()
            }
            partition_count = len(self._partitions)
        ring = manifest.ring()
        return {
            "shards": manifest.shards,
            "replicas": replicas,
            "partitions": partition_count,
            "generation": manifest.generation,
            "observations": len(self._locate) or None,
            "ring": ring.stats(manifest.partition_keys()),
        }

    def healthy(self) -> tuple[bool, dict[int, int]]:
        """(every shard reachable?, live replica count per shard)."""
        with self._lock:
            table = {shard: list(rs) for shard, rs in self._replicas.items()}
        up = {
            shard: sum(1 for replica in rs if replica.breaker.state != OPEN)
            for shard, rs in table.items()
        }
        return all(count > 0 for count in up.values()) and bool(up), up


# ----------------------------------------------------------------------
# Gather merges (module-level so tests can hit them directly)
# ----------------------------------------------------------------------
def merge_relation_lists(field: str, bodies: list[dict]) -> list[str]:
    merged: set[str] = set()
    for body in bodies:
        merged.update(body.get(field, ()))
    return sorted(merged)


def merge_related(bodies: list[dict], k: int) -> list[dict]:
    best: dict[str, dict] = {}
    for body in bodies:
        for entry in body.get("related", ()):
            current = best.get(entry["uri"])
            if current is None or entry["score"] > current["score"]:
                best[entry["uri"]] = entry
    ranked = sorted(best.values(), key=lambda entry: (-entry["score"], entry["uri"]))
    return ranked[: max(k, 0)]


def merge_partial(bodies: list[dict], k: int) -> list[dict]:
    best: dict[tuple[str, str], dict] = {}
    for body in bodies:
        for entry in body.get("partial", ()):
            key = (entry["uri"], entry["direction"])
            current = best.get(key)
            if current is None or entry["degree"] > current["degree"]:
                best[key] = entry
    ranked = sorted(best.values(), key=lambda entry: (-entry["degree"], entry["uri"]))
    return ranked[: max(k, 0)]


def merge_summary(bodies: list[dict]) -> dict:
    merged: dict = {}
    for body in bodies:
        if not merged:
            merged = dict(body)
            continue
        for field in (
            "containers",
            "contained",
            "complements",
            "partial_containers",
            "partial_contained",
        ):
            merged[field] = merged.get(field, 0) + body.get(field, 0)
        for field in ("dataset", "cube"):
            if merged.get(field) is None:
                merged[field] = body.get(field)
    return merged


def merge_observation_lists(bodies: list[dict], limit: int | None) -> dict:
    merged: set[str] = set()
    for body in bodies:
        merged.update(body.get("observations", ()))
    ordered = sorted(merged)
    if limit is not None:
        ordered = ordered[:limit]
    return {"observations": ordered, "count": len(ordered)}


def merge_changes(bodies: list[dict], limit: int | None = None) -> dict:
    """Per-shard changefeed pages merged in offset order.

    Every shard reads the same store-level feed, so identical offsets
    collapse (first body wins); the merged page is strictly ascending
    by offset, the head is the max any shard reported.
    """
    by_offset: dict[int, dict] = {}
    head = 0
    since = 0
    for body in bodies:
        head = max(head, int(body.get("head", 0) or 0))
        since = int(body.get("since", 0) or 0)
        for record in body.get("changes", ()):
            offset = record.get("offset")
            if isinstance(offset, int):
                by_offset.setdefault(offset, record)
    ordered = [by_offset[offset] for offset in sorted(by_offset)]
    if limit is not None:
        ordered = ordered[: max(limit, 0)]
    return {
        "since": since,
        "head": head,
        "count": len(ordered),
        "next": ordered[-1]["offset"] if ordered else since,
        "changes": ordered,
    }


# ----------------------------------------------------------------------
# The HTTP front end
# ----------------------------------------------------------------------
class RouterHandler(BaseHTTPRequestHandler):
    """Routes one request onto the shard tier."""

    server: "RouterServer"
    protocol_version = "HTTP/1.1"

    def setup(self) -> None:
        self.timeout = self.server.request_timeout
        super().setup()

    def handle(self) -> None:
        if getattr(self.server, "_pool", None) is not None:
            pooled_handle(self)
        else:
            super().handle()

    def log_message(self, format: str, *args) -> None:  # noqa: A002 - stdlib signature
        if self.server.verbose:
            super().log_message(format, *args)

    def _reply(self, status, payload, content_type="application/json", headers=None):
        body = (
            payload
            if isinstance(payload, bytes)
            else payload.encode("utf-8")
            if isinstance(payload, str)
            else json.dumps(payload, default=str).encode("utf-8")
        )
        self.send_response(status)
        self.send_header("Content-Type", content_type)
        self.send_header("Content-Length", str(len(body)))
        trace_id = getattr(self, "_trace_id", None)
        if trace_id:
            self.send_header("X-Trace-Id", trace_id)
        for name, value in (headers or {}).items():
            self.send_header(name, value)
        self.end_headers()
        self.wfile.write(body)

    def _request_deadline(self) -> Deadline | None:
        raw = self.headers.get("X-Deadline-Ms")
        if raw is None:
            return None
        try:
            return Deadline(float(raw))
        except ValueError:
            raise _HTTPError(
                400, f"X-Deadline-Ms must be a positive number of milliseconds, got {raw!r}"
            ) from None

    def _dispatch(self, method: str) -> None:
        split = urlsplit(self.path)
        segments = [unquote(part) for part in split.path.split("/") if part]
        query = {key: values[-1] for key, values in parse_qs(split.query).items()}
        self._trace_id = self.headers.get("X-Trace-Id") or new_trace_id()
        parent_span_id = self.headers.get("X-Span-Id") or None
        deadline_header = self.headers.get("X-Deadline-Ms")
        started = time.perf_counter()
        slow_token = _slowlog.begin_request()
        try:
            with bind_trace(self._trace_id), bind_parent_span(parent_span_id), trace(
                "router.request", method=method, path=split.path, role="router"
            ) as span:
                if deadline_header is not None:
                    span.fields["deadline_ms"] = deadline_header
                self._dispatch_traced(method, segments, query, split.query, span, started)
        finally:
            _slowlog.end_request(slow_token)

    def _dispatch_traced(self, method, segments, query, rawquery, span, started) -> None:
        endpoint = "unknown"
        status = 500
        try:
            with self.server.shedder.admitted():
                with bind_deadline(self._request_deadline()):
                    endpoint, status, payload, content_type = self._route(
                        method, segments, query, rawquery
                    )
                    if payload is not _STREAMED:
                        self._reply(status, payload, content_type)
        except _HTTPError as exc:
            status = exc.status
            self._reply(status, {"error": str(exc)})
        except OverloadedError as exc:
            status = 503
            self._reply(
                status,
                {"error": str(exc)},
                headers={"Retry-After": str(max(1, round(exc.retry_after)))},
            )
        except ShardUnavailableError as exc:
            status = 503
            self._reply(
                status,
                {"error": str(exc)},
                headers={"Retry-After": str(max(1, round(exc.retry_after)))},
            )
        except ReproError as exc:
            status = 400
            self._reply(status, {"error": str(exc)})
        except BrokenPipeError:
            status = 499
        except Exception as exc:  # pragma: no cover - defensive
            status = 500
            self._reply(status, {"error": f"internal error: {exc}"})
        finally:
            span.fields["endpoint"] = endpoint
            span.fields["status"] = status
            elapsed = time.perf_counter() - started
            self.server.metrics.observe(endpoint, status, elapsed)
            log = _slowlog.get_slow_log()
            if log is not None:
                log.maybe_record(
                    endpoint,
                    elapsed,
                    status=status,
                    trace_id=self._trace_id,
                    span_id=span.span_id,
                    role="router",
                    deadline_ms=span.fields.get("deadline_ms"),
                )

    def do_GET(self) -> None:
        self._dispatch("GET")

    def do_POST(self) -> None:
        self._dispatch("POST")

    def do_DELETE(self) -> None:
        self._dispatch("DELETE")

    # ------------------------------------------------------------------
    def _subrequest_headers(self) -> dict:
        headers = {"X-Trace-Id": self._trace_id}
        # The open router span rides along so the shard's request span
        # parents onto it — /debug/trace assembles one tree per query.
        span_id = current_span_id()
        if span_id is not None:
            headers["X-Span-Id"] = span_id
        budget = remaining_ms()
        if budget is not None:
            headers["X-Deadline-Ms"] = f"{max(1.0, budget):.0f}"
        return headers

    def _gather_bodies(
        self, shards: list[int], path: str, timeout: float | None = None
    ) -> list[dict]:
        """Scatter ``path``; return parsed 200 bodies (404s dropped).

        Raises 404 when every shard said 404, and propagates the first
        4xx error body otherwise.
        """
        _slowlog.annotate(fanout=len(shards))
        responses = self.server.router.scatter(
            shards, path, self._subrequest_headers(), timeout
        )
        bodies = [json.loads(body) for _, status, _, body in responses if status == 200]
        if bodies:
            return bodies
        statuses = [status for _, status, _, body in responses]
        if statuses and all(status == 404 for status in statuses):
            raise _HTTPError(404, json.loads(responses[0][3]).get("error", "not found"))
        first = responses[0]
        raise _HTTPError(first[1], json.loads(first[3]).get("error", "shard error"))

    def _proxy(self, shard: int, path: str):
        """Byte-for-byte pass-through of a one-shard plan."""
        status, headers, body = self.server.router.call_shard(
            shard, path, self._subrequest_headers()
        )
        return status, body, headers.get("Content-Type", "application/json")

    def _relation_list(self, uri: str, relation: str) -> list[str]:
        """Merged relation neighbours (the transitive walk's step)."""
        quoted = _quote(uri)
        shards = self.server.router.plan(relation, uri)
        bodies = self._gather_bodies(shards, f"/observations/{quoted}/{relation}")
        return merge_relation_lists(relation, bodies)

    # ------------------------------------------------------------------
    # Changefeed: scatter every shard's read-only feed view, merge in
    # offset order.  All shards read the same store-level feed, so the
    # merge collapses duplicate offsets — it exists so the page stays
    # correct when replicas lag each other on the active segment.
    # ------------------------------------------------------------------
    def _read_changes(self, query: dict, rawquery: str):
        if "commit" in query:
            raise _HTTPError(
                501,
                "the cluster router serves reads; consumer commits go "
                "through the store's single writer (`repro serve`)",
            )
        shards = self.server.router.plan("changes")
        suffix = f"?{rawquery}" if rawquery else ""
        # A long-poll wait pins the shard socket on purpose for up to
        # the (policy-capped) requested timeout; give the subrequest
        # that long *plus* the normal shard budget, or an idle feed
        # would time out the socket on every replica and trip their
        # breakers (the shard caps its own wait identically).
        wait = min(max(_float_param(query, "timeout", 0.0), 0.0), MAX_LONGPOLL_SECONDS)
        timeout = self.server.router.shard_timeout + wait if wait > 0 else None
        bodies = self._gather_bodies(shards, f"/changes{suffix}", timeout=timeout)
        limit = _int_param(query, "limit", None)
        return "changes", 200, merge_changes(bodies, limit), "application/json"

    def _stream_changes(self, query: dict):
        """Router-side SSE: poll the shard tier, emit merged events.

        Resume semantics mirror the single-process server: the
        standard ``Last-Event-ID`` header (or ``since=``) picks the
        cursor; idle polls emit ``: heartbeat`` comments.
        """
        last_event = self.headers.get("Last-Event-ID")
        if last_event is not None:
            try:
                cursor = int(last_event)
            except ValueError:
                raise _HTTPError(
                    400, f"Last-Event-ID must be an offset, got {last_event!r}"
                ) from None
        else:
            cursor = _int_param(query, "since", 0)
        if cursor < 0:
            raise _HTTPError(400, f"since must be >= 0, got {cursor}")
        heartbeat = min(max(_float_param(query, "heartbeat", 15.0), 0.5), 60.0)
        max_seconds = _float_param(query, "max_seconds", 0.0)

        self.close_connection = True
        self.send_response(200)
        self.send_header("Content-Type", "text/event-stream; charset=utf-8")
        self.send_header("Cache-Control", "no-cache")
        if self._trace_id:
            self.send_header("X-Trace-Id", self._trace_id)
        self.end_headers()
        metrics = _sse_metrics()
        metrics["streams"].inc()
        started = time.monotonic()
        try:
            while True:
                if self.server.shedder.closed:
                    break
                budget = heartbeat
                if max_seconds > 0:
                    budget = min(budget, max_seconds - (time.monotonic() - started))
                    if budget <= 0:
                        break
                records = []
                try:
                    shards = self.server.router.plan("changes")
                    # Socket timeout must exceed the long-poll wait the
                    # shard honours, or every idle beat would count as
                    # a replica failure against its breaker.
                    bodies = self._gather_bodies(
                        shards,
                        f"/changes?since={cursor}&timeout={budget:.3f}&limit=500",
                        timeout=self.server.router.shard_timeout + budget,
                    )
                    records = merge_changes(bodies)["changes"]
                except (_HTTPError, ShardUnavailableError):
                    # The tier is briefly unreachable (respawning
                    # replica, feed not created yet): keep the stream
                    # alive and retry next beat.
                    time.sleep(min(budget, 0.5))
                if records:
                    for record in records:
                        body = json.dumps(record, default=str)
                        self.wfile.write(
                            f"id: {record['offset']}\ndata: {body}\n\n".encode("utf-8")
                        )
                    cursor = records[-1]["offset"]
                    self.wfile.flush()
                    metrics["events"].inc(len(records))
                else:
                    self.wfile.write(b": heartbeat\n\n")
                    self.wfile.flush()
        except (BrokenPipeError, ConnectionResetError, ConnectionAbortedError, OSError):
            pass
        finally:
            metrics["streams"].inc(-1.0)
        return "changes-stream", 200, _STREAMED, None

    # ------------------------------------------------------------------
    def _gather_trace(self, trace_id: str):
        """Scatter/gather every replica's span store into one trace.

        The router's own spans (this very request included, minus the
        still-open span serving it) merge with each shard replica's
        ``/debug/trace/<id>`` records; the CLI assembles the tree.
        Unreachable replicas are reported, not fatal — a partial trace
        beats none during an incident.
        """
        from repro.obs.spanstore import get_span_store

        span_store = get_span_store()
        records = list(span_store.spans_for(trace_id)) if span_store is not None else []
        sources = [{"role": "router", "count": len(records)}]
        errors = []
        results = self.server.router.broadcast(
            f"/debug/trace/{_quote(trace_id)}", self._subrequest_headers()
        )
        for shard, replica, status, body in results:
            where = {"shard": shard, "replica": replica}
            if status != 200:
                errors.append(
                    {**where, "error": body.decode("utf-8", "replace")[:200]}
                )
                continue
            try:
                payload = json.loads(body)
            except ValueError as exc:
                errors.append({**where, "error": f"bad JSON: {exc}"})
                continue
            spans = payload.get("spans") or []
            for record in spans:
                if isinstance(record, dict):
                    fields = record.setdefault("fields", {})
                    fields.setdefault("shard", shard)
                    fields.setdefault("replica", replica)
                    records.append(record)
            sources.append({**where, "count": len(spans)})
        seen: set[str] = set()
        unique: list[dict] = []
        for record in records:
            span_id = record.get("span_id")
            if span_id and span_id in seen:
                continue
            if span_id:
                seen.add(span_id)
            unique.append(record)
        return (
            "debug-trace",
            200,
            {
                "trace_id": trace_id,
                "count": len(unique),
                "sources": sources,
                "errors": errors,
                "spans": unique,
            },
            "application/json",
        )

    # ------------------------------------------------------------------
    def _route(self, method: str, segments: list[str], query: dict, rawquery: str):
        router = self.server.router
        if method in ("POST", "DELETE"):
            raise _HTTPError(
                501,
                "the cluster router serves reads; incremental writes go "
                "through the store's single writer (`repro serve`), and "
                "shards pick them up from its WAL at the next restart",
            )
        if segments == ["healthz"]:
            ok, up = router.healthy()
            router._update_replica_gauges()
            return (
                "healthz",
                200,
                {
                    "status": "ok" if ok else "degraded",
                    "role": "router",
                    "port": self.server.server_address[1],
                    "shards": router.manifest.shards,
                    "replicas": router.manifest.replicas,
                    "replicas_up": {str(shard): count for shard, count in up.items()},
                    "partitions": len(router.manifest.partitions),
                    "manifest_generation": router.manifest.generation,
                },
                "application/json",
            )
        if segments == ["metrics"]:
            content_type = "text/plain; version=0.0.4; charset=utf-8"
            local = self.server.metrics.render(None)
            if query.get("local"):
                return "metrics", 200, local, content_type
            # Federation: one scrape covering the whole tier.  Every
            # replica's exposition is parsed and re-labelled by
            # shard/replica; the router's own series stay unlabelled.
            # A sick replica degrades to an error counter, never a 5xx
            # — blinding the operator mid-incident is the worst case.
            from repro.obs.exposition import federate

            metrics = _metrics()
            results = router.broadcast("/metrics", self._subrequest_headers())
            scrapes = []
            for shard, replica, status, body in results:
                if status == 200:
                    scrapes.append(
                        (
                            {"shard": str(shard), "replica": str(replica)},
                            body.decode("utf-8", "replace"),
                        )
                    )
                else:
                    metrics["federation_errors"].inc()
            body, problems = federate(scrapes, base=local)
            metrics["federated"].inc()
            if problems:
                metrics["federation_errors"].inc(len(problems))
            return "metrics", 200, body, content_type
        if segments == ["stats"]:
            return "stats", 200, router.stats(), "application/json"
        if segments == ["debug", "vars"]:
            from repro.obs.profile import get_continuous_profiler
            from repro.obs.registry import get_registry
            from repro.obs.spanstore import get_span_store

            spans = recorder()
            span_store = get_span_store()
            slow_log = _slowlog.get_slow_log()
            profiler = get_continuous_profiler()
            payload = {
                "metrics": get_registry().snapshot(),
                "top_spans": spans.top_spans(20),
                "recent_spans": spans.recent(20),
                "spanstore": span_store.stats() if span_store is not None else None,
                "slow_query_log": slow_log.stats() if slow_log is not None else None,
                "profiler": profiler.as_dict(10) if profiler is not None else None,
            }
            return "debug-vars", 200, payload, "application/json"
        if segments[:2] == ["debug", "trace"]:
            if len(segments) != 3:
                raise _HTTPError(404, "use /debug/trace/<trace_id>")
            return self._gather_trace(segments[2])
        if segments == ["debug", "profile"]:
            from repro.obs.profile import get_continuous_profiler

            profiler = get_continuous_profiler()
            if profiler is None:
                raise _HTTPError(404, "continuous profiler not running")
            limit = _int_param(query, "limit", None)
            if query.get("format") == "json":
                return (
                    "debug-profile",
                    200,
                    profiler.as_dict(limit if limit is not None else 20),
                    "application/json",
                )
            return "debug-profile", 200, profiler.render(limit), "text/plain; charset=utf-8"
        if segments == ["cluster"]:
            return "cluster", 200, router.manifest.to_dict(), "application/json"
        if segments and segments[0] == "changes":
            if len(segments) == 1:
                return self._read_changes(query, rawquery)
            if segments == ["changes", "stream"]:
                return self._stream_changes(query)
            raise _HTTPError(404, f"no route for {'/'.join(segments)}")
        if not segments or segments[0] != "observations":
            raise _HTTPError(404, f"no route for {'/'.join(segments) or '/'}")

        suffix = f"?{rawquery}" if rawquery else ""
        if len(segments) == 1:
            # The shard index registers every space observation, so any
            # one shard can answer a listing when the space is loaded;
            # without one, union the shard-local views.
            if router._locate:
                shards = router.plan_single(f"list:{query.get('dataset', '')}")
                status, body, content_type = self._proxy(shards[0], f"/observations{suffix}")
                return "list", status, body, content_type
            shards = router.plan("list")
            bodies = self._gather_bodies(shards, f"/observations{suffix}")
            limit = _int_param(query, "limit", None)
            return "list", 200, merge_observation_lists(bodies, limit), "application/json"

        uri = segments[1]
        quoted = _quote(uri)
        if len(segments) == 2:
            shards = router.plan("summary", uri)
            if len(shards) == 1:
                status, body, content_type = self._proxy(shards[0], f"/observations/{quoted}")
                return "observation", status, body, content_type
            bodies = self._gather_bodies(shards, f"/observations/{quoted}")
            return "observation", 200, merge_summary(bodies), "application/json"

        if len(segments) != 3:
            raise _HTTPError(404, f"no route for {'/'.join(segments)}")
        relation = segments[2]
        if relation in ("containers", "contained", "complements"):
            shards = router.plan(relation, uri)
            if len(shards) == 1:
                status, body, content_type = self._proxy(
                    shards[0], f"/observations/{quoted}/{relation}"
                )
                return relation, status, body, content_type
            bodies = self._gather_bodies(shards, f"/observations/{quoted}/{relation}")
            return (
                relation,
                200,
                {"uri": uri, relation: merge_relation_lists(relation, bodies)},
                "application/json",
            )
        if relation == "related":
            k = _int_param(query, "k", 10)
            shards = router.plan("related", uri)
            if len(shards) == 1:
                status, body, content_type = self._proxy(
                    shards[0], f"/observations/{quoted}/related{suffix}"
                )
                return "related", status, body, content_type
            bodies = self._gather_bodies(shards, f"/observations/{quoted}/related{suffix}")
            return (
                "related",
                200,
                {"uri": uri, "related": merge_related(bodies, k)},
                "application/json",
            )
        if relation == "partial":
            k = _int_param(query, "k", 10)
            shards = router.plan("partial", uri)
            if len(shards) == 1:
                status, body, content_type = self._proxy(
                    shards[0], f"/observations/{quoted}/partial{suffix}"
                )
                return "partial", status, body, content_type
            bodies = self._gather_bodies(shards, f"/observations/{quoted}/partial{suffix}")
            return (
                "partial",
                200,
                {"uri": uri, "partial": merge_partial(bodies, k)},
                "application/json",
            )
        if relation == "transitive":
            direction = query.get("direction", "up")
            if direction not in ("up", "down"):
                raise _HTTPError(400, f"direction must be 'up' or 'down', got {direction!r}")
            max_depth = _int_param(query, "max_depth", None)
            step = "containers" if direction == "up" else "contained"
            # Router-side BFS: each hop may live on a different shard,
            # so the walk itself is the scatter unit.
            visited = {uri}
            frontier = [uri]
            depth = 0
            reachable: list[dict] = []
            while frontier and (max_depth is None or depth < max_depth):
                depth += 1
                next_frontier: list[str] = []
                for node in frontier:
                    for neighbour in self._relation_list(node, step):
                        if neighbour not in visited:
                            visited.add(neighbour)
                            reachable.append({"uri": neighbour, "depth": depth})
                            next_frontier.append(neighbour)
                frontier = next_frontier
            return (
                "transitive",
                200,
                {"uri": uri, "direction": direction, "reachable": reachable},
                "application/json",
            )
        raise _HTTPError(404, f"unknown relation {relation!r}")


def _quote(uri: str) -> str:
    from urllib.parse import quote

    return quote(uri, safe="")


def _int_param(query: dict, name: str, default):
    raw = query.get(name)
    if raw is None:
        return default
    try:
        return int(raw)
    except ValueError:
        raise _HTTPError(400, f"query parameter {name!r} must be an integer, got {raw!r}") from None


def _float_param(query: dict, name: str, default):
    raw = query.get(name)
    if raw is None:
        return default
    try:
        return float(raw)
    except ValueError:
        raise _HTTPError(400, f"query parameter {name!r} must be a number, got {raw!r}") from None


class RouterServer(ThreadingHTTPServer):
    """The router's pooled HTTP front end."""

    daemon_threads = True
    allow_reuse_address = True

    def __init__(
        self,
        address: tuple[str, int],
        router: Router,
        metrics: ServiceMetrics | None = None,
        verbose: bool = False,
        request_timeout: float = 30.0,
        shedder: LoadShedder | None = None,
        threads: int = 0,
        reuse_port: bool = False,
        keepalive_idle: float = 5.0,
        span_dir: str | None = None,
        profiler: bool = True,
        slow_log_path: str | None = None,
        slow_query_ms: float = 100.0,
    ):
        self.keepalive_idle = float(keepalive_idle)
        #: SO_REUSEPORT lets several router processes share one port —
        #: the kernel load-balances accepted connections across them,
        #: which is how the router tier itself scales past one process.
        self.reuse_port = bool(reuse_port)
        super().__init__(address, RouterHandler)
        self.router = router
        self.metrics = metrics if metrics is not None else ServiceMetrics()
        self.verbose = verbose
        self.request_timeout = float(request_timeout)
        self.shedder = shedder if shedder is not None else LoadShedder()
        self._pool = _HandlerPool(self, threads) if threads and threads > 0 else None
        from repro.obs import preregister
        from repro.obs.spanstore import install_span_store

        preregister()
        _metrics()  # the repro_cluster_* families appear on first scrape
        install_span_store(span_dir)
        if profiler:
            from repro.obs.profile import start_continuous_profiler

            start_continuous_profiler()
        if slow_log_path:
            from repro.obs.slowlog import install_slow_log

            install_slow_log(slow_log_path, threshold_ms=slow_query_ms)

    def server_bind(self):
        if self.reuse_port:
            import socket

            try:
                self.socket.setsockopt(socket.SOL_SOCKET, socket.SO_REUSEPORT, 1)
            except (AttributeError, OSError):  # pragma: no cover - non-Linux
                pass
        super().server_bind()

    def process_request(self, request, client_address):
        if self._pool is not None:
            self._pool.submit(request, client_address)
        else:
            super().process_request(request, client_address)

    def server_close(self):
        super().server_close()
        if self._pool is not None:
            self._pool.stop()
        self.router.close()

    def graceful_shutdown(self, drain_timeout: float = 10.0) -> bool:
        self.shedder.close()
        drained = self.shedder.drain(timeout=drain_timeout)
        self.shutdown()
        self.server_close()
        return drained


def start_router(
    router: Router,
    host: str = "127.0.0.1",
    port: int = 0,
    background: bool = True,
    verbose: bool = False,
    threads: int = 0,
    reuse_port: bool = False,
    shedder: LoadShedder | None = None,
    request_timeout: float = 30.0,
    span_dir: str | None = None,
    profiler: bool = True,
    slow_log_path: str | None = None,
    slow_query_ms: float = 100.0,
) -> RouterServer:
    """Bind a :class:`RouterServer` and (optionally) serve in background."""
    server = RouterServer(
        (host, port),
        router,
        verbose=verbose,
        threads=threads,
        reuse_port=reuse_port,
        shedder=shedder,
        request_timeout=request_timeout,
        span_dir=span_dir,
        profiler=profiler,
        slow_log_path=slow_log_path,
        slow_query_ms=slow_query_ms,
    )
    if background:
        thread = threading.Thread(
            target=server.serve_forever, name="repro-router", daemon=True
        )
        thread.start()
    else:
        try:
            server.serve_forever()
        finally:
            server.server_close()
    return server
