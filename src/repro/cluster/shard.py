"""The shard worker: one process serving its slice of the store.

A shard is an ordinary :class:`~repro.service.server.RelationshipServer`
over an ordinary :class:`~repro.service.engine.QueryEngine` — the only
difference is *what it loads*: the lazy segment view is restricted to
the ``(dataset, lattice-signature)`` partition keys the cluster
manifest's consistent-hash ring assigns to this shard, so each of N
shard processes decodes ~1/N of the segment bytes, via the same
``mmap`` attach every reader uses (replicas of one shard therefore
share the kernel page cache for their segment files rather than
duplicating decoded heap... the decoded sets are per-process, the
*file bytes* are shared).

Shards are **read-only** (POST/DELETE answer 405): the store's single
writer is a plain ``repro serve`` or the offline pipeline; shards pick
up its WAL output at startup.  WAL deltas are unpartitioned, so when
the observation space is available each shard prunes replayed pairs
down to the ones whose canonical first element it owns — every pair
then lives on exactly one shard and scatter/gather sums (e.g. the
``summary`` endpoint) count each pair once.

Hardening is per-shard and reuses :mod:`repro.resilience` wholesale: a
circuit breaker on the shard's segment decodes, a load shedder on its
handler pool, deadline budgets from the router's ``X-Deadline-Ms``
header, and graceful SIGTERM drain.
"""

from __future__ import annotations

import json
import os
from pathlib import Path

from repro.cluster.manifest import ClusterManifest
from repro.cluster.ring import partition_key_str
from repro.core.results import RelationshipSet
from repro.service.engine import QueryEngine

__all__ = ["build_shard_engine", "prune_foreign_pairs", "write_endpoint_file"]


def _partition_tuples(entries: list[dict]) -> list[tuple]:
    return [
        (
            entry.get("dataset"),
            tuple(entry["signature"]) if entry.get("signature") is not None else None,
        )
        for entry in entries
    ]


def prune_foreign_pairs(result: RelationshipSet, owned: set[str], space) -> int:
    """Drop pairs whose canonical first element another shard owns.

    Segment pairs are partitioned exactly, so only WAL-replayed pairs
    can be foreign.  ``owned`` holds this shard's partition-key strings
    (see :func:`~repro.cluster.ring.partition_key_str`); observations
    the space does not know belong to the ``default`` partition.
    Returns how many pairs were dropped.
    """
    if space is None:
        return 0
    keys: dict = {}
    for record in space.observations:
        keys[record.uri] = partition_key_str(
            str(record.dataset), space.level_signature(record.index)
        )
    default_key = partition_key_str(None, None)

    def foreign(pair) -> bool:
        return keys.get(pair[0], default_key) not in owned

    dropped = 0
    for field in ("full", "partial", "complementary"):
        pairs = getattr(result, field)
        doomed = {pair for pair in pairs if foreign(pair)}
        pairs -= doomed
        dropped += len(doomed)
        if field == "partial":
            for pair in doomed:
                result.partial_map.pop(pair, None)
                result.degrees.pop(pair, None)
    return dropped


def build_shard_engine(
    store,
    manifest: ClusterManifest,
    shard_id: int,
    space=None,
    cache_size: int = 1024,
    breaker=None,
):
    """A :class:`QueryEngine` over shard ``shard_id``'s partitions.

    Startup stays O(manifest): the partition-filtered lazy view defers
    segment decodes to the first query, like single-process serve.  The
    WAL prune (space permitting) therefore also runs lazily, wrapped
    around the view's materialisation.
    """
    if not 0 <= shard_id < manifest.shards:
        raise ValueError(
            f"shard id {shard_id} out of range for a {manifest.shards}-shard cluster"
        )
    if breaker is not None:
        store.breaker = breaker
    assigned = manifest.partitions_for(shard_id)
    partitions = _partition_tuples(assigned)
    owned = {
        partition_key_str(entry.get("dataset"), entry.get("signature"))
        for entry in assigned
    }
    result = store.relationship_set(partitions=partitions)
    if space is not None:
        # Hook the prune into lazy materialisation: _materialise sets
        # the slots from store.load_partitions, after which the view
        # behaves like a plain RelationshipSet we can filter in place.
        original = result._materialise

        def materialise_and_prune():
            original()
            prune_foreign_pairs(result, owned, space)

        result._materialise = materialise_and_prune

    from repro.storage import LazyRelationshipIndex

    # Shards serve the store's changefeed read-only: the single writer
    # publishes into <store>/changefeed, every shard re-lists it, so
    # GET /changes works on any replica (and the router merges them).
    changefeed = None
    feed_dir = Path(store.path) / "changefeed"
    if feed_dir.is_dir():
        from repro.stream import ChangefeedReader

        changefeed = ChangefeedReader(feed_dir)

    engine = QueryEngine(
        result,
        space,
        cache_size=cache_size,
        index=LazyRelationshipIndex(result, space),
        storage_info=store.describe,
        changefeed=changefeed,
    )
    return engine, assigned


def write_endpoint_file(path: str | os.PathLike, payload: dict) -> None:
    """Atomically publish a worker's bound endpoint for the supervisor."""
    from repro.store import atomic_write_text

    atomic_write_text(Path(path), json.dumps(payload, indent=2))
