"""The cluster supervisor: spawn, watch and respawn the shard tier.

``repro cluster --shards N --replicas R`` runs one supervisor process
that:

1. reads the segment store's partition keys and writes the cluster
   manifest (``CLUSTER.json``) to the run directory;
2. spawns ``N x R`` shard worker processes (``repro shard``), each
   binding an ephemeral port (``--port 0``) and publishing its chosen
   endpoint through an atomically-written endpoint file — no fixed
   port ranges, no bind races;
3. records every worker endpoint back into the manifest (generation
   bump, atomic replace) so routers pick the topology up by mtime;
4. runs the router in-process and serves on the front port;
5. watches its children: a worker that dies is respawned, its new
   endpoint re-published, and the failover window is covered by the
   shard's surviving replicas — `kill -9` a worker mid-load and the
   router retries its requests on a sibling while the supervisor
   brings a replacement up.

Shutdown is graceful end-to-end: SIGTERM to the supervisor drains the
router, SIGTERMs every worker (which drain their own in-flight
requests), then waits before escalating to SIGKILL.
"""

from __future__ import annotations

import json
import os
import signal
import subprocess
import sys
import time
from pathlib import Path

from repro.errors import ReproError
from repro.cluster.manifest import CLUSTER_MANIFEST_NAME, ClusterManifest

__all__ = ["ClusterSupervisor"]

_METRICS = None


def _metrics():
    global _METRICS
    if _METRICS is None:
        from repro.obs.registry import get_registry

        registry = get_registry()
        _METRICS = {
            "workers": registry.gauge(
                "repro_cluster_workers",
                "Live shard worker processes under supervision.",
            ),
            "respawns": registry.counter(
                "repro_cluster_respawns_total",
                "Shard worker processes respawned after dying.",
                labelnames=("shard",),
            ),
        }
    return _METRICS


class _Worker:
    """One supervised shard process."""

    def __init__(self, shard: int, replica: int):
        self.shard = shard
        self.replica = replica
        self.process: subprocess.Popen | None = None
        self.endpoint: dict | None = None

    @property
    def name(self) -> str:
        return f"shard-{self.shard}.{self.replica}"


class ClusterSupervisor:
    """Spawns and supervises ``shards x replicas`` workers + a router."""

    def __init__(
        self,
        store: str,
        shards: int,
        replicas: int = 1,
        input_path: str | None = None,
        rundir: str | os.PathLike | None = None,
        host: str = "127.0.0.1",
        port: int = 8080,
        router_threads: int = 8,
        shard_threads: int = 4,
        spawn_timeout: float = 30.0,
        respawn: bool = True,
        verbose: bool = False,
        span_dir: str | os.PathLike | None = None,
        profiler: bool = True,
        slow_query_dir: str | os.PathLike | None = None,
        slow_query_ms: float = 100.0,
    ):
        self.store = str(store)
        self.shards = int(shards)
        self.replicas = int(replicas)
        self.input_path = str(input_path) if input_path else None
        self.rundir = Path(rundir) if rundir is not None else Path(f"{store}.cluster")
        self.host = host
        self.port = int(port)
        self.router_threads = int(router_threads)
        self.shard_threads = int(shard_threads)
        self.spawn_timeout = float(spawn_timeout)
        self.respawn = respawn
        self.verbose = verbose
        self.span_dir = str(span_dir) if span_dir else None
        self.profiler = bool(profiler)
        self.slow_query_dir = Path(slow_query_dir) if slow_query_dir else None
        self.slow_query_ms = float(slow_query_ms)
        self.manifest: ClusterManifest | None = None
        self.manifest_path = self.rundir / CLUSTER_MANIFEST_NAME
        self.router_server = None
        self._workers: list[_Worker] = [
            _Worker(shard, replica)
            for shard in range(self.shards)
            for replica in range(self.replicas)
        ]
        self._space = None
        self._stopping = False

    # ------------------------------------------------------------------
    # Topology bootstrap
    # ------------------------------------------------------------------
    def prepare(self) -> ClusterManifest:
        """Derive the manifest from the store and commit it to rundir."""
        from repro.storage import SegmentStore, is_segment_store

        if not is_segment_store(self.store):
            raise ReproError(
                f"{self.store} is not a segment store; the cluster tier "
                "shards by segment partition keys (compute with -o store.rseg)"
            )
        store = SegmentStore.open(self.store)
        try:
            partitions = [
                {
                    "dataset": dataset,
                    "signature": list(signature) if signature is not None else None,
                }
                for dataset, signature in store.partition_keys()
            ]
        finally:
            store.close()
        if not partitions:
            # An unpartitioned store still clusters: everything lives in
            # the default partition on one shard, replicas still fail
            # over.  Worth saying out loud, though.
            partitions = [{"dataset": None, "signature": None}]
            print(
                "# store has no partition keys (computed without a cube "
                "space); a single shard owns all pairs",
                file=sys.stderr,
            )
        self.rundir.mkdir(parents=True, exist_ok=True)
        self.manifest = ClusterManifest(
            store=str(Path(self.store).resolve()),
            shards=self.shards,
            replicas=self.replicas,
            partitions=partitions,
            input_path=self.input_path,
        )
        self.manifest.write(self.manifest_path)
        return self.manifest

    # ------------------------------------------------------------------
    # Worker processes
    # ------------------------------------------------------------------
    def _endpoint_path(self, worker: _Worker) -> Path:
        return self.rundir / f"{worker.name}.endpoint.json"

    def _spawn(self, worker: _Worker) -> None:
        endpoint_path = self._endpoint_path(worker)
        try:
            endpoint_path.unlink()
        except FileNotFoundError:
            pass
        command = [
            sys.executable,
            "-m",
            "repro.cli",
            "shard",
            "--store",
            self.store,
            "--manifest",
            str(self.manifest_path),
            "--shard-id",
            str(worker.shard),
            "--replica",
            str(worker.replica),
            "--host",
            self.host,
            "--port",
            "0",
            "--endpoint-file",
            str(endpoint_path),
            "--threads",
            str(self.shard_threads),
        ]
        if self.input_path:
            command += ["--input", self.input_path]
        if self.verbose:
            command += ["--verbose"]
        if self.span_dir:
            command += ["--span-dir", self.span_dir]
        if not self.profiler:
            command += ["--no-profiler"]
        if self.slow_query_dir is not None:
            self.slow_query_dir.mkdir(parents=True, exist_ok=True)
            command += [
                "--slow-query-log",
                str(self.slow_query_dir / f"slow-{worker.name}.jsonl"),
                "--slow-query-ms",
                str(self.slow_query_ms),
            ]
        env = dict(os.environ)
        # The workers must import the same repro the supervisor runs —
        # prepend its package root whether or not PYTHONPATH was set.
        package_root = str(Path(__file__).resolve().parents[2])
        existing = env.get("PYTHONPATH")
        env["PYTHONPATH"] = (
            package_root if not existing else os.pathsep.join([package_root, existing])
        )
        worker.process = subprocess.Popen(command, env=env)
        worker.endpoint = None

    def _await_endpoint(self, worker: _Worker, deadline: float) -> dict:
        endpoint_path = self._endpoint_path(worker)
        while time.monotonic() < deadline:
            if worker.process.poll() is not None:
                raise ReproError(
                    f"worker {worker.name} exited with status "
                    f"{worker.process.returncode} before publishing its endpoint"
                )
            try:
                payload = json.loads(endpoint_path.read_text(encoding="utf-8"))
            except (OSError, json.JSONDecodeError):
                time.sleep(0.05)
                continue
            if payload.get("port"):
                return payload
            time.sleep(0.05)
        raise ReproError(
            f"worker {worker.name} did not publish an endpoint within "
            f"{self.spawn_timeout:.0f}s"
        )

    def _register(self, worker: _Worker, payload: dict) -> None:
        worker.endpoint = payload
        self.manifest.upsert_worker(
            {
                "shard": worker.shard,
                "replica": worker.replica,
                "host": payload["host"],
                "port": int(payload["port"]),
                "pid": worker.process.pid,
            }
        )

    def spawn_all(self) -> None:
        """Boot every worker, then commit their endpoints at once."""
        deadline = time.monotonic() + self.spawn_timeout
        for worker in self._workers:
            self._spawn(worker)
        for worker in self._workers:
            self._register(worker, self._await_endpoint(worker, deadline))
        self.manifest.write(self.manifest_path)
        _metrics()["workers"].set(sum(1 for w in self._workers if w.process))

    # ------------------------------------------------------------------
    # Router
    # ------------------------------------------------------------------
    def start_router(self):
        from repro.cluster.router import Router, start_router

        if self.input_path and self._space is None:
            from repro.core import ObservationSpace
            from repro.qb import load_cubespace
            from repro.rdf import parse_ntriples, parse_turtle

            text = Path(self.input_path).read_text()
            graph = (
                parse_ntriples(text)
                if self.input_path.endswith((".nt", ".ntriples"))
                else parse_turtle(text)
            )
            self._space = ObservationSpace.from_cubespace(load_cubespace(graph))
        router = Router(
            self.manifest,
            space=self._space,
            manifest_path=str(self.manifest_path),
        )
        try:
            self.router_server = start_router(
                router,
                host=self.host,
                port=self.port,
                background=True,
                verbose=self.verbose,
                threads=self.router_threads,
                span_dir=self.span_dir,
                profiler=self.profiler,
                slow_log_path=(
                    str(self.slow_query_dir / "slow-router.jsonl")
                    if self.slow_query_dir is not None
                    else None
                ),
                slow_query_ms=self.slow_query_ms,
            )
        except OSError as exc:
            raise ReproError(f"cannot bind {self.host}:{self.port}: {exc}") from exc
        self.manifest.router = {
            "host": self.host,
            "port": self.router_server.server_address[1],
            "pid": os.getpid(),
        }
        self.manifest.write(self.manifest_path)
        return self.router_server

    # ------------------------------------------------------------------
    # Supervision loop
    # ------------------------------------------------------------------
    def start(self):
        self.prepare()
        self.spawn_all()
        return self.start_router()

    def check_children(self) -> int:
        """Reap dead workers; respawn them.  Returns how many died."""
        died = 0
        if self._stopping:
            return died
        respawning = self.respawn and not self._stopping
        for worker in self._workers:
            if worker.process is None or worker.process.poll() is None:
                continue
            died += 1
            status = worker.process.returncode
            print(
                f"# worker {worker.name} (pid {worker.process.pid}) died "
                f"with status {status}"
                + ("; respawning" if respawning else ""),
                file=sys.stderr,
            )
            if not respawning:
                worker.process = None
                continue
            _metrics()["respawns"].inc(shard=worker.shard)
            self._spawn(worker)
            try:
                payload = self._await_endpoint(
                    worker, time.monotonic() + self.spawn_timeout
                )
            except ReproError as exc:
                print(f"# respawn failed: {exc}", file=sys.stderr)
                continue
            self._register(worker, payload)
            # Commit the replacement endpoint; routers re-read on mtime.
            self.manifest.write(self.manifest_path)
        _metrics()["workers"].set(
            sum(
                1
                for w in self._workers
                if w.process is not None and w.process.poll() is None
            )
        )
        return died

    def run(self, stop, poll_interval: float = 0.5) -> None:
        """Supervise until ``stop`` (a ``threading.Event``) is set."""
        while not stop.wait(poll_interval):
            self.check_children()

    # ------------------------------------------------------------------
    # Shutdown
    # ------------------------------------------------------------------
    def shutdown(self, drain_timeout: float = 10.0) -> None:
        """Drain the router, then stop every worker (TERM, then KILL)."""
        # No respawns from here on: a worker restarted mid-shutdown would
        # miss the SIGTERM sweep below and survive as an orphan.
        self._stopping = True
        if self.router_server is not None:
            self.router_server.graceful_shutdown(drain_timeout=drain_timeout)
            self.router_server = None
        for worker in self._workers:
            if worker.process is not None and worker.process.poll() is None:
                try:
                    worker.process.send_signal(signal.SIGTERM)
                except OSError:
                    pass
        deadline = time.monotonic() + drain_timeout
        for worker in self._workers:
            if worker.process is None:
                continue
            remaining = max(0.1, deadline - time.monotonic())
            try:
                worker.process.wait(timeout=remaining)
            except subprocess.TimeoutExpired:
                worker.process.kill()
                worker.process.wait()
        # Final sweep: catch anything that slipped past the first pass
        # (e.g. a worker spawned while shutdown was already underway).
        for worker in self._workers:
            if worker.process is not None and worker.process.poll() is None:
                worker.process.kill()
                worker.process.wait()
        _metrics()["workers"].set(0)

    def endpoints(self) -> list[dict]:
        """Every live worker's ``{shard, replica, host, port, pid}``."""
        return [
            {
                "shard": worker.shard,
                "replica": worker.replica,
                "pid": worker.process.pid if worker.process else None,
                **(worker.endpoint or {}),
            }
            for worker in self._workers
        ]
