"""The paper's contribution: containment/complementarity computation.

Modules
-------
``space``
    :class:`ObservationSpace` — padded observations on the union
    dimension bus, plus the reference pair predicates.
``matrix`` / ``baseline``
    Occurrence matrix, ``computeOCM`` and the Θ(n²) baseline
    (Algorithms 1–2).
``clustering`` / ``cluster_method``
    The lossy clustering method (Algorithm 3) with k-means, x-means,
    canopy and hierarchical clustering.
``lattice`` / ``cubemask``
    The lossless cubeMasking method (Algorithm 4) with the
    children-prefetching optimisation.
``kernels``
    Vectorised cube-pair kernels over packed ancestor-closure bitsets
    and the zero-copy shared-memory publication the parallel fan-out
    attaches to.
``sparql_method`` / ``rules_method``
    The two traditional comparators of Section 4.
``skyline``
    Skylines and k-dominant skylines from containment (Section 1).
``api``
    The :func:`compute_relationships` facade and incremental updates.
``runner``
    The fault-tolerant materialisation runner (checkpoint/resume,
    worker-crash recovery).  Its deterministic fault-injection harness
    lives in :mod:`repro.resilience.faults` (re-exported here for
    compatibility).
"""

from repro.core.api import Method, compute_relationships, remove_observations, update_relationships
from repro.core.baseline import compute_baseline, derive_relationships
from repro.core.cluster_method import compute_clustering, default_cluster_count
from repro.core.cubemask import compute_cubemask
from repro.core.export import space_to_graph
from repro.resilience.faults import Fault, FaultPlan, InjectedFault, truncate_file
from repro.core.hybrid import compute_hybrid
from repro.core.kernels import (
    KernelPlan,
    build_kernel_plan,
    evaluate_pair_block,
    kernel_counters,
    measure_overlap_groups,
)
from repro.core.lattice import CubeLattice
from repro.core.matrix import OccurrenceMatrix
from repro.core.olap import CubeNavigator, rollup_dataset
from repro.core.parallel import compute_cubemask_parallel
from repro.core.recommend import Recommendation, dataset_relatedness, recommend_observations
from repro.core.results import Recall, RelationshipDelta, RelationshipSet
from repro.core.rules_method import compute_rules
from repro.core.runner import Checkpoint, MaterializationRunner, run_materialization, space_fingerprint
from repro.core.skyline import k_dominant_skyline, skyline, skyline_from_relationships
from repro.core.space import ObservationSpace
from repro.core.sparql_method import compute_sparql
from repro.core.streaming import compute_baseline_streaming

__all__ = [
    "Method",
    "compute_relationships",
    "update_relationships",
    "remove_observations",
    "compute_baseline",
    "compute_baseline_streaming",
    "derive_relationships",
    "compute_clustering",
    "default_cluster_count",
    "compute_cubemask",
    "compute_cubemask_parallel",
    "compute_hybrid",
    "compute_sparql",
    "compute_rules",
    "CubeNavigator",
    "rollup_dataset",
    "dataset_relatedness",
    "recommend_observations",
    "Recommendation",
    "ObservationSpace",
    "OccurrenceMatrix",
    "CubeLattice",
    "KernelPlan",
    "build_kernel_plan",
    "evaluate_pair_block",
    "measure_overlap_groups",
    "kernel_counters",
    "RelationshipSet",
    "RelationshipDelta",
    "Recall",
    "skyline",
    "k_dominant_skyline",
    "skyline_from_relationships",
    "space_to_graph",
    "MaterializationRunner",
    "run_materialization",
    "Checkpoint",
    "space_fingerprint",
    "Fault",
    "FaultPlan",
    "InjectedFault",
    "truncate_file",
]
