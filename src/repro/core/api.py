"""High-level facade over the relationship-computation methods.

``compute_relationships`` is the single entry point a downstream user
needs: it accepts a :class:`~repro.qb.model.CubeSpace` (as loaded from
RDF) or a pre-built :class:`~repro.core.space.ObservationSpace`, and a
method name::

    from repro import compute_relationships, Method

    result = compute_relationships(cube, method=Method.CUBE_MASKING)

``update_relationships`` implements the incremental recomputation the
paper lists as future work: after appending new observations to a
space, only pairs that involve a new observation are (re)checked.
"""

from __future__ import annotations

from enum import Enum
from typing import Iterable, Mapping

from repro.errors import AlgorithmError
from repro.core.baseline import compute_baseline
from repro.core.cluster_method import compute_clustering
from repro.core.cubemask import compute_cubemask
from repro.core.results import RelationshipSet
from repro.core.rules_method import compute_rules
from repro.core.space import ObservationSpace
from repro.core.sparql_method import compute_sparql
from repro.qb.model import CubeSpace
from repro.rdf.terms import URIRef

__all__ = ["Method", "compute_relationships", "update_relationships", "remove_observations"]


class Method(str, Enum):
    """The five strategies evaluated in the paper plus two extensions.

    ``STREAMING`` is the memory-bounded baseline and ``HYBRID`` the
    cubeMasking+clustering combination — both future-work items of the
    paper's Section 6, implemented here.
    """

    BASELINE = "baseline"
    CLUSTERING = "clustering"
    CUBE_MASKING = "cube_masking"
    SPARQL = "sparql"
    RULES = "rules"
    STREAMING = "streaming"
    HYBRID = "hybrid"


def _dispatch_table():
    from repro.core.hybrid import compute_hybrid
    from repro.core.streaming import compute_baseline_streaming

    return {
        Method.BASELINE: compute_baseline,
        Method.CLUSTERING: compute_clustering,
        Method.CUBE_MASKING: compute_cubemask,
        Method.SPARQL: compute_sparql,
        Method.RULES: compute_rules,
        Method.STREAMING: compute_baseline_streaming,
        Method.HYBRID: compute_hybrid,
    }


def _as_space(data: CubeSpace | ObservationSpace) -> ObservationSpace:
    if isinstance(data, ObservationSpace):
        return data
    if isinstance(data, CubeSpace):
        return ObservationSpace.from_cubespace(data)
    raise AlgorithmError(f"expected CubeSpace or ObservationSpace, got {type(data).__name__}")


#: ``compute_relationships`` keywords that route the computation through
#: the fault-tolerant :class:`~repro.core.runner.MaterializationRunner`
#: instead of the direct single-pass dispatch.
_RUNNER_OPTIONS = (
    "checkpoint",
    "resume",
    "unit_size",
    "max_retries",
    "retry_backoff",
    "unit_timeout",
    "fault_plan",
    "fallback_sequential",
)


def compute_relationships(
    data: CubeSpace | ObservationSpace,
    method: Method | str = Method.CUBE_MASKING,
    **options,
) -> RelationshipSet:
    """Compute S_F, S_P and S_C with the chosen method.

    ``options`` are forwarded to the method implementation (for example
    ``backend=`` for the baseline, ``algorithm=`` / ``sample_rate=`` for
    clustering, ``prefetch_children=`` for cube masking, ``mode=`` for
    the SPARQL and rule comparators).

    Passing any resilience option — ``checkpoint=``, ``resume=``,
    ``unit_size=``, ``max_retries=``, ``retry_backoff=``,
    ``unit_timeout=``, ``fault_plan=``, ``fallback_sequential=`` —
    executes the computation as recorded, resumable work units via
    :class:`~repro.core.runner.MaterializationRunner`: an interrupted
    run restarted with ``resume=True`` continues from its last durable
    unit and yields a result identical to an uninterrupted run.
    """
    try:
        resolved = Method(method)
    except ValueError:
        names = ", ".join(m.value for m in Method)
        raise AlgorithmError(f"unknown method {method!r}; expected one of: {names}") from None
    if any(name in options for name in _RUNNER_OPTIONS):
        from repro.core.runner import run_materialization

        return run_materialization(data, resolved, **options)
    space = _as_space(data)
    if resolved is Method.CUBE_MASKING and (
        options.pop("parallel", False) or "workers" in options
    ):
        from repro.core.parallel import compute_cubemask_parallel

        return compute_cubemask_parallel(space, **options)
    return _dispatch_table()[resolved](space, **options)


def update_relationships(
    space: ObservationSpace,
    result: RelationshipSet,
    new_observations: Iterable[tuple[URIRef, URIRef, Mapping[URIRef, URIRef], Iterable[URIRef]]],
) -> RelationshipSet:
    """Incrementally extend ``result`` with relationships of new data.

    Appends each ``(uri, dataset, dims, measures)`` tuple to ``space``
    and checks only the pairs that involve at least one new observation
    — O(n·m) for m new observations instead of O((n+m)²).  ``result``
    is mutated in place and returned.
    """
    start = len(space)
    for uri, dataset, dims, measures in new_observations:
        space.add(uri, dataset, dims, measures)
    n = len(space)
    total = len(space.dimensions)
    uris = [record.uri for record in space.observations]

    def check_pair(a: int, b: int) -> None:
        if a == b:
            return
        count = sum(
            1 for p in range(total) if space.dimension_contains(a, b, p)
        )
        overlap = space.measure_overlap(a, b)
        if count == total:
            if overlap:
                result.add_full(uris[a], uris[b])
            if a < b and space.observations[a].codes == space.observations[b].codes:
                result.add_complementary(uris[a], uris[b])
        elif 0 < count < total and overlap:
            result.add_partial(
                uris[a], uris[b], space.partial_dimensions(a, b), count / total if total else None
            )

    for new in range(start, n):
        for other in range(n):
            check_pair(new, other)
            if other < start:
                check_pair(other, new)
    return result


def remove_observations(
    space: ObservationSpace,
    result: RelationshipSet,
    uris: Iterable[URIRef],
) -> tuple[ObservationSpace, RelationshipSet]:
    """Incrementally retract observations.

    Returns ``(new_space, result)`` where ``new_space`` is a re-indexed
    copy without the removed observations and ``result`` (mutated in
    place) has every pair touching a removed observation purged —
    retraction never requires recomputation because relationships are
    pairwise.
    """
    removed = set(uris)
    unknown = removed - {record.uri for record in space.observations}
    if unknown:
        raise AlgorithmError(f"cannot remove unknown observations: {sorted(unknown)[:3]}")
    survivors = [
        record.index for record in space.observations if record.uri not in removed
    ]
    new_space = space.select(survivors)
    result.full = {pair for pair in result.full if not (set(pair) & removed)}
    result.partial = {pair for pair in result.partial if not (set(pair) & removed)}
    result.complementary = {
        pair for pair in result.complementary if not (set(pair) & removed)
    }
    result.partial_map = {
        pair: dims for pair, dims in result.partial_map.items() if not (set(pair) & removed)
    }
    result.degrees = {
        pair: degree for pair, degree in result.degrees.items() if not (set(pair) & removed)
    }
    return new_space, result
