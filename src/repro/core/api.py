"""High-level facade over the relationship-computation methods.

``compute_relationships`` is the single entry point a downstream user
needs: it accepts a :class:`~repro.qb.model.CubeSpace` (as loaded from
RDF) or a pre-built :class:`~repro.core.space.ObservationSpace`, and a
method name::

    from repro import compute_relationships, Method

    result = compute_relationships(cube, method=Method.CUBE_MASKING)

``update_relationships`` implements the incremental recomputation the
paper lists as future work: after appending new observations to a
space, only pairs that involve a new observation are (re)checked.
"""

from __future__ import annotations

from enum import Enum
from typing import Iterable, Mapping

from repro.errors import AlgorithmError
from repro.core.baseline import compute_baseline
from repro.core.cluster_method import compute_clustering
from repro.core.cubemask import compute_cubemask
from repro.core.results import RelationshipDelta, RelationshipSet, canonical
from repro.core.rules_method import compute_rules
from repro.core.space import ObservationSpace
from repro.core.sparql_method import compute_sparql
from repro.qb.model import CubeSpace
from repro.rdf.terms import URIRef

__all__ = ["Method", "compute_relationships", "update_relationships", "remove_observations"]


class Method(str, Enum):
    """The five strategies evaluated in the paper plus two extensions.

    ``STREAMING`` is the memory-bounded baseline and ``HYBRID`` the
    cubeMasking+clustering combination — both future-work items of the
    paper's Section 6, implemented here.
    """

    BASELINE = "baseline"
    CLUSTERING = "clustering"
    CUBE_MASKING = "cube_masking"
    SPARQL = "sparql"
    RULES = "rules"
    STREAMING = "streaming"
    HYBRID = "hybrid"


def _dispatch_table():
    from repro.core.hybrid import compute_hybrid
    from repro.core.streaming import compute_baseline_streaming

    return {
        Method.BASELINE: compute_baseline,
        Method.CLUSTERING: compute_clustering,
        Method.CUBE_MASKING: compute_cubemask,
        Method.SPARQL: compute_sparql,
        Method.RULES: compute_rules,
        Method.STREAMING: compute_baseline_streaming,
        Method.HYBRID: compute_hybrid,
    }


def _as_space(data: CubeSpace | ObservationSpace) -> ObservationSpace:
    if isinstance(data, ObservationSpace):
        return data
    if isinstance(data, CubeSpace):
        return ObservationSpace.from_cubespace(data)
    raise AlgorithmError(f"expected CubeSpace or ObservationSpace, got {type(data).__name__}")


#: ``compute_relationships`` keywords that route the computation through
#: the fault-tolerant :class:`~repro.core.runner.MaterializationRunner`
#: instead of the direct single-pass dispatch.
_RUNNER_OPTIONS = (
    "checkpoint",
    "resume",
    "unit_size",
    "max_retries",
    "retry_backoff",
    "unit_timeout",
    "fault_plan",
    "fallback_sequential",
)


def compute_relationships(
    data: CubeSpace | ObservationSpace,
    method: Method | str = Method.CUBE_MASKING,
    **options,
) -> RelationshipSet:
    """Compute S_F, S_P and S_C with the chosen method.

    ``options`` are forwarded to the method implementation (for example
    ``backend=`` for the baseline, ``algorithm=`` / ``sample_rate=`` for
    clustering, ``prefetch_children=`` / ``kernel=`` for cube masking,
    ``mode=`` for the SPARQL and rule comparators).

    Passing any resilience option — ``checkpoint=``, ``resume=``,
    ``unit_size=``, ``max_retries=``, ``retry_backoff=``,
    ``unit_timeout=``, ``fault_plan=``, ``fallback_sequential=`` —
    executes the computation as recorded, resumable work units via
    :class:`~repro.core.runner.MaterializationRunner`: an interrupted
    run restarted with ``resume=True`` continues from its last durable
    unit and yields a result identical to an uninterrupted run.
    """
    try:
        resolved = Method(method)
    except ValueError:
        names = ", ".join(m.value for m in Method)
        raise AlgorithmError(f"unknown method {method!r}; expected one of: {names}") from None
    if any(name in options for name in _RUNNER_OPTIONS):
        from repro.core.runner import run_materialization

        return run_materialization(data, resolved, **options)
    space = _as_space(data)
    if resolved is Method.CUBE_MASKING and (
        options.pop("parallel", False) or "workers" in options
    ):
        from repro.core.parallel import compute_cubemask_parallel

        return compute_cubemask_parallel(space, **options)
    return _dispatch_table()[resolved](space, **options)


def update_relationships(
    space: ObservationSpace,
    result: RelationshipSet,
    new_observations: Iterable[tuple[URIRef, URIRef, Mapping[URIRef, URIRef], Iterable[URIRef]]],
    *,
    return_delta: bool = False,
    kernel: str = "auto",
    kernel_threshold: int | None = None,
) -> RelationshipSet | tuple[RelationshipSet, RelationshipDelta]:
    """Incrementally extend ``result`` with relationships of new data.

    Appends each ``(uri, dataset, dims, measures)`` tuple to ``space``
    and checks only the pairs that involve at least one new observation.
    Candidate pairs are routed through the cube-lattice signature
    pruning of Algorithm 4: a pair whose level signatures admit neither
    containment direction (and whose cubes share no measure and are not
    the same cube) is skipped without touching a single dimension —
    incremental insert therefore skips provably unrelated cubes exactly
    like the batch cubeMasking method does.  Surviving cube pairs are
    scored per pair by the vectorised kernel or the tuple-at-a-time
    loop, selected exactly as in
    :func:`~repro.core.cubemask.compute_cubemask` (``kernel=`` /
    ``kernel_threshold=``).  ``result`` is mutated in place and
    returned.

    With ``return_delta=True`` the return value is ``(result, delta)``
    where ``delta`` is a :class:`~repro.core.results.RelationshipDelta`
    listing the pairs this call added — the hook the relationship
    service uses for O(|delta|) index maintenance and cache
    invalidation.
    """
    from repro.core import kernels as _kernels
    from repro.core.cubemask import KERNEL_MODES
    from repro.core.lattice import CubeLattice, dominates, partially_dominates

    if kernel not in KERNEL_MODES:
        raise AlgorithmError(f"unknown kernel mode {kernel!r}; expected one of {KERNEL_MODES}")
    threshold = (
        _kernels.DEFAULT_KERNEL_THRESHOLD if kernel_threshold is None else kernel_threshold
    )
    delta = RelationshipDelta()
    start = len(space)
    for uri, dataset, dims, measures in new_observations:
        space.add(uri, dataset, dims, measures)
    n = len(space)
    if n == start:
        return (result, delta) if return_delta else result
    total = len(space.dimensions)
    uris = [record.uri for record in space.observations]
    codes = [record.codes for record in space.observations]

    def emit_full(a: int, b: int) -> None:
        pair = (uris[a], uris[b])
        if pair not in result.full:
            result.add_full(*pair)
            delta.added_full.add(pair)

    def emit_complementary(a: int, b: int) -> None:
        pair = canonical(uris[a], uris[b])
        if pair not in result.complementary:
            result.complementary.add(pair)
            delta.added_complementary.add(pair)

    def emit_partial(a: int, b: int, count: int, dims=None) -> None:
        pair = (uris[a], uris[b])
        if dims is None:
            dims = space.partial_dimensions(a, b)
        degree = count / total if total else None
        fresh = pair not in result.partial
        result.add_partial(*pair, dims, degree)
        if fresh:
            delta.added_partial.add(pair)
            delta.partial_map[pair] = dims
            if degree is not None:
                delta.degrees[pair] = degree

    def check_pair(a: int, b: int) -> None:
        if a == b:
            return
        count = sum(1 for p in range(total) if space.dimension_contains(a, b, p))
        overlap = space.measure_overlap(a, b)
        if count == total:
            if overlap:
                emit_full(a, b)
            if a < b and codes[a] == codes[b]:
                emit_complementary(a, b)
        elif 0 < count < total and overlap:
            emit_partial(a, b, count)

    # ------------------------------------------------------------------
    # Cube-level pruning (Algorithm 4 applied to the delta): group the
    # space by level signature once, then only scan member pairs of
    # cube pairs whose signatures admit a containment direction.  A
    # cube pair also needs overlapping measures unless the signatures
    # are equal (complementarity needs no shared measure).
    # ------------------------------------------------------------------
    lattice = CubeLattice(space)
    signatures = lattice.signatures
    assignment, overlap_table = _kernels.measure_overlap_groups(space)
    cube_groups = {
        cube: sorted({int(assignment[i]) for i in members})
        for cube, members in lattice.nodes.items()
    }

    def cubes_share_measures(cube_a, cube_b) -> bool:
        return any(
            overlap_table[i, j] for i in cube_groups[cube_a] for j in cube_groups[cube_b]
        )

    # Kernel path: a lazily built plan over the extended space scores a
    # whole admissible cube pair in bulk; dimension masks ride along so
    # ``map_P`` entries need no per-pair recomputation (wider than
    # 64-dimension buses fall back to the per-pair extraction).
    plan_cache: list = []

    def get_plan() -> _kernels.KernelPlan:
        if not plan_cache:
            plan_cache.append(_kernels.build_kernel_plan(space))
        return plan_cache[0]

    kernel_collects_dims = total <= 64

    def scan_block(rows_a, rows_b, same_cube: bool) -> None:
        block = _kernels.evaluate_pair_block(
            get_plan(),
            rows_a,
            rows_b,
            containing=True,
            same_cube=same_cube,
            want_full=True,
            want_compl=same_cube,
            want_partial=True,
            collect_partial_dimensions=kernel_collects_dims,
        )
        for a, b in block.full:
            emit_full(a, b)
        for a, b in block.complementary:
            emit_complementary(a, b)
        if kernel_collects_dims:
            for (a, b, count), mask in zip(block.partial, block.partial_dim_masks):
                emit_partial(a, b, count, _kernels.decode_dim_mask(space.dimensions, mask))
        else:
            for a, b, count in block.partial:
                emit_partial(a, b, count)

    def use_kernel(pair_count: int) -> bool:
        if kernel == "python":
            return False
        return kernel == "numpy" or pair_count >= threshold

    def admissible(cube_a, cube_b) -> bool:
        """May *any* member pair (a in cube_a, b in cube_b) relate?"""
        if not (dominates(cube_a, cube_b) or partially_dominates(cube_a, cube_b)):
            return False
        return cube_a == cube_b or cubes_share_measures(cube_a, cube_b)

    new_cubes: dict = {}
    for index in range(start, n):
        new_cubes.setdefault(signatures[index], []).append(index)

    for cube_b, new_members in new_cubes.items():
        # Direction 1: pre-existing observations as container candidates.
        for cube_a, members_a in lattice.nodes.items():
            if not admissible(cube_a, cube_b):
                continue
            # new-new pairs are covered by direction 2
            old_members = [a for a in members_a if a < start]
            if not old_members:
                continue
            if use_kernel(len(old_members) * len(new_members)):
                scan_block(old_members, new_members, cube_a == cube_b)
                continue
            for a in old_members:
                for b in new_members:
                    check_pair(a, b)
    for cube_a, new_members in new_cubes.items():
        # Direction 2: new observations as container candidates (the
        # contained side ranges over the whole space, new included).
        for cube_b, members_b in lattice.nodes.items():
            if not admissible(cube_a, cube_b):
                continue
            if use_kernel(len(new_members) * len(members_b)):
                scan_block(new_members, members_b, cube_a == cube_b)
                continue
            for a in new_members:
                for b in members_b:
                    check_pair(a, b)
    return (result, delta) if return_delta else result


def remove_observations(
    space: ObservationSpace,
    result: RelationshipSet,
    uris: Iterable[URIRef],
    *,
    return_delta: bool = False,
) -> tuple[ObservationSpace, RelationshipSet] | tuple[ObservationSpace, RelationshipSet, RelationshipDelta]:
    """Incrementally retract observations.

    Returns ``(new_space, result)`` where ``new_space`` is a re-indexed
    copy without the removed observations and ``result`` (mutated in
    place) has every pair touching a removed observation purged —
    retraction never requires recomputation because relationships are
    pairwise.

    With ``return_delta=True`` a third element reports the purged pairs
    (``delta.removed_*``) so an index over ``result`` can retract the
    same edges without a rebuild.
    """
    removed = set(uris)
    unknown = removed - {record.uri for record in space.observations}
    if unknown:
        raise AlgorithmError(f"cannot remove unknown observations: {sorted(unknown)[:3]}")
    survivors = [
        record.index for record in space.observations if record.uri not in removed
    ]
    new_space = space.select(survivors)
    delta = RelationshipDelta(
        removed_full={pair for pair in result.full if set(pair) & removed},
        removed_partial={pair for pair in result.partial if set(pair) & removed},
        removed_complementary={pair for pair in result.complementary if set(pair) & removed},
    )
    result.full -= delta.removed_full
    result.partial -= delta.removed_partial
    result.complementary -= delta.removed_complementary
    for pair in delta.removed_partial:
        result.partial_map.pop(pair, None)
        result.degrees.pop(pair, None)
    if return_delta:
        return new_space, result, delta
    return new_space, result
