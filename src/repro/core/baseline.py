"""The baseline algorithm (Section 3.1, Algorithms 1 and 2).

``compute_baseline`` builds the occurrence matrix, runs ``computeOCM``
and derives the three relationship sets:

* full containment: ``counts[a, b] == |P|`` and shared measure,
* partial containment: ``0 < counts[a, b] < |P|`` and shared measure
  (with the per-dimension ``map_P`` when requested),
* complementarity: mutual dimension-level full containment
  (``counts[a, b] == counts[b, a] == |P|``).

Θ(n²) pair complexity, exactly as analysed in the paper.
"""

from __future__ import annotations

import numpy as np

from repro.core.matrix import Backend, OccurrenceMatrix, OCMResult
from repro.core.results import RelationshipSet
from repro.core.space import ObservationSpace

__all__ = ["compute_baseline", "derive_relationships", "measure_overlap_matrix"]


def measure_overlap_matrix(space: ObservationSpace) -> np.ndarray:
    """Boolean n×n matrix of pairwise measure-set intersection.

    Expanded from the deduplicated group tables of
    :func:`repro.core.kernels.measure_overlap_groups` — distinct
    measure sets are compared once, the "simple lookup" of the paper —
    so this stays one helper shared with cubeMasking and the kernels.
    """
    from repro.core.kernels import measure_overlap_groups

    assignment, overlap = measure_overlap_groups(space)
    return overlap[assignment[:, None], assignment[None, :]]


def normalize_targets(targets, collect_partial: bool = True) -> frozenset[str]:
    """Resolve the ``targets`` option shared by all methods.

    ``None`` means all three relationship types; ``collect_partial=False``
    (the legacy knob) removes ``"partial"``.
    """
    allowed = {"full", "partial", "complementary"}
    chosen = set(targets) if targets is not None else set(allowed)
    unknown = chosen - allowed
    if unknown:
        raise ValueError(f"unknown relationship targets: {sorted(unknown)}")
    if not collect_partial:
        chosen.discard("partial")
    return frozenset(chosen)


def derive_relationships(
    space: ObservationSpace,
    ocm: OCMResult,
    collect_partial: bool = True,
    collect_partial_dimensions: bool = True,
    targets=None,
) -> RelationshipSet:
    """Algorithm 2 ``baseline``: read the relationship sets off the OCM."""
    targets = normalize_targets(targets, collect_partial)
    result = RelationshipSet()
    n = len(space)
    if n == 0:
        return result
    counts = ocm.counts
    total = ocm.dimension_count
    uris = [record.uri for record in space.observations]

    full_dims = counts == total
    np.fill_diagonal(full_dims, False)

    if "full" in targets or "partial" in targets:
        overlap = measure_overlap_matrix(space)

    if "full" in targets:
        full_mask = full_dims & overlap
        for a, b in np.argwhere(full_mask):
            result.add_full(uris[a], uris[b])

    if "complementary" in targets:
        compl_mask = full_dims & full_dims.T
        for a, b in np.argwhere(compl_mask):
            if a < b:
                result.add_complementary(uris[a], uris[b])

    if "partial" in targets:
        partial_mask = (counts > 0) & (counts < total) & overlap
        np.fill_diagonal(partial_mask, False)
        pairs = np.argwhere(partial_mask)
        if collect_partial_dimensions and ocm.has_cms:
            cms = {dimension: ocm.cm(dimension) for dimension in ocm.dimensions}
            for a, b in pairs:
                dims = frozenset(
                    dimension for dimension in ocm.dimensions if cms[dimension][a, b]
                )
                result.add_partial(uris[a], uris[b], dims, counts[a, b] / total)
        else:
            for a, b in pairs:
                result.add_partial(uris[a], uris[b], degree=counts[a, b] / total)
    return result


def compute_baseline(
    space: ObservationSpace,
    backend: Backend = "numpy",
    collect_partial: bool = True,
    collect_partial_dimensions: bool = True,
    chunk: int = 512,
    targets=None,
) -> RelationshipSet:
    """Run the full baseline pipeline on an observation space.

    Set ``collect_partial=False`` to reproduce the paper's cheaper
    "full containment and complementarity only" configuration, where
    partial pairs are never enumerated; ``targets`` narrows the output
    to a subset of ``{"full", "partial", "complementary"}`` (the
    per-relationship timings of Figures 5a-c).
    """
    from repro.obs.tracing import trace

    resolved = normalize_targets(targets, collect_partial)
    with trace("baseline.compute", observations=len(space), backend=str(backend)):
        with trace("baseline.ocm"):
            matrix = OccurrenceMatrix(space, backend=backend)
            ocm = matrix.compute_ocm(
                keep_cms="partial" in resolved and collect_partial_dimensions,
                chunk=chunk,
            )
        with trace("baseline.derive"):
            return derive_relationships(
                space,
                ocm,
                collect_partial_dimensions=collect_partial_dimensions,
                targets=resolved,
            )
