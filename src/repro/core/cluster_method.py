"""The clustering method (Section 3.2, Algorithm 3).

Pre-process: fit a clustering algorithm on a random sample of the
occurrence-matrix rows (10 % by default, as in the paper), assign every
observation to the nearest cluster, then run the baseline inside each
cluster and union the per-cluster relationship sets.

The method trades recall for speed: relationships between observations
that land in different clusters are lost (~Θ(n²/k) comparisons; with
the paper's rule of thumb ``k = sqrt(n/2)`` this is Θ(n^1.5)).
"""

from __future__ import annotations

import math
from typing import Literal as TypingLiteral

import numpy as np

from repro.errors import AlgorithmError
from repro.core.baseline import compute_baseline
from repro.core.clustering import (
    CanopyClustering,
    HierarchicalClustering,
    KMeans,
    XMeans,
)
from repro.core.matrix import OccurrenceMatrix
from repro.core.results import RelationshipSet
from repro.core.space import ObservationSpace

__all__ = ["compute_clustering", "cluster_labels", "feature_matrix", "default_cluster_count"]

AlgorithmName = TypingLiteral["kmeans", "xmeans", "canopy", "hierarchical"]


def feature_matrix(space: ObservationSpace) -> np.ndarray:
    """Binary occurrence-matrix rows as a float matrix for clustering."""
    matrix = OccurrenceMatrix(space, backend="numpy")
    dense, _ = matrix.dense()
    return dense.astype(np.float64)


def default_cluster_count(n: int) -> int:
    """The paper's rule of thumb ``k = sqrt(n/2)``."""
    return max(1, int(round(math.sqrt(n / 2))))


def _make_model(
    algorithm: AlgorithmName,
    n_clusters: int,
    seed: int,
    canopy_t1: float,
    canopy_t2: float,
):
    if algorithm == "kmeans":
        return KMeans(n_clusters, seed=seed)
    if algorithm == "xmeans":
        return XMeans(min_k=2, max_k=max(2, n_clusters), seed=seed)
    if algorithm == "canopy":
        return CanopyClustering(t1=canopy_t1, t2=canopy_t2, seed=seed)
    if algorithm == "hierarchical":
        return HierarchicalClustering(n_clusters, seed=seed)
    raise AlgorithmError(f"unknown clustering algorithm {algorithm!r}")


def cluster_labels(
    space: ObservationSpace,
    algorithm: AlgorithmName = "xmeans",
    sample_rate: float = 0.1,
    n_clusters: int | None = None,
    seed: int = 0,
    canopy_t1: float = 0.7,
    canopy_t2: float = 0.4,
    min_sample: int = 32,
) -> np.ndarray:
    """The pre-processing half of Algorithm 3: fit on a sample, assign all.

    Deterministic for a fixed ``seed``, which is what lets the
    resilience layer treat each cluster as an independently resumable
    work unit — a resumed run refits the same assignment.
    """
    n = len(space)
    if not 0.0 < sample_rate <= 1.0:
        raise AlgorithmError("sample_rate must be in (0, 1]")
    features = feature_matrix(space)
    rng = np.random.default_rng(seed)
    sample_size = min(n, max(min_sample, int(math.ceil(n * sample_rate))))
    sample_indices = rng.choice(n, size=sample_size, replace=False)
    sample = features[sample_indices]
    k = n_clusters if n_clusters is not None else default_cluster_count(n)
    model = _make_model(algorithm, k, seed, canopy_t1, canopy_t2)
    return model.fit_assign(sample, features)


def compute_clustering(
    space: ObservationSpace,
    algorithm: AlgorithmName = "xmeans",
    sample_rate: float = 0.1,
    n_clusters: int | None = None,
    seed: int = 0,
    collect_partial: bool = True,
    collect_partial_dimensions: bool = False,
    canopy_t1: float = 0.7,
    canopy_t2: float = 0.4,
    min_sample: int = 32,
    targets=None,
) -> RelationshipSet:
    """Run Algorithm 3: cluster, then baseline inside each cluster.

    Parameters
    ----------
    algorithm:
        ``"xmeans"`` (paper's best), ``"kmeans"``, ``"canopy"`` or
        ``"hierarchical"``.
    sample_rate:
        Fraction of observations used to fit the clustering (paper: 0.1).
    n_clusters:
        Cluster count for k-means/hierarchical and the x-means upper
        bound; defaults to the ``sqrt(n/2)`` rule of thumb.
    """
    result = RelationshipSet()
    n = len(space)
    if n == 0:
        return result
    labels = cluster_labels(
        space,
        algorithm=algorithm,
        sample_rate=sample_rate,
        n_clusters=n_clusters,
        seed=seed,
        canopy_t1=canopy_t1,
        canopy_t2=canopy_t2,
        min_sample=min_sample,
    )

    for cluster in np.unique(labels):
        member_indices = np.flatnonzero(labels == cluster)
        if len(member_indices) < 2:
            continue
        sub_space = space.select(int(i) for i in member_indices)
        partial = compute_baseline(
            sub_space,
            collect_partial=collect_partial,
            collect_partial_dimensions=collect_partial_dimensions,
            targets=targets,
        )
        result.merge(partial)
    return result
