"""Clustering algorithms for the search-space pruning method.

The paper experiments with three families — x-means, canopy and
agglomerative hierarchical clustering — fitted on a 10 % sample with
the remaining points assigned to the identified clusters.  Each
algorithm here exposes the same two-step interface::

    model = XMeans(max_k=20, seed=7)
    labels = model.fit_assign(sample, full_matrix)

``sample`` is the subset used to discover clusters; ``full_matrix`` is
every observation's feature vector (binary occurrence-matrix rows).
"""

from repro.core.clustering.canopy import CanopyClustering
from repro.core.clustering.hierarchical import HierarchicalClustering
from repro.core.clustering.kmeans import KMeans, assign_to_centroids
from repro.core.clustering.xmeans import XMeans

__all__ = [
    "KMeans",
    "XMeans",
    "CanopyClustering",
    "HierarchicalClustering",
    "assign_to_centroids",
]
