"""Canopy clustering (McCallum, Nigam & Ungar, 2000).

A fast single-pass method using a cheap distance and two thresholds:
points within the *tight* threshold ``t2`` of a canopy centre are
removed from the candidate pool; points within the *loose* threshold
``t1`` join the canopy.  We use Jaccard distance on the binary feature
vectors, which the paper pairs with its bit-vector representation.
"""

from __future__ import annotations

import numpy as np

from repro.errors import AlgorithmError

__all__ = ["CanopyClustering", "jaccard_distances"]


def jaccard_distances(points: np.ndarray, center: np.ndarray) -> np.ndarray:
    """Jaccard distance of every row of ``points`` from ``center``.

    Inputs are 0/1 arrays; distance = 1 - |a ∧ b| / |a ∨ b|.
    """
    boolean = points.astype(bool)
    center_b = center.astype(bool)
    intersection = (boolean & center_b).sum(axis=1)
    union = (boolean | center_b).sum(axis=1)
    with np.errstate(invalid="ignore"):
        similarity = np.where(union > 0, intersection / np.maximum(union, 1), 1.0)
    return 1.0 - similarity


class CanopyClustering:
    """Two-threshold canopy clustering with Jaccard distance.

    ``t1`` (loose) must be >= ``t2`` (tight); both are distances in
    [0, 1].  After fitting, points are assigned to the nearest canopy
    centre.
    """

    def __init__(self, t1: float = 0.7, t2: float = 0.4, seed: int = 0):
        if not (0.0 <= t2 <= t1 <= 1.0):
            raise AlgorithmError("canopy thresholds need 0 <= t2 <= t1 <= 1")
        self.t1 = t1
        self.t2 = t2
        self.seed = seed
        self.centers_: np.ndarray | None = None

    def fit(self, points: np.ndarray) -> "CanopyClustering":
        points = np.asarray(points)
        if points.ndim != 2 or len(points) == 0:
            raise AlgorithmError("fit expects a non-empty 2-D matrix")
        rng = np.random.default_rng(self.seed)
        remaining = list(rng.permutation(len(points)))
        centers: list[np.ndarray] = []
        while remaining:
            center_index = remaining.pop(0)
            center = points[center_index]
            centers.append(center)
            if not remaining:
                break
            rest = points[remaining]
            distances = jaccard_distances(rest, center)
            # Points inside the tight threshold can no longer seed canopies.
            keep = [
                index
                for index, distance in zip(remaining, distances)
                if distance > self.t2
            ]
            remaining = keep
        self.centers_ = np.asarray(centers)
        return self

    def assign(self, points: np.ndarray) -> np.ndarray:
        if self.centers_ is None:
            raise AlgorithmError("assign called before fit")
        points = np.asarray(points)
        n = len(points)
        best = np.zeros(n, dtype=np.int32)
        best_distance = np.full(n, np.inf)
        for index, center in enumerate(self.centers_):
            distances = jaccard_distances(points, center)
            better = distances < best_distance
            best[better] = index
            best_distance[better] = distances[better]
        return best

    def fit_assign(self, sample: np.ndarray, full: np.ndarray) -> np.ndarray:
        self.fit(sample)
        return self.assign(full)
