"""Bottom-up agglomerative clustering with average linkage.

Jaccard distance on binary feature vectors, merged until ``n_clusters``
remain.  O(m² log m) on the sample of size m via a lazy heap of merge
candidates (Lance-Williams update for average linkage).
"""

from __future__ import annotations

import heapq

import numpy as np

from repro.errors import AlgorithmError
from repro.core.clustering.kmeans import assign_to_centroids

__all__ = ["HierarchicalClustering"]


def _jaccard_matrix(points: np.ndarray) -> np.ndarray:
    boolean = points.astype(bool)
    intersection = boolean.astype(np.float64) @ boolean.T.astype(np.float64)
    row_sums = boolean.sum(axis=1).astype(np.float64)
    union = row_sums[:, None] + row_sums[None, :] - intersection
    with np.errstate(invalid="ignore", divide="ignore"):
        similarity = np.where(union > 0, intersection / np.maximum(union, 1e-12), 1.0)
    return 1.0 - similarity


class HierarchicalClustering:
    """Average-linkage agglomerative clustering (UPGMA)."""

    def __init__(self, n_clusters: int, seed: int = 0):
        if n_clusters < 1:
            raise AlgorithmError("n_clusters must be >= 1")
        self.n_clusters = n_clusters
        self.seed = seed  # unused; kept for interface uniformity
        self.centers_: np.ndarray | None = None
        self.labels_: np.ndarray | None = None

    def fit(self, points: np.ndarray) -> "HierarchicalClustering":
        points = np.asarray(points, dtype=np.float64)
        m = len(points)
        if m == 0:
            raise AlgorithmError("fit expects a non-empty matrix")
        target = min(self.n_clusters, m)
        distance = _jaccard_matrix(points)
        sizes = {i: 1 for i in range(m)}
        alive = set(range(m))
        heap: list[tuple[float, int, int]] = []
        for i in range(m):
            for j in range(i + 1, m):
                heap.append((distance[i, j], i, j))
        heapq.heapify(heap)
        parent = list(range(m))
        # Distances between merged clusters live in a dict keyed by the
        # (new) cluster ids; new ids continue after m.
        cluster_distance: dict[tuple[int, int], float] = {}

        def get_distance(a: int, b: int) -> float:
            if a < m and b < m:
                return float(distance[min(a, b), max(a, b)])
            return cluster_distance[(min(a, b), max(a, b))]

        next_id = m
        members: dict[int, list[int]] = {i: [i] for i in range(m)}
        while len(alive) > target and heap:
            d, a, b = heapq.heappop(heap)
            if a not in alive or b not in alive:
                continue
            if get_distance(a, b) != d:
                continue
            alive.discard(a)
            alive.discard(b)
            new = next_id
            next_id += 1
            members[new] = members.pop(a) + members.pop(b)
            size_a, size_b = sizes.pop(a), sizes.pop(b)
            sizes[new] = size_a + size_b
            for other in alive:
                # Average linkage (Lance-Williams).
                merged = (
                    size_a * get_distance(a, other) + size_b * get_distance(b, other)
                ) / (size_a + size_b)
                cluster_distance[(min(new, other), max(new, other))] = merged
                heapq.heappush(heap, (merged, min(new, other), max(new, other)))
            alive.add(new)

        labels = np.empty(m, dtype=np.int32)
        centers = []
        for cluster_index, cluster_id in enumerate(sorted(alive)):
            rows = members[cluster_id]
            labels[rows] = cluster_index
            centers.append(points[rows].mean(axis=0))
        self.labels_ = labels
        self.centers_ = np.asarray(centers)
        return self

    def fit_assign(self, sample: np.ndarray, full: np.ndarray) -> np.ndarray:
        self.fit(sample)
        assert self.centers_ is not None
        return assign_to_centroids(np.asarray(full, dtype=np.float64), self.centers_)
