"""Lloyd's k-means with k-means++ seeding.

Operates on the binary occurrence-matrix rows as real vectors.  Also
provides :func:`assign_to_centroids`, the shared "assign the remaining
points to the identified clusters" step of the paper's clustering
configuration.
"""

from __future__ import annotations

import numpy as np

from repro.errors import AlgorithmError

__all__ = ["KMeans", "assign_to_centroids", "pairwise_sq_distances"]


def pairwise_sq_distances(points: np.ndarray, centers: np.ndarray) -> np.ndarray:
    """Squared Euclidean distances, (n_points, n_centers)."""
    # ||x - c||^2 = ||x||^2 - 2 x.c + ||c||^2, computed blockwise-safe.
    x_sq = np.einsum("ij,ij->i", points, points)[:, None]
    c_sq = np.einsum("ij,ij->i", centers, centers)[None, :]
    cross = points @ centers.T
    distances = x_sq - 2.0 * cross + c_sq
    np.maximum(distances, 0.0, out=distances)
    return distances


def assign_to_centroids(points: np.ndarray, centers: np.ndarray, chunk: int = 4096) -> np.ndarray:
    """Nearest-centroid labels for every row of ``points``."""
    labels = np.empty(len(points), dtype=np.int32)
    for start in range(0, len(points), chunk):
        stop = min(start + chunk, len(points))
        distances = pairwise_sq_distances(points[start:stop], centers)
        labels[start:stop] = np.argmin(distances, axis=1)
    return labels


class KMeans:
    """Standard k-means (Lloyd iterations, k-means++ initialisation)."""

    def __init__(self, n_clusters: int, seed: int = 0, max_iter: int = 50, tol: float = 1e-6):
        if n_clusters < 1:
            raise AlgorithmError("n_clusters must be >= 1")
        self.n_clusters = n_clusters
        self.seed = seed
        self.max_iter = max_iter
        self.tol = tol
        self.centers_: np.ndarray | None = None
        self.inertia_: float = float("inf")

    # ------------------------------------------------------------------
    def _init_centers(self, points: np.ndarray, rng: np.random.Generator) -> np.ndarray:
        """k-means++ seeding."""
        n = len(points)
        k = min(self.n_clusters, n)
        centers = np.empty((k, points.shape[1]), dtype=np.float64)
        first = rng.integers(n)
        centers[0] = points[first]
        closest = pairwise_sq_distances(points, centers[:1]).ravel()
        for i in range(1, k):
            total = closest.sum()
            if total <= 0:
                centers[i:] = points[rng.integers(n, size=k - i)]
                break
            probabilities = closest / total
            choice = rng.choice(n, p=probabilities)
            centers[i] = points[choice]
            distance_to_new = pairwise_sq_distances(points, centers[i : i + 1]).ravel()
            np.minimum(closest, distance_to_new, out=closest)
        return centers

    def fit(self, points: np.ndarray) -> "KMeans":
        """Run Lloyd iterations until convergence or ``max_iter``."""
        points = np.asarray(points, dtype=np.float64)
        if points.ndim != 2 or len(points) == 0:
            raise AlgorithmError("fit expects a non-empty 2-D matrix")
        rng = np.random.default_rng(self.seed)
        centers = self._init_centers(points, rng)
        k = len(centers)
        previous_inertia = float("inf")
        for _ in range(self.max_iter):
            distances = pairwise_sq_distances(points, centers)
            labels = np.argmin(distances, axis=1)
            inertia = float(distances[np.arange(len(points)), labels].sum())
            new_centers = np.empty_like(centers)
            for cluster in range(k):
                mask = labels == cluster
                if mask.any():
                    new_centers[cluster] = points[mask].mean(axis=0)
                else:
                    # Re-seed an empty cluster at the worst-served point.
                    worst = int(np.argmax(distances[np.arange(len(points)), labels]))
                    new_centers[cluster] = points[worst]
            centers = new_centers
            if previous_inertia - inertia <= self.tol * max(previous_inertia, 1.0):
                break
            previous_inertia = inertia
        self.centers_ = centers
        self.inertia_ = inertia
        return self

    def fit_assign(self, sample: np.ndarray, full: np.ndarray) -> np.ndarray:
        """Fit on ``sample``, then label every row of ``full``."""
        self.fit(sample)
        assert self.centers_ is not None
        return assign_to_centroids(np.asarray(full, dtype=np.float64), self.centers_)
