"""X-means: k-means with BIC-driven estimation of k (Pelleg & Moore).

Starts from ``min_k`` clusters and repeatedly tries to split each
cluster in two; a split is kept when the Bayesian Information
Criterion of the two-cluster model beats the one-cluster model of that
region.  The paper found x-means (on a 10 % sample) to dominate canopy
and hierarchical clustering in recall at comparable runtimes.
"""

from __future__ import annotations

import numpy as np

from repro.core.clustering.kmeans import KMeans, assign_to_centroids

__all__ = ["XMeans"]


def _bic(points: np.ndarray, centers: np.ndarray, labels: np.ndarray) -> float:
    """BIC of a spherical-Gaussian k-means model (Pelleg & Moore, 2000)."""
    n, dims = points.shape
    k = len(centers)
    if n <= k:
        return -np.inf
    residual = 0.0
    for cluster in range(k):
        mask = labels == cluster
        if mask.any():
            diff = points[mask] - centers[cluster]
            residual += float(np.einsum("ij,ij->", diff, diff))
    variance = residual / max(n - k, 1) / max(dims, 1)
    if variance <= 0:
        variance = 1e-12
    log_likelihood = 0.0
    for cluster in range(k):
        size = int((labels == cluster).sum())
        if size <= 0:
            continue
        log_likelihood += (
            size * np.log(max(size, 1))
            - size * np.log(n)
            - size * dims / 2.0 * np.log(2.0 * np.pi * variance)
            - (size - 1) * dims / 2.0
        )
    parameters = k * (dims + 1)
    return log_likelihood - parameters / 2.0 * np.log(n)


class XMeans:
    """BIC-guided cluster-count selection on top of k-means."""

    def __init__(self, min_k: int = 2, max_k: int = 32, seed: int = 0, max_iter: int = 50):
        self.min_k = max(1, min_k)
        self.max_k = max(self.min_k, max_k)
        self.seed = seed
        self.max_iter = max_iter
        self.centers_: np.ndarray | None = None

    def fit(self, points: np.ndarray) -> "XMeans":
        points = np.asarray(points, dtype=np.float64)
        base = KMeans(min(self.min_k, len(points)), seed=self.seed, max_iter=self.max_iter)
        base.fit(points)
        centers = list(base.centers_)  # type: ignore[arg-type]
        improved = True
        round_seed = self.seed
        while improved and len(centers) < self.max_k:
            improved = False
            labels = assign_to_centroids(points, np.asarray(centers))
            next_centers: list[np.ndarray] = []
            for cluster, center in enumerate(centers):
                members = points[labels == cluster]
                if len(members) < 4 or len(centers) + len(next_centers) - cluster >= self.max_k:
                    next_centers.append(center)
                    continue
                round_seed += 1
                split = KMeans(2, seed=round_seed, max_iter=self.max_iter).fit(members)
                split_labels = assign_to_centroids(members, split.centers_)  # type: ignore[arg-type]
                parent_bic = _bic(members, center[None, :], np.zeros(len(members), dtype=np.int32))
                child_bic = _bic(members, split.centers_, split_labels)  # type: ignore[arg-type]
                if child_bic > parent_bic:
                    next_centers.extend(split.centers_)  # type: ignore[arg-type]
                    improved = True
                else:
                    next_centers.append(center)
            centers = next_centers
        self.centers_ = np.asarray(centers)
        return self

    def fit_assign(self, sample: np.ndarray, full: np.ndarray) -> np.ndarray:
        self.fit(sample)
        assert self.centers_ is not None
        return assign_to_centroids(np.asarray(full, dtype=np.float64), self.centers_)
