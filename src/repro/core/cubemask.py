"""The cubeMasking algorithm (Section 3.3, Algorithm 4).

Observations are first hashed into lattice cubes (level signatures);
relationship checks then run only between observations of cube pairs
whose signatures admit the relationship:

* full containment / complementarity: cube A must dominate cube B
  pointwise (``level_A[i] <= level_B[i]`` on all dimensions; equality
  of signatures for complementarity),
* partial containment: at least one dominating dimension.

The method is lossless (100 % recall) because signature dominance is a
necessary condition of the instance-level relationships.  The optional
``prefetch_children`` flag stores each cube's dominated-cube list in
memory instead of re-testing dominance in every pass — the ~15-20 %
optimisation of Figure 5(g).
"""

from __future__ import annotations

from repro.core.lattice import CubeLattice, dominates, partially_dominates
from repro.core.results import RelationshipSet
from repro.core.space import ObservationSpace
from repro.rdf.terms import URIRef

__all__ = ["compute_cubemask"]


def _measure_overlap_lookup(space: ObservationSpace):
    """Pairwise overlap between the (few) distinct measure sets."""
    unique: dict[frozenset, int] = {}
    assignment: list[int] = []
    for record in space.observations:
        group = unique.setdefault(record.measures, len(unique))
        assignment.append(group)
    groups = list(unique)
    overlap = [
        [not gi.isdisjoint(gj) for gj in groups]
        for gi in groups
    ]
    return assignment, overlap


def compute_cubemask(
    space: ObservationSpace,
    prefetch_children: bool = True,
    collect_partial: bool = True,
    collect_partial_dimensions: bool = False,
    targets=None,
    stats: dict | None = None,
) -> RelationshipSet:
    """Run cubeMasking over an observation space.

    Parameters mirror :func:`repro.core.baseline.compute_baseline`;
    ``prefetch_children`` toggles the children-prefetching optimisation
    benchmarked in Figure 5(g).  Pass a dict as ``stats`` to receive
    pruning counters (``cube_pairs``, ``instance_comparisons``) — the
    quantity the lattice actually saves versus the baseline's n².
    """
    from repro.core.baseline import normalize_targets

    targets = normalize_targets(targets, collect_partial)
    result = RelationshipSet()
    if stats is not None:
        stats["cubes"] = 0
        stats["cube_pairs"] = 0
        stats["instance_comparisons"] = 0
    n = len(space)
    if n == 0:
        return result
    lattice = CubeLattice(space)
    if stats is not None:
        stats["cubes"] = len(lattice)
    dimensions = space.dimensions
    k = len(dimensions)
    # Local, index-aligned views for the hot loops.
    ancestor_sets = [
        space.hierarchies[dimension]._ancestors for dimension in dimensions
    ]
    codes = [record.codes for record in space.observations]
    uris = [record.uri for record in space.observations]
    assignment, overlap = _measure_overlap_lookup(space)

    def full_dim_containment(a: int, b: int) -> bool:
        code_a, code_b = codes[a], codes[b]
        for position in range(k):
            if code_a[position] not in ancestor_sets[position][code_b[position]]:
                return False
        return True

    def containment_count(a: int, b: int) -> int:
        code_a, code_b = codes[a], codes[b]
        count = 0
        for position in range(k):
            if code_a[position] in ancestor_sets[position][code_b[position]]:
                count += 1
        return count

    # ------------------------------------------------------------------
    # Full containment and complementarity over dominating cube pairs.
    #
    # With ``prefetch_children`` the dominated-cube lists are derived
    # once and shared by both relationship passes (the paper's in-memory
    # children mapping); without it, each pass re-derives cube dominance
    # on the fly — the unoptimised variant Figure 5(g) compares against.
    # ------------------------------------------------------------------
    want_full = "full" in targets
    want_compl = "complementary" in targets
    children = lattice.children_index() if prefetch_children else None

    def dominating_pairs():
        if children is not None:
            return ((parent, child) for parent in lattice.nodes for child in children[parent])
        return lattice.containment_pairs()

    def scan_pair(cube_a, cube_b, check_full: bool, check_compl: bool) -> None:
        members_a = lattice.nodes[cube_a]
        members_b = lattice.nodes[cube_b]
        same_cube = cube_a == cube_b
        if stats is not None:
            stats["cube_pairs"] += 1
            stats["instance_comparisons"] += len(members_a) * len(members_b)
        for a in members_a:
            for b in members_b:
                if a == b:
                    continue
                if not full_dim_containment(a, b):
                    continue
                if check_full and overlap[assignment[a]][assignment[b]]:
                    result.add_full(uris[a], uris[b])
                # Mutual containment with equal signatures means equal
                # code vectors -> complementarity.
                if check_compl and same_cube and a < b and codes[a] == codes[b]:
                    result.add_complementary(uris[a], uris[b])

    if children is not None:
        # One fused pass over the prefetched children lists.
        if want_full or want_compl:
            for cube_a, cube_b in dominating_pairs():
                if not want_full and cube_a != cube_b:
                    continue  # complementarity only lives inside one cube
                scan_pair(cube_a, cube_b, want_full, want_compl)
    else:
        # Separate sweeps, re-deriving cube dominance each time.
        if want_full:
            for cube_a, cube_b in dominating_pairs():
                scan_pair(cube_a, cube_b, True, False)
        if want_compl:
            for cube_a, cube_b in dominating_pairs():
                if cube_a == cube_b:
                    scan_pair(cube_a, cube_b, False, True)

    # ------------------------------------------------------------------
    # Partial containment over partially dominating cube pairs.
    # ------------------------------------------------------------------
    if "partial" in targets:
        # Cube-level measure prefilter: a cube pair can only yield
        # partial pairs when some member measure-groups overlap.
        cube_groups: dict = {
            cube: frozenset(assignment[i] for i in members)
            for cube, members in lattice.nodes.items()
        }
        group_count = max(assignment) + 1 if assignment else 0
        groups_overlap = [
            [overlap[i][j] for j in range(group_count)] for i in range(group_count)
        ]

        def cubes_share_measures(ga: frozenset, gb: frozenset) -> bool:
            return any(groups_overlap[i][j] for i in ga for j in gb)

        for cube_a, cube_b in lattice.partial_pairs():
            if not cubes_share_measures(cube_groups[cube_a], cube_groups[cube_b]):
                continue
            members_a = lattice.nodes[cube_a]
            members_b = lattice.nodes[cube_b]
            if stats is not None:
                stats["cube_pairs"] += 1
                stats["instance_comparisons"] += len(members_a) * len(members_b)
            for a in members_a:
                for b in members_b:
                    if a == b or not overlap[assignment[a]][assignment[b]]:
                        continue
                    count = containment_count(a, b)
                    if 0 < count < k:
                        if collect_partial_dimensions:
                            dims = frozenset(
                                dimensions[p]
                                for p in range(k)
                                if codes[a][p] in ancestor_sets[p][codes[b][p]]
                            )
                            result.add_partial(uris[a], uris[b], dims, count / k)
                        else:
                            result.add_partial(uris[a], uris[b], degree=count / k)
    return result
