"""The cubeMasking algorithm (Section 3.3, Algorithm 4).

Observations are first hashed into lattice cubes (level signatures);
relationship checks then run only between observations of cube pairs
whose signatures admit the relationship:

* full containment / complementarity: cube A must dominate cube B
  pointwise (``level_A[i] <= level_B[i]`` on all dimensions; equality
  of signatures for complementarity),
* partial containment: at least one dominating dimension.

The method is lossless (100 % recall) because signature dominance is a
necessary condition of the instance-level relationships.  The optional
``prefetch_children`` flag stores each cube's dominated-cube list in
memory instead of re-testing dominance in every pass — the ~15-20 %
optimisation of Figure 5(g).

Instance checks within a surviving cube pair run on one of two paths,
selected per pair by the ``kernel`` parameter:

* ``"numpy"`` — the vectorised kernel of :mod:`repro.core.kernels`:
  one chunked broadcast AND-compare over the packed ancestor-closure
  blocks scores all ``|A| × |B|`` member pairs at once,
* ``"python"`` — the original tuple-at-a-time loop (no packed-matrix
  build, lowest constant factor for tiny inputs),
* ``"auto"`` (default) — numpy once a pair's member-count product
  reaches ``kernel_threshold``, python below it.
"""

from __future__ import annotations

import time

import numpy as np

from repro.core.lattice import CubeLattice
from repro.core.results import RelationshipSet
from repro.core.space import ObservationSpace
from repro.errors import AlgorithmError

__all__ = ["compute_cubemask", "KERNEL_MODES"]

KERNEL_MODES = ("auto", "numpy", "python")

#: Every counter ``compute_cubemask`` maintains when handed a stats
#: dict.  ``instance_comparisons`` counts member pairs actually
#: evaluated; ``pruned_comparisons`` counts pairs skipped without
#: per-instance work (the ``a == b`` diagonal of same-cube scans plus
#: all members of cube pairs dropped by the measure prefilter, which
#: themselves show up in ``pruned_cube_pairs``) — keeping the two
#: separate makes the pruning numbers match Table 4's methodology.
STAT_KEYS = (
    "cubes",
    "cube_pairs",
    "instance_comparisons",
    "pruned_comparisons",
    "pruned_cube_pairs",
    "kernel_pairs",
    "kernel_ns",
)

# Registry metrics are resolved once and cached; kernel_pairs/kernel_ns
# are intentionally absent — repro.core.kernels owns those series.
_REGISTRY_METRICS = None


def _registry_metrics():
    global _REGISTRY_METRICS
    if _REGISTRY_METRICS is None:
        from repro.obs.registry import get_registry

        registry = get_registry()
        _REGISTRY_METRICS = {
            "runs": registry.counter(
                "repro_cubemask_runs_total",
                "Completed cubeMasking materialisations.",
            ),
            "cube_pairs": registry.counter(
                "repro_cubemask_cube_pairs_total",
                "Cube pairs surviving signature dominance pruning.",
            ),
            "instance_comparisons": registry.counter(
                "repro_cubemask_instance_comparisons_total",
                "Observation pairs evaluated at the instance level.",
            ),
            "pruned_comparisons": registry.counter(
                "repro_cubemask_pruned_comparisons_total",
                "Observation pairs skipped without instance-level work.",
            ),
            "pruned_cube_pairs": registry.counter(
                "repro_cubemask_pruned_cube_pairs_total",
                "Cube pairs dropped by the measure-overlap prefilter.",
            ),
            "last_cubes": registry.gauge(
                "repro_cubemask_last_cubes",
                "Lattice cubes in the most recent cubeMasking run.",
            ),
        }
    return _REGISTRY_METRICS


def _flush_counts(counts: dict) -> None:
    metrics = _registry_metrics()
    metrics["runs"].inc()
    for key in (
        "cube_pairs",
        "instance_comparisons",
        "pruned_comparisons",
        "pruned_cube_pairs",
    ):
        if counts[key]:
            metrics[key].inc(counts[key])
    metrics["last_cubes"].set(counts["cubes"])
    # Kernel counters batch their registry pushes; drain the tail so a
    # scrape right after a compute sees the complete numbers.
    from repro.core import kernels

    kernels.flush_registry_counters()


def compute_cubemask(
    space: ObservationSpace,
    prefetch_children: bool = True,
    collect_partial: bool = True,
    collect_partial_dimensions: bool = False,
    targets=None,
    stats: dict | None = None,
    kernel: str = "auto",
    kernel_threshold: int | None = None,
) -> RelationshipSet:
    """Run cubeMasking over an observation space.

    Parameters mirror :func:`repro.core.baseline.compute_baseline`;
    ``prefetch_children`` toggles the children-prefetching optimisation
    benchmarked in Figure 5(g).  Pass a dict as ``stats`` to receive
    the counters listed in :data:`STAT_KEYS`.  ``kernel`` selects the
    instance-check path per cube pair (see module docstring);
    ``kernel_threshold`` overrides the member-count product at which
    ``"auto"`` switches to the vectorised kernel.
    """
    from repro.core.baseline import normalize_targets
    from repro.core import kernels as _kernels
    from repro.obs.tracing import trace

    if kernel not in KERNEL_MODES:
        raise AlgorithmError(f"unknown kernel mode {kernel!r}; expected one of {KERNEL_MODES}")
    threshold = (
        _kernels.DEFAULT_KERNEL_THRESHOLD if kernel_threshold is None else kernel_threshold
    )
    targets = normalize_targets(targets, collect_partial)
    result = RelationshipSet()
    # Counters are now collected unconditionally (the increments are
    # per *cube pair*, negligible next to the instance work) so the
    # pruning breakdown always reaches the repro.obs registry; a
    # caller-supplied ``stats`` dict receives a copy at the end.
    counts = {key: 0 for key in STAT_KEYS}
    if stats is not None:
        stats.update(counts)
    n = len(space)
    if n == 0:
        return result
    with trace("cubemask.lattice", observations=n):
        lattice = CubeLattice(space)
    counts["cubes"] = len(lattice)
    dimensions = space.dimensions
    k = len(dimensions)
    # Local, index-aligned views for the hot loops.
    ancestor_sets = [
        space.hierarchies[dimension]._ancestors for dimension in dimensions
    ]
    codes = [record.codes for record in space.observations]
    uris = [record.uri for record in space.observations]
    assignment, overlap = _kernels.measure_overlap_groups(space)

    # The kernel plan (packed blocks + code ids) is built lazily on the
    # first cube pair that takes the numpy path, so ``kernel="python"``
    # and all-tiny-cube runs never pay for it.
    plan = None
    member_rows: dict = {}

    def get_plan():
        nonlocal plan
        if plan is None:
            plan = _kernels.build_kernel_plan(space)
        return plan

    def rows_of(cube):
        rows = member_rows.get(cube)
        if rows is None:
            rows = np.asarray(lattice.nodes[cube], dtype=np.int64)
            member_rows[cube] = rows
        return rows

    def use_kernel(pair_count: int) -> bool:
        if kernel == "python":
            return False
        if kernel == "numpy":
            return True
        return pair_count >= threshold

    def note_pair(la: int, lb: int, same_cube: bool) -> None:
        counts["cube_pairs"] += 1
        diagonal = la if same_cube else 0
        counts["instance_comparisons"] += la * lb - diagonal
        counts["pruned_comparisons"] += diagonal

    def note_kernel(started_ns: int, pairs: int) -> None:
        counts["kernel_ns"] += time.perf_counter_ns() - started_ns
        counts["kernel_pairs"] += pairs

    def full_dim_containment(a: int, b: int) -> bool:
        code_a, code_b = codes[a], codes[b]
        for position in range(k):
            if code_a[position] not in ancestor_sets[position][code_b[position]]:
                return False
        return True

    def containment_count(a: int, b: int) -> int:
        code_a, code_b = codes[a], codes[b]
        count = 0
        for position in range(k):
            if code_a[position] in ancestor_sets[position][code_b[position]]:
                count += 1
        return count

    # ------------------------------------------------------------------
    # Pass structure.  When partial containment is requested (and the
    # bus has dimensions), one *fused sweep* over the partially
    # dominating cube pairs derives all three targets from the same
    # per-dimension work: the kernel's bitset pass classifies full and
    # partial from one mask, and dominating pairs — a subset of the
    # partially dominating ones — are never touched twice.  Without a
    # partial target the original containing pass runs alone
    # (``prefetch_children`` toggles its children-prefetch optimisation
    # of Figure 5(g); the fused sweep enumerates partners directly and
    # does not consult the children index).
    # ------------------------------------------------------------------
    want_full = "full" in targets
    want_compl = "complementary" in targets
    want_partial = "partial" in targets
    fused = want_partial and k >= 1
    children = lattice.children_index() if prefetch_children and not fused else None

    def dominating_pairs():
        return lattice.containment_pairs()

    def emit_containing_block(block) -> None:
        if block.full:
            result.full.update((uris[a], uris[b]) for a, b in block.full)
        for a, b in block.complementary:
            result.add_complementary(uris[a], uris[b])

    def scan_pair_python(cube_a, cube_b, check_full: bool, check_compl: bool) -> None:
        members_a = lattice.nodes[cube_a]
        members_b = lattice.nodes[cube_b]
        same_cube = cube_a == cube_b
        for a in members_a:
            for b in members_b:
                if a == b:
                    continue
                if not full_dim_containment(a, b):
                    continue
                if check_full and overlap[assignment[a], assignment[b]]:
                    result.add_full(uris[a], uris[b])
                # Mutual containment with equal signatures means equal
                # code vectors -> complementarity.
                if check_compl and same_cube and a < b and codes[a] == codes[b]:
                    result.add_complementary(uris[a], uris[b])

    def scan_pair(cube_a, cube_b, check_full: bool, check_compl: bool) -> None:
        la = len(lattice.nodes[cube_a])
        lb = len(lattice.nodes[cube_b])
        note_pair(la, lb, cube_a == cube_b)
        if use_kernel(la * lb):
            started = time.perf_counter_ns()
            block = _kernels.evaluate_pair_block(
                get_plan(),
                rows_of(cube_a),
                rows_of(cube_b),
                containing=True,
                same_cube=cube_a == cube_b,
                want_full=check_full,
                want_compl=check_compl,
                want_partial=False,
            )
            note_kernel(started, la * lb)
            emit_containing_block(block)
            return
        scan_pair_python(cube_a, cube_b, check_full, check_compl)

    with trace("cubemask.containing", cubes=len(lattice)):
        if fused:
            pass  # handled by the fused sweep below
        elif children is not None:
            # One fused pass over the prefetched children lists.  All of a
            # parent's dominated cubes are batched into a single kernel
            # call: full containment ignores cube boundaries, and equal
            # code vectors imply equal signatures, so the complementarity
            # check over the whole batch can only fire inside the parent
            # cube itself — exactly the per-pair semantics, at a fraction
            # of the per-call overhead.
            if want_full or want_compl:
                for parent in lattice.nodes:
                    batch = [
                        kid for kid in children[parent] if want_full or kid == parent
                    ]
                    if not batch:
                        continue
                    la = len(lattice.nodes[parent])
                    total = 0
                    for kid in batch:
                        lb = len(lattice.nodes[kid])
                        note_pair(la, lb, kid == parent)
                        total += lb
                    if use_kernel(la * total):
                        rows_b = (
                            rows_of(batch[0])
                            if len(batch) == 1
                            else np.concatenate([rows_of(kid) for kid in batch])
                        )
                        started = time.perf_counter_ns()
                        block = _kernels.evaluate_pair_block(
                            get_plan(),
                            rows_of(parent),
                            rows_b,
                            containing=True,
                            same_cube=True,
                            want_full=want_full,
                            want_compl=want_compl,
                            want_partial=False,
                        )
                        note_kernel(started, la * total)
                        emit_containing_block(block)
                    else:
                        for kid in batch:
                            scan_pair_python(parent, kid, want_full, want_compl and kid == parent)
        else:
            # Separate sweeps, re-deriving cube dominance each time.
            if want_full:
                for cube_a, cube_b in dominating_pairs():
                    scan_pair(cube_a, cube_b, True, False)
            if want_compl:
                for cube_a, cube_b in dominating_pairs():
                    if cube_a == cube_b:
                        scan_pair(cube_a, cube_b, False, True)

    # ------------------------------------------------------------------
    # Fused sweep: full + complementarity + partial over the partially
    # dominating cube pairs in one pass (see the pass-structure note
    # above).  Partners of each cube A are split into a *dominated*
    # batch (signature dominance holds -> full/complementarity
    # possible) and a *sideways* batch (partial only); each batch is
    # one kernel call, so the bitset pass classifies every member pair
    # exactly once.
    # ------------------------------------------------------------------
    if fused:
        with trace("cubemask.fused", cubes=len(lattice)):
            # Partial-dimension bitmasks ride in a single word, so wider
            # buses keep the tuple-at-a-time extraction.
            kernel_can_collect_dims = (
                not collect_partial_dimensions or k <= _kernels.DIM_MASK_LIMIT
            )
            # Cube-level measure prefilter: full/partial containment
            # needs a member measure overlap somewhere in the pair.
            # Complementarity needs no measure overlap, but the prune
            # can never lose it: measure sets are non-empty (enforced
            # by ObservationSpace.add), so a cube always shares
            # measures with itself.
            cube_groups: dict = {
                cube: sorted({int(assignment[i]) for i in members})
                for cube, members in lattice.nodes.items()
            }

            def cubes_share_measures(ga, gb) -> bool:
                return any(overlap[i, j] for i in ga for j in gb)

            def dominates(sig_a, sig_b) -> bool:
                return all(la <= lb for la, lb in zip(sig_a, sig_b))

            def scan_fused_python(cube_a, cube_b, containing: bool) -> None:
                same_cube = cube_a == cube_b
                check_full = want_full and containing
                check_compl = want_compl and containing and same_cube
                for a in lattice.nodes[cube_a]:
                    for b in lattice.nodes[cube_b]:
                        if a == b:
                            continue
                        count = containment_count(a, b)
                        shared = overlap[assignment[a], assignment[b]]
                        if containing and count == k:
                            if check_full and shared:
                                result.add_full(uris[a], uris[b])
                            if check_compl and a < b and codes[a] == codes[b]:
                                result.add_complementary(uris[a], uris[b])
                        elif shared and 0 < count < k:
                            if collect_partial_dimensions:
                                dims = frozenset(
                                    dimensions[p]
                                    for p in range(k)
                                    if codes[a][p] in ancestor_sets[p][codes[b][p]]
                                )
                                result.add_partial(uris[a], uris[b], dims, count / k)
                            else:
                                result.add_partial(uris[a], uris[b], degree=count / k)

            def emit_fused_block(block) -> None:
                if block.full_a.size:
                    result.full.update(
                        (uris[a], uris[b])
                        for a, b in zip(block.full_a.tolist(), block.full_b.tolist())
                    )
                if block.compl_a.size:
                    for a, b in zip(block.compl_a.tolist(), block.compl_b.tolist()):
                        result.add_complementary(uris[a], uris[b])
                # Partial results stay columnar: one O(1) block append
                # instead of millions of tuple/set/dict inserts (see
                # RelationshipSet.add_partial_block).
                result.add_partial_block(
                    uris,
                    block.partial_a,
                    block.partial_b,
                    block.partial_counts,
                    k,
                    block.partial_masks if collect_partial_dimensions else None,
                    dimensions if collect_partial_dimensions else None,
                )

            # Group by cube A so surviving partners batch into (at
            # most) two kernel calls each.
            partners_by_a: dict = {}
            for cube_a, cube_b in lattice.partial_pairs():
                partners_by_a.setdefault(cube_a, []).append(cube_b)

            split_batches = want_full or want_compl
            for cube_a, partners in partners_by_a.items():
                la = len(lattice.nodes[cube_a])
                groups_a = cube_groups[cube_a]
                dominated: list = []
                sideways: list = []
                total_dom = 0
                total_side = 0
                for cube_b in partners:
                    lb = len(lattice.nodes[cube_b])
                    if not cubes_share_measures(groups_a, cube_groups[cube_b]):
                        counts["pruned_cube_pairs"] += 1
                        counts["pruned_comparisons"] += la * lb
                        continue
                    note_pair(la, lb, cube_a == cube_b)
                    if split_batches and dominates(cube_a, cube_b):
                        dominated.append(cube_b)
                        total_dom += lb
                    else:
                        sideways.append(cube_b)
                        total_side += lb
                for batch, total, containing in (
                    (dominated, total_dom, True),
                    (sideways, total_side, False),
                ):
                    if not batch:
                        continue
                    if kernel_can_collect_dims and use_kernel(la * total):
                        rows_b = (
                            rows_of(batch[0])
                            if len(batch) == 1
                            else np.concatenate([rows_of(cube_b) for cube_b in batch])
                        )
                        started = time.perf_counter_ns()
                        # ``same_cube=True`` on the dominated batch is
                        # safe across cube boundaries: equal code
                        # vectors imply equal signatures, so the batch
                        # complementarity check can only fire inside
                        # cube A itself.
                        block = _kernels.evaluate_pair_block(
                            get_plan(),
                            rows_of(cube_a),
                            rows_b,
                            containing=containing,
                            same_cube=containing,
                            want_full=want_full,
                            want_compl=want_compl,
                            want_partial=True,
                            collect_partial_dimensions=collect_partial_dimensions,
                        )
                        note_kernel(started, la * total)
                        emit_fused_block(block)
                    else:
                        for cube_b in batch:
                            scan_fused_python(cube_a, cube_b, containing)

    _flush_counts(counts)
    if stats is not None:
        stats.update(counts)
    return result
