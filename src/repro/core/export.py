"""Materialise an :class:`ObservationSpace` as an RDF graph.

The SPARQL- and rule-based comparators operate on triples, so the
observation space is exported with:

* ``qb:DimensionProperty`` / ``qb:MeasureProperty`` typing for schema
  introspection inside queries and rules,
* ``skos:Concept`` typing and direct ``skos:broader`` edges for codes
  (transitive closure is left to property paths / rules, as in the
  paper's experiments),
* padded dimension values (missing dimensions become the root code),
  matching the occurrence-matrix convention, and
* placeholder measure values — the comparators only test *which*
  measure properties two observations share, never the magnitudes.
"""

from __future__ import annotations

from repro.core.space import ObservationSpace
from repro.rdf.graph import Graph
from repro.rdf.namespaces import QB, RDF, SKOS
from repro.rdf.terms import Literal

__all__ = ["space_to_graph"]


def space_to_graph(space: ObservationSpace, used_codes_only: bool = True) -> Graph:
    """Export ``space`` as RDF triples.

    With ``used_codes_only`` (default) only the codes that observations
    actually carry — plus their ancestor chains — are emitted, matching
    the paper's "list C with all code list terms *as they appear in the
    datasets*"; pass ``False`` to ship entire code lists.
    """
    graph = Graph()
    for position, dimension in enumerate(space.dimensions):
        graph.add((dimension, RDF.type, QB.DimensionProperty))
        hierarchy = space.hierarchies[dimension]
        if used_codes_only:
            codes: set = set()
            for record in space.observations:
                codes |= hierarchy.ancestors(record.codes[position])
            codes.add(hierarchy.root)
        else:
            codes = set(hierarchy)
        for code in codes:
            graph.add((code, RDF.type, SKOS.Concept))
            parent = hierarchy.parent(code)
            if parent is not None:
                graph.add((code, SKOS.broader, parent))

    measures = {m for record in space.observations for m in record.measures}
    for measure in sorted(measures, key=str):
        graph.add((measure, RDF.type, QB.MeasureProperty))

    placeholder = Literal(1)
    for record in space.observations:
        graph.add((record.uri, RDF.type, QB.Observation))
        for dimension, code in zip(space.dimensions, record.codes):
            graph.add((record.uri, dimension, code))
        for measure in record.measures:
            graph.add((record.uri, measure, placeholder))
    return graph
