"""Deterministic fault injection for the materialisation runner.

Resilience code that is only exercised by real crashes is untestable;
this module makes failure a first-class, *reproducible* input.  A
:class:`FaultPlan` is a declarative list of :class:`Fault` records —
"kill the worker processing unit 3", "raise in unit 5, twice",
"stall unit 2 for ten seconds" — that the runner and the parallel
executor consult at well-defined points:

* ``before_unit(unit_id)`` runs at the start of every execution
  attempt of a unit, in whichever process executes it.  Matching
  faults fire at most ``times`` attempts each, then stop — so a plan
  with ``times=1`` models a transient fault that a retry survives.
* ``after_unit(completed_count)`` runs in the parent after a unit's
  delta is durably checkpointed, and implements the simulated SIGINT
  (``interrupt_after``) by raising :class:`KeyboardInterrupt` — the
  same exception a real Ctrl-C delivers, exercising the same
  flush-then-exit path.

Because worker processes do not share memory with the parent, attempt
counting for ``kill``/cross-process faults uses one-shot token files
in ``state_dir`` (created with ``O_EXCL``, so exactly one claimant
wins each token even across a respawned pool).  Purely in-process
plans may omit ``state_dir`` and count in memory.

:func:`truncate_file` completes the harness: it chops a checkpoint
mid-line to model a crash during an append, letting tests prove the
loader's torn-tail recovery.
"""

from __future__ import annotations

import os
import time
from dataclasses import dataclass
from pathlib import Path
from typing import Iterable

from repro.errors import ComputationError

__all__ = ["Fault", "FaultPlan", "InjectedFault", "truncate_file"]


class InjectedFault(ComputationError):
    """The error raised by a ``"raise"`` fault — retryable by design."""


@dataclass(frozen=True)
class Fault:
    """One deterministic fault.

    ``unit`` is the work-unit id the fault targets (an int range index,
    a ``"cluster-3"`` style string...).  ``action`` is one of:

    ``"raise"``
        Raise :class:`InjectedFault` in the executing process.
    ``"kill"``
        Hard-exit the executing process with ``os._exit`` — in a pool
        worker this surfaces as ``BrokenProcessPool`` in the parent.
        Ignored outside a worker: it models *worker* death, so the
        sequential degradation path (and plain sequential runs) are
        immune to it by design.
    ``"delay"``
        Sleep ``seconds`` before executing (drives timeout paths).

    ``times`` bounds how many *attempts* the fault affects; afterwards
    the unit executes normally, which is how retry recovery is modelled.
    """

    unit: int | str
    action: str = "raise"
    times: int = 1
    seconds: float = 0.0

    def __post_init__(self) -> None:
        if self.action not in ("raise", "kill", "delay"):
            raise ValueError(f"unknown fault action {self.action!r}")


class FaultPlan:
    """A reproducible failure schedule consulted by the runner.

    Picklable, so the same plan travels into pool workers via the
    initializer.  ``state_dir`` (required when any ``kill`` fault is
    present) holds the cross-process one-shot claim tokens.
    """

    def __init__(
        self,
        faults: Iterable[Fault] = (),
        interrupt_after: int | None = None,
        state_dir: str | os.PathLike | None = None,
    ):
        self.faults = tuple(faults)
        self.interrupt_after = interrupt_after
        self.state_dir = os.fspath(state_dir) if state_dir is not None else None
        self._memory_claims = {}
        if self.state_dir is None and any(f.action == "kill" for f in self.faults):
            raise ValueError("kill faults need a state_dir for cross-process claim tokens")

    # ------------------------------------------------------------------
    def _claim(self, fault: Fault, index: int) -> bool:
        """Atomically claim one firing of ``fault``; True if this
        process (attempt) should be affected."""
        key = f"{fault.unit}-{fault.action}-{index}"
        for attempt in range(fault.times):
            token = f"{key}-{attempt}"
            if self.state_dir is not None:
                path = Path(self.state_dir) / f"fault-{token}"
                try:
                    fd = os.open(path, os.O_CREAT | os.O_EXCL | os.O_WRONLY)
                except FileExistsError:
                    continue
                os.close(fd)
                return True
            if not self._memory_claims.get(token):
                self._memory_claims[token] = True
                return True
        return False

    # ------------------------------------------------------------------
    def before_unit(self, unit_id: int | str, in_worker: bool = False) -> None:
        """Apply faults targeting ``unit_id`` for this attempt."""
        for index, fault in enumerate(self.faults):
            if fault.unit != unit_id:
                continue
            if fault.action == "kill" and not in_worker:
                continue  # kill models worker death; the parent is immune
            if not self._claim(fault, index):
                continue
            if fault.action == "delay":
                time.sleep(fault.seconds)
            elif fault.action == "kill":
                os._exit(17)
            else:
                raise InjectedFault(f"injected fault in unit {unit_id!r} (raise)")

    def after_unit(self, completed_count: int) -> None:
        """Simulated SIGINT: interrupt after N durably completed units."""
        if self.interrupt_after is not None and completed_count >= self.interrupt_after:
            raise KeyboardInterrupt(
                f"injected interrupt after {completed_count} completed unit(s)"
            )


def truncate_file(path: str | os.PathLike, keep_bytes: int | None = None, drop_bytes: int = 7) -> int:
    """Truncate ``path`` to model a crash mid-append.

    Keeps ``keep_bytes`` when given, otherwise drops ``drop_bytes``
    from the end (enough to tear the final JSONL record).  Returns the
    resulting size.
    """
    size = os.path.getsize(path)
    new_size = keep_bytes if keep_bytes is not None else max(0, size - drop_bytes)
    with open(path, "r+b") as handle:
        handle.truncate(new_size)
    return new_size
