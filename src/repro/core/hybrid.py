"""Hybrid method (the paper's future-work sketch, Section 6).

"Hybrid probabilistic methods that take into advantage the positive
points of the clustering and cubeMasking algorithms": cubeMasking is
lossless and fast for full containment and complementarity (the lattice
prunes hard), while clustering is much faster on the *partial*
containment workload where the lattice's ∃-dimension prune is weak.

``compute_hybrid`` therefore routes:

* full containment + complementarity through cubeMasking (exact), and
* partial containment through the clustering method (approximate).

The result is exact on ``full``/``complementary`` and has clustering
recall on ``partial`` — the best operating point of Figure 5 when all
three relationship types are needed.
"""

from __future__ import annotations

from repro.core.cluster_method import AlgorithmName, compute_clustering
from repro.core.cubemask import compute_cubemask
from repro.core.results import RelationshipSet
from repro.core.space import ObservationSpace

__all__ = ["compute_hybrid"]


def compute_hybrid(
    space: ObservationSpace,
    algorithm: AlgorithmName = "xmeans",
    sample_rate: float = 0.1,
    n_clusters: int | None = None,
    seed: int = 0,
    prefetch_children: bool = True,
    collect_partial: bool = True,
    collect_partial_dimensions: bool = False,
    targets=None,
) -> RelationshipSet:
    """Exact full/complementary via cubeMasking; clustered partial."""
    from repro.core.baseline import normalize_targets

    resolved = normalize_targets(targets, collect_partial)
    result = RelationshipSet()
    exact_targets = tuple(resolved & {"full", "complementary"})
    if exact_targets:
        result.merge(
            compute_cubemask(
                space,
                prefetch_children=prefetch_children,
                targets=exact_targets,
            )
        )
    if "partial" in resolved:
        result.merge(
            compute_clustering(
                space,
                algorithm=algorithm,
                sample_rate=sample_rate,
                n_clusters=n_clusters,
                seed=seed,
                collect_partial_dimensions=collect_partial_dimensions,
                targets=("partial",),
            )
        )
    return result
