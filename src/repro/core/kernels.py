"""Vectorised cube-pair kernels over packed ancestor-closure bitsets.

cubeMasking (Section 3.3, Algorithm 4) prunes the candidate space down
to cube pairs whose level signatures admit a relationship; the *inner*
loop then still has to test every member pair on every dimension.  The
:class:`~repro.core.matrix.OccurrenceMatrix` already packs each
observation's reflexive ancestor closure into ``uint8`` blocks — one
bit per code-list value — so the per-dimension containment predicate
``ancestors(a) ⊆ ancestors(b)`` is the byte-wise conditional function
``a AND b == a`` of Algorithm 1.  This module evaluates a whole cube
pair as one chunked broadcast AND-compare over those blocks:

* :func:`build_kernel_plan` assembles the packed blocks, integer code
  ids and deduplicated measure-group tables for a space once,
* :func:`evaluate_pair_block` scores the member rows of cube A against
  cube B in bulk — full-containment mask, per-dimension containment
  counts, the measure-overlap mask, complementarity (equal code-id
  rows) and the partial-dimension bitmasks,
* :func:`measure_overlap_groups` is the single shared copy of the
  measure-overlap prefilter (previously duplicated between the
  baseline and cubeMasking), with the group-intersection table
  computed as one boolean matrix product instead of an O(g²) loop,
* :func:`publish_arrays` / :func:`attach_arrays` place a plan's arrays
  in a :mod:`multiprocessing.shared_memory` segment exactly once so
  worker processes attach zero-copy instead of unpickling the space.

Every kernel invocation also feeds module-level counters
(:func:`kernel_counters`) which the relationship service surfaces on
its ``/metrics`` endpoint.
"""

from __future__ import annotations

import threading
import time
from multiprocessing import shared_memory

import numpy as np

from repro.errors import AlgorithmError
from repro.core.space import ObservationSpace
from repro.rdf.terms import URIRef

__all__ = [
    "KernelPlan",
    "PairBlockResult",
    "build_kernel_plan",
    "evaluate_pair_block",
    "measure_overlap_groups",
    "kernel_counters",
    "reset_kernel_counters",
    "publish_arrays",
    "attach_arrays",
    "DEFAULT_KERNEL_THRESHOLD",
]

#: ``kernel="auto"`` switches a cube pair to the numpy kernel once the
#: member-count product reaches this value; below it the pure-Python
#: loop's lower constant factor wins (see docs/performance.md for the
#: measurement behind the default).
DEFAULT_KERNEL_THRESHOLD = 128

#: Rows of cube A evaluated per broadcast chunk — bounds the temporary
#: ``(chunk, |B|, bytes)`` arrays exactly like ``OccurrenceMatrix``'s
#: ``chunk`` parameter does for the baseline.
DEFAULT_CHUNK = 512


# ----------------------------------------------------------------------
# Kernel counters (surfaced through the service /metrics endpoint and
# mirrored as first-class series in the repro.obs metrics registry).
# ----------------------------------------------------------------------
_COUNTER_LOCK = threading.Lock()
_COUNTERS = {"kernel_calls": 0, "kernel_pairs": 0, "kernel_ns": 0}


_REGISTRY_COUNTERS = None


def _registry_counters():
    global _REGISTRY_COUNTERS
    if _REGISTRY_COUNTERS is None:
        from repro.obs.registry import get_registry

        registry = get_registry()
        _REGISTRY_COUNTERS = (
            registry.counter(
                "repro_kernel_calls_total", "Vectorised cube-pair kernel invocations."
            ),
            registry.counter(
                "repro_kernel_pairs_total",
                "Observation pairs scored by the vectorised kernel.",
            ),
            registry.counter(
                "repro_kernel_ns_total",
                "Nanoseconds spent inside the vectorised kernel.",
            ),
        )
    return _REGISTRY_COUNTERS


#: Registry values already pushed; the delta to _COUNTERS is what a
#: flush publishes.  Batching keeps the per-block hot path down to the
#: single _COUNTER_LOCK acquisition it always had.
_PUSHED = {"kernel_calls": 0, "kernel_pairs": 0, "kernel_ns": 0}
_FLUSH_EVERY = 512


def _record(ns: int, pairs: int) -> None:
    with _COUNTER_LOCK:
        _COUNTERS["kernel_calls"] += 1
        _COUNTERS["kernel_pairs"] += pairs
        _COUNTERS["kernel_ns"] += ns
        due = _COUNTERS["kernel_calls"] - _PUSHED["kernel_calls"] >= _FLUSH_EVERY
    if due:
        flush_registry_counters()


def flush_registry_counters() -> None:
    """Publish accumulated kernel counters into the metrics registry.

    Runs every :data:`_FLUSH_EVERY` kernel calls and at the end of
    each cubeMasking compute, so a mid-compute scrape lags by at most
    one batch.
    """
    counters = _registry_counters()
    with _COUNTER_LOCK:
        deltas = {key: _COUNTERS[key] - _PUSHED[key] for key in _COUNTERS}
        _PUSHED.update(_COUNTERS)
    for counter, key in zip(counters, ("kernel_calls", "kernel_pairs", "kernel_ns")):
        if deltas[key]:
            counter.inc(deltas[key])


def kernel_counters() -> dict:
    """Snapshot of this process's cumulative kernel usage."""
    with _COUNTER_LOCK:
        return dict(_COUNTERS)


def reset_kernel_counters() -> None:
    with _COUNTER_LOCK:
        for key in _COUNTERS:
            _COUNTERS[key] = 0
            _PUSHED[key] = 0


# ----------------------------------------------------------------------
# The shared measure-overlap prefilter.
# ----------------------------------------------------------------------
def measure_overlap_groups(space: ObservationSpace) -> tuple[np.ndarray, np.ndarray]:
    """Deduplicated measure groups: ``(assignment, overlap)``.

    ``assignment[i]`` is the group id of observation ``i``'s measure
    set; ``overlap[g, h]`` is True when groups ``g`` and ``h`` share a
    measure.  Distinct measure sets are deduplicated first — the
    "simple lookup" of the paper — and the g×g intersection table is a
    single boolean matrix product over the group-membership matrix
    rather than a pairwise ``isdisjoint`` loop.
    """
    unique: dict[frozenset, int] = {}
    assignment = np.empty(len(space), dtype=np.int32)
    for record in space.observations:
        assignment[record.index] = unique.setdefault(record.measures, len(unique))
    columns = {
        measure: position
        for position, measure in enumerate(
            sorted({m for group in unique for m in group}, key=str)
        )
    }
    membership = np.zeros((len(unique), len(columns)), dtype=np.uint8)
    for group, group_id in unique.items():
        for measure in group:
            membership[group_id, columns[measure]] = 1
    overlap = (membership @ membership.T) > 0
    return assignment, overlap


# ----------------------------------------------------------------------
# The kernel plan: every array the bulk evaluation needs.
# ----------------------------------------------------------------------
class KernelPlan:
    """Packed per-space arrays for vectorised cube-pair evaluation.

    ``packed``
        ``(n, total_bytes)`` ``uint8`` — the per-dimension ancestor
        closure blocks of the occurrence matrix, concatenated in bus
        order; ``block_slices[p]`` is dimension ``p``'s byte range.
    ``code_ids``
        ``(n, k)`` ``int32`` — each observation's dimension values as
        dense integer ids; two rows are equal iff the padded code
        vectors are equal (the complementarity predicate).
    ``assignment`` / ``group_overlap``
        The measure-overlap prefilter of
        :func:`measure_overlap_groups`.
    ``levels`` / ``anc_codes`` / ``level_offsets``
        The level-indexed ancestor-code tables.  Hierarchies are
        single-parent trees, so ``a`` contains ``b`` on dimension ``p``
        iff *b's ancestor at a's level is a* — ``anc_codes`` stores
        each observation's per-level ancestor code ids (``-1`` below
        the observation's own level), turning the per-dimension
        containment predicate into one O(1) integer compare per pair.
        This is the kernel's fast path; ``None`` on plans rebuilt from
        arrays that lack the tables.
    ``words`` / ``word_slices``
        When every dimension block is 8-byte aligned (always true for
        plans built by :func:`build_kernel_plan`, which zero-pads each
        block), ``packed`` reinterpreted as ``uint64`` words — the
        AND-compare fallback then touches 8x fewer elements per pair.
        ``None`` on unaligned layouts; the kernel falls back to bytes.
    """

    __slots__ = (
        "dimensions",
        "k",
        "packed",
        "block_slices",
        "code_ids",
        "code_keys",
        "assignment",
        "group_overlap",
        "levels",
        "anc_codes",
        "level_offsets",
        "words",
        "word_slices",
    )

    def __init__(
        self,
        dimensions: tuple[URIRef, ...],
        packed: np.ndarray,
        block_slices: tuple[tuple[int, int], ...],
        code_ids: np.ndarray,
        assignment: np.ndarray,
        group_overlap: np.ndarray,
        code_keys: np.ndarray | None = None,
        levels: np.ndarray | None = None,
        anc_codes: np.ndarray | None = None,
        level_offsets: tuple[int, ...] | None = None,
    ):
        self.dimensions = dimensions
        self.k = len(block_slices)
        self.packed = packed
        self.block_slices = block_slices
        self.code_ids = code_ids
        self.code_keys = code_keys
        self.assignment = assignment
        self.group_overlap = group_overlap
        self.levels = levels
        self.anc_codes = anc_codes
        self.level_offsets = level_offsets
        self.words = None
        self.word_slices = None
        aligned = packed.shape[1] % 8 == 0 and all(
            lo % 8 == 0 and hi % 8 == 0 for lo, hi in block_slices
        )
        if aligned:
            try:
                self.words = packed.view(np.uint64)
                self.word_slices = tuple((lo // 8, hi // 8) for lo, hi in block_slices)
            except ValueError:  # non-contiguous input: keep the byte path
                self.words = None

    @property
    def n(self) -> int:
        return self.packed.shape[0]

    def __repr__(self) -> str:
        return (
            f"KernelPlan(rows={self.n}, dimensions={self.k}, "
            f"packed_bytes={self.packed.shape[1]})"
        )


def build_kernel_plan(space: ObservationSpace, matrix=None) -> KernelPlan:
    """Assemble a :class:`KernelPlan`, reusing the occurrence matrix's
    packed ``uint8`` blocks (built here if not supplied)."""
    from repro.core.matrix import OccurrenceMatrix

    if matrix is None:
        matrix = OccurrenceMatrix(space, backend="numpy")
    elif matrix.backend != "numpy":
        raise AlgorithmError("kernel plans need the numpy occurrence-matrix backend")
    n = len(space)
    dimensions = space.dimensions
    # Each block is zero-padded to an 8-byte multiple so the plan can
    # reinterpret the concatenation as uint64 words (padding bytes are
    # inert for the a AND b == a predicate: 0 & x == 0).
    blocks: list[np.ndarray] = []
    slices: list[tuple[int, int]] = []
    offset = 0
    for dimension in dimensions:
        block = matrix.packed_block(dimension)
        width = block.shape[1]
        padded = -(-max(width, 1) // 8) * 8
        if padded != width:
            block = np.concatenate(
                [block, np.zeros((n, padded - width), dtype=np.uint8)], axis=1
            )
        blocks.append(block)
        slices.append((offset, offset + padded))
        offset += padded
    packed = (
        np.concatenate(blocks, axis=1)
        if blocks
        else np.zeros((n, 0), dtype=np.uint8)
    )
    code_ids = np.zeros((n, len(dimensions)), dtype=np.int32)
    for position, dimension in enumerate(dimensions):
        index = matrix.feature_index[dimension]
        column = code_ids[:, position]
        for record in space.observations:
            column[record.index] = index[record.codes[position]]
    # Level-indexed ancestor-code tables (the kernel's fast path; see
    # the KernelPlan docstring for the predicate they encode).
    level_offsets: list[int] = []
    level_widths: list[int] = []
    total_levels = 0
    for dimension in dimensions:
        width = space.hierarchies[dimension].max_level + 1
        level_offsets.append(total_levels)
        level_widths.append(width)
        total_levels += width
    levels = np.zeros((n, len(dimensions)), dtype=np.int32)
    anc_codes = np.full((n, total_levels), -1, dtype=np.int32)
    for position, dimension in enumerate(dimensions):
        hierarchy = space.hierarchies[dimension]
        index = matrix.feature_index[dimension]
        base = level_offsets[position]
        width = level_widths[position]
        rows_cache: dict = {}
        for record in space.observations:
            code = record.codes[position]
            cached = rows_cache.get(code)
            if cached is None:
                row = np.full(width, -1, dtype=np.int32)
                node = code
                while node is not None:
                    row[hierarchy.level(node)] = index[node]
                    node = hierarchy.parent(node)
                cached = (row, hierarchy.level(code))
                rows_cache[code] = cached
            anc_codes[record.index, base : base + width] = cached[0]
            levels[record.index, position] = cached[1]
    # Dense ids for whole code vectors: two observations are
    # complementarity candidates iff their rows coincide, so one id
    # compare replaces a k-column row comparison per pair.
    if n:
        _, inverse = np.unique(code_ids, axis=0, return_inverse=True)
        code_keys = np.ascontiguousarray(inverse.reshape(n), dtype=np.int32)
    else:
        code_keys = np.zeros(0, dtype=np.int32)
    assignment, group_overlap = measure_overlap_groups(space)
    return KernelPlan(
        dimensions=dimensions,
        packed=np.ascontiguousarray(packed),
        block_slices=tuple(slices),
        code_ids=code_ids,
        assignment=assignment,
        group_overlap=group_overlap,
        code_keys=code_keys,
        levels=levels,
        anc_codes=anc_codes,
        level_offsets=tuple(level_offsets),
    )


# ----------------------------------------------------------------------
# Bulk evaluation of one cube pair.
# ----------------------------------------------------------------------
class PairBlockResult:
    """Index-level output of one cube-pair evaluation.

    ``full``/``complementary`` are ``(a, b)`` observation-index pairs;
    ``partial`` entries are ``(a, b, count)`` with ``count`` the number
    of containing dimensions (the degree is ``count / k``).
    ``partial_dim_masks`` (when requested) aligns with ``partial`` and
    carries a bitmask whose bit ``p`` marks containment on dimension
    ``p`` of the bus.
    """

    __slots__ = ("full", "complementary", "partial", "partial_dim_masks")

    def __init__(self, full, complementary, partial, partial_dim_masks=None):
        self.full = full
        self.complementary = complementary
        self.partial = partial
        self.partial_dim_masks = partial_dim_masks


def evaluate_pair_block(
    plan: KernelPlan,
    rows_a,
    rows_b,
    *,
    containing: bool = True,
    same_cube: bool = False,
    want_full: bool = True,
    want_compl: bool = True,
    want_partial: bool = True,
    collect_partial_dimensions: bool = False,
    chunk: int = DEFAULT_CHUNK,
) -> PairBlockResult:
    """Score the member rows of cube A against cube B in bulk.

    The vectorised form of Algorithm 4's inner loop: one chunked
    broadcast AND-compare per dimension block yields the per-dimension
    containment matrices, their sum the containment counts, and masks
    derive the three relationship types exactly as the pure-Python
    path does — self pairs excluded, full and partial containment
    gated on the measure-overlap mask, complementarity on equal
    code-id rows with ``a < b``.

    ``containing`` states whether cube A's signature dominates cube
    B's (full containment and complementarity are impossible
    otherwise, so the work is skipped); ``same_cube`` gates the
    complementarity check, which only lives inside one cube.
    """
    rows_a = np.asarray(rows_a, dtype=np.int64)
    rows_b = np.asarray(rows_b, dtype=np.int64)
    full: list[tuple[int, int]] = []
    complementary: list[tuple[int, int]] = []
    partial: list[tuple[int, int, int]] = []
    dim_masks: list[int] | None = [] if (want_partial and collect_partial_dimensions) else None
    la, lb = len(rows_a), len(rows_b)
    if la == 0 or lb == 0:
        return PairBlockResult(full, complementary, partial, dim_masks)
    k = plan.k
    if dim_masks is not None and k > 64:
        raise AlgorithmError(
            "partial-dimension bitmasks support at most 64 dimensions; "
            f"this bus has {k} — use the pure-Python path"
        )
    started = time.perf_counter_ns()

    check_full = want_full and containing
    check_compl = want_compl and containing and same_cube
    # Batched calls can bring very wide B sides; shrink the A chunk so
    # the broadcast temporaries stay bounded (~4M pairs per chunk).
    chunk = max(1, min(chunk, (1 << 22) // max(lb, 1)))

    need_blocks = check_full or want_partial
    use_anc = plan.anc_codes is not None and plan.levels is not None and need_blocks
    if use_anc:
        anc_b = plan.anc_codes[rows_b]
        col_base = np.asarray(plan.level_offsets, dtype=np.int32)
        data = data_b = slices = None
    else:
        # AND-compare fallback over the packed blocks; prefer the
        # uint64 word view: identical semantics (AND/compare are
        # bytewise), 8x fewer elements per pair.
        if plan.words is not None:
            data, slices = plan.words, plan.word_slices
        else:
            data, slices = plan.packed, plan.block_slices
        data_b = data[rows_b] if need_blocks else None
    use_keys = check_compl and plan.code_keys is not None
    if check_compl:
        keys_b = plan.code_keys[rows_b] if use_keys else None
        codes_b = None if use_keys else plan.code_ids[rows_b]
    assign_b = plan.assignment[rows_b]

    for start in range(0, la, max(1, chunk)):
        rows = rows_a[start : start + chunk]
        ca = len(rows)
        not_self = rows[:, None] != rows_b[None, :]
        overlap = None
        data_a = codes_a = cols_a = None
        if need_blocks:
            overlap = plan.group_overlap[
                plan.assignment[rows][:, None], assign_b[None, :]
            ]
            if use_anc:
                codes_a = plan.code_ids[rows]
                cols_a = plan.levels[rows] + col_base[None, :]
            else:
                data_a = data[rows]

        def dim_contains(position: int) -> np.ndarray:
            """(ca, lb) containment matrix of one dimension."""
            if use_anc:
                col = cols_a[:, position]
                first = col[0]
                if (col == first).all():
                    # All A rows sit on the same level (always true when
                    # rows_a is one cube): one anc column, pure
                    # broadcast compare — no gather.
                    return anc_b[:, first][None, :] == codes_a[:, position][:, None]
                return (anc_b[:, col] == codes_a[:, position]).T
            lo, hi = slices[position]
            left = data_a[:, None, lo:hi]
            return ((left & data_b[None, :, lo:hi]) == left).all(axis=2)

        def dim_contains_at(position: int, idx_a, idx_b) -> np.ndarray:
            """Containment on one dimension for selected (a, b) pairs."""
            if use_anc:
                return anc_b[idx_b, cols_a[idx_a, position]] == codes_a[idx_a, position]
            lo, hi = slices[position]
            left = data_a[idx_a, lo:hi]
            return ((left & data_b[idx_b, lo:hi]) == left).all(axis=1)

        if want_partial:
            # Per-dimension containment counts: every dimension is
            # evaluated because the count (and the bitmask) needs all
            # of them.
            counts = np.zeros((ca, lb), dtype=np.int32)
            masks = np.zeros((ca, lb), dtype=np.uint64) if dim_masks is not None else None
            for position in range(k):
                contains = dim_contains(position)
                counts += contains
                if masks is not None:
                    masks |= contains.astype(np.uint64) << np.uint64(position)
            if check_full:
                hits = np.argwhere((counts == k) & overlap & not_self)
                if hits.size:
                    full.extend(
                        zip(rows[hits[:, 0]].tolist(), rows_b[hits[:, 1]].tolist())
                    )
            hits = np.argwhere((counts > 0) & (counts < k) & overlap & not_self)
            if hits.size:
                selected = counts[hits[:, 0], hits[:, 1]]
                partial.extend(
                    zip(
                        rows[hits[:, 0]].tolist(),
                        rows_b[hits[:, 1]].tolist(),
                        selected.tolist(),
                    )
                )
                if dim_masks is not None:
                    dim_masks.extend(masks[hits[:, 0], hits[:, 1]].tolist())
        elif check_full:
            # No counts needed -> dimension-ordered sifting: evaluate
            # dimension 0 over the whole block, then re-test only the
            # survivors on each further dimension (the vectorised twin
            # of the Python loop's early exit — most pairs die on the
            # first dimension).
            if k == 0:
                idx_a, idx_b = np.nonzero(overlap & not_self)
            else:
                contains = dim_contains(0) & overlap
                contains &= not_self
                idx_a, idx_b = np.nonzero(contains)
                for position in range(1, k):
                    if idx_a.size == 0:
                        break
                    keep = dim_contains_at(position, idx_a, idx_b)
                    idx_a, idx_b = idx_a[keep], idx_b[keep]
            if idx_a.size:
                full.extend(zip(rows[idx_a].tolist(), rows_b[idx_b].tolist()))
        if check_compl:
            if use_keys:
                equal = plan.code_keys[rows][:, None] == keys_b[None, :]
            else:
                equal = (plan.code_ids[rows][:, None, :] == codes_b[None, :, :]).all(axis=2)
            hits = np.argwhere(equal & (rows[:, None] < rows_b[None, :]))
            if hits.size:
                complementary.extend(
                    zip(rows[hits[:, 0]].tolist(), rows_b[hits[:, 1]].tolist())
                )
    _record(time.perf_counter_ns() - started, la * lb)
    return PairBlockResult(full, complementary, partial, dim_masks)


def decode_dim_mask(plan_dimensions: tuple[URIRef, ...], mask: int) -> frozenset[URIRef]:
    """The ``map_P`` entry encoded by one partial-dimension bitmask."""
    return frozenset(
        dimension
        for position, dimension in enumerate(plan_dimensions)
        if mask >> position & 1
    )


# ----------------------------------------------------------------------
# Zero-copy shared-memory publication of plan arrays.
# ----------------------------------------------------------------------
_ALIGNMENT = 64

Layout = dict[str, tuple[int, tuple[int, ...], str]]


def publish_arrays(arrays: dict[str, np.ndarray]) -> tuple[shared_memory.SharedMemory, Layout]:
    """Copy ``arrays`` into one new shared-memory segment.

    Returns the segment (the caller owns its lifetime: ``close()`` and
    ``unlink()`` when every consumer is done) and a small layout dict
    ``{name: (offset, shape, dtype)}`` — the only thing a worker needs
    besides the segment name, so the fan-out payload is O(metadata)
    regardless of how many observations the arrays cover.
    """
    items: list[tuple[str, np.ndarray]] = [
        (name, np.ascontiguousarray(array)) for name, array in arrays.items()
    ]
    layout: Layout = {}
    offset = 0
    for name, array in items:
        layout[name] = (offset, tuple(array.shape), array.dtype.str)
        offset += -(-array.nbytes // _ALIGNMENT) * _ALIGNMENT
    segment = shared_memory.SharedMemory(create=True, size=max(offset, 1))
    for name, array in items:
        start = layout[name][0]
        destination = np.ndarray(array.shape, dtype=array.dtype, buffer=segment.buf, offset=start)
        destination[...] = array
        del destination  # release the buffer export so close() can succeed
    from repro.obs.registry import get_registry

    registry = get_registry()
    registry.counter(
        "repro_parallel_shm_publishes_total",
        "Shared-memory kernel-plan segments published for worker fan-out.",
    ).inc()
    registry.counter(
        "repro_parallel_shm_bytes_total",
        "Bytes published into shared-memory fan-out segments.",
    ).inc(segment.size)
    return segment, layout


def attach_arrays(name: str, layout: Layout) -> tuple[shared_memory.SharedMemory, dict[str, np.ndarray]]:
    """Attach to a published segment and map its arrays zero-copy.

    The returned arrays are read-only views over the shared buffer.

    Lifecycle: only the publisher calls ``unlink()``.  Python < 3.13
    registers attached segments with the resource tracker too, but
    fork-started pool workers share the parent's tracker process, so
    the duplicate registration collapses into the publisher's single
    entry and the publisher's ``unlink()`` retires it cleanly.  (Do
    *not* ``resource_tracker.unregister`` here — with a shared
    tracker that would erase the publisher's entry and make the final
    ``unlink()`` log a spurious KeyError.)  If the publisher crashes
    before unlinking, the tracker unlinks the leaked segment at
    shutdown, which is exactly the crash cleanup we want.
    """
    segment = shared_memory.SharedMemory(name=name)
    views: dict[str, np.ndarray] = {}
    for array_name, (offset, shape, dtype) in layout.items():
        view = np.ndarray(shape, dtype=np.dtype(dtype), buffer=segment.buf, offset=offset)
        view.flags.writeable = False
        views[array_name] = view
    return segment, views
