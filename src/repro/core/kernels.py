"""Vectorised cube-pair kernels over packed ancestor-closure bitsets.

cubeMasking (Section 3.3, Algorithm 4) prunes the candidate space down
to cube pairs whose level signatures admit a relationship; the *inner*
loop then still has to test every member pair on every dimension.  The
:class:`~repro.core.matrix.OccurrenceMatrix` already packs each
observation's reflexive ancestor closure into ``uint8`` blocks — one
bit per code-list value — so the per-dimension containment predicate
``ancestors(a) ⊆ ancestors(b)`` is the byte-wise conditional function
``a AND b == a`` of Algorithm 1.  This module evaluates a whole cube
pair as one chunked broadcast AND-compare over those blocks:

* :func:`build_kernel_plan` assembles the packed blocks, integer code
  ids and deduplicated measure-group tables for a space once,
* :func:`evaluate_pair_block` scores the member rows of cube A against
  cube B in bulk.  The partial/full pass stacks the per-dimension
  containment tests into one *bitset mask* per pair (bit ``p`` = cube
  A's row contains cube B's row on dimension ``p``), evaluated in
  cache-blocked cube-pair tiles; full containment is the all-ones
  mask, partial containment any other non-zero mask, and the
  containment count is the popcount of the mask — no per-pair
  re-testing of survivors.  Results come back *columnar* (index
  arrays, not Python tuples) so a million-pair block costs a handful
  of array slices rather than a million tuple allocations,
* :func:`measure_overlap_groups` is the single shared copy of the
  measure-overlap prefilter (previously duplicated between the
  baseline and cubeMasking), with the group-intersection table
  computed as one boolean matrix product instead of an O(g²) loop,
* :func:`publish_arrays` / :func:`attach_arrays` place a plan's arrays
  in a :mod:`multiprocessing.shared_memory` segment exactly once so
  worker processes attach zero-copy instead of unpickling the space.

Every kernel invocation also feeds module-level counters
(:func:`kernel_counters`) which the relationship service surfaces on
its ``/metrics`` endpoint.
"""

from __future__ import annotations

import threading
import time
from multiprocessing import shared_memory

import numpy as np

from repro.errors import AlgorithmError
from repro.core.space import ObservationSpace
from repro.rdf.terms import URIRef

__all__ = [
    "KernelPlan",
    "PairBlockResult",
    "build_kernel_plan",
    "evaluate_pair_block",
    "ensure_dim_mask_capacity",
    "measure_overlap_groups",
    "kernel_counters",
    "merge_counters",
    "reset_kernel_counters",
    "publish_arrays",
    "attach_arrays",
    "DEFAULT_KERNEL_THRESHOLD",
    "DEFAULT_TILE_PAIRS",
    "DIM_MASK_LIMIT",
]

#: ``kernel="auto"`` switches a cube pair to the numpy kernel once the
#: member-count product reaches this value; below it the pure-Python
#: loop's lower constant factor wins (see docs/performance.md for the
#: measurement behind the default).
DEFAULT_KERNEL_THRESHOLD = 128

#: Rows of cube A evaluated per broadcast chunk — bounds the temporary
#: ``(chunk, |B|, bytes)`` arrays exactly like ``OccurrenceMatrix``'s
#: ``chunk`` parameter does for the baseline.
DEFAULT_CHUNK = 512

#: Partial-dimension bitmasks (and the bitset partial pass) ride in a
#: single unsigned word, so the bus is capped at 64 dimensions; wider
#: buses fall back to per-dimension count accumulation (no dim masks).
DIM_MASK_LIMIT = 64


def _tile_pairs_default() -> int:
    import os

    try:
        value = int(os.environ.get("REPRO_KERNEL_TILE_PAIRS", ""))
        if value > 0:
            return value
    except ValueError:
        pass
    return 1 << 20


#: Pair budget of one cube-pair tile in the bitset partial pass: the
#: (A-chunk × B-tile) temporaries are sized to at most this many pairs
#: so the mask tile and the per-dimension compare stay L2-resident
#: (1M pairs ≈ 1 MiB of uint8 mask + one bool temporary per
#: dimension).  Tunable via ``REPRO_KERNEL_TILE_PAIRS`` or the
#: ``tile_pairs`` parameter; see docs/performance.md for the sweep.
DEFAULT_TILE_PAIRS = _tile_pairs_default()


def ensure_dim_mask_capacity(dimension_count: int) -> None:
    """Reject buses too wide for single-word partial-dimension masks.

    Raised at *plan-build* time (``build_kernel_plan(...,
    collect_partial_dimensions=True)``) so a too-wide bus fails before
    any pair block is evaluated, not mid-compute.
    """
    if dimension_count > DIM_MASK_LIMIT:
        raise AlgorithmError(
            "partial-dimension bitmasks support at most "
            f"{DIM_MASK_LIMIT} dimensions; this bus has {dimension_count} "
            "— use the pure-Python path"
        )


if hasattr(np, "bitwise_count"):

    def _popcount(values: np.ndarray) -> np.ndarray:
        return np.bitwise_count(values)

else:  # numpy < 2.0
    _POPCOUNT8 = np.array([bin(i).count("1") for i in range(256)], dtype=np.uint8)

    def _popcount(values: np.ndarray) -> np.ndarray:
        flat = np.ascontiguousarray(values).reshape(-1)
        as_bytes = flat.view(np.uint8).reshape(flat.shape[0], flat.dtype.itemsize)
        return _POPCOUNT8[as_bytes].sum(axis=1).reshape(values.shape)


def _mask_dtype(dimension_count: int):
    """Narrowest unsigned word holding one bit per dimension."""
    if dimension_count <= 8:
        return np.uint8
    if dimension_count <= 16:
        return np.uint16
    if dimension_count <= 32:
        return np.uint32
    return np.uint64


# ----------------------------------------------------------------------
# Kernel counters (surfaced through the service /metrics endpoint and
# mirrored as first-class series in the repro.obs metrics registry).
# ----------------------------------------------------------------------
_COUNTER_LOCK = threading.Lock()
_COUNTERS = {"kernel_calls": 0, "kernel_pairs": 0, "kernel_ns": 0}


_REGISTRY_COUNTERS = None


def _registry_counters():
    global _REGISTRY_COUNTERS
    if _REGISTRY_COUNTERS is None:
        from repro.obs.registry import get_registry

        registry = get_registry()
        _REGISTRY_COUNTERS = (
            registry.counter(
                "repro_kernel_calls_total", "Vectorised cube-pair kernel invocations."
            ),
            registry.counter(
                "repro_kernel_pairs_total",
                "Observation pairs scored by the vectorised kernel.",
            ),
            registry.counter(
                "repro_kernel_ns_total",
                "Nanoseconds spent inside the vectorised kernel.",
            ),
        )
    return _REGISTRY_COUNTERS


#: Registry values already pushed; the delta to _COUNTERS is what a
#: flush publishes.  Batching keeps the per-block hot path down to the
#: single _COUNTER_LOCK acquisition it always had.
_PUSHED = {"kernel_calls": 0, "kernel_pairs": 0, "kernel_ns": 0}
_FLUSH_EVERY = 512


def _record(ns: int, pairs: int) -> None:
    with _COUNTER_LOCK:
        _COUNTERS["kernel_calls"] += 1
        _COUNTERS["kernel_pairs"] += pairs
        _COUNTERS["kernel_ns"] += ns
        due = _COUNTERS["kernel_calls"] - _PUSHED["kernel_calls"] >= _FLUSH_EVERY
    if due:
        flush_registry_counters()


def flush_registry_counters() -> None:
    """Publish accumulated kernel counters into the metrics registry.

    Runs every :data:`_FLUSH_EVERY` kernel calls and at the end of
    each cubeMasking compute, so a mid-compute scrape lags by at most
    one batch.
    """
    counters = _registry_counters()
    with _COUNTER_LOCK:
        deltas = {key: _COUNTERS[key] - _PUSHED[key] for key in _COUNTERS}
        _PUSHED.update(_COUNTERS)
    for counter, key in zip(counters, ("kernel_calls", "kernel_pairs", "kernel_ns")):
        if deltas[key]:
            counter.inc(deltas[key])


def kernel_counters() -> dict:
    """Snapshot of this process's cumulative kernel usage."""
    with _COUNTER_LOCK:
        return dict(_COUNTERS)


def merge_counters(delta: dict) -> None:
    """Fold another process's kernel-counter delta into this one.

    The parallel fan-out runs the kernel inside worker processes whose
    module counters (and registry series) die with them; each unit
    result carries the worker's counter delta and the parent merges it
    here, so ``kernel_pairs``/``kernel_ns`` stats and the
    ``repro_kernel_*`` metric families stay path-independent — a
    worker-scored pair counts exactly like a sequentially-scored one.
    """
    calls = int(delta.get("kernel_calls", 0))
    pairs = int(delta.get("kernel_pairs", 0))
    ns = int(delta.get("kernel_ns", 0))
    if not (calls or pairs or ns):
        return
    with _COUNTER_LOCK:
        _COUNTERS["kernel_calls"] += calls
        _COUNTERS["kernel_pairs"] += pairs
        _COUNTERS["kernel_ns"] += ns
    flush_registry_counters()


def reset_kernel_counters() -> None:
    with _COUNTER_LOCK:
        for key in _COUNTERS:
            _COUNTERS[key] = 0
            _PUSHED[key] = 0


# ----------------------------------------------------------------------
# The shared measure-overlap prefilter.
# ----------------------------------------------------------------------
def measure_overlap_groups(space: ObservationSpace) -> tuple[np.ndarray, np.ndarray]:
    """Deduplicated measure groups: ``(assignment, overlap)``.

    ``assignment[i]`` is the group id of observation ``i``'s measure
    set; ``overlap[g, h]`` is True when groups ``g`` and ``h`` share a
    measure.  Distinct measure sets are deduplicated first — the
    "simple lookup" of the paper — and the g×g intersection table is a
    single boolean matrix product over the group-membership matrix
    rather than a pairwise ``isdisjoint`` loop.
    """
    unique: dict[frozenset, int] = {}
    assignment = np.empty(len(space), dtype=np.int32)
    for record in space.observations:
        assignment[record.index] = unique.setdefault(record.measures, len(unique))
    columns = {
        measure: position
        for position, measure in enumerate(
            sorted({m for group in unique for m in group}, key=str)
        )
    }
    membership = np.zeros((len(unique), len(columns)), dtype=np.uint8)
    for group, group_id in unique.items():
        for measure in group:
            membership[group_id, columns[measure]] = 1
    overlap = (membership @ membership.T) > 0
    return assignment, overlap


# ----------------------------------------------------------------------
# The kernel plan: every array the bulk evaluation needs.
# ----------------------------------------------------------------------
class KernelPlan:
    """Packed per-space arrays for vectorised cube-pair evaluation.

    ``packed``
        ``(n, total_bytes)`` ``uint8`` — the per-dimension ancestor
        closure blocks of the occurrence matrix, concatenated in bus
        order; ``block_slices[p]`` is dimension ``p``'s byte range.
    ``code_ids``
        ``(n, k)`` ``int32`` — each observation's dimension values as
        dense integer ids; two rows are equal iff the padded code
        vectors are equal (the complementarity predicate).
    ``assignment`` / ``group_overlap``
        The measure-overlap prefilter of
        :func:`measure_overlap_groups`.
    ``levels`` / ``anc_codes`` / ``level_offsets``
        The level-indexed ancestor-code tables.  Hierarchies are
        single-parent trees, so ``a`` contains ``b`` on dimension ``p``
        iff *b's ancestor at a's level is a* — ``anc_codes`` stores
        each observation's per-level ancestor code ids (``-1`` below
        the observation's own level), turning the per-dimension
        containment predicate into one O(1) integer compare per pair.
        This is the kernel's fast path; ``None`` on plans rebuilt from
        arrays that lack the tables.
    ``words`` / ``word_slices``
        When every dimension block is 8-byte aligned (always true for
        plans built by :func:`build_kernel_plan`, which zero-pads each
        block), ``packed`` reinterpreted as ``uint64`` words — the
        AND-compare fallback then touches 8x fewer elements per pair.
        ``None`` on unaligned layouts; the kernel falls back to bytes.
    """

    __slots__ = (
        "dimensions",
        "k",
        "packed",
        "block_slices",
        "code_ids",
        "code_keys",
        "assignment",
        "group_overlap",
        "levels",
        "anc_codes",
        "level_offsets",
        "words",
        "word_slices",
    )

    def __init__(
        self,
        dimensions: tuple[URIRef, ...],
        packed: np.ndarray,
        block_slices: tuple[tuple[int, int], ...],
        code_ids: np.ndarray,
        assignment: np.ndarray,
        group_overlap: np.ndarray,
        code_keys: np.ndarray | None = None,
        levels: np.ndarray | None = None,
        anc_codes: np.ndarray | None = None,
        level_offsets: tuple[int, ...] | None = None,
    ):
        self.dimensions = dimensions
        self.k = len(block_slices)
        self.packed = packed
        self.block_slices = block_slices
        self.code_ids = code_ids
        self.code_keys = code_keys
        self.assignment = assignment
        self.group_overlap = group_overlap
        self.levels = levels
        self.anc_codes = anc_codes
        self.level_offsets = level_offsets
        self.words = None
        self.word_slices = None
        aligned = packed.shape[1] % 8 == 0 and all(
            lo % 8 == 0 and hi % 8 == 0 for lo, hi in block_slices
        )
        if aligned:
            try:
                self.words = packed.view(np.uint64)
                self.word_slices = tuple((lo // 8, hi // 8) for lo, hi in block_slices)
            except ValueError:  # non-contiguous input: keep the byte path
                self.words = None

    @property
    def n(self) -> int:
        return self.packed.shape[0]

    def __repr__(self) -> str:
        return (
            f"KernelPlan(rows={self.n}, dimensions={self.k}, "
            f"packed_bytes={self.packed.shape[1]})"
        )


def build_kernel_plan(
    space: ObservationSpace,
    matrix=None,
    *,
    collect_partial_dimensions: bool = False,
) -> KernelPlan:
    """Assemble a :class:`KernelPlan`, reusing the occurrence matrix's
    packed ``uint8`` blocks (built here if not supplied).

    Pass ``collect_partial_dimensions=True`` when the plan will be
    asked for partial-dimension bitmasks: buses wider than
    :data:`DIM_MASK_LIMIT` dimensions are rejected here, at plan-build
    time, instead of mid-block.
    """
    from repro.core.matrix import OccurrenceMatrix

    if collect_partial_dimensions:
        ensure_dim_mask_capacity(len(space.dimensions))
    if matrix is None:
        matrix = OccurrenceMatrix(space, backend="numpy")
    elif matrix.backend != "numpy":
        raise AlgorithmError("kernel plans need the numpy occurrence-matrix backend")
    n = len(space)
    dimensions = space.dimensions
    # Each block is zero-padded to an 8-byte multiple so the plan can
    # reinterpret the concatenation as uint64 words (padding bytes are
    # inert for the a AND b == a predicate: 0 & x == 0).
    blocks: list[np.ndarray] = []
    slices: list[tuple[int, int]] = []
    offset = 0
    for dimension in dimensions:
        block = matrix.packed_block(dimension)
        width = block.shape[1]
        padded = -(-max(width, 1) // 8) * 8
        if padded != width:
            block = np.concatenate(
                [block, np.zeros((n, padded - width), dtype=np.uint8)], axis=1
            )
        blocks.append(block)
        slices.append((offset, offset + padded))
        offset += padded
    packed = (
        np.concatenate(blocks, axis=1)
        if blocks
        else np.zeros((n, 0), dtype=np.uint8)
    )
    code_ids = np.zeros((n, len(dimensions)), dtype=np.int32)
    for position, dimension in enumerate(dimensions):
        index = matrix.feature_index[dimension]
        column = code_ids[:, position]
        for record in space.observations:
            column[record.index] = index[record.codes[position]]
    # Level-indexed ancestor-code tables (the kernel's fast path; see
    # the KernelPlan docstring for the predicate they encode).
    level_offsets: list[int] = []
    level_widths: list[int] = []
    total_levels = 0
    for dimension in dimensions:
        width = space.hierarchies[dimension].max_level + 1
        level_offsets.append(total_levels)
        level_widths.append(width)
        total_levels += width
    levels = np.zeros((n, len(dimensions)), dtype=np.int32)
    anc_codes = np.full((n, total_levels), -1, dtype=np.int32)
    for position, dimension in enumerate(dimensions):
        hierarchy = space.hierarchies[dimension]
        index = matrix.feature_index[dimension]
        base = level_offsets[position]
        width = level_widths[position]
        rows_cache: dict = {}
        for record in space.observations:
            code = record.codes[position]
            cached = rows_cache.get(code)
            if cached is None:
                row = np.full(width, -1, dtype=np.int32)
                node = code
                while node is not None:
                    row[hierarchy.level(node)] = index[node]
                    node = hierarchy.parent(node)
                cached = (row, hierarchy.level(code))
                rows_cache[code] = cached
            anc_codes[record.index, base : base + width] = cached[0]
            levels[record.index, position] = cached[1]
    # Dense ids for whole code vectors: two observations are
    # complementarity candidates iff their rows coincide, so one id
    # compare replaces a k-column row comparison per pair.
    if n:
        _, inverse = np.unique(code_ids, axis=0, return_inverse=True)
        code_keys = np.ascontiguousarray(inverse.reshape(n), dtype=np.int32)
    else:
        code_keys = np.zeros(0, dtype=np.int32)
    assignment, group_overlap = measure_overlap_groups(space)
    return KernelPlan(
        dimensions=dimensions,
        packed=np.ascontiguousarray(packed),
        block_slices=tuple(slices),
        code_ids=code_ids,
        assignment=assignment,
        group_overlap=group_overlap,
        code_keys=code_keys,
        levels=levels,
        anc_codes=anc_codes,
        level_offsets=tuple(level_offsets),
    )


# ----------------------------------------------------------------------
# Bulk evaluation of one cube pair.
# ----------------------------------------------------------------------
_EMPTY_IDX = np.zeros(0, dtype=np.int64)
_EMPTY_COUNTS = np.zeros(0, dtype=np.int32)
_EMPTY_MASKS = np.zeros(0, dtype=np.uint64)


def _cat(parts: list, empty: np.ndarray) -> np.ndarray:
    if not parts:
        return empty
    if len(parts) == 1:
        return parts[0]
    return np.concatenate(parts)


class PairBlockResult:
    """Columnar index-level output of one cube-pair evaluation.

    The kernel returns *arrays*: ``full_a``/``full_b`` and
    ``compl_a``/``compl_b`` are aligned observation-index vectors;
    ``partial_a``/``partial_b``/``partial_counts`` describe the
    partial pairs (``partial_counts[i]`` containing dimensions, the
    degree is ``count / k``); ``partial_masks`` (when requested)
    aligns with them and carries a bitmask whose bit ``p`` marks
    containment on dimension ``p`` of the bus, ``None`` otherwise.

    The ``full`` / ``complementary`` / ``partial`` /
    ``partial_dim_masks`` properties materialise the historical
    tuple-list forms on demand for small-block consumers (incremental
    updates, tests); bulk consumers use the arrays directly — that is
    the difference between a million result rows costing a few array
    concatenations and costing a million tuple allocations.
    """

    __slots__ = (
        "full_a",
        "full_b",
        "compl_a",
        "compl_b",
        "partial_a",
        "partial_b",
        "partial_counts",
        "partial_masks",
        "_full_list",
        "_compl_list",
        "_partial_list",
        "_mask_list",
    )

    def __init__(
        self,
        *,
        full_a: np.ndarray = _EMPTY_IDX,
        full_b: np.ndarray = _EMPTY_IDX,
        compl_a: np.ndarray = _EMPTY_IDX,
        compl_b: np.ndarray = _EMPTY_IDX,
        partial_a: np.ndarray = _EMPTY_IDX,
        partial_b: np.ndarray = _EMPTY_IDX,
        partial_counts: np.ndarray = _EMPTY_COUNTS,
        partial_masks: np.ndarray | None = None,
    ):
        self.full_a = full_a
        self.full_b = full_b
        self.compl_a = compl_a
        self.compl_b = compl_b
        self.partial_a = partial_a
        self.partial_b = partial_b
        self.partial_counts = partial_counts
        self.partial_masks = partial_masks
        self._full_list = None
        self._compl_list = None
        self._partial_list = None
        self._mask_list = None

    @property
    def full(self) -> list[tuple[int, int]]:
        if self._full_list is None:
            self._full_list = list(zip(self.full_a.tolist(), self.full_b.tolist()))
        return self._full_list

    @property
    def complementary(self) -> list[tuple[int, int]]:
        if self._compl_list is None:
            self._compl_list = list(zip(self.compl_a.tolist(), self.compl_b.tolist()))
        return self._compl_list

    @property
    def partial(self) -> list[tuple[int, int, int]]:
        if self._partial_list is None:
            self._partial_list = list(
                zip(
                    self.partial_a.tolist(),
                    self.partial_b.tolist(),
                    self.partial_counts.tolist(),
                )
            )
        return self._partial_list

    @property
    def partial_dim_masks(self) -> list[int] | None:
        if self.partial_masks is None:
            return None
        if self._mask_list is None:
            self._mask_list = self.partial_masks.tolist()
        return self._mask_list

    def __repr__(self) -> str:
        return (
            f"PairBlockResult(full={self.full_a.size}, "
            f"complementary={self.compl_a.size}, partial={self.partial_a.size})"
        )


def evaluate_pair_block(
    plan: KernelPlan,
    rows_a,
    rows_b,
    *,
    containing: bool = True,
    same_cube: bool = False,
    want_full: bool = True,
    want_compl: bool = True,
    want_partial: bool = True,
    collect_partial_dimensions: bool = False,
    chunk: int = DEFAULT_CHUNK,
    tile_pairs: int | None = None,
) -> PairBlockResult:
    """Score the member rows of cube A against cube B in bulk.

    The vectorised form of Algorithm 4's inner loop.  For the partial
    pass the per-dimension containment tests over the level-indexed
    ancestor-code tables are ORed into one *bitset* per pair (bit ``p``
    = containment on dimension ``p``, narrowest unsigned dtype that
    holds ``k`` bits): ``mask == (1 << k) - 1`` is full containment,
    any other nonzero mask is partial, and the containment count is the
    mask's popcount — taken only on the selected pairs, so partial
    candidates are never re-tested dimension-wise.  The pass walks B
    in cache-blocked tiles of at most ``tile_pairs`` pairs per
    (A-chunk x B-tile) so the per-dimension broadcast temporaries stay
    L2-resident.  Results come back as index *arrays* (see
    :class:`PairBlockResult`) — self pairs excluded, full and partial
    containment gated on the measure-overlap mask, complementarity on
    equal code-id rows with ``a < b``, exactly as the pure-Python path.

    ``containing`` states whether cube A's signature dominates cube
    B's (full containment and complementarity are impossible
    otherwise, so the work is skipped); ``same_cube`` gates the
    complementarity check, which only lives inside one cube.
    """
    rows_a = np.asarray(rows_a, dtype=np.int64)
    rows_b = np.asarray(rows_b, dtype=np.int64)
    la, lb = len(rows_a), len(rows_b)
    k = plan.k
    collect_masks = want_partial and collect_partial_dimensions
    if collect_masks:
        ensure_dim_mask_capacity(k)
    if la == 0 or lb == 0:
        return PairBlockResult(partial_masks=_EMPTY_MASKS if collect_masks else None)
    started = time.perf_counter_ns()

    check_full = want_full and containing
    check_compl = want_compl and containing and same_cube
    budget = max(1, int(tile_pairs)) if tile_pairs else DEFAULT_TILE_PAIRS

    need_blocks = check_full or want_partial
    use_anc = plan.anc_codes is not None and plan.levels is not None and need_blocks
    if use_anc:
        anc_b = plan.anc_codes[rows_b]
        col_base = np.asarray(plan.level_offsets, dtype=np.int32)
        data = data_b = slices = None
    else:
        # AND-compare fallback over the packed blocks; prefer the
        # uint64 word view: identical semantics (AND/compare are
        # bytewise), 8x fewer elements per pair.
        if plan.words is not None:
            data, slices = plan.words, plan.word_slices
        else:
            data, slices = plan.packed, plan.block_slices
        data_b = data[rows_b] if need_blocks else None
    use_keys = check_compl and plan.code_keys is not None
    if check_compl:
        keys_b = plan.code_keys[rows_b] if use_keys else None
        codes_b = None if use_keys else plan.code_ids[rows_b]
    assign_b = plan.assignment[rows_b]

    # A-chunk / B-tile sizing.  The partial pass tiles B, so its A
    # chunk only shrinks with the tile budget; the sifting and
    # complementarity branches broadcast across the whole B side, so
    # their A chunk shrinks with lb instead (~4M pairs per chunk).
    if want_partial:
        b_tile = max(1, min(lb, budget))
        ca_max = max(1, min(chunk, max(1, budget // b_tile)))
        if check_compl:
            ca_max = max(1, min(ca_max, (1 << 22) // max(lb, 1)))
    else:
        b_tile = lb
        ca_max = max(1, min(chunk, (1 << 22) // max(lb, 1)))

    mdtype = _mask_dtype(k) if k <= DIM_MASK_LIMIT else None
    full_value = mdtype((1 << k) - 1) if mdtype is not None else None

    full_a_parts: list[np.ndarray] = []
    full_b_parts: list[np.ndarray] = []
    compl_a_parts: list[np.ndarray] = []
    compl_b_parts: list[np.ndarray] = []
    part_a_parts: list[np.ndarray] = []
    part_b_parts: list[np.ndarray] = []
    part_c_parts: list[np.ndarray] = []
    part_m_parts: list[np.ndarray] = []

    for start in range(0, la, ca_max):
        rows = rows_a[start : start + ca_max]
        ca = len(rows)
        assign_a = plan.assignment[rows]
        data_a = codes_a = cols_a = None
        if need_blocks:
            if use_anc:
                codes_a = plan.code_ids[rows]
                cols_a = plan.levels[rows] + col_base[None, :]
            else:
                data_a = data[rows]

        if want_partial:
            for bstart in range(0, lb, b_tile):
                bstop = min(lb, bstart + b_tile)
                rows_bt = rows_b[bstart:bstop]
                anc_bt = anc_b[bstart:bstop] if use_anc else None
                data_bt = None if use_anc else data_b[bstart:bstop]
                valid = plan.group_overlap[
                    assign_a[:, None], assign_b[bstart:bstop][None, :]
                ]
                valid &= rows[:, None] != rows_bt[None, :]

                def dim_contains_tile(position: int) -> np.ndarray:
                    """(ca, tile) containment matrix of one dimension."""
                    if use_anc:
                        col = cols_a[:, position]
                        first = col[0]
                        if (col == first).all():
                            # All A rows sit on the same level (always
                            # true when rows_a is one cube): one anc
                            # column, pure broadcast compare — no gather.
                            return (
                                anc_bt[:, first][None, :]
                                == codes_a[:, position][:, None]
                            )
                        return (anc_bt[:, col] == codes_a[:, position]).T
                    lo, hi = slices[position]
                    left = data_a[:, None, lo:hi]
                    return ((left & data_bt[None, :, lo:hi]) == left).all(axis=2)

                if mdtype is not None:
                    # Bitset pass: one mask accumulates every dimension;
                    # classification and the containment counts all fall
                    # out of it.
                    mask = np.zeros((ca, bstop - bstart), dtype=mdtype)
                    for position in range(k):
                        contains = dim_contains_tile(position)
                        mask |= contains.astype(mdtype) << mdtype(position)
                    if check_full:
                        sel = mask == full_value
                        sel &= valid
                        ia, ib = np.nonzero(sel)
                        if ia.size:
                            full_a_parts.append(rows[ia])
                            full_b_parts.append(rows_bt[ib])
                    sel = mask != 0
                    sel &= mask != full_value
                    sel &= valid
                    ia, ib = np.nonzero(sel)
                    if ia.size:
                        chosen = mask[ia, ib]
                        part_a_parts.append(rows[ia])
                        part_b_parts.append(rows_bt[ib])
                        part_c_parts.append(
                            _popcount(chosen).astype(np.int32, copy=False)
                        )
                        if collect_masks:
                            part_m_parts.append(chosen.astype(np.uint64))
                else:
                    # Bus wider than 64 dimensions: bitsets don't fit a
                    # word, accumulate counts instead (masks were
                    # rejected up front by ensure_dim_mask_capacity).
                    counts = np.zeros((ca, bstop - bstart), dtype=np.int32)
                    for position in range(k):
                        counts += dim_contains_tile(position)
                    if check_full:
                        ia, ib = np.nonzero((counts == k) & valid)
                        if ia.size:
                            full_a_parts.append(rows[ia])
                            full_b_parts.append(rows_bt[ib])
                    ia, ib = np.nonzero((counts > 0) & (counts < k) & valid)
                    if ia.size:
                        part_a_parts.append(rows[ia])
                        part_b_parts.append(rows_bt[ib])
                        part_c_parts.append(counts[ia, ib])
        elif check_full:
            # No counts needed -> dimension-ordered sifting: evaluate
            # dimension 0 over the whole block, then re-test only the
            # survivors on each further dimension (the vectorised twin
            # of the Python loop's early exit — most pairs die on the
            # first dimension).
            overlap = plan.group_overlap[assign_a[:, None], assign_b[None, :]]
            not_self = rows[:, None] != rows_b[None, :]

            def dim_contains(position: int) -> np.ndarray:
                """(ca, lb) containment matrix of one dimension."""
                if use_anc:
                    col = cols_a[:, position]
                    first = col[0]
                    if (col == first).all():
                        return anc_b[:, first][None, :] == codes_a[:, position][:, None]
                    return (anc_b[:, col] == codes_a[:, position]).T
                lo, hi = slices[position]
                left = data_a[:, None, lo:hi]
                return ((left & data_b[None, :, lo:hi]) == left).all(axis=2)

            def dim_contains_at(position: int, idx_a, idx_b) -> np.ndarray:
                """Containment on one dimension for selected (a, b) pairs."""
                if use_anc:
                    return (
                        anc_b[idx_b, cols_a[idx_a, position]]
                        == codes_a[idx_a, position]
                    )
                lo, hi = slices[position]
                left = data_a[idx_a, lo:hi]
                return ((left & data_b[idx_b, lo:hi]) == left).all(axis=1)

            if k == 0:
                idx_a, idx_b = np.nonzero(overlap & not_self)
            else:
                contains = dim_contains(0) & overlap
                contains &= not_self
                idx_a, idx_b = np.nonzero(contains)
                for position in range(1, k):
                    if idx_a.size == 0:
                        break
                    keep = dim_contains_at(position, idx_a, idx_b)
                    idx_a, idx_b = idx_a[keep], idx_b[keep]
            if idx_a.size:
                full_a_parts.append(rows[idx_a])
                full_b_parts.append(rows_b[idx_b])
        if check_compl:
            if use_keys:
                equal = plan.code_keys[rows][:, None] == keys_b[None, :]
            else:
                equal = (plan.code_ids[rows][:, None, :] == codes_b[None, :, :]).all(
                    axis=2
                )
            equal &= rows[:, None] < rows_b[None, :]
            ia, ib = np.nonzero(equal)
            if ia.size:
                compl_a_parts.append(rows[ia])
                compl_b_parts.append(rows_b[ib])
    _record(time.perf_counter_ns() - started, la * lb)
    return PairBlockResult(
        full_a=_cat(full_a_parts, _EMPTY_IDX),
        full_b=_cat(full_b_parts, _EMPTY_IDX),
        compl_a=_cat(compl_a_parts, _EMPTY_IDX),
        compl_b=_cat(compl_b_parts, _EMPTY_IDX),
        partial_a=_cat(part_a_parts, _EMPTY_IDX),
        partial_b=_cat(part_b_parts, _EMPTY_IDX),
        partial_counts=_cat(part_c_parts, _EMPTY_COUNTS),
        partial_masks=_cat(part_m_parts, _EMPTY_MASKS) if collect_masks else None,
    )


def decode_dim_mask(plan_dimensions: tuple[URIRef, ...], mask: int) -> frozenset[URIRef]:
    """The ``map_P`` entry encoded by one partial-dimension bitmask."""
    return frozenset(
        dimension
        for position, dimension in enumerate(plan_dimensions)
        if mask >> position & 1
    )


# ----------------------------------------------------------------------
# Zero-copy shared-memory publication of plan arrays.
# ----------------------------------------------------------------------
_ALIGNMENT = 64

Layout = dict[str, tuple[int, tuple[int, ...], str]]


def publish_arrays(arrays: dict[str, np.ndarray]) -> tuple[shared_memory.SharedMemory, Layout]:
    """Copy ``arrays`` into one new shared-memory segment.

    Returns the segment (the caller owns its lifetime: ``close()`` and
    ``unlink()`` when every consumer is done) and a small layout dict
    ``{name: (offset, shape, dtype)}`` — the only thing a worker needs
    besides the segment name, so the fan-out payload is O(metadata)
    regardless of how many observations the arrays cover.
    """
    items: list[tuple[str, np.ndarray]] = [
        (name, np.ascontiguousarray(array)) for name, array in arrays.items()
    ]
    layout: Layout = {}
    offset = 0
    for name, array in items:
        layout[name] = (offset, tuple(array.shape), array.dtype.str)
        offset += -(-array.nbytes // _ALIGNMENT) * _ALIGNMENT
    segment = shared_memory.SharedMemory(create=True, size=max(offset, 1))
    for name, array in items:
        start = layout[name][0]
        destination = np.ndarray(array.shape, dtype=array.dtype, buffer=segment.buf, offset=start)
        destination[...] = array
        del destination  # release the buffer export so close() can succeed
    from repro.obs.registry import get_registry

    registry = get_registry()
    registry.counter(
        "repro_parallel_shm_publishes_total",
        "Shared-memory kernel-plan segments published for worker fan-out.",
    ).inc()
    registry.counter(
        "repro_parallel_shm_bytes_total",
        "Bytes published into shared-memory fan-out segments.",
    ).inc(segment.size)
    return segment, layout


def attach_arrays(name: str, layout: Layout) -> tuple[shared_memory.SharedMemory, dict[str, np.ndarray]]:
    """Attach to a published segment and map its arrays zero-copy.

    The returned arrays are read-only views over the shared buffer.

    Lifecycle: only the publisher calls ``unlink()``.  Python < 3.13
    registers attached segments with the resource tracker too, but
    fork-started pool workers share the parent's tracker process, so
    the duplicate registration collapses into the publisher's single
    entry and the publisher's ``unlink()`` retires it cleanly.  (Do
    *not* ``resource_tracker.unregister`` here — with a shared
    tracker that would erase the publisher's entry and make the final
    ``unlink()`` log a spurious KeyError.)  If the publisher crashes
    before unlinking, the tracker unlinks the leaked segment at
    shutdown, which is exactly the crash cleanup we want.
    """
    segment = shared_memory.SharedMemory(name=name)
    views: dict[str, np.ndarray] = {}
    for array_name, (offset, shape, dtype) in layout.items():
        view = np.ndarray(shape, dtype=np.dtype(dtype), buffer=segment.buf, offset=offset)
        view.flags.writeable = False
        views[array_name] = view
    return segment, views
