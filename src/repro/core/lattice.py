"""The cube lattice (Section 3.3, Figure 4).

Each observation maps to a *cube*: the tuple of hierarchy levels of its
dimension values (node ``"210"`` = level 2 on refArea, 1 on refPeriod,
0 on sex).  The lattice orders cubes by pointwise level dominance:
cube A *may* contain cube B only if ``level_A[i] <= level_B[i]`` for
every dimension — a necessary condition for instance-level containment
that Algorithm 4 uses to prune observation comparisons.
"""

from __future__ import annotations

from typing import Iterator

from repro.core.space import ObservationSpace

__all__ = ["CubeLattice"]

Signature = tuple[int, ...]


def dominates(a: Signature, b: Signature) -> bool:
    """True when cube ``a`` may contain cube ``b`` (pointwise ``<=``)."""
    return all(la <= lb for la, lb in zip(a, b))


def partially_dominates(a: Signature, b: Signature) -> bool:
    """True when at least one dimension admits containment (``∃ <=``)."""
    return any(la <= lb for la, lb in zip(a, b))


class CubeLattice:
    """Observations grouped by their level signatures.

    Construction is the single linear pass of Algorithm 4 steps i–ii:
    hash each observation's level signature, which identifies and
    populates its cube simultaneously.
    """

    def __init__(self, space: ObservationSpace):
        self.space = space
        self.nodes: dict[Signature, list[int]] = {}
        self.signatures: list[Signature] = []
        level_cache: list[dict[object, int]] = [
            {code: hierarchy.level(code) for code in hierarchy}
            for hierarchy in (space.hierarchies[d] for d in space.dimensions)
        ]
        for record in space.observations:
            signature = tuple(
                level_cache[position][code] for position, code in enumerate(record.codes)
            )
            self.signatures.append(signature)
            self.nodes.setdefault(signature, []).append(record.index)

    # ------------------------------------------------------------------
    def __len__(self) -> int:
        return len(self.nodes)

    def __iter__(self) -> Iterator[Signature]:
        return iter(self.nodes)

    def members(self, signature: Signature) -> list[int]:
        return self.nodes.get(signature, [])

    @property
    def cube_ratio(self) -> float:
        """Cubes per observation — the decreasing curve of Figure 5(f)."""
        if not self.space.observations:
            return 0.0
        return len(self.nodes) / len(self.space)

    # ------------------------------------------------------------------
    def containment_pairs(self) -> Iterator[tuple[Signature, Signature]]:
        """Cube pairs ``(a, b)`` where a may contain b, computed on the fly.

        Includes ``a == b`` (a cube always dominates itself); the
        observation-level checks filter self-pairs.
        """
        cubes = list(self.nodes)
        for a in cubes:
            for b in cubes:
                if dominates(a, b):
                    yield (a, b)

    def children_index(self) -> dict[Signature, list[Signature]]:
        """Pre-fetched map cube -> dominated cubes (the paper's
        children-prefetching optimisation, Figure 5(g))."""
        cubes = list(self.nodes)
        index: dict[Signature, list[Signature]] = {cube: [] for cube in cubes}
        for a in cubes:
            children = index[a]
            for b in cubes:
                if dominates(a, b):
                    children.append(b)
        return index

    def partial_pairs(self) -> Iterator[tuple[Signature, Signature]]:
        """Cube pairs with at least one dominating dimension (partial
        containment candidates)."""
        cubes = list(self.nodes)
        for a in cubes:
            for b in cubes:
                if partially_dominates(a, b):
                    yield (a, b)

    # ------------------------------------------------------------------
    # Figure 4 structure: the *full* lattice of level combinations.
    # ------------------------------------------------------------------
    def possible_signatures(self) -> Iterator[Signature]:
        """Every level combination of the hierarchies — the complete
        lattice of Figure 4, whether populated or not."""
        from itertools import product

        ranges = [
            range(self.space.hierarchies[d].max_level + 1) for d in self.space.dimensions
        ]
        yield from product(*ranges)

    def coverage(self) -> float:
        """Fraction of the possible lattice nodes actually populated."""
        total = 1
        for dimension in self.space.dimensions:
            total *= self.space.hierarchies[dimension].max_level + 1
        return len(self.nodes) / total if total else 0.0

    def render_ascii(self, max_nodes: int = 50) -> str:
        """Human-readable lattice dump, one populated node per line.

        Nodes print as Figure 4's labels (concatenated levels) with
        their member counts and direct-parent links.
        """
        lines = [f"cube lattice: {len(self.nodes)} populated nodes, coverage {self.coverage():.0%}"]
        shown = sorted(self.nodes)[:max_nodes]

        def label(signature: Signature) -> str:
            return "".join(str(level) for level in signature)

        populated = set(self.nodes)
        for signature in shown:
            parents = [
                other
                for other in populated
                if other != signature
                and dominates(other, signature)
                and sum(signature) - sum(other) == 1
            ]
            parent_text = (
                " <- " + ", ".join(label(p) for p in sorted(parents)) if parents else ""
            )
            lines.append(
                f"  {label(signature)}: {len(self.nodes[signature])} observation(s){parent_text}"
            )
        if len(self.nodes) > max_nodes:
            lines.append(f"  ... {len(self.nodes) - max_nodes} more")
        return "\n".join(lines)

    def __repr__(self) -> str:
        return f"CubeLattice(cubes={len(self.nodes)}, observations={len(self.space)})"
