"""The occurrence matrix OM (Section 3.1).

Rows are observations, columns are code-list values; a cell is 1 when
the observation's value for the column's dimension equals the column
code *or any of its descendants* — i.e. each row carries the reflexive
ancestor closure of its dimension values, per dimension block
(``OM = [OM_1 ... OM_|C|]``).

Two backends implement the bit vectors:

* ``numpy`` — bits packed into ``uint8`` blocks; the per-dimension
  containment matrices ``CM_i`` are computed with chunked broadcast
  AND-compare, which is the vectorised equivalent of Algorithm 1,
* ``python`` — arbitrary-precision ints as bitmasks, the literal
  ``a AND b == b`` conditional function of the paper.

The ablation benchmark :mod:`benchmarks.bench_ablation_bitset` compares
the two.
"""

from __future__ import annotations

from typing import Literal as TypingLiteral

import numpy as np

from repro.errors import AlgorithmError
from repro.core.space import ObservationSpace
from repro.rdf.terms import URIRef

__all__ = ["OccurrenceMatrix", "OCMResult"]

Backend = TypingLiteral["numpy", "python"]


class OCMResult:
    """Output of Algorithm 1: integer containment counts plus CM access.

    ``counts[j, k]`` is the number of dimensions on which observation
    ``j`` contains observation ``k``; the normalised OCM of the paper
    is ``counts / |P|`` (see :meth:`ocm`).
    """

    __slots__ = ("counts", "dimension_count", "_cms", "_dimensions")

    def __init__(
        self,
        counts: np.ndarray,
        dimension_count: int,
        cms: dict[URIRef, np.ndarray] | None,
        dimensions: tuple[URIRef, ...],
    ):
        self.counts = counts
        self.dimension_count = dimension_count
        self._cms = cms
        self._dimensions = dimensions

    def ocm(self) -> np.ndarray:
        """The normalised overall containment matrix (float64 in [0, 1])."""
        if self.dimension_count == 0:
            return np.ones_like(self.counts, dtype=np.float64)
        return self.counts.astype(np.float64) / self.dimension_count

    def cm(self, dimension: URIRef) -> np.ndarray:
        """The boolean CM_i matrix for one dimension (if retained)."""
        if self._cms is None:
            raise AlgorithmError("per-dimension CMs were not retained (keep_cms=False)")
        return self._cms[dimension]

    @property
    def dimensions(self) -> tuple[URIRef, ...]:
        return self._dimensions

    @property
    def has_cms(self) -> bool:
        return self._cms is not None


class OccurrenceMatrix:
    """Per-dimension bit vectors for a whole observation space."""

    def __init__(self, space: ObservationSpace, backend: Backend = "numpy"):
        if backend not in ("numpy", "python"):
            raise AlgorithmError(f"unknown backend {backend!r}")
        self.space = space
        self.backend: Backend = backend
        #: column offset of each code within its dimension block
        self.feature_index: dict[URIRef, dict[object, int]] = {}
        self._blocks: dict[URIRef, np.ndarray] = {}
        self._masks: dict[URIRef, list[int]] = {}
        self._build()

    # ------------------------------------------------------------------
    def _build(self) -> None:
        space = self.space
        for dimension in space.dimensions:
            hierarchy = space.hierarchies[dimension]
            codes = sorted(hierarchy, key=str)
            index = {code: i for i, code in enumerate(codes)}
            self.feature_index[dimension] = index
            # Memoise the bit pattern of each distinct code once.
            pattern_cache: dict[object, object] = {}
            position = space.dimensions.index(dimension)
            if self.backend == "numpy":
                width = len(codes)
                rows = np.zeros((len(space), width), dtype=bool)
                for record in space.observations:
                    code = record.codes[position]
                    cols = pattern_cache.get(code)
                    if cols is None:
                        cols = [index[c] for c in hierarchy.ancestors(code)]
                        pattern_cache[code] = cols
                    rows[record.index, cols] = True
                self._blocks[dimension] = np.packbits(rows, axis=1)
            else:
                masks: list[int] = []
                for record in space.observations:
                    code = record.codes[position]
                    mask = pattern_cache.get(code)
                    if mask is None:
                        mask = 0
                        for ancestor in hierarchy.ancestors(code):
                            mask |= 1 << index[ancestor]
                        pattern_cache[code] = mask
                    masks.append(mask)  # type: ignore[arg-type]
                self._masks[dimension] = masks  # type: ignore[assignment]

    # ------------------------------------------------------------------
    def dense(self) -> tuple[np.ndarray, list[tuple[URIRef, object]]]:
        """The full 0/1 matrix with (dimension, code) column labels.

        This is the representation printed as Table 2 of the paper.
        Only sensible for small inputs; intended for examples and tests.
        """
        columns: list[tuple[URIRef, object]] = []
        blocks: list[np.ndarray] = []
        for dimension in self.space.dimensions:
            codes = sorted(self.feature_index[dimension], key=lambda c: self.feature_index[dimension][c])
            columns.extend((dimension, code) for code in codes)
            blocks.append(self._bits(dimension))
        if not blocks:
            return np.zeros((len(self.space), 0), dtype=np.uint8), columns
        return np.concatenate(blocks, axis=1).astype(np.uint8), columns

    def packed_block(self, dimension: URIRef) -> np.ndarray:
        """The packed ``uint8`` block OM_i for one dimension.

        Rows are observations, bytes hold the reflexive
        ancestor-closure bits produced by ``np.packbits``.  This is
        the raw representation the cube-pair kernels
        (:mod:`repro.core.kernels`) slice; numpy backend only.
        """
        if self.backend != "numpy":
            raise AlgorithmError("packed blocks only exist on the numpy backend")
        return self._blocks[dimension]

    def _bits(self, dimension: URIRef) -> np.ndarray:
        width = len(self.feature_index[dimension])
        if self.backend == "numpy":
            return np.unpackbits(self._blocks[dimension], axis=1)[:, :width].astype(bool)
        masks = self._masks[dimension]
        out = np.zeros((len(masks), width), dtype=bool)
        for row, mask in enumerate(masks):
            for col in range(width):
                if mask >> col & 1:
                    out[row, col] = True
        return out

    # ------------------------------------------------------------------
    def containment_matrix(self, dimension: URIRef, chunk: int = 512) -> np.ndarray:
        """CM_i: ``CM[j, k]`` is True iff observation j contains k on
        this dimension (``bits(j) ⊆ bits(k)`` — the paper's
        ``o_j AND o_k == o_j`` conditional function)."""
        n = len(self.space)
        out = np.zeros((n, n), dtype=bool)
        if self.backend == "numpy":
            block = self._blocks[dimension]
            for start in range(0, n, chunk):
                stop = min(start + chunk, n)
                # (c, 1, bytes) AND (1, n, bytes) == (c, 1, bytes)
                piece = block[start:stop, None, :] & block[None, :, :]
                out[start:stop] = np.all(piece == block[start:stop, None, :], axis=2)
            return out
        masks = self._masks[dimension]
        for j, mj in enumerate(masks):
            row = out[j]
            for k, mk in enumerate(masks):
                if mj & mk == mj:
                    row[k] = True
        return out

    def compute_ocm(self, keep_cms: bool = True, chunk: int = 512) -> OCMResult:
        """Algorithm 1 ``computeOCM``: sum the per-dimension CMs.

        ``counts`` is kept as integers so downstream checks are exact
        (``count == |P|`` instead of ``float == 1.0``).
        """
        n = len(self.space)
        dims = self.space.dimensions
        counts = np.zeros((n, n), dtype=np.int32)
        cms: dict[URIRef, np.ndarray] | None = {} if keep_cms else None
        for dimension in dims:
            cm = self.containment_matrix(dimension, chunk=chunk)
            counts += cm
            if cms is not None:
                cms[dimension] = cm
        return OCMResult(counts, len(dims), cms, dims)

    # ------------------------------------------------------------------
    def pair_containment_count(self, a: int, b: int) -> int:
        """Dimensions on which ``a`` contains ``b`` (single-pair probe)."""
        count = 0
        if self.backend == "numpy":
            for dimension in self.space.dimensions:
                block = self._blocks[dimension]
                if np.array_equal(block[a] & block[b], block[a]):
                    count += 1
        else:
            for dimension in self.space.dimensions:
                masks = self._masks[dimension]
                if masks[a] & masks[b] == masks[a]:
                    count += 1
        return count

    def __repr__(self) -> str:
        return (
            f"OccurrenceMatrix(rows={len(self.space)}, dimensions={len(self.space.dimensions)}, "
            f"backend={self.backend!r})"
        )
