"""OLAP navigation over materialised relationships (Section 1).

The paper motivates relationship materialisation with OLAP-style
exploration: once containment links are known, *roll-up* (to containing
observations), *drill-down* (to contained observations) and measure
aggregation across remote cubes come for free.

:class:`CubeNavigator` wraps an :class:`ObservationSpace` plus its
:class:`RelationshipSet` and answers navigation queries; ``aggregate``
synthesises the measure value a roll-up would produce by folding the
values of the contained observations.
"""

from __future__ import annotations

from typing import Callable, Iterable

from repro.errors import AlgorithmError
from repro.core.results import RelationshipSet
from repro.core.space import ObservationSpace
from repro.rdf.terms import URIRef

__all__ = ["CubeNavigator", "Aggregation", "rollup_dataset"]

Aggregation = Callable[[Iterable[float]], float]


def _sum(values: Iterable[float]) -> float:
    return float(sum(values))


def _avg(values: Iterable[float]) -> float:
    items = list(values)
    if not items:
        raise AlgorithmError("cannot average an empty set of values")
    return float(sum(items)) / len(items)


_AGGREGATIONS: dict[str, Aggregation] = {
    "sum": _sum,
    "avg": _avg,
    "min": lambda values: float(min(values)),
    "max": lambda values: float(max(values)),
    "count": lambda values: float(len(list(values))),
}


class CubeNavigator:
    """Roll-up / drill-down navigation using containment links.

    ``measure_values`` maps ``(observation uri, measure uri)`` to the
    measured value; when built from a :class:`~repro.qb.model.CubeSpace`
    via :meth:`from_cubespace` the mapping is filled automatically.
    """

    def __init__(
        self,
        space: ObservationSpace,
        relationships: RelationshipSet,
        measure_values: dict[tuple[URIRef, URIRef], float] | None = None,
    ):
        self.space = space
        self.relationships = relationships
        self.measure_values = dict(measure_values or {})
        self._containers: dict[URIRef, set[URIRef]] = {}
        self._contained: dict[URIRef, set[URIRef]] = {}
        for container, contained in relationships.full:
            self._contained.setdefault(container, set()).add(contained)
            self._containers.setdefault(contained, set()).add(container)

    @classmethod
    def from_cubespace(cls, cube, relationships: RelationshipSet) -> "CubeNavigator":
        """Build from a cube space, extracting measure values."""
        space = ObservationSpace.from_cubespace(cube)
        values: dict[tuple[URIRef, URIRef], float] = {}
        for observation in cube.observations():
            for measure, value in observation.measures.items():
                try:
                    values[(observation.uri, measure)] = float(value)
                except (TypeError, ValueError):
                    continue  # non-numeric measures cannot aggregate
        return cls(space, relationships, values)

    # ------------------------------------------------------------------
    def roll_up(self, observation: URIRef) -> list[URIRef]:
        """Observations that fully contain ``observation`` (coarser)."""
        return sorted(self._containers.get(observation, ()))

    def drill_down(self, observation: URIRef) -> list[URIRef]:
        """Observations fully contained by ``observation`` (finer)."""
        return sorted(self._contained.get(observation, ()))

    def direct_drill_down(self, observation: URIRef) -> list[URIRef]:
        """Contained observations that are not below another contained one.

        These are the "children" a UI would offer as the next drill step.
        """
        below = self._contained.get(observation, set())
        indirect = set()
        for member in below:
            indirect |= self._contained.get(member, set()) & below
        return sorted(below - indirect)

    def complements(self, observation: URIRef) -> list[URIRef]:
        """Observations complementary to ``observation`` (side-by-side facts)."""
        out = []
        for a, b in self.relationships.complementary:
            if a == observation:
                out.append(b)
            elif b == observation:
                out.append(a)
        return sorted(out)

    def comparable_after_rollup(self, a: URIRef, b: URIRef) -> frozenset[URIRef]:
        """Dimensions to roll up so two partially-related observations
        become comparable (the complement of ``map_P``)."""
        dims = self.relationships.partial_dimensions(a, b)
        if not dims and (a, b) not in self.relationships.partial:
            raise AlgorithmError(f"{a} does not partially contain {b}")
        return frozenset(d for d in self.space.dimensions if d not in dims)

    # ------------------------------------------------------------------
    def aggregate(
        self,
        observation: URIRef,
        measure: URIRef,
        aggregation: str = "sum",
        direct_only: bool = True,
    ) -> float:
        """Fold the measure values of the contained observations.

        With ``direct_only`` (default) only the direct drill-down level
        is aggregated — the standard roll-up; otherwise every contained
        observation contributes (double-counting across levels is the
        caller's concern).
        """
        if aggregation not in _AGGREGATIONS:
            raise AlgorithmError(
                f"unknown aggregation {aggregation!r}; known: {sorted(_AGGREGATIONS)}"
            )
        members = (
            self.direct_drill_down(observation)
            if direct_only
            else self.drill_down(observation)
        )
        values = [
            self.measure_values[(member, measure)]
            for member in members
            if (member, measure) in self.measure_values
        ]
        if not values:
            raise AlgorithmError(
                f"no {measure.local_name()} values among observations contained by "
                f"{observation.local_name()}"
            )
        return _AGGREGATIONS[aggregation](values)


def rollup_dataset(
    cube,
    dataset_uri: URIRef,
    dimension: URIRef,
    to_level: int,
    aggregation: str = "sum",
    result_uri: URIRef | None = None,
):
    """Roll one dataset up a dimension hierarchy (classic OLAP roll-up).

    Every observation whose ``dimension`` code sits at or below
    ``to_level`` is mapped to its ancestor at that level; observations
    sharing all coordinates after the mapping are folded with
    ``aggregation`` per measure.  Observations already *coarser* than
    ``to_level`` are excluded (they are not part of the finer-grained
    data being aggregated).

    Returns a new :class:`~repro.qb.model.Dataset` (same schema) whose
    observations live at the requested level.
    """
    from repro.qb.model import Dataset, Observation

    if aggregation not in _AGGREGATIONS:
        raise AlgorithmError(
            f"unknown aggregation {aggregation!r}; known: {sorted(_AGGREGATIONS)}"
        )
    fold = _AGGREGATIONS[aggregation]
    dataset = cube.datasets.get(dataset_uri)
    if dataset is None:
        raise AlgorithmError(f"no dataset {dataset_uri} in the cube space")
    if dimension not in dataset.schema.dimensions:
        raise AlgorithmError(
            f"dataset {dataset_uri} has no dimension {dimension}"
        )
    hierarchy = cube.hierarchies[dimension]
    if not 0 <= to_level <= hierarchy.max_level:
        raise AlgorithmError(
            f"to_level must be within [0, {hierarchy.max_level}]"
        )

    def ancestor_at(code, level):
        path = hierarchy.path_to_root(code)  # [code ... root]
        # path[i] has level (len(path) - 1 - i)... not in general; use levels.
        for node in path:
            if hierarchy.level(node) == level:
                return node
        return None

    groups: dict[tuple, list[Observation]] = {}
    for observation in dataset.observations:
        code = observation.value(dimension)
        if code is None:
            code = hierarchy.root
        if hierarchy.level(code) < to_level:
            continue  # coarser than the target level
        target_code = ancestor_at(code, to_level)
        key_dims = dict(observation.dimensions)
        key_dims[dimension] = target_code
        key = tuple(sorted((str(d), str(c)) for d, c in key_dims.items()))
        groups.setdefault(key, []).append(observation)

    uri_base = result_uri if result_uri is not None else URIRef(
        f"{dataset_uri}/rollup/{dimension.local_name()}/L{to_level}"
    )
    rolled = Dataset(uri_base, dataset.schema, label=(dataset.label or "") + " (rolled up)")
    for index, (key, members) in enumerate(sorted(groups.items())):
        dims = dict(members[0].dimensions)
        dims[dimension] = ancestor_at(
            members[0].value(dimension) or hierarchy.root, to_level
        )
        measures = {}
        for measure in dataset.schema.measures:
            values = [
                float(member.measures[measure])
                for member in members
                if measure in member.measures
            ]
            if values:
                measures[measure] = fold(values)
        if not measures:
            continue
        rolled.add(
            Observation(URIRef(f"{uri_base}/obs/{index}"), uri_base, dims, measures)
        )
    return rolled
