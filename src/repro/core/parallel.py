"""Parallel cubeMasking (the paper's "distributed and parallel
contexts" future-work item, §6), hardened against worker failure.

The cube lattice gives a natural work partition: dominating cube pairs
are independent, so they can be scored in worker processes.  Each
worker receives the (pickled) observation space once via the pool
initializer, then processes ranges of a deterministic cube-pair order
and returns relationship deltas; the parent merges.

Because Python forks carry real overhead (the space is pickled into
each worker and relationship pairs are pickled back), this pays off
only on multi-core hosts with larger inputs — single-core machines and
small spaces are strictly slower, so ``compute_cubemask_parallel``
falls back to the sequential implementation below
``min_parallel_observations``.  The output is always identical to
:func:`repro.core.cubemask.compute_cubemask`.

Fault tolerance (the resilience layer's contract):

* a dead worker (``BrokenProcessPool``) is detected, the pool is
  respawned, and the interrupted ranges are retried with capped
  exponential backoff (``max_retries`` / ``retry_backoff``);
* each range can carry a wall-clock ``unit_timeout``; a hung worker
  abandons the pool and the range is retried;
* after repeated failures the computation *degrades gracefully*: the
  remaining ranges are scored sequentially in the parent with the same
  code path, so a flaky pool can never fail a run that sequential
  cubeMasking would finish (set ``fallback_sequential=False`` to get
  :class:`~repro.errors.WorkerCrashError` /
  :class:`~repro.errors.UnitTimeoutError` instead);
* ``on_unit_complete``/``completed_units`` let
  :class:`repro.core.runner.MaterializationRunner` checkpoint each
  range as it lands and skip ranges already durable in a checkpoint.
"""

from __future__ import annotations

import logging
import os
import time
from concurrent.futures import ProcessPoolExecutor
from concurrent.futures import TimeoutError as FutureTimeoutError
from concurrent.futures.process import BrokenProcessPool

from repro.errors import UnitTimeoutError, WorkerCrashError
from repro.core.cubemask import compute_cubemask
from repro.core.lattice import CubeLattice, dominates
from repro.core.results import RelationshipSet
from repro.core.space import ObservationSpace

__all__ = ["compute_cubemask_parallel", "build_cubemask_state", "score_range", "enumerate_unit_ranges"]

logger = logging.getLogger("repro.parallel")

# Worker-process globals, installed by _initializer.
_WORKER_STATE: dict = {}

_BACKOFF_CAP = 30.0


def _enumerate_pairs(cubes, want_partial: bool) -> list[tuple[int, int]]:
    """Deterministic candidate cube-pair order shared by all workers."""
    from repro.core.lattice import partially_dominates

    pairs: list[tuple[int, int]] = []
    for i, cube_a in enumerate(cubes):
        for j, cube_b in enumerate(cubes):
            if dominates(cube_a, cube_b) or (
                want_partial and partially_dominates(cube_a, cube_b)
            ):
                pairs.append((i, j))
    return pairs


def build_cubemask_state(space: ObservationSpace, targets: tuple[str, ...]) -> dict:
    """Shared scoring state for a fixed space + target set.

    Used both by pool workers (via the initializer) and in-process by
    the sequential degradation path and the materialisation runner —
    one code path, one deterministic cube-pair order.
    """
    lattice = CubeLattice(space)
    dimensions = space.dimensions
    ancestor_sets = [space.hierarchies[d]._ancestors for d in dimensions]
    unique: dict[frozenset, int] = {}
    assignment: list[int] = []
    for record in space.observations:
        assignment.append(unique.setdefault(record.measures, len(unique)))
    groups = list(unique)
    overlap = [[not gi.isdisjoint(gj) for gj in groups] for gi in groups]
    cubes = sorted(lattice.nodes)
    return dict(
        space=space,
        lattice=lattice,
        cubes=cubes,
        pairs=_enumerate_pairs(cubes, "partial" in targets),
        ancestor_sets=ancestor_sets,
        codes=[r.codes for r in space.observations],
        uris=[r.uri for r in space.observations],
        assignment=assignment,
        overlap=overlap,
        targets=frozenset(targets),
        k=len(dimensions),
        dimensions=dimensions,
    )


def enumerate_unit_ranges(total_pairs: int, unit_size: int) -> list[tuple[int, int, int]]:
    """``(unit_id, start, stop)`` ranges over the cube-pair order."""
    bounds = range(0, total_pairs, unit_size) if total_pairs else ()
    return [
        (index, start, min(start + unit_size, total_pairs))
        for index, start in enumerate(bounds)
    ]


def _initializer(space: ObservationSpace, targets: tuple[str, ...], fault_plan=None) -> None:
    _WORKER_STATE.clear()
    _WORKER_STATE.update(build_cubemask_state(space, targets))
    _WORKER_STATE["fault_plan"] = fault_plan


def _score_pairs(state: dict, pair_indices) -> tuple[list, list, list]:
    """Evaluate a slice of the shared cube-pair order."""
    lattice: CubeLattice = state["lattice"]
    cubes = state["cubes"]
    ancestor_sets = state["ancestor_sets"]
    codes = state["codes"]
    uris = state["uris"]
    assignment = state["assignment"]
    overlap = state["overlap"]
    targets = state["targets"]
    k = state["k"]

    want_full = "full" in targets
    want_compl = "complementary" in targets
    want_partial = "partial" in targets

    full_pairs = []
    compl_pairs = []
    partial_pairs = []
    for index_a, index_b in pair_indices:
        cube_a, cube_b = cubes[index_a], cubes[index_b]
        members_a = lattice.nodes[cube_a]
        members_b = lattice.nodes[cube_b]
        containing = dominates(cube_a, cube_b)
        same_cube = cube_a == cube_b
        for a in members_a:
            code_a = codes[a]
            for b in members_b:
                if a == b:
                    continue
                count = 0
                for position in range(k):
                    if code_a[position] in ancestor_sets[position][codes[b][position]]:
                        count += 1
                shared = overlap[assignment[a]][assignment[b]]
                if containing and count == k:
                    if want_full and shared:
                        full_pairs.append((uris[a], uris[b]))
                    if want_compl and same_cube and a < b and code_a == codes[b]:
                        compl_pairs.append((uris[a], uris[b]))
                elif want_partial and shared and 0 < count < k:
                    partial_pairs.append((uris[a], uris[b], count / k))
    return full_pairs, compl_pairs, partial_pairs


def score_range(state: dict, start: int, stop: int) -> RelationshipSet:
    """Score ``state['pairs'][start:stop]`` into a relationship delta."""
    full_pairs, compl_pairs, partial_pairs = _score_pairs(state, state["pairs"][start:stop])
    delta = RelationshipSet()
    for a, b in full_pairs:
        delta.add_full(a, b)
    for a, b in compl_pairs:
        delta.add_complementary(a, b)
    for a, b, degree in partial_pairs:
        delta.add_partial(a, b, degree=degree)
    return delta


def _execute_unit(descriptor: tuple[int, int, int]):
    """Worker entry point: fault hook, then score the range."""
    unit_id, start, stop = descriptor
    plan = _WORKER_STATE.get("fault_plan")
    if plan is not None:
        plan.before_unit(unit_id, in_worker=True)
    full_pairs, compl_pairs, partial_pairs = _score_pairs(
        _WORKER_STATE, _WORKER_STATE["pairs"][start:stop]
    )
    return unit_id, full_pairs, compl_pairs, partial_pairs


def _payload_delta(payload) -> RelationshipSet:
    """A worker payload as a relationship delta."""
    _, full_pairs, compl_pairs, partial_pairs = payload
    delta = RelationshipSet()
    for a, b in full_pairs:
        delta.add_full(a, b)
    for a, b in compl_pairs:
        delta.add_complementary(a, b)
    for a, b, degree in partial_pairs:
        delta.add_partial(a, b, degree=degree)
    return delta


def compute_cubemask_parallel(
    space: ObservationSpace,
    workers: int | None = None,
    collect_partial: bool = True,
    targets=None,
    min_parallel_observations: int = 512,
    batch_size: int = 256,
    unit_size: int | None = None,
    max_retries: int = 2,
    retry_backoff: float = 0.1,
    unit_timeout: float | None = None,
    fault_plan=None,
    on_unit_complete=None,
    completed_units=(),
    fallback_sequential: bool = True,
) -> RelationshipSet:
    """cubeMasking with cube-pair ranges scored in worker processes.

    Produces exactly the sequential result; falls back to the
    sequential implementation for small inputs where process startup
    would dominate.  See the module docstring for the fault-tolerance
    contract (``max_retries``, ``retry_backoff``, ``unit_timeout``,
    ``fallback_sequential``) and the checkpoint hooks
    (``unit_size``, ``on_unit_complete``, ``completed_units``).
    """
    from repro.core.baseline import normalize_targets

    resolved = tuple(sorted(normalize_targets(targets, collect_partial)))
    if len(space) < min_parallel_observations:
        return compute_cubemask(space, collect_partial=collect_partial, targets=resolved)

    lattice = CubeLattice(space)
    cubes = sorted(lattice.nodes)
    total_pairs = len(_enumerate_pairs(cubes, "partial" in resolved))

    worker_count = workers if workers is not None else max(1, (os.cpu_count() or 2) - 1)
    if unit_size is None:
        # A handful of ranges per worker balances skewed cube sizes
        # without paying per-batch IPC for thousands of tiny batches.
        unit_size = max(1, total_pairs // (worker_count * 8))
    done = set(completed_units)
    pending = [d for d in enumerate_unit_ranges(total_pairs, unit_size) if d[0] not in done]

    result = RelationshipSet()
    attempts: dict[int, int] = {d[0]: 0 for d in pending}

    def emit(unit_id: int, delta: RelationshipSet) -> None:
        result.merge(delta)
        if on_unit_complete is not None:
            on_unit_complete(unit_id, delta)

    def degrade(remaining) -> None:
        logger.warning(
            "degrading to sequential cubeMasking for %d remaining range(s)", len(remaining)
        )
        state = build_cubemask_state(space, resolved)
        for unit_id, start, stop in remaining:
            if fault_plan is not None:
                fault_plan.before_unit(unit_id, in_worker=False)
            emit(unit_id, score_range(state, start, stop))

    while pending:
        pool = ProcessPoolExecutor(
            max_workers=worker_count,
            initializer=_initializer,
            initargs=(space, resolved, fault_plan),
        )
        failure: tuple[tuple[int, int, int], BaseException, str] | None = None
        finished: set[int] = set()
        try:
            futures = [(pool.submit(_execute_unit, d), d) for d in pending]
            for future, descriptor in futures:
                try:
                    payload = future.result(timeout=unit_timeout)
                except FutureTimeoutError as exc:
                    failure = (descriptor, exc, "timeout")
                    break
                except (BrokenProcessPool, OSError) as exc:
                    failure = (descriptor, exc, "crash")
                    break
                except (KeyboardInterrupt, SystemExit):
                    raise
                except Exception as exc:
                    failure = (descriptor, exc, "error")
                    break
                finished.add(descriptor[0])
                emit(payload[0], _payload_delta(payload))
        finally:
            pool.shutdown(wait=failure is None, cancel_futures=True)

        if failure is None:
            break
        descriptor, error, kind = failure
        pending = [d for d in pending if d[0] not in finished]
        unit_id = descriptor[0]
        attempts[unit_id] += 1
        if attempts[unit_id] > max_retries:
            if fallback_sequential:
                degrade(pending)
                pending = []
                break
            if kind == "timeout":
                raise UnitTimeoutError(
                    "cube-pair range timed out", unit=unit_id, timeout=unit_timeout
                ) from error
            raise WorkerCrashError(
                f"cube-pair range failed permanently: {error}",
                unit=unit_id,
                attempts=attempts[unit_id],
            ) from error
        delay = min(retry_backoff * (2 ** (attempts[unit_id] - 1)), _BACKOFF_CAP)
        logger.warning(
            "worker failure (%s) on range %d, attempt %d/%d — respawning pool in %.2fs: %s",
            kind,
            unit_id,
            attempts[unit_id],
            max_retries + 1,
            delay,
            error,
        )
        if delay > 0:
            time.sleep(delay)
    return result
