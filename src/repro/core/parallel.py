"""Parallel cubeMasking (the paper's "distributed and parallel
contexts" future-work item, §6).

The cube lattice gives a natural work partition: dominating cube pairs
are independent, so they can be scored in worker processes.  Each
worker receives the (pickled) observation space once via the pool
initializer, then processes batches of cube-pair indices and returns
relationship pairs; the parent merges.

Because Python forks carry real overhead (the space is pickled into
each worker and relationship pairs are pickled back), this pays off
only on multi-core hosts with larger inputs — single-core machines and
small spaces are strictly slower, so ``compute_cubemask_parallel``
falls back to the sequential implementation below
``min_parallel_observations``.  The output is always identical to
:func:`repro.core.cubemask.compute_cubemask`.
"""

from __future__ import annotations

import os
from concurrent.futures import ProcessPoolExecutor

from repro.core.cubemask import compute_cubemask
from repro.core.lattice import CubeLattice, dominates
from repro.core.results import RelationshipSet
from repro.core.space import ObservationSpace

__all__ = ["compute_cubemask_parallel"]

# Worker-process globals, installed by _initializer.
_WORKER_STATE: dict = {}


def _enumerate_pairs(cubes, want_partial: bool) -> list[tuple[int, int]]:
    """Deterministic candidate cube-pair order shared by all workers."""
    from repro.core.lattice import partially_dominates

    pairs: list[tuple[int, int]] = []
    for i, cube_a in enumerate(cubes):
        for j, cube_b in enumerate(cubes):
            if dominates(cube_a, cube_b) or (
                want_partial and partially_dominates(cube_a, cube_b)
            ):
                pairs.append((i, j))
    return pairs


def _initializer(space: ObservationSpace, targets: tuple[str, ...]) -> None:
    lattice = CubeLattice(space)
    dimensions = space.dimensions
    ancestor_sets = [space.hierarchies[d]._ancestors for d in dimensions]
    unique: dict[frozenset, int] = {}
    assignment: list[int] = []
    for record in space.observations:
        assignment.append(unique.setdefault(record.measures, len(unique)))
    groups = list(unique)
    overlap = [[not gi.isdisjoint(gj) for gj in groups] for gi in groups]
    cubes = sorted(lattice.nodes)
    _WORKER_STATE.update(
        space=space,
        lattice=lattice,
        cubes=cubes,
        pairs=_enumerate_pairs(cubes, "partial" in targets),
        ancestor_sets=ancestor_sets,
        codes=[r.codes for r in space.observations],
        uris=[r.uri for r in space.observations],
        assignment=assignment,
        overlap=overlap,
        targets=frozenset(targets),
        k=len(dimensions),
        dimensions=dimensions,
    )


def _score_range(bounds: tuple[int, int]):
    """Worker: evaluate its slice of the shared cube-pair order."""
    state = _WORKER_STATE
    pair_indices = state["pairs"][bounds[0] : bounds[1]]
    lattice: CubeLattice = state["lattice"]
    cubes = state["cubes"]
    ancestor_sets = state["ancestor_sets"]
    codes = state["codes"]
    uris = state["uris"]
    assignment = state["assignment"]
    overlap = state["overlap"]
    targets = state["targets"]
    k = state["k"]
    dimensions = state["dimensions"]

    want_full = "full" in targets
    want_compl = "complementary" in targets
    want_partial = "partial" in targets

    full_pairs = []
    compl_pairs = []
    partial_pairs = []
    for index_a, index_b in pair_indices:
        cube_a, cube_b = cubes[index_a], cubes[index_b]
        members_a = lattice.nodes[cube_a]
        members_b = lattice.nodes[cube_b]
        containing = dominates(cube_a, cube_b)
        same_cube = cube_a == cube_b
        for a in members_a:
            code_a = codes[a]
            for b in members_b:
                if a == b:
                    continue
                count = 0
                for position in range(k):
                    if code_a[position] in ancestor_sets[position][codes[b][position]]:
                        count += 1
                shared = overlap[assignment[a]][assignment[b]]
                if containing and count == k:
                    if want_full and shared:
                        full_pairs.append((uris[a], uris[b]))
                    if want_compl and same_cube and a < b and code_a == codes[b]:
                        compl_pairs.append((uris[a], uris[b]))
                elif want_partial and shared and 0 < count < k:
                    partial_pairs.append((uris[a], uris[b], count / k))
    return full_pairs, compl_pairs, partial_pairs


def compute_cubemask_parallel(
    space: ObservationSpace,
    workers: int | None = None,
    collect_partial: bool = True,
    targets=None,
    min_parallel_observations: int = 512,
    batch_size: int = 256,
) -> RelationshipSet:
    """cubeMasking with cube-pair batches scored in worker processes.

    Produces exactly the sequential result; falls back to the
    sequential implementation for small inputs where process startup
    would dominate.
    """
    from repro.core.baseline import normalize_targets

    resolved = tuple(sorted(normalize_targets(targets, collect_partial)))
    if len(space) < min_parallel_observations:
        return compute_cubemask(space, collect_partial=collect_partial, targets=resolved)

    lattice = CubeLattice(space)
    cubes = sorted(lattice.nodes)
    total_pairs = len(_enumerate_pairs(cubes, "partial" in resolved))

    worker_count = workers if workers is not None else max(1, (os.cpu_count() or 2) - 1)
    # A handful of ranges per worker balances skewed cube sizes without
    # paying per-batch IPC for thousands of tiny batches.
    chunk = max(1, total_pairs // (worker_count * 8))
    ranges = [(start, min(start + chunk, total_pairs)) for start in range(0, total_pairs, chunk)]
    result = RelationshipSet()
    with ProcessPoolExecutor(
        max_workers=worker_count,
        initializer=_initializer,
        initargs=(space, resolved),
    ) as pool:
        for full_pairs, compl_pairs, partial_pairs in pool.map(_score_range, ranges):
            for a, b in full_pairs:
                result.add_full(a, b)
            for a, b in compl_pairs:
                result.add_complementary(a, b)
            for a, b, degree in partial_pairs:
                result.add_partial(a, b, degree=degree)
    return result
