"""Parallel cubeMasking (the paper's "distributed and parallel
contexts" future-work item, §6), hardened against worker failure.

The cube lattice gives a natural work partition: dominating cube pairs
are independent, so they can be scored in worker processes.  Instead
of pickling the observation space into every worker, the parent
publishes the kernel-plan arrays (packed ancestor-closure blocks,
code-id rows, measure-group tables, cube membership and the cube-pair
order) once in a :mod:`multiprocessing.shared_memory` segment; each
worker attaches read-only — the pool-initializer payload is the
segment name plus an O(metadata) layout dict, independent of the
observation count.  Workers batch contiguous same-cube-A runs of the
deterministic cube-pair order into single calls of the vectorised
kernel over the shm-attached plan arrays (or the tuple-at-a-time
fallback, per the ``kernel`` mode) and return *columnar*
observation-index arrays plus their kernel-counter delta; the parent
maps indices back to URIs (partial results stay columnar all the way
into :meth:`RelationshipSet.add_partial_block`), folds the worker
counters into the process-wide ``repro_kernel_*`` series, and merges.
Parallelism therefore *composes* with vectorisation: every worker
runs the same bitset kernel the sequential numpy path runs.  The
output is always identical to
:func:`repro.core.cubemask.compute_cubemask`.

Process startup still carries real overhead, so this pays off only on
multi-core hosts with larger inputs — small spaces fall back to the
sequential implementation below ``min_parallel_observations``.

Fault tolerance (the resilience layer's contract):

* a dead worker (``BrokenProcessPool``) is detected, the pool is
  respawned, and the interrupted ranges are retried with capped
  exponential backoff (``max_retries`` / ``retry_backoff``);
* each range can carry a wall-clock ``unit_timeout``; a hung worker
  abandons the pool and the range is retried;
* after repeated failures the computation *degrades gracefully*: the
  remaining ranges are scored sequentially in the parent with the same
  code path, so a flaky pool can never fail a run that sequential
  cubeMasking would finish (set ``fallback_sequential=False`` to get
  :class:`~repro.errors.WorkerCrashError` /
  :class:`~repro.errors.UnitTimeoutError` instead);
* if the shared-memory segment cannot be created at all, the whole run
  degrades to the sequential path rather than failing;
* ``on_unit_complete``/``completed_units`` let
  :class:`repro.core.runner.MaterializationRunner` checkpoint each
  range as it lands and skip ranges already durable in a checkpoint.

Shared-memory lifecycle: the parent owns the segment — it publishes
before spawning the first pool, keeps it alive across pool respawns,
and closes + unlinks it in a ``finally`` once every range has landed.
Workers only ever attach (see :func:`repro.core.kernels.attach_arrays`
for the crash-cleanup contract).
"""

from __future__ import annotations

import os
import time
from concurrent.futures import ProcessPoolExecutor
from concurrent.futures import TimeoutError as FutureTimeoutError
from concurrent.futures.process import BrokenProcessPool

import numpy as np

from repro.errors import UnitTimeoutError, WorkerCrashError
from repro.core import kernels as _kernels
from repro.core.cubemask import KERNEL_MODES, compute_cubemask
from repro.core.lattice import CubeLattice
from repro.core.results import RelationshipSet
from repro.core.space import ObservationSpace
from repro.errors import AlgorithmError
from repro.obs.logging import get_logger
from repro.obs.spanstore import SPAN_DIR_ENV
from repro.obs.tracing import (
    current_span_id,
    current_trace_id,
    set_parent_span_id,
    set_trace_id,
    trace,
)

__all__ = [
    "compute_cubemask_parallel",
    "build_cubemask_state",
    "prepare_shared_fanout",
    "score_range",
    "enumerate_unit_ranges",
]

logger = get_logger("repro.parallel")

# Registry metrics resolved once per process; see docs/observability.md.
_METRICS = None


def _metrics():
    global _METRICS
    if _METRICS is None:
        from repro.obs.registry import get_registry

        registry = get_registry()
        _METRICS = {
            "respawns": registry.counter(
                "repro_parallel_pool_respawns_total",
                "Process pools respawned after a worker failure.",
            ),
            "failures": registry.counter(
                "repro_parallel_worker_failures_total",
                "Worker failures by kind (timeout, crash, error).",
                labelnames=("kind",),
            ),
            "degraded": registry.counter(
                "repro_parallel_degraded_ranges_total",
                "Cube-pair ranges scored sequentially after pool degradation.",
            ),
            "units": registry.counter(
                "repro_parallel_units_total",
                "Cube-pair ranges completed by pool workers.",
            ),
            "kernel_pairs": registry.counter(
                "repro_parallel_kernel_pairs_total",
                "Member pairs scored by the vectorised kernel inside pool workers.",
            ),
        }
    return _METRICS

# Worker-process globals, installed by _initializer.
_WORKER_STATE: dict = {}

_BACKOFF_CAP = 30.0

#: Arrays of ``build_cubemask_state`` published into the shared
#: segment (everything a worker needs that scales with the input).
_SHARED_ARRAYS = (
    "packed",
    "code_ids",
    "code_keys",
    "assignment",
    "group_overlap",
    "levels",
    "anc_codes",
    "signatures",
    "members",
    "cube_offsets",
    "pairs",
)


def _enumerate_pairs(signatures: np.ndarray, want_partial: bool, chunk: int = 256) -> np.ndarray:
    """Deterministic candidate cube-pair order shared by all workers.

    Row-major ``(i, j)`` over the sorted cubes, keeping pairs where
    cube i dominates cube j (pointwise ``<=``) or — when partial
    containment is requested — dominates on at least one dimension;
    exactly the order the per-pair loop used to produce, computed as a
    chunked signature broadcast.
    """
    count = len(signatures)
    if count == 0:
        return np.zeros((0, 2), dtype=np.int32)
    out: list[np.ndarray] = []
    for start in range(0, count, chunk):
        le = signatures[start : start + chunk, None, :] <= signatures[None, :, :]
        admissible = le.all(axis=2)
        if want_partial:
            admissible |= le.any(axis=2)
        hits = np.argwhere(admissible)
        hits[:, 0] += start
        out.append(hits)
    return np.ascontiguousarray(np.concatenate(out), dtype=np.int32)


def build_cubemask_state(
    space: ObservationSpace,
    targets: tuple[str, ...],
    kernel: str = "auto",
    kernel_threshold: int | None = None,
    collect_partial_dimensions: bool = False,
) -> dict:
    """Shared scoring state for a fixed space + target set.

    Used by the shared-memory publication, in-process by the
    sequential degradation path, and by the materialisation runner —
    one code path, one deterministic cube-pair order.  The cube-pair
    order mirrors :func:`~repro.core.cubemask.compute_cubemask`'s pass
    structure: pairs its sweeps would prune (measure-disjoint cubes on
    partial runs, off-diagonal pairs on complementarity-only runs) are
    filtered out here, and the resulting pruning breakdown is
    precomputed under ``state["counts"]`` so parallel stats stay
    path-independent.
    """
    from repro.core.cubemask import STAT_KEYS

    if kernel not in KERNEL_MODES:
        raise AlgorithmError(f"unknown kernel mode {kernel!r}; expected one of {KERNEL_MODES}")
    lattice = CubeLattice(space)
    cubes = sorted(lattice.nodes)
    k = len(space.dimensions)
    signatures = np.asarray(cubes, dtype=np.int16).reshape(len(cubes), k)
    member_lists = [lattice.nodes[cube] for cube in cubes]
    cube_offsets = np.zeros(len(cubes) + 1, dtype=np.int64)
    if member_lists:
        cube_offsets[1:] = np.cumsum([len(members) for members in member_lists])
    members = (
        np.concatenate([np.asarray(m, dtype=np.int32) for m in member_lists])
        if member_lists
        else np.zeros(0, dtype=np.int32)
    )
    plan = _kernels.build_kernel_plan(
        space, collect_partial_dimensions=collect_partial_dimensions
    )
    want_full = "full" in targets
    want_partial = "partial" in targets
    pairs = _enumerate_pairs(signatures, want_partial)

    counts = {key: 0 for key in STAT_KEYS}
    counts["cubes"] = len(cubes)
    sizes = np.diff(cube_offsets)
    index_a, index_b = pairs[:, 0], pairs[:, 1]
    la, lb = sizes[index_a], sizes[index_b]
    same = index_a == index_b
    keep = None
    if want_partial and k >= 1:
        # Cube-level measure prefilter, mirroring the fused sweep: a
        # pair survives when some member measure-groups overlap (always
        # true for same-cube pairs — measure sets are non-empty, so
        # complementarity is never lost).
        group_count = plan.group_overlap.shape[0]
        cube_group = np.zeros((len(cubes), group_count), dtype=np.int32)
        for position, member_list in enumerate(member_lists):
            if member_list:
                rows = np.asarray(member_list, dtype=np.int64)
                cube_group[position, plan.assignment[rows]] = 1
        # keep[p] = any overlap between cube A's and cube B's groups,
        # as a per-pair row dot against the overlap-reachable groups —
        # no |cubes|² share matrix is ever materialised.
        reach = cube_group @ plan.group_overlap.astype(np.int32)
        keep = np.einsum("ij,ij->i", reach[index_a], cube_group[index_b]) > 0
        counts["pruned_cube_pairs"] = int((~keep).sum())
        counts["pruned_comparisons"] = int((la * lb)[~keep].sum())
    elif not want_full and len(pairs):
        # Complementarity only: it lives inside one cube, so
        # off-diagonal dominating pairs cannot produce anything (the
        # prefetched sequential pass never visits them either).
        keep = same
    if keep is not None:
        pairs = np.ascontiguousarray(pairs[keep])
        la, lb, same = la[keep], lb[keep], same[keep]
    diagonal = np.where(same, la, 0)
    counts["cube_pairs"] = len(pairs)
    counts["instance_comparisons"] = int((la * lb - diagonal).sum())
    counts["pruned_comparisons"] += int(diagonal.sum())
    return dict(
        plan=plan,
        packed=plan.packed,
        code_ids=plan.code_ids,
        code_keys=plan.code_keys,
        assignment=plan.assignment,
        group_overlap=plan.group_overlap,
        levels=plan.levels,
        anc_codes=plan.anc_codes,
        signatures=signatures,
        members=members,
        cube_offsets=cube_offsets,
        pairs=pairs,
        targets=frozenset(targets),
        k=k,
        dimensions=space.dimensions,
        kernel=kernel,
        kernel_threshold=(
            _kernels.DEFAULT_KERNEL_THRESHOLD if kernel_threshold is None else kernel_threshold
        ),
        collect_partial_dimensions=collect_partial_dimensions,
        counts=counts,
        uris=[record.uri for record in space.observations],
    )


def prepare_shared_fanout(state: dict):
    """Publish a state's arrays; returns ``(segment, initializer_meta)``.

    ``initializer_meta`` is everything a worker needs besides the
    segment name — the array layout plus O(k) plan metadata — so the
    per-worker payload does not scale with the observation count.
    """
    segment, layout = _kernels.publish_arrays(
        {name: state[name] for name in _SHARED_ARRAYS}
    )
    meta = dict(
        layout=layout,
        block_slices=state["plan"].block_slices,
        level_offsets=state["plan"].level_offsets,
        dimensions=state["dimensions"],
        targets=tuple(sorted(state["targets"])),
        k=state["k"],
        kernel=state["kernel"],
        kernel_threshold=state["kernel_threshold"],
        collect_partial_dimensions=state.get("collect_partial_dimensions", False),
        # Workers inherit the parent's trace ID so their log records
        # (and any spans they open) correlate with the run, plus the
        # parent's open span ID so worker-side spans parent onto the
        # coordinating span across the process boundary — one
        # assembled tree per compute run.
        trace_id=current_trace_id(),
        parent_span_id=current_span_id(),
        span_dir=os.environ.get(SPAN_DIR_ENV) or None,
    )
    return segment, meta


def enumerate_unit_ranges(total_pairs: int, unit_size: int) -> list[tuple[int, int, int]]:
    """``(unit_id, start, stop)`` ranges over the cube-pair order."""
    bounds = range(0, total_pairs, unit_size) if total_pairs else ()
    return [
        (index, start, min(start + unit_size, total_pairs))
        for index, start in enumerate(bounds)
    ]


def _initializer(segment_name: str, meta: dict, fault_plan=None) -> None:
    """Worker entry: attach to the published arrays zero-copy."""
    from repro.resilience.faults import inject

    inject("worker.start")
    set_trace_id(meta.get("trace_id"))
    set_parent_span_id(meta.get("parent_span_id"))
    if meta.get("span_dir"):
        # Workers persist their own per-PID JSONL span ring next to
        # the parent's, so `repro trace --dir` sees the whole run.
        from repro.obs.spanstore import install_span_store

        install_span_store(meta["span_dir"])
    segment, views = _kernels.attach_arrays(segment_name, meta["layout"])
    plan = _kernels.KernelPlan(
        dimensions=meta["dimensions"],
        packed=views["packed"],
        block_slices=meta["block_slices"],
        code_ids=views["code_ids"],
        code_keys=views["code_keys"],
        assignment=views["assignment"],
        group_overlap=views["group_overlap"],
        levels=views["levels"],
        anc_codes=views["anc_codes"],
        level_offsets=meta["level_offsets"],
    )
    _WORKER_STATE.clear()
    _WORKER_STATE.update(
        # the segment reference keeps the mapping alive for the views
        segment=segment,
        plan=plan,
        signatures=views["signatures"],
        members=views["members"],
        cube_offsets=views["cube_offsets"],
        pairs=views["pairs"],
        targets=frozenset(meta["targets"]),
        k=meta["k"],
        kernel=meta["kernel"],
        kernel_threshold=meta["kernel_threshold"],
        collect_partial_dimensions=meta.get("collect_partial_dimensions", False),
        fault_plan=fault_plan,
    )


def _empty_payload(collect_masks: bool) -> dict:
    return dict(
        full_a=_kernels._EMPTY_IDX,
        full_b=_kernels._EMPTY_IDX,
        compl_a=_kernels._EMPTY_IDX,
        compl_b=_kernels._EMPTY_IDX,
        partial_a=_kernels._EMPTY_IDX,
        partial_b=_kernels._EMPTY_IDX,
        partial_counts=_kernels._EMPTY_COUNTS,
        partial_masks=_kernels._EMPTY_MASKS if collect_masks else None,
        counters={"kernel_calls": 0, "kernel_pairs": 0, "kernel_ns": 0},
    )


def _score_pairs(state: dict, pair_rows) -> dict:
    """Evaluate a slice of the shared cube-pair order.

    Returns a *columnar* payload of observation-index arrays
    (``full_a``/``full_b``, ``compl_a``/``compl_b``,
    ``partial_a``/``partial_b``/``partial_counts`` and — when
    partial-dimension collection is on — ``partial_masks``) plus the
    kernel-counter delta the slice produced, so worker results stay
    integer-sized and the parent can fold counters without guessing.

    Contiguous same-cube-A runs of the deterministic pair order are
    batched into (at most) two kernel calls each — a *dominated* batch
    (full/complementarity possible) and a *sideways* batch (partial
    only) — exactly mirroring the sequential fused sweep, so every
    member pair goes through the same bitset pass it would take
    sequentially.
    """
    plan: _kernels.KernelPlan = state["plan"]
    signatures = state["signatures"]
    members = state["members"]
    cube_offsets = state["cube_offsets"]
    targets = state["targets"]
    k = state["k"]
    kernel = state["kernel"]
    threshold = state["kernel_threshold"]
    collect_masks = bool(state.get("collect_partial_dimensions")) and k <= _kernels.DIM_MASK_LIMIT

    want_full = "full" in targets
    want_compl = "complementary" in targets
    want_partial = "partial" in targets

    pair_rows = np.asarray(pair_rows)
    if pair_rows.size == 0:
        return _empty_payload(collect_masks)
    before = _kernels.kernel_counters()

    parts: dict[str, list] = {name: [] for name in (
        "full_a", "full_b", "compl_a", "compl_b",
        "partial_a", "partial_b", "partial_counts", "partial_masks",
    )}
    # Python-fallback accumulators, converted to arrays once at the end.
    py: dict[str, list] = {name: [] for name in parts}

    packed = plan.packed
    code_ids = plan.code_ids
    assignment = plan.assignment
    group_overlap = plan.group_overlap
    block_slices = plan.block_slices

    def scan_python(rows_a, rows_b, containing: bool) -> None:
        # Tuple-at-a-time fallback over the same packed representation.
        for a in rows_a:
            row_a = packed[a]
            for b in rows_b:
                if a == b:
                    continue
                count = 0
                mask = 0
                for position, (lo, hi) in enumerate(block_slices):
                    piece = row_a[lo:hi]
                    if ((piece & packed[b, lo:hi]) == piece).all():
                        count += 1
                        mask |= 1 << position
                shared = group_overlap[assignment[a], assignment[b]]
                if containing and count == k:
                    if want_full and shared:
                        py["full_a"].append(int(a))
                        py["full_b"].append(int(b))
                    if want_compl and a < b and (code_ids[a] == code_ids[b]).all():
                        py["compl_a"].append(int(a))
                        py["compl_b"].append(int(b))
                elif want_partial and shared and 0 < count < k:
                    py["partial_a"].append(int(a))
                    py["partial_b"].append(int(b))
                    py["partial_counts"].append(count)
                    if collect_masks:
                        py["partial_masks"].append(mask)

    # Group the (sorted, row-major) slice into contiguous same-cube-A
    # runs; each run becomes at most two batched kernel calls.
    column_a = pair_rows[:, 0]
    run_bounds = np.flatnonzero(np.diff(column_a)) + 1
    run_starts = np.concatenate(([0], run_bounds))
    partner_groups = np.split(pair_rows[:, 1], run_bounds)
    split_batches = want_full or want_compl
    for start, partners in zip(run_starts, partner_groups):
        index_a = int(column_a[start])
        rows_a = members[cube_offsets[index_a] : cube_offsets[index_a + 1]]
        la = len(rows_a)
        if split_batches:
            dominated = (signatures[index_a][None, :] <= signatures[partners]).all(axis=1)
            batches = ((partners[dominated], True), (partners[~dominated], False))
        else:
            batches = ((partners, False),)
        for batch, containing in batches:
            if len(batch) == 0:
                continue
            rows_b = (
                members[cube_offsets[batch[0]] : cube_offsets[batch[0] + 1]]
                if len(batch) == 1
                else np.concatenate(
                    [members[cube_offsets[p] : cube_offsets[p + 1]] for p in batch]
                )
            )
            total = len(rows_b)
            use_kernel = kernel == "numpy" or (kernel == "auto" and la * total >= threshold)
            if use_kernel:
                # ``same_cube=containing`` batches the complementarity
                # check safely across cube boundaries: equal code
                # vectors imply equal signatures, so it can only fire
                # inside cube A itself.
                block = _kernels.evaluate_pair_block(
                    plan,
                    rows_a,
                    rows_b,
                    containing=containing,
                    same_cube=containing,
                    want_full=want_full,
                    want_compl=want_compl,
                    want_partial=want_partial,
                    collect_partial_dimensions=collect_masks,
                )
                parts["full_a"].append(block.full_a)
                parts["full_b"].append(block.full_b)
                parts["compl_a"].append(block.compl_a)
                parts["compl_b"].append(block.compl_b)
                parts["partial_a"].append(block.partial_a)
                parts["partial_b"].append(block.partial_b)
                parts["partial_counts"].append(block.partial_counts)
                if collect_masks:
                    parts["partial_masks"].append(block.partial_masks)
            else:
                scan_python(rows_a, rows_b, containing)

    for name, dtype in (
        ("full_a", np.int64),
        ("full_b", np.int64),
        ("compl_a", np.int64),
        ("compl_b", np.int64),
        ("partial_a", np.int64),
        ("partial_b", np.int64),
        ("partial_counts", np.int32),
        ("partial_masks", np.uint64),
    ):
        if py[name]:
            parts[name].append(np.asarray(py[name], dtype=dtype))
    after = _kernels.kernel_counters()
    return dict(
        full_a=_kernels._cat(parts["full_a"], _kernels._EMPTY_IDX),
        full_b=_kernels._cat(parts["full_b"], _kernels._EMPTY_IDX),
        compl_a=_kernels._cat(parts["compl_a"], _kernels._EMPTY_IDX),
        compl_b=_kernels._cat(parts["compl_b"], _kernels._EMPTY_IDX),
        partial_a=_kernels._cat(parts["partial_a"], _kernels._EMPTY_IDX),
        partial_b=_kernels._cat(parts["partial_b"], _kernels._EMPTY_IDX),
        partial_counts=_kernels._cat(parts["partial_counts"], _kernels._EMPTY_COUNTS),
        partial_masks=(
            _kernels._cat(parts["partial_masks"], _kernels._EMPTY_MASKS)
            if collect_masks
            else None
        ),
        counters={key: after[key] - before[key] for key in before},
    )


def _payload_to_delta(uris, k: int, dimensions, payload: dict) -> RelationshipSet:
    """Map a columnar worker payload back to a URI-level delta.

    Full/complementary pairs are few and materialise eagerly; the
    (potentially huge) partial block stays columnar all the way into
    :meth:`RelationshipSet.add_partial_block`.
    """
    delta = RelationshipSet()
    if payload["full_a"].size:
        delta.full.update(
            (uris[a], uris[b])
            for a, b in zip(payload["full_a"].tolist(), payload["full_b"].tolist())
        )
    for a, b in zip(payload["compl_a"].tolist(), payload["compl_b"].tolist()):
        delta.add_complementary(uris[a], uris[b])
    masks = payload.get("partial_masks")
    delta.add_partial_block(
        uris,
        payload["partial_a"],
        payload["partial_b"],
        payload["partial_counts"],
        k,
        masks,
        dimensions if masks is not None else None,
    )
    return delta


def score_range(state: dict, start: int, stop: int) -> RelationshipSet:
    """Score ``state['pairs'][start:stop]`` into a relationship delta."""
    payload = _score_pairs(state, state["pairs"][start:stop])
    return _payload_to_delta(state["uris"], state["k"], state["dimensions"], payload)


def _execute_unit(descriptor: tuple[int, int, int]):
    """Worker entry point: fault hook, then score the range."""
    unit_id, start, stop = descriptor
    plan = _WORKER_STATE.get("fault_plan")
    if plan is not None:
        plan.before_unit(unit_id, in_worker=True)
    payload = _score_pairs(_WORKER_STATE, _WORKER_STATE["pairs"][start:stop])
    return unit_id, payload


def compute_cubemask_parallel(
    space: ObservationSpace,
    workers: int | None = None,
    collect_partial: bool = True,
    collect_partial_dimensions: bool = False,
    targets=None,
    min_parallel_observations: int = 512,
    batch_size: int = 256,
    unit_size: int | None = None,
    max_retries: int = 2,
    retry_backoff: float = 0.1,
    unit_timeout: float | None = None,
    fault_plan=None,
    on_unit_complete=None,
    completed_units=(),
    fallback_sequential: bool = True,
    kernel: str = "auto",
    kernel_threshold: int | None = None,
    stats: dict | None = None,
) -> RelationshipSet:
    """cubeMasking with cube-pair ranges scored in worker processes.

    Produces exactly the sequential result; falls back to the
    sequential implementation for small inputs where process startup
    would dominate.  See the module docstring for the zero-copy
    fan-out, the fault-tolerance contract (``max_retries``,
    ``retry_backoff``, ``unit_timeout``, ``fallback_sequential``) and
    the checkpoint hooks (``unit_size``, ``on_unit_complete``,
    ``completed_units``).  ``kernel``/``kernel_threshold`` select the
    per-cube-pair instance-check path exactly as in
    :func:`~repro.core.cubemask.compute_cubemask`; pass a dict as
    ``stats`` to receive the same counter breakdown, with
    ``kernel_pairs``/``kernel_ns`` merged from worker deltas.
    """
    with trace("parallel.compute", observations=len(space)):
        return _compute_cubemask_parallel(
            space,
            workers=workers,
            collect_partial=collect_partial,
            collect_partial_dimensions=collect_partial_dimensions,
            targets=targets,
            min_parallel_observations=min_parallel_observations,
            batch_size=batch_size,
            unit_size=unit_size,
            max_retries=max_retries,
            retry_backoff=retry_backoff,
            unit_timeout=unit_timeout,
            fault_plan=fault_plan,
            on_unit_complete=on_unit_complete,
            completed_units=completed_units,
            fallback_sequential=fallback_sequential,
            kernel=kernel,
            kernel_threshold=kernel_threshold,
            stats=stats,
        )


def _compute_cubemask_parallel(
    space: ObservationSpace,
    workers: int | None = None,
    collect_partial: bool = True,
    collect_partial_dimensions: bool = False,
    targets=None,
    min_parallel_observations: int = 512,
    batch_size: int = 256,
    unit_size: int | None = None,
    max_retries: int = 2,
    retry_backoff: float = 0.1,
    unit_timeout: float | None = None,
    fault_plan=None,
    on_unit_complete=None,
    completed_units=(),
    fallback_sequential: bool = True,
    kernel: str = "auto",
    kernel_threshold: int | None = None,
    stats: dict | None = None,
) -> RelationshipSet:
    from repro.core.baseline import normalize_targets
    from repro.core.cubemask import _flush_counts

    resolved = tuple(sorted(normalize_targets(targets, collect_partial)))
    if collect_partial_dimensions and len(space.dimensions) > _kernels.DIM_MASK_LIMIT:
        # Partial-dimension bitmasks ride in a single word; wider buses
        # keep the sequential path's tuple-at-a-time extraction.
        return compute_cubemask(
            space, collect_partial=collect_partial,
            collect_partial_dimensions=collect_partial_dimensions,
            targets=resolved, kernel=kernel,
            kernel_threshold=kernel_threshold, stats=stats,
        )
    if len(space) < min_parallel_observations:
        return compute_cubemask(
            space, collect_partial=collect_partial,
            collect_partial_dimensions=collect_partial_dimensions,
            targets=resolved, kernel=kernel,
            kernel_threshold=kernel_threshold, stats=stats,
        )

    state = build_cubemask_state(
        space, resolved, kernel=kernel, kernel_threshold=kernel_threshold,
        collect_partial_dimensions=collect_partial_dimensions,
    )
    total_pairs = len(state["pairs"])
    counts = dict(state["counts"])

    worker_count = workers if workers is not None else max(1, (os.cpu_count() or 2) - 1)
    if unit_size is None:
        # A handful of ranges per worker balances skewed cube sizes
        # without paying per-batch IPC for thousands of tiny batches.
        unit_size = max(1, total_pairs // (worker_count * 8))
    done = set(completed_units)
    pending = [d for d in enumerate_unit_ranges(total_pairs, unit_size) if d[0] not in done]

    result = RelationshipSet()
    attempts: dict[int, int] = {d[0]: 0 for d in pending}
    uris = state["uris"]
    k = state["k"]
    dimensions = state["dimensions"]

    def emit(unit_id: int, delta: RelationshipSet) -> None:
        result.merge(delta)
        if on_unit_complete is not None:
            on_unit_complete(unit_id, delta)

    def fold_counters(delta: dict, in_parent: bool) -> None:
        # Worker counters died with the worker process; fold the delta
        # into this process's repro_kernel_* series.  Parent-scored
        # ranges already recorded themselves — only the stats breakdown
        # needs the numbers.
        if not in_parent:
            _kernels.merge_counters(delta)
            if delta.get("kernel_pairs"):
                _metrics()["kernel_pairs"].inc(delta["kernel_pairs"])
        counts["kernel_pairs"] += int(delta.get("kernel_pairs", 0))
        counts["kernel_ns"] += int(delta.get("kernel_ns", 0))

    def degrade(remaining) -> None:
        _metrics()["degraded"].inc(len(remaining))
        logger.warning(
            "degrading to sequential cubeMasking for %d remaining range(s)",
            len(remaining),
            fields={"ranges": len(remaining)},
        )
        for unit_id, start, stop in remaining:
            if fault_plan is not None:
                fault_plan.before_unit(unit_id, in_worker=False)
            payload = _score_pairs(state, state["pairs"][start:stop])
            fold_counters(payload["counters"], in_parent=True)
            emit(unit_id, _payload_to_delta(uris, k, dimensions, payload))

    def finish() -> RelationshipSet:
        _flush_counts(counts)
        if stats is not None:
            stats.update(counts)
        return result

    try:
        with trace("parallel.publish", pairs=total_pairs):
            segment, meta = prepare_shared_fanout(state)
    except OSError as exc:
        logger.warning(
            "shared-memory publication failed (%s) — scoring %d range(s) sequentially",
            exc,
            len(pending),
        )
        degrade(pending)
        return finish()

    try:
        while pending:
            pool = ProcessPoolExecutor(
                max_workers=worker_count,
                initializer=_initializer,
                initargs=(segment.name, meta, fault_plan),
            )
            failure: tuple[tuple[int, int, int], BaseException, str] | None = None
            finished: set[int] = set()
            try:
                futures = [(pool.submit(_execute_unit, d), d) for d in pending]
                for future, descriptor in futures:
                    try:
                        payload = future.result(timeout=unit_timeout)
                    except FutureTimeoutError as exc:
                        failure = (descriptor, exc, "timeout")
                        break
                    except (BrokenProcessPool, OSError) as exc:
                        failure = (descriptor, exc, "crash")
                        break
                    except (KeyboardInterrupt, SystemExit):
                        raise
                    except Exception as exc:
                        failure = (descriptor, exc, "error")
                        break
                    finished.add(descriptor[0])
                    _metrics()["units"].inc()
                    unit_id, unit_payload = payload
                    fold_counters(unit_payload["counters"], in_parent=False)
                    emit(unit_id, _payload_to_delta(uris, k, dimensions, unit_payload))
            finally:
                pool.shutdown(wait=failure is None, cancel_futures=True)

            if failure is None:
                break
            descriptor, error, kind = failure
            _metrics()["failures"].inc(kind=kind)
            pending = [d for d in pending if d[0] not in finished]
            unit_id = descriptor[0]
            attempts[unit_id] += 1
            if attempts[unit_id] > max_retries:
                if fallback_sequential:
                    degrade(pending)
                    pending = []
                    break
                if kind == "timeout":
                    raise UnitTimeoutError(
                        "cube-pair range timed out", unit=unit_id, timeout=unit_timeout
                    ) from error
                raise WorkerCrashError(
                    f"cube-pair range failed permanently: {error}",
                    unit=unit_id,
                    attempts=attempts[unit_id],
                ) from error
            delay = min(retry_backoff * (2 ** (attempts[unit_id] - 1)), _BACKOFF_CAP)
            _metrics()["respawns"].inc()
            logger.warning(
                "worker failure (%s) on range %d, attempt %d/%d — respawning pool in %.2fs: %s",
                kind,
                unit_id,
                attempts[unit_id],
                max_retries + 1,
                delay,
                error,
                fields={"kind": kind, "unit": unit_id, "attempt": attempts[unit_id]},
            )
            if delay > 0:
                time.sleep(delay)
    finally:
        segment.close()
        try:
            segment.unlink()
        except FileNotFoundError:
            pass
    return finish()
