"""Parallel cubeMasking (the paper's "distributed and parallel
contexts" future-work item, §6), hardened against worker failure.

The cube lattice gives a natural work partition: dominating cube pairs
are independent, so they can be scored in worker processes.  Instead
of pickling the observation space into every worker, the parent
publishes the kernel-plan arrays (packed ancestor-closure blocks,
code-id rows, measure-group tables, cube membership and the cube-pair
order) once in a :mod:`multiprocessing.shared_memory` segment; each
worker attaches read-only — the pool-initializer payload is the
segment name plus an O(metadata) layout dict, independent of the
observation count.  Workers score ranges of the deterministic
cube-pair order with the vectorised kernels of
:mod:`repro.core.kernels` (or the tuple-at-a-time fallback, per the
``kernel`` mode) and return observation-index pairs; the parent maps
indices back to URIs and merges.  The output is always identical to
:func:`repro.core.cubemask.compute_cubemask`.

Process startup still carries real overhead, so this pays off only on
multi-core hosts with larger inputs — small spaces fall back to the
sequential implementation below ``min_parallel_observations``.

Fault tolerance (the resilience layer's contract):

* a dead worker (``BrokenProcessPool``) is detected, the pool is
  respawned, and the interrupted ranges are retried with capped
  exponential backoff (``max_retries`` / ``retry_backoff``);
* each range can carry a wall-clock ``unit_timeout``; a hung worker
  abandons the pool and the range is retried;
* after repeated failures the computation *degrades gracefully*: the
  remaining ranges are scored sequentially in the parent with the same
  code path, so a flaky pool can never fail a run that sequential
  cubeMasking would finish (set ``fallback_sequential=False`` to get
  :class:`~repro.errors.WorkerCrashError` /
  :class:`~repro.errors.UnitTimeoutError` instead);
* if the shared-memory segment cannot be created at all, the whole run
  degrades to the sequential path rather than failing;
* ``on_unit_complete``/``completed_units`` let
  :class:`repro.core.runner.MaterializationRunner` checkpoint each
  range as it lands and skip ranges already durable in a checkpoint.

Shared-memory lifecycle: the parent owns the segment — it publishes
before spawning the first pool, keeps it alive across pool respawns,
and closes + unlinks it in a ``finally`` once every range has landed.
Workers only ever attach (see :func:`repro.core.kernels.attach_arrays`
for the crash-cleanup contract).
"""

from __future__ import annotations

import os
import time
from concurrent.futures import ProcessPoolExecutor
from concurrent.futures import TimeoutError as FutureTimeoutError
from concurrent.futures.process import BrokenProcessPool

import numpy as np

from repro.errors import UnitTimeoutError, WorkerCrashError
from repro.core import kernels as _kernels
from repro.core.cubemask import KERNEL_MODES, compute_cubemask
from repro.core.lattice import CubeLattice
from repro.core.results import RelationshipSet
from repro.core.space import ObservationSpace
from repro.errors import AlgorithmError
from repro.obs.logging import get_logger
from repro.obs.tracing import current_trace_id, set_trace_id, trace

__all__ = [
    "compute_cubemask_parallel",
    "build_cubemask_state",
    "prepare_shared_fanout",
    "score_range",
    "enumerate_unit_ranges",
]

logger = get_logger("repro.parallel")

# Registry metrics resolved once per process; see docs/observability.md.
_METRICS = None


def _metrics():
    global _METRICS
    if _METRICS is None:
        from repro.obs.registry import get_registry

        registry = get_registry()
        _METRICS = {
            "respawns": registry.counter(
                "repro_parallel_pool_respawns_total",
                "Process pools respawned after a worker failure.",
            ),
            "failures": registry.counter(
                "repro_parallel_worker_failures_total",
                "Worker failures by kind (timeout, crash, error).",
                labelnames=("kind",),
            ),
            "degraded": registry.counter(
                "repro_parallel_degraded_ranges_total",
                "Cube-pair ranges scored sequentially after pool degradation.",
            ),
            "units": registry.counter(
                "repro_parallel_units_total",
                "Cube-pair ranges completed by pool workers.",
            ),
        }
    return _METRICS

# Worker-process globals, installed by _initializer.
_WORKER_STATE: dict = {}

_BACKOFF_CAP = 30.0

#: Arrays of ``build_cubemask_state`` published into the shared
#: segment (everything a worker needs that scales with the input).
_SHARED_ARRAYS = (
    "packed",
    "code_ids",
    "code_keys",
    "assignment",
    "group_overlap",
    "levels",
    "anc_codes",
    "signatures",
    "members",
    "cube_offsets",
    "pairs",
)


def _enumerate_pairs(signatures: np.ndarray, want_partial: bool, chunk: int = 256) -> np.ndarray:
    """Deterministic candidate cube-pair order shared by all workers.

    Row-major ``(i, j)`` over the sorted cubes, keeping pairs where
    cube i dominates cube j (pointwise ``<=``) or — when partial
    containment is requested — dominates on at least one dimension;
    exactly the order the per-pair loop used to produce, computed as a
    chunked signature broadcast.
    """
    count = len(signatures)
    if count == 0:
        return np.zeros((0, 2), dtype=np.int32)
    out: list[np.ndarray] = []
    for start in range(0, count, chunk):
        le = signatures[start : start + chunk, None, :] <= signatures[None, :, :]
        admissible = le.all(axis=2)
        if want_partial:
            admissible |= le.any(axis=2)
        hits = np.argwhere(admissible)
        hits[:, 0] += start
        out.append(hits)
    return np.ascontiguousarray(np.concatenate(out), dtype=np.int32)


def build_cubemask_state(
    space: ObservationSpace,
    targets: tuple[str, ...],
    kernel: str = "auto",
    kernel_threshold: int | None = None,
) -> dict:
    """Shared scoring state for a fixed space + target set.

    Used by the shared-memory publication, in-process by the
    sequential degradation path, and by the materialisation runner —
    one code path, one deterministic cube-pair order.
    """
    if kernel not in KERNEL_MODES:
        raise AlgorithmError(f"unknown kernel mode {kernel!r}; expected one of {KERNEL_MODES}")
    lattice = CubeLattice(space)
    cubes = sorted(lattice.nodes)
    k = len(space.dimensions)
    signatures = np.asarray(cubes, dtype=np.int16).reshape(len(cubes), k)
    member_lists = [lattice.nodes[cube] for cube in cubes]
    cube_offsets = np.zeros(len(cubes) + 1, dtype=np.int64)
    if member_lists:
        cube_offsets[1:] = np.cumsum([len(members) for members in member_lists])
    members = (
        np.concatenate([np.asarray(m, dtype=np.int32) for m in member_lists])
        if member_lists
        else np.zeros(0, dtype=np.int32)
    )
    plan = _kernels.build_kernel_plan(space)
    return dict(
        plan=plan,
        packed=plan.packed,
        code_ids=plan.code_ids,
        code_keys=plan.code_keys,
        assignment=plan.assignment,
        group_overlap=plan.group_overlap,
        levels=plan.levels,
        anc_codes=plan.anc_codes,
        signatures=signatures,
        members=members,
        cube_offsets=cube_offsets,
        pairs=_enumerate_pairs(signatures, "partial" in targets),
        targets=frozenset(targets),
        k=k,
        dimensions=space.dimensions,
        kernel=kernel,
        kernel_threshold=(
            _kernels.DEFAULT_KERNEL_THRESHOLD if kernel_threshold is None else kernel_threshold
        ),
        uris=[record.uri for record in space.observations],
    )


def prepare_shared_fanout(state: dict):
    """Publish a state's arrays; returns ``(segment, initializer_meta)``.

    ``initializer_meta`` is everything a worker needs besides the
    segment name — the array layout plus O(k) plan metadata — so the
    per-worker payload does not scale with the observation count.
    """
    segment, layout = _kernels.publish_arrays(
        {name: state[name] for name in _SHARED_ARRAYS}
    )
    meta = dict(
        layout=layout,
        block_slices=state["plan"].block_slices,
        level_offsets=state["plan"].level_offsets,
        dimensions=state["dimensions"],
        targets=tuple(sorted(state["targets"])),
        k=state["k"],
        kernel=state["kernel"],
        kernel_threshold=state["kernel_threshold"],
        # Workers inherit the parent's trace ID so their log records
        # (and any spans they open) correlate with the run.
        trace_id=current_trace_id(),
    )
    return segment, meta


def enumerate_unit_ranges(total_pairs: int, unit_size: int) -> list[tuple[int, int, int]]:
    """``(unit_id, start, stop)`` ranges over the cube-pair order."""
    bounds = range(0, total_pairs, unit_size) if total_pairs else ()
    return [
        (index, start, min(start + unit_size, total_pairs))
        for index, start in enumerate(bounds)
    ]


def _initializer(segment_name: str, meta: dict, fault_plan=None) -> None:
    """Worker entry: attach to the published arrays zero-copy."""
    from repro.resilience.faults import inject

    inject("worker.start")
    set_trace_id(meta.get("trace_id"))
    segment, views = _kernels.attach_arrays(segment_name, meta["layout"])
    plan = _kernels.KernelPlan(
        dimensions=meta["dimensions"],
        packed=views["packed"],
        block_slices=meta["block_slices"],
        code_ids=views["code_ids"],
        code_keys=views["code_keys"],
        assignment=views["assignment"],
        group_overlap=views["group_overlap"],
        levels=views["levels"],
        anc_codes=views["anc_codes"],
        level_offsets=meta["level_offsets"],
    )
    _WORKER_STATE.clear()
    _WORKER_STATE.update(
        # the segment reference keeps the mapping alive for the views
        segment=segment,
        plan=plan,
        signatures=views["signatures"],
        members=views["members"],
        cube_offsets=views["cube_offsets"],
        pairs=views["pairs"],
        targets=frozenset(meta["targets"]),
        k=meta["k"],
        kernel=meta["kernel"],
        kernel_threshold=meta["kernel_threshold"],
        fault_plan=fault_plan,
    )


def _score_pairs(state: dict, pair_rows) -> tuple[list, list, list]:
    """Evaluate a slice of the shared cube-pair order.

    Returns observation-*index* pairs — ``(a, b)`` for full and
    complementary, ``(a, b, count)`` for partial — so worker payloads
    stay integer-sized; callers map indices to URIs.
    """
    plan: _kernels.KernelPlan = state["plan"]
    signatures = state["signatures"]
    members = state["members"]
    cube_offsets = state["cube_offsets"]
    targets = state["targets"]
    k = state["k"]
    kernel = state["kernel"]
    threshold = state["kernel_threshold"]

    want_full = "full" in targets
    want_compl = "complementary" in targets
    want_partial = "partial" in targets

    full_pairs: list[tuple[int, int]] = []
    compl_pairs: list[tuple[int, int]] = []
    partial_pairs: list[tuple[int, int, int]] = []
    packed = plan.packed
    code_ids = plan.code_ids
    assignment = plan.assignment
    group_overlap = plan.group_overlap
    block_slices = plan.block_slices

    for index_a, index_b in pair_rows:
        rows_a = members[cube_offsets[index_a] : cube_offsets[index_a + 1]]
        rows_b = members[cube_offsets[index_b] : cube_offsets[index_b + 1]]
        containing = bool((signatures[index_a] <= signatures[index_b]).all())
        same_cube = index_a == index_b
        pair_count = len(rows_a) * len(rows_b)
        use_kernel = kernel == "numpy" or (kernel == "auto" and pair_count >= threshold)
        if use_kernel:
            block = _kernels.evaluate_pair_block(
                plan,
                rows_a,
                rows_b,
                containing=containing,
                same_cube=same_cube,
                want_full=want_full,
                want_compl=want_compl,
                want_partial=want_partial,
            )
            full_pairs.extend(block.full)
            compl_pairs.extend(block.complementary)
            partial_pairs.extend(block.partial)
            continue
        # Tuple-at-a-time fallback over the same packed representation.
        for a in rows_a:
            row_a = packed[a]
            for b in rows_b:
                if a == b:
                    continue
                count = 0
                for lo, hi in block_slices:
                    piece = row_a[lo:hi]
                    if ((piece & packed[b, lo:hi]) == piece).all():
                        count += 1
                shared = group_overlap[assignment[a], assignment[b]]
                if containing and count == k:
                    if want_full and shared:
                        full_pairs.append((int(a), int(b)))
                    if (
                        want_compl
                        and same_cube
                        and a < b
                        and (code_ids[a] == code_ids[b]).all()
                    ):
                        compl_pairs.append((int(a), int(b)))
                elif want_partial and shared and 0 < count < k:
                    partial_pairs.append((int(a), int(b), count))
    return full_pairs, compl_pairs, partial_pairs


def _indices_to_delta(
    uris, k: int, full_pairs, compl_pairs, partial_pairs
) -> RelationshipSet:
    delta = RelationshipSet()
    for a, b in full_pairs:
        delta.add_full(uris[a], uris[b])
    for a, b in compl_pairs:
        delta.add_complementary(uris[a], uris[b])
    for a, b, count in partial_pairs:
        delta.add_partial(uris[a], uris[b], degree=count / k)
    return delta


def score_range(state: dict, start: int, stop: int) -> RelationshipSet:
    """Score ``state['pairs'][start:stop]`` into a relationship delta."""
    full_pairs, compl_pairs, partial_pairs = _score_pairs(state, state["pairs"][start:stop])
    return _indices_to_delta(state["uris"], state["k"], full_pairs, compl_pairs, partial_pairs)


def _execute_unit(descriptor: tuple[int, int, int]):
    """Worker entry point: fault hook, then score the range."""
    unit_id, start, stop = descriptor
    plan = _WORKER_STATE.get("fault_plan")
    if plan is not None:
        plan.before_unit(unit_id, in_worker=True)
    full_pairs, compl_pairs, partial_pairs = _score_pairs(
        _WORKER_STATE, _WORKER_STATE["pairs"][start:stop]
    )
    return unit_id, full_pairs, compl_pairs, partial_pairs


def compute_cubemask_parallel(
    space: ObservationSpace,
    workers: int | None = None,
    collect_partial: bool = True,
    targets=None,
    min_parallel_observations: int = 512,
    batch_size: int = 256,
    unit_size: int | None = None,
    max_retries: int = 2,
    retry_backoff: float = 0.1,
    unit_timeout: float | None = None,
    fault_plan=None,
    on_unit_complete=None,
    completed_units=(),
    fallback_sequential: bool = True,
    kernel: str = "auto",
    kernel_threshold: int | None = None,
) -> RelationshipSet:
    """cubeMasking with cube-pair ranges scored in worker processes.

    Produces exactly the sequential result; falls back to the
    sequential implementation for small inputs where process startup
    would dominate.  See the module docstring for the zero-copy
    fan-out, the fault-tolerance contract (``max_retries``,
    ``retry_backoff``, ``unit_timeout``, ``fallback_sequential``) and
    the checkpoint hooks (``unit_size``, ``on_unit_complete``,
    ``completed_units``).  ``kernel``/``kernel_threshold`` select the
    per-cube-pair instance-check path exactly as in
    :func:`~repro.core.cubemask.compute_cubemask`.
    """
    with trace("parallel.compute", observations=len(space)):
        return _compute_cubemask_parallel(
            space,
            workers=workers,
            collect_partial=collect_partial,
            targets=targets,
            min_parallel_observations=min_parallel_observations,
            batch_size=batch_size,
            unit_size=unit_size,
            max_retries=max_retries,
            retry_backoff=retry_backoff,
            unit_timeout=unit_timeout,
            fault_plan=fault_plan,
            on_unit_complete=on_unit_complete,
            completed_units=completed_units,
            fallback_sequential=fallback_sequential,
            kernel=kernel,
            kernel_threshold=kernel_threshold,
        )


def _compute_cubemask_parallel(
    space: ObservationSpace,
    workers: int | None = None,
    collect_partial: bool = True,
    targets=None,
    min_parallel_observations: int = 512,
    batch_size: int = 256,
    unit_size: int | None = None,
    max_retries: int = 2,
    retry_backoff: float = 0.1,
    unit_timeout: float | None = None,
    fault_plan=None,
    on_unit_complete=None,
    completed_units=(),
    fallback_sequential: bool = True,
    kernel: str = "auto",
    kernel_threshold: int | None = None,
) -> RelationshipSet:
    from repro.core.baseline import normalize_targets

    resolved = tuple(sorted(normalize_targets(targets, collect_partial)))
    if len(space) < min_parallel_observations:
        return compute_cubemask(
            space, collect_partial=collect_partial, targets=resolved, kernel=kernel,
            kernel_threshold=kernel_threshold,
        )

    state = build_cubemask_state(space, resolved, kernel=kernel, kernel_threshold=kernel_threshold)
    total_pairs = len(state["pairs"])

    worker_count = workers if workers is not None else max(1, (os.cpu_count() or 2) - 1)
    if unit_size is None:
        # A handful of ranges per worker balances skewed cube sizes
        # without paying per-batch IPC for thousands of tiny batches.
        unit_size = max(1, total_pairs // (worker_count * 8))
    done = set(completed_units)
    pending = [d for d in enumerate_unit_ranges(total_pairs, unit_size) if d[0] not in done]

    result = RelationshipSet()
    attempts: dict[int, int] = {d[0]: 0 for d in pending}
    uris = state["uris"]
    k = state["k"]

    def emit(unit_id: int, delta: RelationshipSet) -> None:
        result.merge(delta)
        if on_unit_complete is not None:
            on_unit_complete(unit_id, delta)

    def degrade(remaining) -> None:
        _metrics()["degraded"].inc(len(remaining))
        logger.warning(
            "degrading to sequential cubeMasking for %d remaining range(s)",
            len(remaining),
            fields={"ranges": len(remaining)},
        )
        for unit_id, start, stop in remaining:
            if fault_plan is not None:
                fault_plan.before_unit(unit_id, in_worker=False)
            emit(unit_id, score_range(state, start, stop))

    try:
        with trace("parallel.publish", pairs=total_pairs):
            segment, meta = prepare_shared_fanout(state)
    except OSError as exc:
        logger.warning(
            "shared-memory publication failed (%s) — scoring %d range(s) sequentially",
            exc,
            len(pending),
        )
        degrade(pending)
        return result

    try:
        while pending:
            pool = ProcessPoolExecutor(
                max_workers=worker_count,
                initializer=_initializer,
                initargs=(segment.name, meta, fault_plan),
            )
            failure: tuple[tuple[int, int, int], BaseException, str] | None = None
            finished: set[int] = set()
            try:
                futures = [(pool.submit(_execute_unit, d), d) for d in pending]
                for future, descriptor in futures:
                    try:
                        payload = future.result(timeout=unit_timeout)
                    except FutureTimeoutError as exc:
                        failure = (descriptor, exc, "timeout")
                        break
                    except (BrokenProcessPool, OSError) as exc:
                        failure = (descriptor, exc, "crash")
                        break
                    except (KeyboardInterrupt, SystemExit):
                        raise
                    except Exception as exc:
                        failure = (descriptor, exc, "error")
                        break
                    finished.add(descriptor[0])
                    _metrics()["units"].inc()
                    unit_id, full_pairs, compl_pairs, partial_pairs = payload
                    emit(unit_id, _indices_to_delta(uris, k, full_pairs, compl_pairs, partial_pairs))
            finally:
                pool.shutdown(wait=failure is None, cancel_futures=True)

            if failure is None:
                break
            descriptor, error, kind = failure
            _metrics()["failures"].inc(kind=kind)
            pending = [d for d in pending if d[0] not in finished]
            unit_id = descriptor[0]
            attempts[unit_id] += 1
            if attempts[unit_id] > max_retries:
                if fallback_sequential:
                    degrade(pending)
                    pending = []
                    break
                if kind == "timeout":
                    raise UnitTimeoutError(
                        "cube-pair range timed out", unit=unit_id, timeout=unit_timeout
                    ) from error
                raise WorkerCrashError(
                    f"cube-pair range failed permanently: {error}",
                    unit=unit_id,
                    attempts=attempts[unit_id],
                ) from error
            delay = min(retry_backoff * (2 ** (attempts[unit_id] - 1)), _BACKOFF_CAP)
            _metrics()["respawns"].inc()
            logger.warning(
                "worker failure (%s) on range %d, attempt %d/%d — respawning pool in %.2fs: %s",
                kind,
                unit_id,
                attempts[unit_id],
                max_retries + 1,
                delay,
                error,
                fields={"kind": kind, "unit": unit_id, "attempt": attempts[unit_id]},
            )
            if delay > 0:
                time.sleep(delay)
    finally:
        segment.close()
        try:
            segment.unlink()
        except FileNotFoundError:
            pass
    return result
