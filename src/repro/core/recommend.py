"""Source relatedness and browsing recommendations (Section 1).

The paper motivates materialised relationships with two exploratory
uses: quantifying "the degree of relatedness between data sources" and
"recommendations for online browsing".  This module derives both from
a computed :class:`RelationshipSet`:

* :func:`dataset_relatedness` — a symmetric score per dataset pair:
  the number of cross-dataset relationship pairs, normalised by the
  maximum possible number of cross pairs,
* :func:`recommend_observations` — for one observation, related
  observations ranked by relationship strength (complementary first,
  then containment, then partial by OCM degree).
"""

from __future__ import annotations

from repro.core.results import RelationshipSet
from repro.core.space import ObservationSpace
from repro.rdf.terms import URIRef

__all__ = ["dataset_relatedness", "recommend_observations", "Recommendation"]


class Recommendation:
    """One ranked suggestion: the related observation, why, how strong."""

    __slots__ = ("observation", "kind", "score")

    def __init__(self, observation: URIRef, kind: str, score: float):
        self.observation = observation
        self.kind = kind
        self.score = score

    def __repr__(self) -> str:
        return f"Recommendation({self.observation.local_name()}, {self.kind}, {self.score:.2f})"

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, Recommendation):
            return NotImplemented
        return (
            self.observation == other.observation
            and self.kind == other.kind
            and self.score == other.score
        )


def dataset_relatedness(
    space: ObservationSpace, relationships: RelationshipSet
) -> dict[tuple[URIRef, URIRef], float]:
    """Symmetric relatedness scores between dataset pairs.

    Score = (#distinct cross-dataset observation pairs exhibiting any
    relationship) / (n_A * n_B): 0 means unrelated sources, 1 means
    every observation pair relates.
    """
    dataset_of = {record.uri: record.dataset for record in space.observations}
    sizes: dict[URIRef, int] = {}
    for record in space.observations:
        sizes[record.dataset] = sizes.get(record.dataset, 0) + 1

    cross: dict[tuple[URIRef, URIRef], set[tuple[URIRef, URIRef]]] = {}

    def bump(a: URIRef, b: URIRef) -> None:
        ds_a, ds_b = dataset_of.get(a), dataset_of.get(b)
        if ds_a is None or ds_b is None or ds_a == ds_b:
            return
        key = (ds_a, ds_b) if str(ds_a) <= str(ds_b) else (ds_b, ds_a)
        pair = (a, b) if str(a) <= str(b) else (b, a)
        cross.setdefault(key, set()).add(pair)

    for a, b in relationships.full:
        bump(a, b)
    for a, b in relationships.partial:
        bump(a, b)
    for a, b in relationships.complementary:
        bump(a, b)

    scores: dict[tuple[URIRef, URIRef], float] = {}
    for (ds_a, ds_b), pairs in cross.items():
        scores[(ds_a, ds_b)] = len(pairs) / (sizes[ds_a] * sizes[ds_b])
    return scores


def recommend_observations(
    observation: URIRef,
    relationships: RelationshipSet,
    limit: int | None = None,
) -> list[Recommendation]:
    """Related observations for ``observation``, strongest first.

    Complementary pairs score 1.0 (directly joinable), full containment
    0.9 (one roll-up away), partial containment scores its OCM degree
    scaled into (0, 0.8).  Ties break on the target URI for determinism.
    """
    suggestions: dict[URIRef, Recommendation] = {}

    def offer(target: URIRef, kind: str, score: float) -> None:
        existing = suggestions.get(target)
        if existing is None or score > existing.score:
            suggestions[target] = Recommendation(target, kind, score)

    for a, b in relationships.complementary:
        if a == observation:
            offer(b, "complementary", 1.0)
        elif b == observation:
            offer(a, "complementary", 1.0)
    for container, contained in relationships.full:
        if container == observation:
            offer(contained, "contains", 0.9)
        elif contained == observation:
            offer(container, "contained-by", 0.9)
    for container, contained in relationships.partial:
        degree = relationships.degree(container, contained) or 0.5
        score = 0.8 * degree
        if container == observation:
            offer(contained, "partially-contains", score)
        elif contained == observation:
            offer(container, "partially-contained-by", score)

    ranked = sorted(
        suggestions.values(), key=lambda r: (-r.score, str(r.observation))
    )
    return ranked[:limit] if limit is not None else ranked
