"""Relationship result containers and recall metrics.

:class:`RelationshipSet` holds the three output sets of every
algorithm — ``S_F`` (full containment), ``S_P`` (partial containment)
and ``S_C`` (complementarity) — as pairs of observation URIs, plus the
optional ``map_P`` of partial-containment dimensions and the OCM degree
of each partial pair.

Containment pairs are directed ``(container, contained)``;
complementarity pairs are stored canonically (lexicographically
ordered) because the relation is symmetric.

Partial-containment results can arrive *columnar*: the vectorised
kernel emits index arrays (see
:class:`repro.core.kernels.PairBlockResult`), and
:meth:`RelationshipSet.add_partial_block` queues them as-is — a few
array references instead of millions of tuple/set/dict inserts.  The
``partial`` / ``partial_map`` / ``degrees`` views drain the queue on
first access, so consumers see exactly the classic set/dict API while
the compute hot path stays allocation-free.
"""

from __future__ import annotations

import threading
from dataclasses import dataclass, field
from typing import Iterable, Mapping, Sequence

from repro.rdf.terms import URIRef

__all__ = ["RelationshipSet", "RelationshipDelta", "Recall"]

Pair = tuple[URIRef, URIRef]


def canonical(a: URIRef, b: URIRef) -> Pair:
    """Order a symmetric pair deterministically."""
    return (a, b) if str(a) <= str(b) else (b, a)


def _length(values) -> int:
    try:
        return len(values)
    except TypeError:
        return int(values.size)


def _tolist(values) -> list:
    tolist = getattr(values, "tolist", None)
    if tolist is not None:
        return tolist()
    return list(values)


@dataclass
class Recall:
    """Per-relationship recall of a computed result against ground truth."""

    full: float
    partial: float
    complementary: float

    @property
    def overall(self) -> float:
        return (self.full + self.partial + self.complementary) / 3


@dataclass
class RelationshipDelta:
    """The edge-level difference produced by one incremental write.

    :func:`~repro.core.api.update_relationships` and
    :func:`~repro.core.api.remove_observations` report the pairs they
    added to / purged from each relation so downstream consumers (the
    relationship service's :class:`~repro.service.index.RelationshipIndex`,
    cache invalidation...) can apply the change in O(|delta|) instead of
    rebuilding from the full :class:`RelationshipSet`.

    ``partial_map`` / ``degrees`` carry the metadata of the *added*
    partial pairs only; removed pairs need no metadata to retract.
    """

    added_full: set[Pair] = field(default_factory=set)
    added_partial: set[Pair] = field(default_factory=set)
    added_complementary: set[Pair] = field(default_factory=set)
    removed_full: set[Pair] = field(default_factory=set)
    removed_partial: set[Pair] = field(default_factory=set)
    removed_complementary: set[Pair] = field(default_factory=set)
    partial_map: dict[Pair, frozenset[URIRef]] = field(default_factory=dict)
    degrees: dict[Pair, float] = field(default_factory=dict)

    def total_added(self) -> int:
        return len(self.added_full) + len(self.added_partial) + len(self.added_complementary)

    def total_removed(self) -> int:
        return len(self.removed_full) + len(self.removed_partial) + len(self.removed_complementary)

    def __bool__(self) -> bool:
        return (self.total_added() + self.total_removed()) > 0

    def touched(self) -> set[URIRef]:
        """Every observation URI appearing in an added or removed pair."""
        uris: set[URIRef] = set()
        for pairs in (
            self.added_full,
            self.added_partial,
            self.added_complementary,
            self.removed_full,
            self.removed_partial,
            self.removed_complementary,
        ):
            for a, b in pairs:
                uris.add(a)
                uris.add(b)
        return uris


class RelationshipSet:
    """The S_F / S_P / S_C output of a relationship computation."""

    __slots__ = (
        "full",
        "complementary",
        "_partial",
        "_partial_map",
        "_degrees",
        "_pending",
        "_pending_lock",
    )

    def __init__(
        self,
        full: Iterable[Pair] = (),
        partial: Iterable[Pair] = (),
        complementary: Iterable[Pair] = (),
        partial_map: Mapping[Pair, frozenset[URIRef]] | None = None,
        degrees: Mapping[Pair, float] | None = None,
    ):
        self.full: set[Pair] = set(full)
        self._partial: set[Pair] = set(partial)
        self.complementary: set[Pair] = {canonical(a, b) for a, b in complementary}
        self._partial_map: dict[Pair, frozenset[URIRef]] = dict(partial_map or {})
        self._degrees: dict[Pair, float] = dict(degrees or {})
        self._pending: list[tuple] = []
        self._pending_lock = threading.Lock()

    # ------------------------------------------------------------------
    # Columnar partial blocks (the kernel hot path).
    # ------------------------------------------------------------------
    def add_partial_block(
        self,
        uris: Sequence[URIRef],
        a_idx,
        b_idx,
        counts,
        dimension_count: int,
        masks=None,
        dimensions: tuple[URIRef, ...] | None = None,
    ) -> None:
        """Queue one columnar partial-result block.

        ``a_idx`` / ``b_idx`` index into ``uris`` (any array or
        sequence exposing ``tolist``/iteration), ``counts`` aligns with
        them (containing-dimension counts; the degree is ``count /
        dimension_count``), and ``masks`` (optional, with
        ``dimensions``) carries the per-dimension bitmasks feeding
        ``map_P``.  O(1): nothing is materialised until a partial view
        is first read.
        """
        if _length(a_idx) == 0:
            return
        with self._pending_lock:
            self._pending.append(
                (uris, a_idx, b_idx, counts, dimension_count, masks, dimensions)
            )

    def _drain(self) -> None:
        """Materialise every queued columnar block into the set views."""
        if not self._pending:
            return
        with self._pending_lock:
            pending = self._pending
            if not pending:
                return
            self._pending = []
            partial = self._partial
            partial_map = self._partial_map
            degrees = self._degrees
            for uris, a_idx, b_idx, counts, k, masks, dimensions in pending:
                # Bulk set/dict updates: one block can carry millions of
                # pairs, so the per-pair method-call overhead is worth
                # skipping.
                pairs = [
                    (uris[ai], uris[bi])
                    for ai, bi in zip(_tolist(a_idx), _tolist(b_idx))
                ]
                partial.update(pairs)
                # True division, not multiply-by-inverse: the degree
                # must be bit-identical to the python paths' count / k.
                if k:
                    degrees.update(
                        zip(pairs, (count / k for count in _tolist(counts)))
                    )
                if masks is not None:
                    decoded: dict[int, frozenset[URIRef]] = {}

                    def _dims(mask) -> frozenset[URIRef]:
                        dims = decoded.get(mask)
                        if dims is None:
                            dims = frozenset(
                                dimension
                                for position, dimension in enumerate(dimensions)
                                if (mask >> position) & 1
                            )
                            decoded[mask] = dims
                        return dims

                    partial_map.update(zip(pairs, map(_dims, _tolist(masks))))

    @property
    def partial(self) -> set[Pair]:
        self._drain()
        return self._partial

    @partial.setter
    def partial(self, value: Iterable[Pair]) -> None:
        self._drain()
        self._partial = value if isinstance(value, set) else set(value)

    @property
    def partial_map(self) -> dict[Pair, frozenset[URIRef]]:
        self._drain()
        return self._partial_map

    @partial_map.setter
    def partial_map(self, value: Mapping[Pair, frozenset[URIRef]]) -> None:
        self._drain()
        self._partial_map = dict(value)

    @property
    def degrees(self) -> dict[Pair, float]:
        self._drain()
        return self._degrees

    @degrees.setter
    def degrees(self, value: Mapping[Pair, float]) -> None:
        self._drain()
        self._degrees = dict(value)

    # ------------------------------------------------------------------
    def __getstate__(self):
        self._drain()
        return (
            self.full,
            self._partial,
            self.complementary,
            self._partial_map,
            self._degrees,
        )

    def __setstate__(self, state) -> None:
        self.full, self._partial, self.complementary, self._partial_map, self._degrees = state
        self._pending = []
        self._pending_lock = threading.Lock()

    # ------------------------------------------------------------------
    def add_full(self, container: URIRef, contained: URIRef) -> None:
        self.full.add((container, contained))

    def add_partial(
        self,
        container: URIRef,
        contained: URIRef,
        dimensions: frozenset[URIRef] | None = None,
        degree: float | None = None,
    ) -> None:
        pair = (container, contained)
        self.partial.add(pair)
        if dimensions is not None:
            self._partial_map[pair] = dimensions
        if degree is not None:
            self._degrees[pair] = degree

    def add_complementary(self, a: URIRef, b: URIRef) -> None:
        self.complementary.add(canonical(a, b))

    def merge(self, other: "RelationshipSet") -> None:
        """In-place union (used by the clustering method's per-cluster runs).

        Queued columnar blocks are *shared*, not drained: merging is
        O(sets + block references), and re-merging the same source is
        idempotent because the drained pairs deduplicate in the set.
        """
        self.full |= other.full
        self.complementary |= other.complementary
        with other._pending_lock:
            pending = list(other._pending)
        if pending:
            with self._pending_lock:
                self._pending.extend(pending)
        self._partial |= other._partial
        self._partial_map.update(other._partial_map)
        self._degrees.update(other._degrees)

    def apply_delta(self, delta: "RelationshipDelta") -> None:
        """Apply one incremental write in O(|delta|).

        The set-level counterpart of
        :meth:`repro.service.index.RelationshipIndex.apply_delta`;
        removals are applied first, then additions (with the metadata
        of the added partial pairs), so replaying a delta log lands on
        the same state the writer observed.
        """
        for pair in delta.removed_full:
            self.full.discard(pair)
        for pair in delta.removed_partial:
            self.partial.discard(pair)
            self.partial_map.pop(pair, None)
            self.degrees.pop(pair, None)
        for a, b in delta.removed_complementary:
            self.complementary.discard(canonical(a, b))
        self.full |= delta.added_full
        for pair in delta.added_partial:
            self.partial.add(pair)
            dims = delta.partial_map.get(pair)
            if dims:
                self.partial_map[pair] = dims
            degree = delta.degrees.get(pair)
            if degree is not None:
                self.degrees[pair] = degree
        for a, b in delta.added_complementary:
            self.complementary.add(canonical(a, b))

    # ------------------------------------------------------------------
    def is_complementary(self, a: URIRef, b: URIRef) -> bool:
        return canonical(a, b) in self.complementary

    def degree(self, container: URIRef, contained: URIRef) -> float | None:
        return self.degrees.get((container, contained))

    def partial_dimensions(self, container: URIRef, contained: URIRef) -> frozenset[URIRef]:
        return self.partial_map.get((container, contained), frozenset())

    def total(self) -> int:
        return len(self.full) + len(self.partial) + len(self.complementary)

    # ------------------------------------------------------------------
    def recall_against(self, truth: "RelationshipSet") -> Recall:
        """Ratio of found-to-actual relationships, per type.

        A type with an empty ground-truth set counts as recall 1.0
        (there was nothing to find).
        """

        def ratio(found: set[Pair], actual: set[Pair]) -> float:
            if not actual:
                return 1.0
            return len(found & actual) / len(actual)

        return Recall(
            full=ratio(self.full, truth.full),
            partial=ratio(self.partial, truth.partial),
            complementary=ratio(self.complementary, truth.complementary),
        )

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, RelationshipSet):
            return NotImplemented
        return (
            self.full == other.full
            and self.partial == other.partial
            and self.complementary == other.complementary
        )

    def __ne__(self, other: object) -> bool:
        result = self.__eq__(other)
        if result is NotImplemented:
            return result
        return not result

    def __repr__(self) -> str:
        return (
            f"RelationshipSet(full={len(self.full)}, partial={len(self.partial)}, "
            f"complementary={len(self.complementary)})"
        )
