"""The rule-based comparator (Section 4, "Rule-based").

Two modes:

* ``"faithful"`` (default) — a generated rule program whose derived
  links coincide with the library semantics.  Universal quantification
  over dimensions is *unrolled*: because the dimension bus is known
  when the program is generated (and padding gives every observation a
  value for every dimension), the full-containment rule simply carries
  one atom triple per dimension.  Partial containment needs negation
  (``∃ containing ∧ ¬∀``), which forward rules cannot express, so the
  engine derives ``anyContains`` links and the wrapper subtracts the
  full-containment pairs.
* ``"paper"`` — the three rules as printed in the paper, including
  their relaxed partial-containment rule (shared dimension *value*
  instead of hierarchical ancestry).

The shared prelude computes the reflexive-transitive ``sub`` relation
(``x sub y`` ⟺ y is an ancestor-or-self of x) from ``skos:broader``
edges — the transitive closure whose cost dominates the comparator.
"""

from __future__ import annotations

from typing import Literal as TypingLiteral

from repro.errors import AlgorithmError
from repro.core.export import space_to_graph
from repro.core.results import RelationshipSet
from repro.core.space import ObservationSpace
from repro.rdf.namespaces import CCREL
from repro.rdf.terms import URIRef
from repro.rules import RuleEngine, parse_rules

__all__ = ["compute_rules", "build_rule_program"]

Mode = TypingLiteral["faithful", "paper"]

_PRELUDE = """
[subDirect: (?x skos:broader ?y) -> (?x ccrel:sub ?y)]
[subTrans: (?x ccrel:sub ?y), (?y skos:broader ?z) -> (?x ccrel:sub ?z)]
[subRefl: (?x a skos:Concept) -> (?x ccrel:sub ?x)]
"""


def _full_rule(dimensions: tuple[URIRef, ...]) -> str:
    """Unrolled universal quantification: one atom pair per dimension."""
    atoms = [
        "(?o1 a qb:Observation)",
        "(?o2 a qb:Observation)",
        "notEqual(?o1, ?o2)",
        "(?o1 ?m ?x1)",
        "(?o2 ?m ?x2)",
        "(?m a qb:MeasureProperty)",
    ]
    for position, dimension in enumerate(dimensions):
        atoms.append(f"(?o1 <{dimension}> ?a{position})")
        atoms.append(f"(?o2 <{dimension}> ?b{position})")
        atoms.append(f"(?b{position} ccrel:sub ?a{position})")
    body = ",\n    ".join(atoms)
    return f"[fullContainment:\n    {body}\n    -> (?o1 ccrel:fullyContains ?o2)]"


def _complement_rule(dimensions: tuple[URIRef, ...]) -> str:
    """Equality on every dimension, encoded by shared variables."""
    atoms = [
        "(?o1 a qb:Observation)",
        "(?o2 a qb:Observation)",
        "notEqual(?o1, ?o2)",
    ]
    for position, dimension in enumerate(dimensions):
        atoms.append(f"(?o1 <{dimension}> ?v{position})")
        atoms.append(f"(?o2 <{dimension}> ?v{position})")
    body = ",\n    ".join(atoms)
    return f"[complementarity:\n    {body}\n    -> (?o1 ccrel:complements ?o2)]"


def _any_rules(dimensions: tuple[URIRef, ...]) -> str:
    """One rule per dimension deriving partial-containment candidates."""
    rules = []
    for position, dimension in enumerate(dimensions):
        rules.append(
            f"[anyContainment{position}:\n"
            "    (?o1 a qb:Observation), (?o2 a qb:Observation), notEqual(?o1, ?o2),\n"
            "    (?o1 ?m ?x1), (?o2 ?m ?x2), (?m a qb:MeasureProperty),\n"
            f"    (?o1 <{dimension}> ?v1), (?o2 <{dimension}> ?v2), (?v2 ccrel:sub ?v1)\n"
            "    -> (?o1 ccrel:anyContains ?o2)]"
        )
    return "\n".join(rules)


_PAPER_RULES = """
[paperFull:
    (?o1 a qb:Observation), (?o2 a qb:Observation), notEqual(?o1, ?o2),
    (?o1 ?d ?v1), (?o2 ?d ?v2), (?d a qb:DimensionProperty),
    (?v2 ccrel:sub ?v1)
    -> (?o1 ccrel:fullyContains ?o2)]

[paperPartial:
    (?o1 a qb:Observation), (?o2 a qb:Observation), notEqual(?o1, ?o2),
    (?o1 ?d ?v), (?o2 ?d ?v), (?d a qb:DimensionProperty)
    -> (?o1 ccrel:partiallyContains ?o2)]

[paperComplement:
    (?o1 a qb:Observation), (?o2 a qb:Observation), notEqual(?o1, ?o2),
    (?o1 ?d ?v), (?o2 ?d ?v), (?d a qb:DimensionProperty)
    -> (?o1 ccrel:complements ?o2)]
"""


def build_rule_program(
    dimensions: tuple[URIRef, ...], mode: Mode = "faithful", targets=None
) -> str:
    """Generate the rule text for a dimension bus.

    ``targets`` restricts which relationship rules are included (the
    ``sub`` prelude is always needed).  Note the faithful "partial"
    rules require the full-containment rule too, for the set difference
    in :func:`compute_rules`.
    """
    from repro.core.baseline import normalize_targets

    if mode == "paper":
        return _PRELUDE + _PAPER_RULES
    if mode != "faithful":
        raise AlgorithmError(f"unknown rules mode {mode!r}")
    resolved = normalize_targets(targets)
    parts = [_PRELUDE]
    if "full" in resolved or "partial" in resolved:
        parts.append(_full_rule(dimensions))
    if "complementary" in resolved:
        parts.append(_complement_rule(dimensions))
    if "partial" in resolved:
        parts.append(_any_rules(dimensions))
    return "\n".join(parts)


def compute_rules(
    space: ObservationSpace,
    mode: Mode = "faithful",
    collect_partial: bool = True,
    targets=None,
) -> RelationshipSet:
    """Compute the relationship sets by forward chaining."""
    from repro.core.baseline import normalize_targets

    resolved = normalize_targets(targets, collect_partial)
    graph = space_to_graph(space)
    program = build_rule_program(space.dimensions, mode=mode, targets=resolved)
    engine = RuleEngine(parse_rules(program))
    closed = engine.run(graph)
    result = RelationshipSet()
    full_pairs: set[tuple[URIRef, URIRef]] = set()
    for s, _, o in closed.triples(None, CCREL.fullyContains, None):
        assert isinstance(s, URIRef) and isinstance(o, URIRef)
        full_pairs.add((s, o))
        if "full" in resolved:
            result.add_full(s, o)
    if "complementary" in resolved:
        for s, _, o in closed.triples(None, CCREL.complements, None):
            assert isinstance(s, URIRef) and isinstance(o, URIRef)
            result.add_complementary(s, o)
    if "partial" in resolved:
        if mode == "faithful":
            for s, _, o in closed.triples(None, CCREL.anyContains, None):
                if (s, o) not in full_pairs:
                    assert isinstance(s, URIRef) and isinstance(o, URIRef)
                    result.add_partial(s, o)
        else:
            for s, _, o in closed.triples(None, CCREL.partiallyContains, None):
                assert isinstance(s, URIRef) and isinstance(o, URIRef)
                result.add_partial(s, o)
    return result
