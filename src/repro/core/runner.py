"""Fault-tolerant materialisation runner: checkpoint/resume for every method.

The paper's workload is *batch materialisation* of S_F/S_P/S_C over
large corpora (§5 runs up to ~2.5M observations).  A monolithic pass
loses hours of Θ(n²)-ish work to one crashed worker, OOM or SIGTERM;
this module decomposes every :class:`~repro.core.api.Method` into a
deterministic sequence of *work units* whose relationship deltas are
journalled to an append-only JSONL checkpoint as they complete, so an
interrupted run resumes from the last durable unit instead of
restarting:

============  ==============================================
method        work unit
============  ==============================================
baseline      row block (scored with the streaming kernel,
streaming     which provably yields the identical result)
clustering    one cluster (the seeded fit is deterministic,
              so a resumed run reassigns identically)
cube_masking  range of the deterministic cube-pair order
              (sequential and parallel share unit ids, so a
              checkpoint is interchangeable between them)
sparql etc.   the whole computation (single unit)
============  ==============================================

Checkpoint format (JSONL, one object per line):

* line 1 — header: ``{"type": "header", "version": 1, "method": ...,
  "space": <fingerprint>, "options": <canonical options>,
  "units": N, "unit_kind": ...}``.  Resume refuses a header that does
  not match the requested computation (:class:`CheckpointError`).
* following lines — ``{"type": "unit", "id": ..., "delta": {"full":
  [...], "complementary": [...], "partial": [...]}}``, appended and
  fsynced once the unit's delta is complete.

A crash can only tear the *final* line; the loader drops a torn tail
(rewriting the repaired journal atomically) and recomputes that unit.
A checkpoint path spelled ``*.rseg`` journals the same records into a
:mod:`repro.storage` segment store's write-ahead log instead
(:func:`open_checkpoint`), so the run's durable state is directly
servable and ``repro compact`` folds it into binary segments.
Worker crashes and injected faults are retried with capped exponential
backoff; SIGINT (KeyboardInterrupt) flushes the journal before
propagating, so Ctrl-C is always resumable.  Failure itself is a
testable input via :class:`repro.resilience.faults.FaultPlan`.
"""

from __future__ import annotations

import hashlib
import json
import os
import time
from pathlib import Path

from repro.errors import (
    AlgorithmError,
    CheckpointError,
    ComputationError,
    WorkerCrashError,
)
from repro.resilience.faults import FaultPlan, InjectedFault
from repro.core.results import RelationshipSet
from repro.core.space import ObservationSpace
from repro.obs.logging import get_logger
from repro.obs.tracing import trace
from repro.rdf.terms import URIRef

__all__ = [
    "MaterializationRunner",
    "run_materialization",
    "space_fingerprint",
    "Checkpoint",
    "open_checkpoint",
]

logger = get_logger("repro.runner")

CHECKPOINT_VERSION = 1
DEFAULT_ROW_BLOCK = 256
DEFAULT_PAIR_UNIT = 512
_BACKOFF_CAP = 30.0

#: Failures worth retrying: injected/transient faults, crashed
#: workers, OS-level hiccups.  Deterministic input errors
#: (:class:`AlgorithmError`) are not retried.
RETRYABLE = (InjectedFault, WorkerCrashError, ComputationError, OSError)

# Registry metrics resolved once per process; see docs/observability.md.
_METRICS = None


def _metrics():
    global _METRICS
    if _METRICS is None:
        from repro.obs.registry import get_registry

        registry = get_registry()
        _METRICS = {
            "runs": registry.counter(
                "repro_runner_runs_total", "Materialisation runs started."
            ),
            "units": registry.counter(
                "repro_runner_units_total", "Work units computed to completion."
            ),
            "resumed": registry.counter(
                "repro_runner_resumed_units_total",
                "Units restored from a checkpoint instead of recomputed.",
            ),
            "retries": registry.counter(
                "repro_runner_retries_total",
                "Transient unit failures that were retried.",
            ),
            "failures": registry.counter(
                "repro_runner_unit_failures_total",
                "Units that exhausted their retry budget.",
            ),
            "repairs": registry.counter(
                "repro_runner_checkpoint_repairs_total",
                "Checkpoints whose torn final record was dropped on load.",
            ),
        }
    return _METRICS


# ----------------------------------------------------------------------
# Fingerprints — detect checkpoint/input mismatch on resume.
# ----------------------------------------------------------------------
def space_fingerprint(space: ObservationSpace) -> str:
    """A stable digest of the observation space (URIs, codes, measures)."""
    digest = hashlib.sha256()
    digest.update(("\x1f".join(str(d) for d in space.dimensions)).encode())
    for record in space.observations:
        digest.update(b"\x1e")
        digest.update(str(record.uri).encode())
        for code in record.codes:
            digest.update(b"\x1f")
            digest.update(str(code).encode())
        for measure in sorted(str(m) for m in record.measures):
            digest.update(b"\x1d")
            digest.update(measure.encode())
    return digest.hexdigest()[:16]


# ----------------------------------------------------------------------
# Delta (de)serialisation — the unit payloads of the journal.
# ----------------------------------------------------------------------
def _delta_payload(delta: RelationshipSet) -> dict:
    return {
        "full": sorted([str(a), str(b)] for a, b in delta.full),
        "complementary": sorted([str(a), str(b)] for a, b in delta.complementary),
        "partial": [
            {
                "container": str(a),
                "contained": str(b),
                "degree": delta.degrees.get((a, b)),
                "dimensions": sorted(str(d) for d in delta.partial_map.get((a, b), ())),
            }
            for a, b in sorted(delta.partial)
        ],
    }


def _delta_from_payload(payload: dict) -> RelationshipSet:
    delta = RelationshipSet()
    for a, b in payload.get("full", ()):
        delta.add_full(URIRef(a), URIRef(b))
    for a, b in payload.get("complementary", ()):
        delta.add_complementary(URIRef(a), URIRef(b))
    for entry in payload.get("partial", ()):
        dims = frozenset(URIRef(d) for d in entry.get("dimensions", ()))
        delta.add_partial(
            URIRef(entry["container"]),
            URIRef(entry["contained"]),
            dims if dims else None,
            entry.get("degree"),
        )
    return delta


# ----------------------------------------------------------------------
# The append-only JSONL journal.
# ----------------------------------------------------------------------
class Checkpoint:
    """Durable unit journal: header line + one line per completed unit."""

    def __init__(self, path: str | os.PathLike):
        self.path = Path(path)
        self._handle = None

    def exists(self) -> bool:
        return self.path.exists()

    # -- writing -------------------------------------------------------
    def create(self, header: dict) -> None:
        self._handle = open(self.path, "w")
        self._write_line({"type": "header", **header})

    def open_append(self) -> None:
        self._handle = open(self.path, "a")

    def append_unit(self, unit_id, delta: RelationshipSet) -> None:
        self._write_line({"type": "unit", "id": unit_id, "delta": _delta_payload(delta)})

    def _write_line(self, obj: dict) -> None:
        if self._handle is None:
            raise CheckpointError("checkpoint is not open for writing")
        self._handle.write(json.dumps(obj, sort_keys=True) + "\n")
        self._handle.flush()
        os.fsync(self._handle.fileno())

    def close(self) -> None:
        if self._handle is not None:
            self._handle.flush()
            self._handle.close()
            self._handle = None

    # -- reading -------------------------------------------------------
    def load(self) -> tuple[dict, dict, bool]:
        """Parse the journal into ``(header, deltas_by_unit, repaired)``.

        A torn final line (crash mid-append) is dropped and the repaired
        journal is rewritten atomically; corruption anywhere else raises
        :class:`CheckpointError`.
        """
        from repro.store import atomic_write_text

        try:
            text = self.path.read_text()
        except OSError as exc:
            raise CheckpointError(f"cannot read checkpoint {self.path}: {exc}") from exc
        lines = text.split("\n")
        if lines and lines[-1] == "":
            lines.pop()
        records: list[dict] = []
        repaired = False
        for index, line in enumerate(lines):
            try:
                record = json.loads(line)
                if not isinstance(record, dict) or "type" not in record:
                    raise ValueError("not a journal record")
            except ValueError as exc:
                if index == len(lines) - 1:
                    # Torn tail from a crash mid-append: drop and repair.
                    repaired = True
                    atomic_write_text(self.path, "".join(l + "\n" for l in lines[:index]))
                    break
                raise CheckpointError(
                    f"corrupt checkpoint {self.path} at line {index + 1}: {exc}"
                ) from exc
            records.append(record)
        if not records or records[0].get("type") != "header":
            raise CheckpointError(f"checkpoint {self.path} has no header line")
        header = records[0]
        deltas: dict = {}
        for record in records[1:]:
            if record.get("type") != "unit" or "id" not in record:
                raise CheckpointError(f"unexpected checkpoint record: {record!r}")
            try:
                deltas[record["id"]] = _delta_from_payload(record.get("delta", {}))
            except (KeyError, TypeError) as exc:
                raise CheckpointError(
                    f"malformed unit delta for {record.get('id')!r}: {exc}"
                ) from exc
        return header, deltas, repaired


def open_checkpoint(path: str | os.PathLike):
    """The journal backend for a checkpoint path.

    A ``*.rseg`` path (or an existing segment-store directory) journals
    units into that store's write-ahead log — the run's output is then
    immediately servable and ``repro compact`` folds it into segments.
    Anything else gets the classic JSONL :class:`Checkpoint`.
    """
    from repro.storage import SegmentJournal, is_segment_checkpoint

    if is_segment_checkpoint(path):
        return SegmentJournal(path)
    return Checkpoint(path)


# ----------------------------------------------------------------------
# Unit plans — how each method decomposes into resumable work.
# ----------------------------------------------------------------------
class _UnitPlan:
    """A deterministic unit sequence plus its executor.

    ``parallel``/``executor_options`` describe *how* units run, not
    *what* they compute — they stay out of ``options_key`` so a
    checkpoint written by a parallel cube_masking run can be resumed
    sequentially (and vice versa).
    """

    def __init__(
        self,
        kind: str,
        unit_ids: list,
        execute,
        options_key: dict,
        parallel: bool = False,
        executor_options: dict | None = None,
    ):
        self.kind = kind
        self.unit_ids = unit_ids
        self.execute = execute
        self.options_key = options_key
        self.parallel = parallel
        self.executor_options = executor_options or {}


def _pop_ignored(options: dict, *names: str) -> None:
    for name in names:
        options.pop(name, None)


def _reject_unknown(options: dict, method) -> None:
    if options:
        raise AlgorithmError(
            f"options not supported by the checkpointing runner for {method.value}: "
            f"{sorted(options)}"
        )


class MaterializationRunner:
    """Executes a relationship computation as recorded, resumable units.

    Parameters
    ----------
    method:
        A :class:`repro.core.api.Method` (or its string value).
    checkpoint:
        Path of the JSONL journal.  ``None`` disables persistence (the
        run is still unit-wise and fault-retrying).
    resume:
        Continue from an existing journal.  Without it, an existing
        checkpoint file is an error — never silently overwritten.
    unit_size:
        Rows per block (baseline/streaming) or cube pairs per range
        (cube_masking); defaults chosen per method.
    max_retries / retry_backoff:
        Per-unit retry budget for transient failures and the base of
        the capped exponential backoff between attempts.
    unit_timeout:
        Wall-clock seconds per unit (enforced on the parallel path,
        where a hung worker can be abandoned).
    fault_plan:
        A :class:`repro.resilience.faults.FaultPlan` for deterministic
        fault injection (tests, chaos drills).
    options:
        Forwarded to the underlying method (``targets=``, ``seed=``,
        ``workers=``/``parallel=True`` for parallel cubeMasking...).
    """

    def __init__(
        self,
        method="cube_masking",
        *,
        checkpoint: str | os.PathLike | None = None,
        resume: bool = False,
        unit_size: int | None = None,
        max_retries: int = 2,
        retry_backoff: float = 0.1,
        unit_timeout: float | None = None,
        fault_plan: FaultPlan | None = None,
        fallback_sequential: bool = True,
        **options,
    ):
        from repro.core.api import Method

        self.method = Method(method)
        self.checkpoint_path = checkpoint
        self.resume = resume
        self.unit_size = unit_size
        self.max_retries = max_retries
        self.retry_backoff = retry_backoff
        self.unit_timeout = unit_timeout
        self.fault_plan = fault_plan
        self.fallback_sequential = fallback_sequential
        self.options = options

    # ------------------------------------------------------------------
    def run(self, data) -> RelationshipSet:
        """Compute (or finish computing) the relationship set."""
        with trace("runner.run", method=self.method.value):
            return self._run(data)

    def _run(self, data) -> RelationshipSet:
        from repro.core.api import _as_space

        space = _as_space(data)
        _metrics()["runs"].inc()
        plan = self._plan(space)
        header = {
            "version": CHECKPOINT_VERSION,
            "method": self.method.value,
            "space": space_fingerprint(space),
            "options": json.dumps(plan.options_key, sort_keys=True),
            "units": len(plan.unit_ids),
            "unit_kind": plan.kind,
        }

        result = RelationshipSet()
        done: set = set()
        journal = None
        if self.checkpoint_path is not None:
            journal = open_checkpoint(self.checkpoint_path)
            if journal.exists():
                if not self.resume:
                    raise CheckpointError(
                        f"checkpoint {journal.path} already exists; resume it "
                        "(resume=True / --resume) or remove the file to start over"
                    )
                stored, deltas, repaired = journal.load()
                self._validate_header(stored, header, journal.path)
                if repaired:
                    _metrics()["repairs"].inc()
                    logger.warning(
                        "checkpoint %s had a torn final record (crash mid-append); "
                        "dropped it and will recompute that unit",
                        journal.path,
                        fields={"checkpoint": str(journal.path)},
                    )
                known = set(plan.unit_ids)
                for unit_id, delta in deltas.items():
                    if unit_id not in known:
                        raise CheckpointError(
                            f"checkpoint {journal.path} records unknown unit {unit_id!r}"
                        )
                    result.merge(delta)
                    done.add(unit_id)
                if done:
                    _metrics()["resumed"].inc(len(done))
                journal.open_append()
            else:
                journal.create(header)

        completed = len(done)

        def emit(unit_id, delta: RelationshipSet, merge: bool = True) -> None:
            nonlocal completed
            if merge:
                result.merge(delta)
            if journal is not None:
                journal.append_unit(unit_id, delta)
            completed += 1
            _metrics()["units"].inc()
            if self.fault_plan is not None:
                self.fault_plan.after_unit(completed)

        try:
            if plan.parallel:
                self._run_parallel(space, plan, done, result, emit)
            else:
                self._run_sequential(plan, done, emit)
        except KeyboardInterrupt:
            # Cooperative cancellation: the journal already holds every
            # completed unit; flush and close it so the run is resumable,
            # then let the interrupt propagate.
            if journal is not None:
                journal.close()
                logger.warning(
                    "interrupted after %d/%d unit(s); resume with the same checkpoint",
                    completed,
                    len(plan.unit_ids),
                )
            raise
        finally:
            if journal is not None:
                journal.close()
        return result

    # ------------------------------------------------------------------
    def _validate_header(self, stored: dict, expected: dict, path) -> None:
        for key in ("version", "method", "space", "options", "units", "unit_kind"):
            if stored.get(key) != expected[key]:
                raise CheckpointError(
                    f"checkpoint {path} does not match this computation: "
                    f"{key}={stored.get(key)!r} recorded, {expected[key]!r} requested"
                )

    # ------------------------------------------------------------------
    def _run_sequential(self, plan: _UnitPlan, done: set, emit) -> None:
        for unit_id in plan.unit_ids:
            if unit_id in done:
                continue
            delta = self._attempt(unit_id, plan.execute)
            emit(unit_id, delta)

    def _attempt(self, unit_id, execute) -> RelationshipSet:
        attempts = 0
        while True:
            try:
                if self.fault_plan is not None:
                    self.fault_plan.before_unit(unit_id, in_worker=False)
                return execute(unit_id)
            except (KeyboardInterrupt, SystemExit, CheckpointError):
                raise
            except RETRYABLE as exc:
                attempts += 1
                if attempts > self.max_retries:
                    _metrics()["failures"].inc()
                    raise WorkerCrashError(
                        f"unit failed permanently: {exc}", unit=unit_id, attempts=attempts
                    ) from exc
                _metrics()["retries"].inc()
                delay = min(self.retry_backoff * (2 ** (attempts - 1)), _BACKOFF_CAP)
                logger.warning(
                    "unit %r failed (attempt %d/%d), retrying in %.2fs: %s",
                    unit_id,
                    attempts,
                    self.max_retries + 1,
                    delay,
                    exc,
                    fields={"unit": unit_id, "attempt": attempts, "delay": delay},
                )
                if delay > 0:
                    time.sleep(delay)

    def _run_parallel(self, space, plan: _UnitPlan, done: set, result, emit) -> None:
        from repro.core.parallel import compute_cubemask_parallel

        parallel_result = compute_cubemask_parallel(
            space,
            min_parallel_observations=0,
            unit_size=plan.options_key["unit_size"],
            targets=tuple(plan.options_key["targets"]),
            max_retries=self.max_retries,
            retry_backoff=self.retry_backoff,
            unit_timeout=self.unit_timeout,
            fault_plan=self.fault_plan,
            fallback_sequential=self.fallback_sequential,
            completed_units=done,
            # The parallel executor merges into its own result; only
            # journal + interrupt bookkeeping happen per unit here.
            on_unit_complete=lambda unit_id, delta: emit(unit_id, delta, merge=False),
            **plan.executor_options,
        )
        result.merge(parallel_result)

    # ------------------------------------------------------------------
    # Per-method unit plans.
    # ------------------------------------------------------------------
    def _plan(self, space: ObservationSpace) -> _UnitPlan:
        from repro.core.api import Method

        if self.method in (Method.BASELINE, Method.STREAMING):
            return self._plan_row_blocks(space)
        if self.method is Method.CLUSTERING:
            return self._plan_clusters(space)
        if self.method is Method.CUBE_MASKING:
            return self._plan_cube_pairs(space)
        return self._plan_single(space)

    def _plan_row_blocks(self, space: ObservationSpace) -> _UnitPlan:
        from repro.core.api import Method
        from repro.core.baseline import normalize_targets
        from repro.core.streaming import StreamingContext, compute_block

        options = dict(self.options)
        targets = normalize_targets(
            options.pop("targets", None), options.pop("collect_partial", True)
        )
        default_dims = self.method is Method.BASELINE
        collect_dims = options.pop("collect_partial_dimensions", default_dims)
        block = self.unit_size or options.pop("block_size", DEFAULT_ROW_BLOCK)
        # The blocked kernel is backend-free; these baseline tuning
        # knobs cannot change the result, so they are accepted and
        # ignored rather than rejected.
        _pop_ignored(options, "backend", "chunk", "block_size")
        _reject_unknown(options, self.method)
        if block < 1:
            raise AlgorithmError("unit_size/block_size must be >= 1")

        bounds = [(start, min(start + block, len(space))) for start in range(0, len(space), block)]
        context_cache: list[StreamingContext] = []

        def execute(unit_id: int) -> RelationshipSet:
            if not context_cache:
                context_cache.append(StreamingContext(space, targets, collect_dims))
            return compute_block(context_cache[0], *bounds[unit_id])

        return _UnitPlan(
            kind="row-blocks",
            unit_ids=list(range(len(bounds))),
            execute=execute,
            options_key={
                "targets": sorted(targets),
                "collect_partial_dimensions": collect_dims,
                "unit_size": block,
            },
        )

    def _plan_clusters(self, space: ObservationSpace) -> _UnitPlan:
        import numpy as np

        from repro.core.baseline import compute_baseline, normalize_targets
        from repro.core.cluster_method import cluster_labels

        options = dict(self.options)
        fit = {
            name: options.pop(name)
            for name in (
                "algorithm",
                "sample_rate",
                "n_clusters",
                "seed",
                "canopy_t1",
                "canopy_t2",
                "min_sample",
            )
            if name in options
        }
        targets = normalize_targets(
            options.pop("targets", None), options.pop("collect_partial", True)
        )
        collect_dims = options.pop("collect_partial_dimensions", False)
        _reject_unknown(options, self.method)

        members: dict[str, list[int]] = {}
        if len(space):
            labels = cluster_labels(space, **fit)
            for cluster in np.unique(labels):
                indices = [int(i) for i in np.flatnonzero(labels == cluster)]
                if len(indices) >= 2:
                    members[f"cluster-{int(cluster)}"] = indices

        def execute(unit_id: str) -> RelationshipSet:
            sub_space = space.select(members[unit_id])
            return compute_baseline(
                sub_space,
                collect_partial_dimensions=collect_dims,
                targets=targets,
            )

        return _UnitPlan(
            kind="clusters",
            unit_ids=sorted(members),
            execute=execute,
            options_key={
                "targets": sorted(targets),
                "collect_partial_dimensions": collect_dims,
                "fit": {k: fit[k] for k in sorted(fit)},
            },
        )

    def _plan_cube_pairs(self, space: ObservationSpace) -> _UnitPlan:
        from repro.core.baseline import normalize_targets
        from repro.core.parallel import build_cubemask_state, enumerate_unit_ranges, score_range

        options = dict(self.options)
        parallel = bool(options.pop("parallel", False)) or "workers" in options
        executor_options = {
            name: options.pop(name) for name in ("workers",) if name in options
        }
        targets = normalize_targets(
            options.pop("targets", None), options.pop("collect_partial", True)
        )
        if options.pop("collect_partial_dimensions", False):
            raise AlgorithmError(
                "collect_partial_dimensions is not supported by the checkpointing "
                "cube_masking runner; use the baseline method for per-dimension maps"
            )
        # Kernel selection changes how a range is scored, never what it
        # yields, so it rides in executor_options and stays out of
        # options_key — checkpoints remain interchangeable across
        # kernels, workers and sequential/parallel execution.
        kernel = options.pop("kernel", "auto")
        kernel_threshold = options.pop("kernel_threshold", None)
        executor_options["kernel"] = kernel
        if kernel_threshold is not None:
            executor_options["kernel_threshold"] = kernel_threshold
        _pop_ignored(options, "prefetch_children", "min_parallel_observations", "batch_size")
        _reject_unknown(options, self.method)

        resolved = tuple(sorted(targets))
        state = build_cubemask_state(
            space, resolved, kernel=kernel, kernel_threshold=kernel_threshold
        )
        unit = self.unit_size or DEFAULT_PAIR_UNIT
        if unit < 1:
            raise AlgorithmError("unit_size must be >= 1")
        ranges = enumerate_unit_ranges(len(state["pairs"]), unit)
        bounds = {unit_id: (start, stop) for unit_id, start, stop in ranges}

        def execute(unit_id: int) -> RelationshipSet:
            return score_range(state, *bounds[unit_id])

        return _UnitPlan(
            kind="cube-pair-ranges",
            unit_ids=[unit_id for unit_id, _, _ in ranges],
            execute=execute,
            options_key={"targets": list(resolved), "unit_size": unit},
            parallel=parallel,
            executor_options=executor_options,
        )

    def _plan_single(self, space: ObservationSpace) -> _UnitPlan:
        options = dict(self.options)

        def execute(unit_id: str) -> RelationshipSet:
            from repro.core.api import _dispatch_table

            implementation = _dispatch_table()[self.method]
            return implementation(space, **options)

        return _UnitPlan(
            kind="single",
            unit_ids=["all"] if len(space) else [],
            execute=execute,
            options_key={"options": repr(sorted(options.items()))},
        )


def run_materialization(data, method="cube_masking", **kwargs) -> RelationshipSet:
    """One-shot convenience wrapper around :class:`MaterializationRunner`."""
    runner_params = {}
    for name in (
        "checkpoint",
        "resume",
        "unit_size",
        "max_retries",
        "retry_backoff",
        "unit_timeout",
        "fault_plan",
        "fallback_sequential",
    ):
        if name in kwargs:
            runner_params[name] = kwargs.pop(name)
    return MaterializationRunner(method, **runner_params, **kwargs).run(data)
