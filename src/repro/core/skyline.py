"""Skylines and k-dominant skylines from containment (Section 1).

The paper motivates containment materialisation as a fast path to
skyline computation: a *skyline point* is an observation not (strictly)
contained by any other, and *k-dominance* (Chan et al., 2006) relaxes
domination to any k of the |P| dimensions.

Here domination is hierarchical: observation ``a`` dominates ``b`` on a
dimension when ``a``'s value is a strict ancestor of ``b``'s value;
``a`` dominates ``b`` overall when it dominates on at least one
dimension and contains (ancestor-or-equal) on all others — i.e. full
containment with at least one strict step.
"""

from __future__ import annotations

from repro.errors import AlgorithmError
from repro.core.results import RelationshipSet
from repro.core.space import ObservationSpace
from repro.rdf.terms import URIRef

__all__ = ["strictly_dominates", "k_dominates", "skyline", "k_dominant_skyline", "skyline_from_relationships"]


def strictly_dominates(space: ObservationSpace, a: int, b: int) -> bool:
    """Full dimension containment with at least one strict ancestor step."""
    strict = False
    for position in range(len(space.dimensions)):
        code_a = space.observations[a].codes[position]
        code_b = space.observations[b].codes[position]
        if not space.dimension_contains(a, b, position):
            return False
        if code_a != code_b:
            strict = True
    return strict


def k_dominates(space: ObservationSpace, a: int, b: int, k: int) -> bool:
    """``a`` k-dominates ``b``: contains on >= k dimensions, strictly on
    at least one of them (Chan et al.'s k-dominance transplanted to the
    hierarchical setting)."""
    total = len(space.dimensions)
    if not 1 <= k <= total:
        raise AlgorithmError(f"k must be in [1, {total}]")
    contained = 0
    strict = False
    for position in range(total):
        if space.dimension_contains(a, b, position):
            contained += 1
            if (
                space.observations[a].codes[position]
                != space.observations[b].codes[position]
            ):
                strict = True
    return contained >= k and strict


def skyline(space: ObservationSpace, same_measure_only: bool = True) -> list[URIRef]:
    """Observations not strictly dominated by any other observation.

    With ``same_measure_only`` (default) only pairs sharing a measure
    compete, matching the containment definitions.
    """
    n = len(space)
    survivors = []
    for b in range(n):
        dominated = False
        for a in range(n):
            if a == b:
                continue
            if same_measure_only and not space.measure_overlap(a, b):
                continue
            if strictly_dominates(space, a, b):
                dominated = True
                break
        if not dominated:
            survivors.append(space.observations[b].uri)
    return survivors


def k_dominant_skyline(space: ObservationSpace, k: int, same_measure_only: bool = True) -> list[URIRef]:
    """Observations not k-dominated by any other observation.

    Note the standard k-dominance caveat: for k < |P| the result can be
    empty because k-dominance is not transitive.
    """
    n = len(space)
    survivors = []
    for b in range(n):
        dominated = False
        for a in range(n):
            if a == b:
                continue
            if same_measure_only and not space.measure_overlap(a, b):
                continue
            if k_dominates(space, a, b, k):
                dominated = True
                break
        if not dominated:
            survivors.append(space.observations[b].uri)
    return survivors


def skyline_from_relationships(space: ObservationSpace, relationships: RelationshipSet) -> list[URIRef]:
    """Derive the skyline directly from materialised containment links.

    This is the paper's "direct access to skyline points": a point is
    in the skyline iff it never appears as the contained member of a
    full-containment pair with a strictly-containing container.  Full
    containment pairs with *equal* dimension vectors (mutual
    containment) do not dominate, so complementary pairs are excluded.
    """
    contained_uris = set()
    for container, contained in relationships.full:
        if not relationships.is_complementary(container, contained):
            contained_uris.add(contained)
    return [record.uri for record in space.observations if record.uri not in contained_uris]
