"""The observation space: the algorithms' uniform view of the input.

:class:`ObservationSpace` flattens a :class:`~repro.qb.model.CubeSpace`
onto the reconciled *dimension bus*: every observation is padded so it
carries a value for every dimension in the union ``P``, with missing
dimensions mapped to the root (ALL) code of their hierarchy — exactly
the convention the paper's occurrence-matrix construction uses.

It also hosts the reference pair predicates (:meth:`dimension_contains`
etc.) that define the library's relationship semantics:

* ``≻`` (:meth:`Hierarchy.is_ancestor`) is **reflexive** (Definition 2),
* ``Cont_full(a, b)``  ⟺ shared measure ∧ ∀p: h_a ≻ h_b,
* ``Cont_partial(a, b)`` ⟺ shared measure ∧ ∃p: h_a ≻ h_b ∧ ¬∀p —
  i.e. the ``0 < OCM < 1`` band of Algorithm 2 (full and partial are
  disjoint),
* ``Compl(a, b)`` ⟺ identical padded dimension vectors (mutual
  dimension-level containment; Definition 3 under root padding).

Every algorithm in :mod:`repro.core` must agree with these predicates;
the equivalence test-suite enforces it.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, Iterator, Mapping, Sequence

from repro.errors import AlgorithmError
from repro.qb.hierarchy import Hierarchy
from repro.qb.model import CubeSpace, Observation
from repro.rdf.terms import URIRef

__all__ = ["ObsRecord", "ObservationSpace"]


@dataclass(frozen=True)
class ObsRecord:
    """One observation, padded onto the dimension bus.

    ``codes[i]`` is the value for ``space.dimensions[i]`` (root when the
    original observation did not bind that dimension).
    """

    index: int
    uri: URIRef
    dataset: URIRef
    codes: tuple[URIRef, ...]
    measures: frozenset[URIRef]


class ObservationSpace:
    """Union dimension bus + padded observations + hierarchies."""

    def __init__(
        self,
        dimensions: Sequence[URIRef],
        hierarchies: Mapping[URIRef, Hierarchy],
        records: Iterable[tuple[URIRef, URIRef, Mapping[URIRef, URIRef], Iterable[URIRef]]] = (),
    ):
        self.dimensions: tuple[URIRef, ...] = tuple(dimensions)
        if len(set(self.dimensions)) != len(self.dimensions):
            raise AlgorithmError("duplicate dimensions in the bus")
        missing = [d for d in self.dimensions if d not in hierarchies]
        if missing:
            raise AlgorithmError(f"dimensions without hierarchies: {missing}")
        self.hierarchies: dict[URIRef, Hierarchy] = {d: hierarchies[d] for d in self.dimensions}
        self._roots: tuple[URIRef, ...] = tuple(self.hierarchies[d].root for d in self.dimensions)
        self.observations: list[ObsRecord] = []
        for uri, dataset, dims, measures in records:
            self.add(uri, dataset, dims, measures)

    # ------------------------------------------------------------------
    def add(
        self,
        uri: URIRef,
        dataset: URIRef,
        dims: Mapping[URIRef, URIRef],
        measures: Iterable[URIRef],
    ) -> ObsRecord:
        """Append an observation; missing dimensions pad to the root."""
        codes = []
        for position, dimension in enumerate(self.dimensions):
            code = dims.get(dimension)
            if code is None:
                code = self._roots[position]
            elif code not in self.hierarchies[dimension]:
                raise AlgorithmError(
                    f"observation {uri}: code {code} missing from the hierarchy of {dimension}"
                )
            codes.append(code)
        unknown = set(dims) - set(self.dimensions)
        if unknown:
            raise AlgorithmError(f"observation {uri} binds unknown dimensions: {sorted(unknown)}")
        record = ObsRecord(
            index=len(self.observations),
            uri=uri,
            dataset=dataset,
            codes=tuple(codes),
            measures=frozenset(measures),
        )
        if not record.measures:
            raise AlgorithmError(f"observation {uri} has no measures")
        self.observations.append(record)
        return record

    @classmethod
    def from_cubespace(cls, cube: CubeSpace) -> "ObservationSpace":
        """Flatten a cube space; dimension order is the cube's bus order."""
        space = cls(cube.dimensions, cube.hierarchies)
        for observation in cube.observations():
            space.add(
                observation.uri,
                observation.dataset,
                observation.dimensions,
                observation.measure_set,
            )
        return space

    # ------------------------------------------------------------------
    def __len__(self) -> int:
        return len(self.observations)

    def __iter__(self) -> Iterator[ObsRecord]:
        return iter(self.observations)

    def __getitem__(self, index: int) -> ObsRecord:
        return self.observations[index]

    def record_for(self, uri: URIRef) -> ObsRecord:
        for record in self.observations:
            if record.uri == uri:
                return record
        raise AlgorithmError(f"no observation with uri {uri}")

    def subset(self, limit: int) -> "ObservationSpace":
        """First ``limit`` observations (re-indexed), same bus."""
        out = ObservationSpace(self.dimensions, self.hierarchies)
        for record in self.observations[:limit]:
            out.add(record.uri, record.dataset, dict(zip(self.dimensions, record.codes)), record.measures)
        return out

    def select(self, indices: Iterable[int]) -> "ObservationSpace":
        """Observations at ``indices`` (re-indexed), same bus.

        Used by the clustering method to run the baseline inside each
        cluster.
        """
        out = ObservationSpace(self.dimensions, self.hierarchies)
        for index in indices:
            record = self.observations[index]
            out.add(record.uri, record.dataset, dict(zip(self.dimensions, record.codes)), record.measures)
        return out

    # ------------------------------------------------------------------
    # Reference pair predicates (the semantic ground truth)
    # ------------------------------------------------------------------
    def measure_overlap(self, a: int, b: int) -> bool:
        return not self.observations[a].measures.isdisjoint(self.observations[b].measures)

    def dimension_contains(self, a: int, b: int, position: int) -> bool:
        """Reflexive ``h_a ≻ h_b`` on the dimension at ``position``."""
        hierarchy = self.hierarchies[self.dimensions[position]]
        return hierarchy.is_ancestor(
            self.observations[a].codes[position], self.observations[b].codes[position]
        )

    def dim_full(self, a: int, b: int) -> bool:
        """``a`` contains ``b`` on every dimension of the bus."""
        return all(self.dimension_contains(a, b, p) for p in range(len(self.dimensions)))

    def dim_any(self, a: int, b: int) -> bool:
        """``a`` contains ``b`` on at least one dimension."""
        return any(self.dimension_contains(a, b, p) for p in range(len(self.dimensions)))

    def containment_degree(self, a: int, b: int) -> float:
        """The OCM value: fraction of dimensions where ``a`` contains ``b``."""
        if not self.dimensions:
            return 1.0
        hits = sum(1 for p in range(len(self.dimensions)) if self.dimension_contains(a, b, p))
        return hits / len(self.dimensions)

    def is_full_containment(self, a: int, b: int) -> bool:
        return a != b and self.measure_overlap(a, b) and self.dim_full(a, b)

    def is_partial_containment(self, a: int, b: int) -> bool:
        return (
            a != b
            and self.measure_overlap(a, b)
            and self.dim_any(a, b)
            and not self.dim_full(a, b)
        )

    def is_complementary(self, a: int, b: int) -> bool:
        return (
            a != b
            and self.observations[a].codes == self.observations[b].codes
        )

    def partial_dimensions(self, a: int, b: int) -> frozenset[URIRef]:
        """Dimensions on which ``a`` contains ``b`` (the ``map_P`` entry)."""
        return frozenset(
            self.dimensions[p]
            for p in range(len(self.dimensions))
            if self.dimension_contains(a, b, p)
        )

    # ------------------------------------------------------------------
    def level_signature(self, index: int) -> tuple[int, ...]:
        """Per-dimension hierarchy levels: the observation's cube id.

        This is the lattice-node key of Algorithm 4 (Figure 4's node
        labels, e.g. ``"210"``).
        """
        record = self.observations[index]
        return tuple(
            self.hierarchies[dimension].level(code)
            for dimension, code in zip(self.dimensions, record.codes)
        )

    def __repr__(self) -> str:
        return (
            f"ObservationSpace(observations={len(self.observations)}, "
            f"dimensions={len(self.dimensions)})"
        )
