"""The SPARQL-based comparator (Section 4, "SPARQL-based").

Two modes:

* ``"faithful"`` (default) — queries whose solutions coincide exactly
  with the library's relationship semantics (used by the equivalence
  tests).  Universal quantification is mimicked with doubly-nested
  ``FILTER NOT EXISTS``, as the paper describes.
* ``"paper"`` — the queries as printed in the paper: *detection only*,
  with relaxed conditions (partial containment via a strict
  ``broader/broader*`` path; no measure-overlap condition).

Both run against the padded export of the observation space on the
engine in :mod:`repro.sparql` — reproducing the blow-up that makes this
approach uncompetitive in Figure 5.
"""

from __future__ import annotations

from typing import Literal as TypingLiteral

from repro.errors import AlgorithmError
from repro.core.export import space_to_graph
from repro.core.results import RelationshipSet
from repro.core.space import ObservationSpace
from repro.rdf.graph import Graph
from repro.rdf.terms import URIRef
from repro.sparql import query
from repro.sparql.ast import Var

__all__ = ["compute_sparql", "FAITHFUL_QUERIES", "PAPER_QUERIES"]

Mode = TypingLiteral["faithful", "paper"]

_PROLOGUE = """
PREFIX qb: <http://purl.org/linked-data/cube#>
PREFIX skos: <http://www.w3.org/2004/02/skos/core#>
"""

# ----------------------------------------------------------------------
# Faithful queries: match the library semantics exactly.
# ----------------------------------------------------------------------
_FAITHFUL_FULL = _PROLOGUE + """
SELECT DISTINCT ?o1 ?o2 WHERE {
  ?o1 a qb:Observation .
  ?o2 a qb:Observation .
  FILTER(?o1 != ?o2)
  ?o1 ?m ?x1 . ?o2 ?m ?x2 . ?m a qb:MeasureProperty .
  FILTER NOT EXISTS {
    ?d a qb:DimensionProperty .
    ?o1 ?d ?v1 . ?o2 ?d ?v2 .
    FILTER NOT EXISTS { ?v2 skos:broader* ?v1 }
  }
}
"""

_FAITHFUL_PARTIAL = _PROLOGUE + """
SELECT DISTINCT ?o1 ?o2 WHERE {
  ?o1 a qb:Observation .
  ?o2 a qb:Observation .
  FILTER(?o1 != ?o2)
  ?o1 ?m ?x1 . ?o2 ?m ?x2 . ?m a qb:MeasureProperty .
  ?d1 a qb:DimensionProperty .
  ?o1 ?d1 ?v1 . ?o2 ?d1 ?v2 .
  ?v2 skos:broader* ?v1 .
  ?d2 a qb:DimensionProperty .
  ?o1 ?d2 ?w1 . ?o2 ?d2 ?w2 .
  FILTER NOT EXISTS { ?w2 skos:broader* ?w1 }
}
"""

_FAITHFUL_COMPLEMENT = _PROLOGUE + """
SELECT DISTINCT ?o1 ?o2 WHERE {
  ?o1 a qb:Observation .
  ?o2 a qb:Observation .
  FILTER(?o1 != ?o2)
  FILTER NOT EXISTS {
    ?d a qb:DimensionProperty .
    ?o1 ?d ?v1 . ?o2 ?d ?v2 .
    FILTER(?v1 != ?v2)
  }
}
"""

FAITHFUL_QUERIES = {
    "full": _FAITHFUL_FULL,
    "partial": _FAITHFUL_PARTIAL,
    "complementary": _FAITHFUL_COMPLEMENT,
}

# ----------------------------------------------------------------------
# Paper queries (Section 4): detection-only, relaxed conditions.  The
# paper writes skos:broaderTransitive; the export emits direct
# skos:broader edges, so the property name is adapted.
# ----------------------------------------------------------------------
_PAPER_PARTIAL = _PROLOGUE + """
SELECT DISTINCT ?o1 ?o2 WHERE {
  ?o1 a qb:Observation .
  ?o2 a qb:Observation .
  ?o1 ?d1 ?v1 .
  ?o2 ?d1 ?v2 .
  ?v2 skos:broader/skos:broader* ?v1 .
  FILTER(?o1 != ?o2)
}
"""

_PAPER_COMPLEMENT = _PROLOGUE + """
SELECT DISTINCT ?o1 ?o2 WHERE {
  ?o1 a qb:Observation .
  ?o2 a qb:Observation .
  FILTER(?o1 != ?o2)
  FILTER NOT EXISTS {
    ?o1 ?d ?v1 .
    ?o2 ?d ?v2 .
    ?d a qb:DimensionProperty .
    FILTER(?v1 != ?v2)
  }
}
"""

_PAPER_FULL = _PROLOGUE + """
SELECT DISTINCT ?o1 ?o2 WHERE {
  ?o1 a qb:Observation .
  ?o2 a qb:Observation .
  FILTER(?o1 != ?o2)
  ?o1 ?d1 ?v1 .
  ?o2 ?d1 ?v2 .
  ?v2 skos:broader/skos:broader* ?v1 .
  FILTER NOT EXISTS {
    ?d a qb:DimensionProperty .
    ?o1 ?d ?w1 . ?o2 ?d ?w2 .
    FILTER NOT EXISTS { ?w2 skos:broader* ?w1 }
  }
}
"""

PAPER_QUERIES = {
    "full": _PAPER_FULL,
    "partial": _PAPER_PARTIAL,
    "complementary": _PAPER_COMPLEMENT,
}


def _pairs(graph: Graph, text: str) -> set[tuple[URIRef, URIRef]]:
    o1, o2 = Var("o1"), Var("o2")
    rows = query(graph, text)
    assert isinstance(rows, list)
    return {(row[o1], row[o2]) for row in rows}  # type: ignore[index]


def compute_sparql(
    space: ObservationSpace,
    mode: Mode = "faithful",
    collect_partial: bool = True,
    graph: Graph | None = None,
    targets=None,
) -> RelationshipSet:
    """Compute the relationship sets with SPARQL queries.

    ``graph`` can be supplied to reuse an existing export (the
    benchmarks export once and time only query execution); ``targets``
    restricts which of the three queries run.
    """
    from repro.core.baseline import normalize_targets

    if mode not in ("faithful", "paper"):
        raise AlgorithmError(f"unknown SPARQL mode {mode!r}")
    resolved = normalize_targets(targets, collect_partial)
    queries = FAITHFUL_QUERIES if mode == "faithful" else PAPER_QUERIES
    target = graph if graph is not None else space_to_graph(space)
    result = RelationshipSet()
    if "full" in resolved:
        for a, b in _pairs(target, queries["full"]):
            result.add_full(a, b)
    if "complementary" in resolved:
        for a, b in _pairs(target, queries["complementary"]):
            result.add_complementary(a, b)
    if "partial" in resolved:
        full_pairs = result.full
        for a, b in _pairs(target, queries["partial"]):
            if mode == "faithful" and (a, b) in full_pairs:
                continue  # disjointness guard; the query already excludes these
            result.add_partial(a, b)
    return result
