"""Memory-bounded baseline (the paper's "space efficiency" future work).

``compute_baseline_streaming`` produces exactly the baseline's output
without ever materialising an n×n matrix: observations are processed in
row blocks of ``block_size``; for each block the per-dimension
containment counts against *all* columns are computed with the packed
bit vectors, relationships are emitted, and the block's scratch arrays
are released.  Peak memory is O(block_size · n) instead of O(n²).
"""

from __future__ import annotations

import numpy as np

from repro.errors import AlgorithmError
from repro.core.baseline import measure_overlap_matrix, normalize_targets
from repro.core.matrix import OccurrenceMatrix
from repro.core.results import RelationshipSet
from repro.core.space import ObservationSpace

__all__ = ["compute_baseline_streaming"]


def compute_baseline_streaming(
    space: ObservationSpace,
    block_size: int = 256,
    collect_partial: bool = True,
    collect_partial_dimensions: bool = False,
    targets=None,
) -> RelationshipSet:
    """Blocked Algorithm 1+2 with O(block_size · n) working memory.

    Produces a result equal to :func:`~repro.core.baseline.compute_baseline`.
    ``collect_partial_dimensions`` re-derives each partial pair's
    dimensions from the hierarchies (no CM matrices are retained).
    """
    if block_size < 1:
        raise AlgorithmError("block_size must be >= 1")
    targets = normalize_targets(targets, collect_partial)
    result = RelationshipSet()
    n = len(space)
    if n == 0:
        return result
    matrix = OccurrenceMatrix(space, backend="numpy")
    dimensions = space.dimensions
    total = len(dimensions)
    uris = [record.uri for record in space.observations]
    overlap = measure_overlap_matrix(space)
    blocks = {dimension: matrix._blocks[dimension] for dimension in dimensions}

    want_full = "full" in targets
    want_compl = "complementary" in targets
    want_partial = "partial" in targets

    # Complementarity needs counts in both directions; with blocking we
    # detect it as count[a, b] == total == count computed transposed,
    # which for packed rows is equality of the bit patterns.
    def block_counts(start: int, stop: int) -> np.ndarray:
        counts = np.zeros((stop - start, n), dtype=np.int16)
        for dimension in dimensions:
            block = blocks[dimension]
            piece = block[start:stop, None, :] & block[None, :, :]
            counts += np.all(piece == block[start:stop, None, :], axis=2)
        return counts

    for start in range(0, n, block_size):
        stop = min(start + block_size, n)
        counts = block_counts(start, stop)
        rows = np.arange(start, stop)
        counts[rows - start, rows] = -1  # mask the diagonal

        if want_full or want_compl:
            full_dims = counts == total
            if want_full:
                for i, j in np.argwhere(full_dims & overlap[start:stop]):
                    result.add_full(uris[start + i], uris[j])
            if want_compl:
                for i, j in np.argwhere(full_dims):
                    a = start + i
                    if a < j and all(
                        np.array_equal(blocks[d][a], blocks[d][j]) for d in dimensions
                    ):
                        result.add_complementary(uris[a], uris[j])

        if want_partial:
            partial = (counts > 0) & (counts < total) & overlap[start:stop]
            for i, j in np.argwhere(partial):
                a = start + i
                if collect_partial_dimensions:
                    dims = space.partial_dimensions(a, j)
                    result.add_partial(uris[a], uris[j], dims, counts[i, j] / total)
                else:
                    result.add_partial(uris[a], uris[j], degree=counts[i, j] / total)
        del counts
    return result
