"""Memory-bounded baseline (the paper's "space efficiency" future work).

``compute_baseline_streaming`` produces exactly the baseline's output
without ever materialising an n×n matrix: observations are processed in
row blocks of ``block_size``; for each block the per-dimension
containment counts against *all* columns are computed with the packed
bit vectors, relationships are emitted, and the block's scratch arrays
are released.  Peak memory is O(block_size · n) instead of O(n²).

The block decomposition is exposed as :class:`StreamingContext` /
:func:`compute_block` so the resilience layer
(:mod:`repro.core.runner`) can treat each row block as an independently
checkpointable work unit: the union of the per-block deltas equals the
monolithic result, and any subset of blocks can be recomputed in
isolation.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.errors import AlgorithmError
from repro.core.baseline import measure_overlap_matrix, normalize_targets
from repro.core.matrix import OccurrenceMatrix
from repro.core.results import RelationshipSet
from repro.core.space import ObservationSpace

__all__ = ["compute_baseline_streaming", "StreamingContext", "compute_block"]


@dataclass
class StreamingContext:
    """Shared read-only state for blocked baseline computation.

    Built once per run (packed bit vectors, measure-overlap matrix,
    URI list); each :func:`compute_block` call then scores one row
    block against all columns using only this context.
    """

    space: ObservationSpace
    targets: frozenset[str]
    collect_partial_dimensions: bool = False
    uris: list = field(init=False)
    overlap: np.ndarray = field(init=False)
    blocks: dict = field(init=False)
    total: int = field(init=False)

    def __post_init__(self) -> None:
        matrix = OccurrenceMatrix(self.space, backend="numpy")
        dimensions = self.space.dimensions
        self.total = len(dimensions)
        self.uris = [record.uri for record in self.space.observations]
        self.overlap = measure_overlap_matrix(self.space)
        self.blocks = {dimension: matrix._blocks[dimension] for dimension in dimensions}

    def block_bounds(self, block_size: int) -> list[tuple[int, int]]:
        """The deterministic row-block partition of the space."""
        n = len(self.space)
        return [(start, min(start + block_size, n)) for start in range(0, n, block_size)]


def compute_block(ctx: StreamingContext, start: int, stop: int) -> RelationshipSet:
    """Relationships whose *container/left* observation lies in
    ``[start, stop)`` — one independently recomputable work unit."""
    space = ctx.space
    n = len(space)
    dimensions = space.dimensions
    total = ctx.total
    uris = ctx.uris
    overlap = ctx.overlap
    blocks = ctx.blocks
    targets = ctx.targets
    result = RelationshipSet()

    want_full = "full" in targets
    want_compl = "complementary" in targets
    want_partial = "partial" in targets

    # Complementarity needs counts in both directions; with blocking we
    # detect it as count[a, b] == total == count computed transposed,
    # which for packed rows is equality of the bit patterns.
    counts = np.zeros((stop - start, n), dtype=np.int16)
    for dimension in dimensions:
        block = blocks[dimension]
        piece = block[start:stop, None, :] & block[None, :, :]
        counts += np.all(piece == block[start:stop, None, :], axis=2)
    rows = np.arange(start, stop)
    counts[rows - start, rows] = -1  # mask the diagonal

    if want_full or want_compl:
        full_dims = counts == total
        if want_full:
            for i, j in np.argwhere(full_dims & overlap[start:stop]):
                result.add_full(uris[start + i], uris[j])
        if want_compl:
            for i, j in np.argwhere(full_dims):
                a = start + i
                if a < j and all(
                    np.array_equal(blocks[d][a], blocks[d][j]) for d in dimensions
                ):
                    result.add_complementary(uris[a], uris[j])

    if want_partial:
        partial = (counts > 0) & (counts < total) & overlap[start:stop]
        for i, j in np.argwhere(partial):
            a = start + i
            if ctx.collect_partial_dimensions:
                dims = space.partial_dimensions(a, j)
                result.add_partial(uris[a], uris[j], dims, counts[i, j] / total)
            else:
                result.add_partial(uris[a], uris[j], degree=counts[i, j] / total)
    del counts
    return result


def compute_baseline_streaming(
    space: ObservationSpace,
    block_size: int = 256,
    collect_partial: bool = True,
    collect_partial_dimensions: bool = False,
    targets=None,
) -> RelationshipSet:
    """Blocked Algorithm 1+2 with O(block_size · n) working memory.

    Produces a result equal to :func:`~repro.core.baseline.compute_baseline`.
    ``collect_partial_dimensions`` re-derives each partial pair's
    dimensions from the hierarchies (no CM matrices are retained).
    """
    if block_size < 1:
        raise AlgorithmError("block_size must be >= 1")
    targets = normalize_targets(targets, collect_partial)
    result = RelationshipSet()
    if len(space) == 0:
        return result
    ctx = StreamingContext(space, targets, collect_partial_dimensions)
    for start, stop in ctx.block_bounds(block_size):
        result.merge(compute_block(ctx, start, stop))
    return result
