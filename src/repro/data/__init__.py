"""Dataset generators.

* :mod:`repro.data.codelists` — deterministic hierarchical code lists
  (geo, time, sex, age, ...) standing in for the Eurostat/World Bank
  vocabularies,
* :mod:`repro.data.realworld` — emulation of the seven real-world
  datasets of Table 4 (same dimension membership and measures,
  observation counts scaled),
* :mod:`repro.data.synthetic` — the Section 4.2 scalability generator
  (projected lattice-node counts, evenly populated cubes),
* :mod:`repro.data.example` — the running example of Figures 1-3 and
  Tables 2-3.
"""

from repro.data.codelists import (
    age_hierarchy,
    citizenship_hierarchy,
    economic_activity_hierarchy,
    education_hierarchy,
    geo_hierarchy,
    household_size_hierarchy,
    sex_hierarchy,
    time_hierarchy,
    unit_hierarchy,
)
from repro.data.example import build_example_space, EXPECTED_EXAMPLE
from repro.data.realworld import REALWORLD_PROFILES, build_realworld_cubespace
from repro.data.synthetic import build_synthetic_space, projected_cube_count

__all__ = [
    "geo_hierarchy",
    "time_hierarchy",
    "sex_hierarchy",
    "age_hierarchy",
    "unit_hierarchy",
    "citizenship_hierarchy",
    "education_hierarchy",
    "household_size_hierarchy",
    "economic_activity_hierarchy",
    "build_realworld_cubespace",
    "REALWORLD_PROFILES",
    "build_synthetic_space",
    "projected_cube_count",
    "build_example_space",
    "EXPECTED_EXAMPLE",
]
