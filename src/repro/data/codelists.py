"""Deterministic hierarchical code lists.

Stand-ins for the Eurostat/World Bank vocabularies: each builder
returns a :class:`~repro.qb.hierarchy.Hierarchy` with a realistic shape
(geo: world → continents → countries → regions → cities; time: ALL →
years → quarters → months; and so on).  The builders are deterministic
so tests and benchmarks are reproducible, and parameterised so the
scalability benchmarks can grow the code space.

Across all default code lists the total code count is on the order of
the paper's 2.6 k distinct hierarchical values.
"""

from __future__ import annotations

from repro.qb.hierarchy import Hierarchy
from repro.rdf.terms import Namespace, URIRef

__all__ = [
    "CODE",
    "geo_hierarchy",
    "time_hierarchy",
    "sex_hierarchy",
    "age_hierarchy",
    "unit_hierarchy",
    "citizenship_hierarchy",
    "education_hierarchy",
    "household_size_hierarchy",
    "economic_activity_hierarchy",
]

#: Namespace for all generated code URIs.
CODE = Namespace("http://purl.org/repro/code/")

_CONTINENTS = ("EU", "AS", "AF", "NA", "SA")


def geo_hierarchy(
    countries_per_continent: int = 6,
    regions_per_country: int = 4,
    cities_per_region: int = 3,
) -> Hierarchy:
    """World → continent → country → region → city (depth 4)."""
    hierarchy = Hierarchy(CODE["geo/WORLD"])
    for continent in _CONTINENTS:
        continent_code = CODE[f"geo/{continent}"]
        hierarchy.add(continent_code, hierarchy.root)
        for c in range(countries_per_continent):
            country = CODE[f"geo/{continent}-C{c}"]
            hierarchy.add(country, continent_code)
            for r in range(regions_per_country):
                region = CODE[f"geo/{continent}-C{c}-R{r}"]
                hierarchy.add(region, country)
                for city in range(cities_per_region):
                    hierarchy.add(CODE[f"geo/{continent}-C{c}-R{r}-T{city}"], region)
    return hierarchy


def time_hierarchy(start_year: int = 2000, years: int = 15, months: bool = True) -> Hierarchy:
    """ALL → year → quarter [→ month] (depth 2 or 3)."""
    hierarchy = Hierarchy(CODE["time/ALL"])
    for year in range(start_year, start_year + years):
        year_code = CODE[f"time/Y{year}"]
        hierarchy.add(year_code, hierarchy.root)
        for quarter in range(1, 5):
            quarter_code = CODE[f"time/Y{year}-Q{quarter}"]
            hierarchy.add(quarter_code, year_code)
            if months:
                for month in range(3 * quarter - 2, 3 * quarter + 1):
                    hierarchy.add(CODE[f"time/Y{year}-M{month:02d}"], quarter_code)
    return hierarchy


def sex_hierarchy() -> Hierarchy:
    """Total → male / female."""
    hierarchy = Hierarchy(CODE["sex/T"])
    hierarchy.add(CODE["sex/M"], hierarchy.root)
    hierarchy.add(CODE["sex/F"], hierarchy.root)
    return hierarchy


def age_hierarchy() -> Hierarchy:
    """ALL → broad band → 5-year group."""
    hierarchy = Hierarchy(CODE["age/TOTAL"])
    bands = {
        "Y0-14": ("Y0-4", "Y5-9", "Y10-14"),
        "Y15-64": ("Y15-24", "Y25-34", "Y35-44", "Y45-54", "Y55-64"),
        "Y65-MAX": ("Y65-74", "Y75-84", "Y85-MAX"),
    }
    for band, groups in bands.items():
        band_code = CODE[f"age/{band}"]
        hierarchy.add(band_code, hierarchy.root)
        for group in groups:
            hierarchy.add(CODE[f"age/{group}"], band_code)
    return hierarchy


def unit_hierarchy() -> Hierarchy:
    """Flat list of measurement units."""
    hierarchy = Hierarchy(CODE["unit/ALL"])
    for unit in ("NR", "PC", "THS", "MIO-EUR", "EUR-HAB"):
        hierarchy.add(CODE[f"unit/{unit}"], hierarchy.root)
    return hierarchy


def citizenship_hierarchy(countries: int = 12) -> Hierarchy:
    """ALL → national / foreign → country of citizenship."""
    hierarchy = Hierarchy(CODE["citizen/TOTAL"])
    national = CODE["citizen/NAT"]
    foreign = CODE["citizen/FOR"]
    hierarchy.add(national, hierarchy.root)
    hierarchy.add(foreign, hierarchy.root)
    for c in range(countries):
        hierarchy.add(CODE[f"citizen/FOR-C{c}"], foreign)
    return hierarchy


def education_hierarchy() -> Hierarchy:
    """ALL → ISCED 2011 aggregate → level."""
    hierarchy = Hierarchy(CODE["edu/TOTAL"])
    groups = {
        "ED0-2": ("ED0", "ED1", "ED2"),
        "ED3-4": ("ED3", "ED4"),
        "ED5-8": ("ED5", "ED6", "ED7", "ED8"),
    }
    for group, levels in groups.items():
        group_code = CODE[f"edu/{group}"]
        hierarchy.add(group_code, hierarchy.root)
        for level in levels:
            hierarchy.add(CODE[f"edu/{level}"], group_code)
    return hierarchy


def household_size_hierarchy(max_size: int = 6) -> Hierarchy:
    """ALL → 1 / 2 / ... / max+ persons."""
    hierarchy = Hierarchy(CODE["hhsize/TOTAL"])
    for size in range(1, max_size):
        hierarchy.add(CODE[f"hhsize/P{size}"], hierarchy.root)
    hierarchy.add(CODE[f"hhsize/P{max_size}-MAX"], hierarchy.root)
    return hierarchy


def economic_activity_hierarchy(divisions_per_section: int = 4) -> Hierarchy:
    """ALL → NACE section → division."""
    hierarchy = Hierarchy(CODE["nace/TOTAL"])
    for section in "ABCDEFGHIJ":
        section_code = CODE[f"nace/{section}"]
        hierarchy.add(section_code, hierarchy.root)
        for division in range(1, divisions_per_section + 1):
            hierarchy.add(CODE[f"nace/{section}{division:02d}"], section_code)
    return hierarchy
