"""The paper's running example (Figures 1-3, Tables 2-3).

Three datasets over the hierarchies of Figure 1:

* D1 — population by refArea / refPeriod / sex,
* D2 — unemployment *and* poverty by refArea / refPeriod,
* D3 — unemployment by refArea / refPeriod.

``EXPECTED_EXAMPLE`` lists the relationships the paper derives in
Figure 3; the test-suite checks every algorithm reproduces them.
"""

from __future__ import annotations

from repro.core.space import ObservationSpace
from repro.qb.hierarchy import Hierarchy
from repro.qb.model import CubeSpace, Dataset, DatasetSchema, Observation
from repro.rdf.terms import Namespace

__all__ = ["build_example_space", "build_example_cubespace", "EXPECTED_EXAMPLE", "EXNS"]

EXNS = Namespace("http://example.org/paper/")


def _geo() -> Hierarchy:
    hierarchy = Hierarchy(EXNS.World)
    edges = [
        (EXNS.Europe, EXNS.World),
        (EXNS.America, EXNS.World),
        (EXNS.Greece, EXNS.Europe),
        (EXNS.Italy, EXNS.Europe),
        (EXNS.Athens, EXNS.Greece),
        (EXNS.Ioannina, EXNS.Greece),
        (EXNS.Rome, EXNS.Italy),
        (EXNS.US, EXNS.America),
        (EXNS.Texas, EXNS.US),
        (EXNS.Austin, EXNS.Texas),
    ]
    for child, parent in edges:
        hierarchy.add(child, parent)
    return hierarchy


def _time() -> Hierarchy:
    hierarchy = Hierarchy(EXNS.AllTime)
    hierarchy.add(EXNS.Y2001, EXNS.AllTime)
    hierarchy.add(EXNS.Y2011, EXNS.AllTime)
    hierarchy.add(EXNS.Jan2011, EXNS.Y2011)
    hierarchy.add(EXNS.Feb2011, EXNS.Y2011)
    return hierarchy


def _sex() -> Hierarchy:
    hierarchy = Hierarchy(EXNS.Total)
    hierarchy.add(EXNS.Male, EXNS.Total)
    hierarchy.add(EXNS.Female, EXNS.Total)
    return hierarchy


#: Figure 2's observations: (local name, dataset, dims, measures dict).
_OBSERVATIONS = (
    ("o11", "D1", {"refArea": EXNS.Athens, "refPeriod": EXNS.Y2001, "sex": EXNS.Total},
     {"population": 5_000_000}),
    ("o12", "D1", {"refArea": EXNS.Austin, "refPeriod": EXNS.Y2011, "sex": EXNS.Male},
     {"population": 445_000}),
    ("o13", "D1", {"refArea": EXNS.Austin, "refPeriod": EXNS.Y2011, "sex": EXNS.Total},
     {"population": 885_000}),
    ("o21", "D2", {"refArea": EXNS.Greece, "refPeriod": EXNS.Y2011},
     {"unemployment": 26.0, "poverty": 15.0}),
    ("o22", "D2", {"refArea": EXNS.Italy, "refPeriod": EXNS.Y2011},
     {"unemployment": 20.0, "poverty": 10.0}),
    ("o31", "D3", {"refArea": EXNS.Athens, "refPeriod": EXNS.Y2001},
     {"unemployment": 10.0}),
    ("o32", "D3", {"refArea": EXNS.Athens, "refPeriod": EXNS.Jan2011},
     {"unemployment": 30.0}),
    ("o33", "D3", {"refArea": EXNS.Rome, "refPeriod": EXNS.Feb2011},
     {"unemployment": 7.0}),
    ("o34", "D3", {"refArea": EXNS.Ioannina, "refPeriod": EXNS.Jan2011},
     {"unemployment": 15.0}),
    ("o35", "D3", {"refArea": EXNS.Austin, "refPeriod": EXNS.Y2011},
     {"unemployment": 3.0}),
)

#: Figure 3's derived relationships, as pairs of observation local names.
EXPECTED_EXAMPLE = {
    "full": {("o21", "o32"), ("o21", "o34"), ("o22", "o33")},
    "complementary": {("o11", "o31"), ("o13", "o35")},
}

_DATASET_SCHEMAS = {
    "D1": (("refArea", "refPeriod", "sex"), ("population",)),
    "D2": (("refArea", "refPeriod"), ("unemployment", "poverty")),
    "D3": (("refArea", "refPeriod"), ("unemployment",)),
}


def build_example_cubespace() -> CubeSpace:
    """The running example as a full QB cube space."""
    space = CubeSpace()
    space.add_hierarchy(EXNS.refArea, _geo())
    space.add_hierarchy(EXNS.refPeriod, _time())
    space.add_hierarchy(EXNS.sex, _sex())
    datasets: dict[str, Dataset] = {}
    for name, (dims, measures) in _DATASET_SCHEMAS.items():
        schema = DatasetSchema(
            dimensions=tuple(EXNS[d] for d in dims),
            measures=tuple(EXNS[m] for m in measures),
        )
        datasets[name] = Dataset(EXNS[f"dataset/{name}"], schema, label=name)
    for local, dataset_name, dims, measures in _OBSERVATIONS:
        observation = Observation(
            EXNS[local],
            EXNS[f"dataset/{dataset_name}"],
            {EXNS[d]: code for d, code in dims.items()},
            {EXNS[m]: value for m, value in measures.items()},
        )
        datasets[dataset_name].add(observation)
    for dataset in datasets.values():
        space.add_dataset(dataset)
    return space


def build_example_space() -> ObservationSpace:
    """The running example flattened for the algorithms."""
    return ObservationSpace.from_cubespace(build_example_cubespace())
