"""Emulation of the seven real-world datasets of Table 4.

The paper's evaluation corpus — Eurostat, linked-statistics.gr and
World Bank extracts — is not redistributable, so this module generates
datasets with the *same statistical profile*: the dimension-membership
matrix of Table 4, one measure per dataset, shared code lists across
datasets (11 overlapping dimensions in the original; the emulation
shares every code list), and observation counts proportional to the
original sizes via a ``scale`` factor (``scale=1.0`` ≈ 246 k
observations, the paper's ~250 k).

Dimension values are drawn with a mixed level distribution (mostly
leaves, some aggregates) so containment and complementarity
relationships actually occur, as they do in published statistics where
aggregate rows accompany detailed breakdowns.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.data import codelists
from repro.qb.hierarchy import Hierarchy
from repro.qb.model import CubeSpace, Dataset, DatasetSchema, Observation
from repro.rdf.terms import Namespace, URIRef

__all__ = ["DatasetProfile", "REALWORLD_PROFILES", "build_realworld_cubespace", "standard_hierarchies"]

NS = Namespace("http://purl.org/repro/")

#: Dimension property URIs, mirroring Table 4's columns.
DIM_REF_AREA = NS.refArea
DIM_REF_PERIOD = NS.refPeriod
DIM_SEX = NS.sex
DIM_UNIT = NS.unit
DIM_AGE = NS.age
DIM_ECONOMIC = NS.economicActivity
DIM_CITIZENSHIP = NS.citizenship
DIM_EDUCATION = NS.education
DIM_HOUSEHOLD = NS.householdSize


@dataclass(frozen=True)
class DatasetProfile:
    """One Table 4 row: dataset name, size, dimensions, measure."""

    name: str
    observations: int
    dimensions: tuple[URIRef, ...]
    measure: URIRef


REALWORLD_PROFILES: tuple[DatasetProfile, ...] = (
    DatasetProfile(
        "D1", 58_000,
        (DIM_REF_AREA, DIM_REF_PERIOD, DIM_SEX, DIM_UNIT, DIM_AGE, DIM_CITIZENSHIP),
        NS.population,
    ),
    DatasetProfile(
        "D2", 4_200,
        (DIM_REF_AREA, DIM_REF_PERIOD, DIM_UNIT, DIM_HOUSEHOLD),
        NS.members,
    ),
    DatasetProfile(
        "D3", 6_700,
        (DIM_REF_AREA, DIM_REF_PERIOD, DIM_SEX, DIM_UNIT, DIM_AGE, DIM_EDUCATION),
        NS.population,
    ),
    DatasetProfile(
        "D4", 15_000,
        (DIM_REF_AREA, DIM_REF_PERIOD, DIM_UNIT),
        NS.births,
    ),
    DatasetProfile(
        "D5", 68_000,
        (DIM_REF_AREA, DIM_REF_PERIOD, DIM_SEX, DIM_UNIT, DIM_AGE, DIM_CITIZENSHIP),
        NS.deaths,
    ),
    DatasetProfile(
        "D6", 73_000,
        (DIM_REF_AREA, DIM_REF_PERIOD, DIM_UNIT),
        NS.gdp,
    ),
    DatasetProfile(
        "D7", 21_600,
        (DIM_REF_AREA, DIM_REF_PERIOD, DIM_ECONOMIC),
        NS.compensation,
    ),
)


def standard_hierarchies() -> dict[URIRef, Hierarchy]:
    """The shared code lists used by every emulated dataset."""
    return {
        DIM_REF_AREA: codelists.geo_hierarchy(),
        DIM_REF_PERIOD: codelists.time_hierarchy(),
        DIM_SEX: codelists.sex_hierarchy(),
        DIM_UNIT: codelists.unit_hierarchy(),
        DIM_AGE: codelists.age_hierarchy(),
        DIM_ECONOMIC: codelists.economic_activity_hierarchy(),
        DIM_CITIZENSHIP: codelists.citizenship_hierarchy(),
        DIM_EDUCATION: codelists.education_hierarchy(),
        DIM_HOUSEHOLD: codelists.household_size_hierarchy(),
    }


def _codes_by_level(hierarchy: Hierarchy) -> list[list[URIRef]]:
    by_level: list[list[URIRef]] = [[] for _ in range(hierarchy.max_level + 1)]
    for code in sorted(hierarchy, key=str):
        by_level[hierarchy.level(code)].append(code)  # type: ignore[arg-type]
    return by_level


def _draw_code(
    by_level: list[list[URIRef]],
    rng: np.random.Generator,
    aggregate_share: float,
) -> URIRef:
    """Draw a code: leaves with probability 1 - aggregate_share, levels
    above the leaves (including the root) otherwise."""
    deepest = len(by_level) - 1
    if deepest == 0 or rng.random() >= aggregate_share:
        level = deepest
    else:
        level = int(rng.integers(0, deepest))
    pool = by_level[level]
    return pool[int(rng.integers(len(pool)))]


def build_realworld_cubespace(
    scale: float = 0.01,
    seed: int = 0,
    aggregate_share: float = 0.35,
    profiles: tuple[DatasetProfile, ...] = REALWORLD_PROFILES,
) -> CubeSpace:
    """Generate the seven-dataset corpus at ``scale``.

    ``scale=1.0`` reproduces the paper's ~246 k observations; the
    default 0.01 gives a ~2.5 k corpus suitable for tests.
    ``aggregate_share`` controls how often a dimension takes a non-leaf
    value (higher = more containment relationships).
    """
    rng = np.random.default_rng(seed)
    hierarchies = standard_hierarchies()
    space = CubeSpace()
    for dimension, hierarchy in hierarchies.items():
        space.add_hierarchy(dimension, hierarchy)

    level_pools = {dim: _codes_by_level(h) for dim, h in hierarchies.items()}

    for profile in profiles:
        count = max(1, int(round(profile.observations * scale)))
        dataset_uri = NS[f"dataset/{profile.name}"]
        schema = DatasetSchema(dimensions=profile.dimensions, measures=(profile.measure,))
        dataset = Dataset(dataset_uri, schema, label=f"Emulated {profile.name}")
        seen_coordinates: set[tuple] = set()
        for i in range(count):
            # Statistical datasets have one fact per coordinate (QB's
            # IC-12); resample on collision.
            for _ in range(100):
                dims = {
                    dimension: _draw_code(level_pools[dimension], rng, aggregate_share)
                    for dimension in profile.dimensions
                }
                key = tuple(dims[d] for d in profile.dimensions)
                if key not in seen_coordinates:
                    seen_coordinates.add(key)
                    break
            value = float(np.round(rng.lognormal(mean=8.0, sigma=2.0), 2))
            observation = Observation(
                NS[f"obs/{profile.name}/{i}"],
                dataset_uri,
                dims,
                {profile.measure: value},
            )
            dataset.add(observation)
        space.add_dataset(dataset)
    return space
