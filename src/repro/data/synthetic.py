"""Synthetic scalability dataset (Section 4.2).

The paper builds its 2.5 M-observation dataset by fixing the number of
dimensions, projecting how many lattice nodes (cubes) a given input
size activates — matching the decreasing cubes-per-observation curve of
Figure 5(f) — and then populating the selected nodes *evenly*.

:func:`projected_cube_count` models the sub-linear growth of active
cubes (a power law ``c · n^alpha`` with ``alpha < 1``), and
:func:`build_synthetic_space` samples that many distinct level
signatures and fills each with ``n / #cubes`` observations.
"""

from __future__ import annotations

import numpy as np

from repro.core.space import ObservationSpace
from repro.data import codelists
from repro.qb.hierarchy import Hierarchy
from repro.rdf.terms import Namespace, URIRef

__all__ = ["projected_cube_count", "build_synthetic_space"]

NS = Namespace("http://purl.org/repro/synthetic/")


def projected_cube_count(n: int, coefficient: float = 2.0, alpha: float = 0.55) -> int:
    """Active lattice nodes projected for ``n`` observations.

    Sub-linear (``alpha < 1``) so the cubes-per-observation ratio
    decreases with input size, as measured on the real corpus in
    Figure 5(f).
    """
    if n <= 0:
        return 0
    return max(1, min(n, int(round(coefficient * n**alpha))))


def _default_hierarchies(dimension_count: int) -> dict[URIRef, Hierarchy]:
    builders = [
        codelists.geo_hierarchy,
        codelists.time_hierarchy,
        codelists.age_hierarchy,
        codelists.economic_activity_hierarchy,
        codelists.education_hierarchy,
        codelists.citizenship_hierarchy,
        codelists.sex_hierarchy,
        codelists.unit_hierarchy,
    ]
    hierarchies: dict[URIRef, Hierarchy] = {}
    for index in range(dimension_count):
        dimension = NS[f"dim{index}"]
        hierarchies[dimension] = builders[index % len(builders)]()
    return hierarchies


def build_synthetic_space(
    n: int,
    dimension_count: int = 4,
    seed: int = 0,
    coefficient: float = 2.0,
    alpha: float = 0.55,
    measure_count: int = 3,
) -> ObservationSpace:
    """Generate ``n`` observations over ``dimension_count`` dimensions.

    Cubes (level signatures) are sampled uniformly from the feasible
    level combinations, then populated evenly; within a cube each
    observation draws uniform codes at the prescribed levels.
    """
    rng = np.random.default_rng(seed)
    hierarchies = _default_hierarchies(dimension_count)
    dimensions = tuple(hierarchies)
    space = ObservationSpace(dimensions, hierarchies)
    if n <= 0:
        return space

    codes_by_level: list[list[list[URIRef]]] = []
    for dimension in dimensions:
        hierarchy = hierarchies[dimension]
        pools: list[list[URIRef]] = [[] for _ in range(hierarchy.max_level + 1)]
        for code in sorted(hierarchy, key=str):
            pools[hierarchy.level(code)].append(code)  # type: ignore[arg-type]
        codes_by_level.append(pools)

    cube_target = projected_cube_count(n, coefficient, alpha)
    signatures: set[tuple[int, ...]] = set()
    max_levels = [len(pools) - 1 for pools in codes_by_level]
    # Rejection-sample distinct signatures; the signature space is vastly
    # larger than cube_target for the default hierarchies.
    attempts = 0
    while len(signatures) < cube_target and attempts < cube_target * 50:
        attempts += 1
        signatures.add(
            tuple(int(rng.integers(0, top + 1)) for top in max_levels)
        )
    signature_list = sorted(signatures)

    measures = [NS[f"measure{m}"] for m in range(measure_count)]
    dataset = NS.dataset
    index = 0
    # Even population: n // k per cube, the remainder spread round-robin.
    cube_count = len(signature_list)
    base_quota, remainder = divmod(n, cube_count)
    for cube_number, signature in enumerate(signature_list):
        quota = base_quota + (1 if cube_number < remainder else 0)
        for _ in range(quota):
            dims = {}
            for position, dimension in enumerate(dimensions):
                pool = codes_by_level[position][signature[position]]
                dims[dimension] = pool[int(rng.integers(len(pool)))]
            measure = measures[int(rng.integers(measure_count))]
            space.add(NS[f"obs/{index}"], dataset, dims, {measure})
            index += 1
    return space
