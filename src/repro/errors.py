"""Exception hierarchy for the :mod:`repro` package.

Every error raised by the library derives from :class:`ReproError`, so
callers can catch a single base class.  Sub-hierarchies follow the package
layout: RDF parsing, SPARQL, rules, cube-model and algorithm errors.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all errors raised by the repro library."""


class RDFError(ReproError):
    """Base class for errors in the RDF substrate."""


class ParseError(RDFError):
    """A serialization (Turtle, N-Triples) could not be parsed.

    Carries the 1-based ``line`` and ``column`` of the offending input
    position when known.
    """

    def __init__(self, message: str, line: int | None = None, column: int | None = None):
        location = ""
        if line is not None:
            location = f" at line {line}"
            if column is not None:
                location += f", column {column}"
        super().__init__(f"{message}{location}")
        self.line = line
        self.column = column


class TermError(RDFError):
    """An RDF term was constructed with invalid content."""


class SPARQLError(ReproError):
    """Base class for SPARQL engine errors."""


class SPARQLSyntaxError(SPARQLError):
    """The query text is not valid in the supported SPARQL subset."""

    def __init__(self, message: str, position: int | None = None):
        if position is not None:
            message = f"{message} (near offset {position})"
        super().__init__(message)
        self.position = position


class SPARQLEvaluationError(SPARQLError):
    """The query is syntactically valid but cannot be evaluated."""


class RuleError(ReproError):
    """Base class for rule engine errors."""


class RuleSyntaxError(RuleError):
    """A rule definition could not be parsed."""


class RuleEvaluationError(RuleError):
    """Forward chaining failed, e.g. an unknown builtin was invoked."""


class CubeModelError(ReproError):
    """The QB model layer received inconsistent cube data."""


class HierarchyError(CubeModelError):
    """A code-list hierarchy is malformed (cycles, unknown codes...)."""


class AlignmentError(ReproError):
    """The alignment (interlinking) module was misconfigured."""


class AlgorithmError(ReproError):
    """A relationship-computation algorithm received invalid input."""
