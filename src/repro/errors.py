"""Exception hierarchy for the :mod:`repro` package.

Every error raised by the library derives from :class:`ReproError`, so
callers can catch a single base class.  Sub-hierarchies follow the package
layout: RDF parsing, SPARQL, rules, cube-model and algorithm errors.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all errors raised by the repro library."""


class RDFError(ReproError):
    """Base class for errors in the RDF substrate."""


class ParseError(RDFError):
    """A serialization (Turtle, N-Triples) could not be parsed.

    Carries the 1-based ``line`` and ``column`` of the offending input
    position when known.
    """

    def __init__(self, message: str, line: int | None = None, column: int | None = None):
        location = ""
        if line is not None:
            location = f" at line {line}"
            if column is not None:
                location += f", column {column}"
        super().__init__(f"{message}{location}")
        self.line = line
        self.column = column


class TermError(RDFError):
    """An RDF term was constructed with invalid content."""


class SPARQLError(ReproError):
    """Base class for SPARQL engine errors."""


class SPARQLSyntaxError(SPARQLError):
    """The query text is not valid in the supported SPARQL subset."""

    def __init__(self, message: str, position: int | None = None):
        if position is not None:
            message = f"{message} (near offset {position})"
        super().__init__(message)
        self.position = position


class SPARQLEvaluationError(SPARQLError):
    """The query is syntactically valid but cannot be evaluated."""


class RuleError(ReproError):
    """Base class for rule engine errors."""


class RuleSyntaxError(RuleError):
    """A rule definition could not be parsed."""


class RuleEvaluationError(RuleError):
    """Forward chaining failed, e.g. an unknown builtin was invoked."""


class CubeModelError(ReproError):
    """The QB model layer received inconsistent cube data."""


class HierarchyError(CubeModelError):
    """A code-list hierarchy is malformed (cycles, unknown codes...)."""


class AlignmentError(ReproError):
    """The alignment (interlinking) module was misconfigured."""


class AlgorithmError(ReproError):
    """A relationship-computation algorithm received invalid input."""


class ComputationError(ReproError):
    """Base class for failures *during* a relationship computation.

    Distinct from :class:`AlgorithmError` (bad input): these are
    runtime faults — crashed workers, timeouts, unusable checkpoints —
    that the resilience layer (:mod:`repro.core.runner`) can retry,
    degrade around, or resume past.
    """


class WorkerCrashError(ComputationError):
    """A worker process died (e.g. ``BrokenProcessPool``) and the
    failure persisted past the configured retries."""

    def __init__(self, message: str, unit: object = None, attempts: int | None = None):
        if unit is not None:
            message = f"{message} (unit {unit!r}"
            message += f", {attempts} attempt(s))" if attempts is not None else ")"
        super().__init__(message)
        self.unit = unit
        self.attempts = attempts


class UnitTimeoutError(ComputationError):
    """A work unit exceeded its wall-clock timeout on every attempt."""

    def __init__(self, message: str, unit: object = None, timeout: float | None = None):
        if unit is not None:
            message = f"{message} (unit {unit!r}"
            message += f", timeout {timeout}s)" if timeout is not None else ")"
        super().__init__(message)
        self.unit = unit
        self.timeout = timeout


class CheckpointError(ComputationError):
    """A materialisation checkpoint is missing, stale or inconsistent
    with the requested computation."""


class ServiceError(ReproError):
    """Base class for relationship-service (query/serving) errors."""


class UnknownObservationError(ServiceError):
    """A query referenced an observation the index does not know.

    Maps to HTTP 404 in the serving layer.
    """

    def __init__(self, uri: object):
        super().__init__(f"unknown observation: {uri}")
        self.uri = uri


class StorageError(ReproError):
    """A binary segment store, its manifest or its write-ahead log is
    missing, corrupt (bad magic/CRC) or of an unsupported version."""


class ResilienceError(ReproError):
    """Base class for the hardened serving path's refusal errors.

    These are *protective* failures: the system declined work to stay
    healthy (deadline blown, breaker open, queue full), as opposed to
    something actually breaking.
    """


class DeadlineExceededError(ResilienceError):
    """A request's deadline expired before the work finished.

    Maps to HTTP 504 in the serving layer.  ``site`` names the
    checkpoint that noticed the expiry (``engine.query``,
    ``segment.read``...).
    """

    def __init__(self, site: str = "", overrun_ms: float | None = None):
        message = "deadline exceeded"
        if site:
            message += f" at {site}"
        if overrun_ms is not None:
            message += f" (over by {overrun_ms:.0f}ms)"
        super().__init__(message)
        self.site = site
        self.overrun_ms = overrun_ms


class CircuitOpenError(ResilienceError):
    """The storage circuit breaker is open; reads fail fast.

    Maps to HTTP 503 with a ``Retry-After`` hint in the serving layer.
    """

    def __init__(self, message: str, retry_after: float = 1.0):
        super().__init__(message)
        self.retry_after = retry_after


class OverloadedError(ResilienceError):
    """The request queue is full; the request was shed.

    Maps to HTTP 503 with a ``Retry-After`` hint in the serving layer.
    """

    def __init__(self, message: str, retry_after: float = 1.0):
        super().__init__(message)
        self.retry_after = retry_after
