"""repro.obs — unified tracing, structured logging and metrics.

The first layer that sees the whole pipeline end to end:

* :mod:`repro.obs.registry` — the process-wide
  :class:`~repro.obs.registry.MetricsRegistry` every instrumented
  layer (kernels, cubeMasking pruning, runner, parallel fan-out,
  segment storage) feeds, rendered on the service's ``/metrics``
  endpoint in Prometheus text exposition format,
* :mod:`repro.obs.tracing` — :func:`~repro.obs.tracing.trace` spans
  with monotonic timing, parent/child nesting and a per-request /
  per-run trace ID that rides HTTP headers, the CLI ``--trace`` flag
  and the shared-memory fan-out into pool workers,
* :mod:`repro.obs.logging` — one-JSON-object-per-line structured
  records (trace_id, span, level, fields) over stdlib ``logging``,
* :mod:`repro.obs.profile` — a sampling wall-clock profiler for
  ``repro compute --profile`` flat self/cumulative tables.

See ``docs/observability.md`` for the metric catalogue and the span
naming conventions.
"""

from repro.obs.logging import (
    JsonLinesFormatter,
    configure_jsonl,
    get_logger,
    log_event,
    remove_handler,
)
from repro.obs.profile import (
    ContinuousProfiler,
    SamplingProfiler,
    get_continuous_profiler,
    start_continuous_profiler,
    stop_continuous_profiler,
)
from repro.obs.registry import (
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    escape_label_value,
    get_registry,
)
from repro.obs.slowlog import (
    SlowQueryLog,
    annotate,
    get_slow_log,
    install_slow_log,
    uninstall_slow_log,
)
from repro.obs.spanstore import (
    SpanStore,
    assemble_trace,
    get_span_store,
    install_span_store,
    read_span_files,
    render_trace,
    uninstall_span_store,
)
from repro.obs.tracing import (
    Span,
    SpanRecorder,
    add_span_sink,
    bind_parent_span,
    bind_trace,
    current_span,
    current_span_id,
    current_trace_id,
    new_trace_id,
    recorder,
    remove_span_sink,
    set_parent_span_id,
    set_trace_id,
    trace,
)

def preregister() -> None:
    """Force-register every instrumented layer's metric families.

    The instrumented modules register their series lazily on first
    use, so a freshly-booted process would scrape an incomplete
    catalogue until compute/storage work has run.  The server calls
    this at startup so ``/metrics`` shows every family (zero-valued)
    from the very first scrape.
    """
    from repro.cluster import router as cluster_router
    from repro.cluster import supervisor as cluster_supervisor
    from repro.core import cubemask, kernels, parallel, runner
    from repro.obs import profile as obs_profile
    from repro.obs import slowlog as obs_slowlog
    from repro.obs import spanstore as obs_spanstore
    from repro.resilience import breaker, deadline, faults, scrub, shed
    from repro.service import engine as service_engine
    from repro.storage import store, wal
    from repro.stream import changefeed, ingest

    kernels._registry_counters()
    cubemask._registry_metrics()
    runner._metrics()
    parallel._metrics()
    wal._metrics()
    store._metrics()
    faults._metrics()
    deadline._metrics()
    breaker._metrics()
    shed._metrics()
    scrub._metrics()
    service_engine._metrics()
    changefeed._metrics()
    ingest._metrics()
    cluster_router._metrics()
    cluster_supervisor._metrics()
    obs_spanstore._metrics()
    obs_slowlog._metrics()
    obs_profile._prof_metrics()
    from repro.service import server as service_server

    service_server._sse_metrics()
    get_registry().counter(
        "repro_storage_lazy_materialisations_total",
        "Lazy segment views materialised on first access.",
    )
    get_registry().counter(
        "repro_parallel_shm_publishes_total",
        "Shared-memory kernel-plan segments published for worker fan-out.",
    )
    get_registry().counter(
        "repro_parallel_shm_bytes_total",
        "Bytes published into shared-memory fan-out segments.",
    )


__all__ = [
    "ContinuousProfiler",
    "Counter",
    "Gauge",
    "Histogram",
    "JsonLinesFormatter",
    "MetricsRegistry",
    "SamplingProfiler",
    "SlowQueryLog",
    "Span",
    "SpanRecorder",
    "SpanStore",
    "add_span_sink",
    "annotate",
    "assemble_trace",
    "bind_parent_span",
    "bind_trace",
    "configure_jsonl",
    "current_span",
    "current_span_id",
    "current_trace_id",
    "escape_label_value",
    "get_continuous_profiler",
    "get_logger",
    "get_registry",
    "get_slow_log",
    "get_span_store",
    "install_slow_log",
    "install_span_store",
    "log_event",
    "new_trace_id",
    "preregister",
    "read_span_files",
    "recorder",
    "remove_handler",
    "remove_span_sink",
    "render_trace",
    "set_parent_span_id",
    "set_trace_id",
    "start_continuous_profiler",
    "stop_continuous_profiler",
    "trace",
    "uninstall_slow_log",
    "uninstall_span_store",
]
