"""repro.obs — unified tracing, structured logging and metrics.

The first layer that sees the whole pipeline end to end:

* :mod:`repro.obs.registry` — the process-wide
  :class:`~repro.obs.registry.MetricsRegistry` every instrumented
  layer (kernels, cubeMasking pruning, runner, parallel fan-out,
  segment storage) feeds, rendered on the service's ``/metrics``
  endpoint in Prometheus text exposition format,
* :mod:`repro.obs.tracing` — :func:`~repro.obs.tracing.trace` spans
  with monotonic timing, parent/child nesting and a per-request /
  per-run trace ID that rides HTTP headers, the CLI ``--trace`` flag
  and the shared-memory fan-out into pool workers,
* :mod:`repro.obs.logging` — one-JSON-object-per-line structured
  records (trace_id, span, level, fields) over stdlib ``logging``,
* :mod:`repro.obs.profile` — a sampling wall-clock profiler for
  ``repro compute --profile`` flat self/cumulative tables.

See ``docs/observability.md`` for the metric catalogue and the span
naming conventions.
"""

from repro.obs.logging import (
    JsonLinesFormatter,
    configure_jsonl,
    get_logger,
    log_event,
    remove_handler,
)
from repro.obs.profile import SamplingProfiler
from repro.obs.registry import (
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    escape_label_value,
    get_registry,
)
from repro.obs.tracing import (
    Span,
    SpanRecorder,
    bind_trace,
    current_span,
    current_trace_id,
    new_trace_id,
    recorder,
    set_trace_id,
    trace,
)

def preregister() -> None:
    """Force-register every instrumented layer's metric families.

    The instrumented modules register their series lazily on first
    use, so a freshly-booted process would scrape an incomplete
    catalogue until compute/storage work has run.  The server calls
    this at startup so ``/metrics`` shows every family (zero-valued)
    from the very first scrape.
    """
    from repro.core import cubemask, kernels, parallel, runner
    from repro.resilience import breaker, deadline, faults, scrub, shed
    from repro.service import engine as service_engine
    from repro.storage import store, wal
    from repro.stream import changefeed, ingest

    kernels._registry_counters()
    cubemask._registry_metrics()
    runner._metrics()
    parallel._metrics()
    wal._metrics()
    store._metrics()
    faults._metrics()
    deadline._metrics()
    breaker._metrics()
    shed._metrics()
    scrub._metrics()
    service_engine._metrics()
    changefeed._metrics()
    ingest._metrics()
    from repro.service import server as service_server

    service_server._sse_metrics()
    get_registry().counter(
        "repro_storage_lazy_materialisations_total",
        "Lazy segment views materialised on first access.",
    )


__all__ = [
    "Counter",
    "Gauge",
    "Histogram",
    "JsonLinesFormatter",
    "MetricsRegistry",
    "SamplingProfiler",
    "Span",
    "SpanRecorder",
    "bind_trace",
    "configure_jsonl",
    "current_span",
    "current_trace_id",
    "escape_label_value",
    "get_logger",
    "get_registry",
    "log_event",
    "new_trace_id",
    "preregister",
    "recorder",
    "remove_handler",
    "set_trace_id",
    "trace",
]
