"""Prometheus text-exposition (version 0.0.4) parser, validator and
federation helpers.

A dependency-free re-implementation of the subset of the exposition
format the repro service emits, used four ways:

* imported by the test-suite (``tests/obs/test_exposition.py``) to
  golden-check :meth:`ServiceMetrics.render` output,
* imported by the cluster router to parse shard scrapes and re-render
  them as one federated exposition labelled by ``shard``/``replica``
  (:func:`federate`),
* imported by ``repro top`` to turn live scrapes into dashboard rows,
* invoked as a script by the CI metrics-smoke steps to validate a live
  ``/metrics`` scrape::

      python -m repro.obs.exposition metrics.txt \
          --require repro_build_info --min-series 15

  (``tests/exposition.py`` remains a thin shim so the historical
  ``python tests/exposition.py`` invocation keeps working.)

The validator enforces the rules Prometheus itself enforces on ingest:
every sample is announced by a ``# TYPE`` line, no series (name plus
label set) appears twice in one scrape, histogram bucket counts are
cumulative and end with ``+Inf``, and ``_count`` matches the ``+Inf``
bucket.
"""

from __future__ import annotations

import re
import sys
from dataclasses import dataclass, field

__all__ = [
    "ExpositionError",
    "MetricFamily",
    "Sample",
    "federate",
    "parse_exposition",
    "render_families",
    "validate",
]

_METRIC_NAME = re.compile(r"^[a-zA-Z_:][a-zA-Z0-9_:]*$")
_LABEL_NAME = re.compile(r"^[a-zA-Z_][a-zA-Z0-9_]*$")
_SAMPLE = re.compile(
    r"^(?P<name>[a-zA-Z_:][a-zA-Z0-9_:]*)"
    r"(?:\{(?P<labels>.*)\})?"
    r"\s+(?P<value>\S+)"
    r"(?:\s+(?P<timestamp>-?\d+))?\s*$"
)


@dataclass
class Sample:
    """One series sample: ``name{labels} value``."""

    name: str
    labels: dict[str, str]
    value: float

    @property
    def key(self) -> tuple:
        return (self.name, tuple(sorted(self.labels.items())))


@dataclass
class MetricFamily:
    """All samples sharing a ``# TYPE`` declaration."""

    name: str
    kind: str
    help: str = ""
    samples: list[Sample] = field(default_factory=list)

    def sample_names(self) -> set[str]:
        return {sample.name for sample in self.samples}


class ExpositionError(ValueError):
    """A line the exposition grammar rejects."""


def _unescape(value: str) -> str:
    out: list[str] = []
    i = 0
    while i < len(value):
        ch = value[i]
        if ch == "\\" and i + 1 < len(value):
            nxt = value[i + 1]
            if nxt == "n":
                out.append("\n")
            elif nxt in ("\\", '"'):
                out.append(nxt)
            else:
                out.append(ch)
                out.append(nxt)
            i += 2
            continue
        out.append(ch)
        i += 1
    return "".join(out)


def _parse_labels(raw: str, lineno: int) -> dict[str, str]:
    labels: dict[str, str] = {}
    i = 0
    while i < len(raw):
        match = re.match(r'\s*([a-zA-Z_][a-zA-Z0-9_]*)\s*=\s*"', raw[i:])
        if match is None:
            raise ExpositionError(f"line {lineno}: bad label syntax in {raw!r}")
        name = match.group(1)
        i += match.end()
        start = i
        buf: list[str] = []
        while i < len(raw):
            ch = raw[i]
            if ch == "\\" and i + 1 < len(raw):
                buf.append(raw[i : i + 2])
                i += 2
                continue
            if ch == '"':
                break
            buf.append(ch)
            i += 1
        else:
            raise ExpositionError(f"line {lineno}: unterminated label value at {raw[start:]!r}")
        labels[name] = _unescape("".join(buf))
        i += 1  # closing quote
        rest = raw[i:].lstrip()
        if rest.startswith(","):
            i = len(raw) - len(rest) + 1
        elif rest:
            raise ExpositionError(f"line {lineno}: junk after label value: {rest!r}")
        else:
            break
    return labels


def _parse_value(token: str, lineno: int) -> float:
    try:
        return float(token)
    except ValueError:
        raise ExpositionError(f"line {lineno}: unparseable value {token!r}") from None


def _family_for(name: str, families: dict[str, MetricFamily]) -> str | None:
    """The family a sample name belongs to (histogram suffixes strip)."""
    if name in families:
        return name
    for suffix in ("_bucket", "_sum", "_count"):
        if name.endswith(suffix) and name[: -len(suffix)] in families:
            base = name[: -len(suffix)]
            if families[base].kind in ("histogram", "summary"):
                return base
    return None


def parse_exposition(text: str) -> dict[str, MetricFamily]:
    """Parse an exposition payload into metric families, validating
    grammar as it goes.  Raises :class:`ExpositionError` on malformed
    input."""
    families: dict[str, MetricFamily] = {}
    for lineno, line in enumerate(text.splitlines(), start=1):
        if not line.strip():
            continue
        if line.startswith("# HELP "):
            rest = line[len("# HELP ") :]
            name, _, help_text = rest.partition(" ")
            if not _METRIC_NAME.match(name):
                raise ExpositionError(f"line {lineno}: bad metric name {name!r}")
            family = families.setdefault(name, MetricFamily(name, kind="untyped"))
            family.help = help_text
            continue
        if line.startswith("# TYPE "):
            rest = line[len("# TYPE ") :]
            name, _, kind = rest.partition(" ")
            kind = kind.strip()
            if not _METRIC_NAME.match(name):
                raise ExpositionError(f"line {lineno}: bad metric name {name!r}")
            if kind not in ("counter", "gauge", "histogram", "summary", "untyped"):
                raise ExpositionError(f"line {lineno}: bad metric type {kind!r}")
            family = families.setdefault(name, MetricFamily(name, kind=kind))
            family.kind = kind
            continue
        if line.startswith("#"):
            continue  # free comment
        match = _SAMPLE.match(line)
        if match is None:
            raise ExpositionError(f"line {lineno}: unparseable sample {line!r}")
        name = match.group("name")
        raw_labels = match.group("labels")
        labels = _parse_labels(raw_labels, lineno) if raw_labels else {}
        for label in labels:
            if not _LABEL_NAME.match(label):
                raise ExpositionError(f"line {lineno}: bad label name {label!r}")
        value = _parse_value(match.group("value"), lineno)
        base = _family_for(name, families)
        if base is None:
            raise ExpositionError(
                f"line {lineno}: sample {name!r} has no preceding # TYPE"
            )
        families[base].samples.append(Sample(name, labels, value))
    return families


def _check_histogram(family: MetricFamily, problems: list[str]) -> None:
    groups: dict[tuple, dict[str, object]] = {}
    for sample in family.samples:
        labels = {k: v for k, v in sample.labels.items() if k != "le"}
        key = tuple(sorted(labels.items()))
        group = groups.setdefault(key, {"buckets": [], "sum": None, "count": None})
        if sample.name == family.name + "_bucket":
            group["buckets"].append((sample.labels.get("le", ""), sample.value))
        elif sample.name == family.name + "_sum":
            group["sum"] = sample.value
        elif sample.name == family.name + "_count":
            group["count"] = sample.value
    for key, group in groups.items():
        buckets = group["buckets"]
        where = f"{family.name}{dict(key) or ''}"
        if not buckets:
            problems.append(f"{where}: histogram with no _bucket samples")
            continue
        if buckets[-1][0] != "+Inf":
            problems.append(f"{where}: last bucket le={buckets[-1][0]!r}, want +Inf")
        counts = [count for _, count in buckets]
        if any(b > a for b, a in zip(counts, counts[1:])):
            problems.append(f"{where}: bucket counts not cumulative: {counts}")
        if group["count"] is None:
            problems.append(f"{where}: missing _count")
        elif group["count"] != counts[-1]:
            problems.append(
                f"{where}: _count {group['count']} != +Inf bucket {counts[-1]}"
            )
        if group["sum"] is None:
            problems.append(f"{where}: missing _sum")


def validate(
    text: str,
    require: tuple[str, ...] = (),
    min_series: int = 0,
) -> list[str]:
    """All the problems with an exposition payload (empty == valid)."""
    problems: list[str] = []
    try:
        families = parse_exposition(text)
    except ExpositionError as exc:
        return [str(exc)]
    seen: set[tuple] = set()
    for family in families.values():
        for sample in family.samples:
            if sample.key in seen:
                problems.append(f"duplicate series {sample.name}{sample.labels}")
            seen.add(sample.key)
        if family.kind == "counter":
            for sample in family.samples:
                if sample.value < 0:
                    problems.append(
                        f"counter {sample.name}{sample.labels} is negative"
                    )
        if family.kind == "histogram":
            _check_histogram(family, problems)
    for name in require:
        if name not in families or not families[name].samples:
            problems.append(f"required metric {name!r} missing")
    if len(seen) < min_series:
        problems.append(f"only {len(seen)} series, require at least {min_series}")
    return problems


# ----------------------------------------------------------------------
# Rendering and federation


def _escape_label(value: str) -> str:
    return value.replace("\\", "\\\\").replace('"', '\\"').replace("\n", "\\n")


def _format_value(value: float) -> str:
    if value == float("inf"):
        return "+Inf"
    if value == float("-inf"):
        return "-Inf"
    if float(value).is_integer() and abs(value) < 2**53:
        return str(int(value))
    return repr(float(value))


def render_families(families: dict[str, MetricFamily]) -> str:
    """Re-render parsed families as one valid exposition payload.

    Families render in sorted-name order, one ``# HELP``/``# TYPE``
    header each, so merging parses of several scrapes round-trips
    through :func:`validate`.
    """
    lines: list[str] = []
    for name in sorted(families):
        family = families[name]
        if family.help:
            lines.append(f"# HELP {name} {family.help}")
        lines.append(f"# TYPE {name} {family.kind}")
        for sample in family.samples:
            if sample.labels:
                body = ",".join(
                    f'{key}="{_escape_label(value)}"'
                    for key, value in sample.labels.items()
                )
                lines.append(f"{sample.name}{{{body}}} {_format_value(sample.value)}")
            else:
                lines.append(f"{sample.name} {_format_value(sample.value)}")
    return "\n".join(lines) + "\n"


def federate(
    scrapes: list[tuple[dict[str, str], str]],
    base: str = "",
) -> tuple[str, list[str]]:
    """Merge several scrapes into one exposition with extra labels.

    ``scrapes`` is ``[(extra_labels, exposition_text), ...]`` — e.g.
    ``({"shard": "0", "replica": "1"}, <shard scrape>)``.  Every sample
    from a scrape gets that scrape's extra labels attached.  On
    collision the federation label wins and the scraped value is
    preserved as ``exported_<label>`` (Prometheus ``honor_labels:
    false`` semantics) — the federator knows which target it scraped,
    and two targets self-reporting the same label must not collapse
    into duplicate series.  ``base`` is an optional local exposition
    merged verbatim — the router's own series, distinguishable by
    their *absence* of the federation labels.

    Returns ``(text, problems)`` where ``problems`` lists scrapes that
    failed to parse (the rest still federate — a sick shard must not
    take down the scrape).
    """
    merged: dict[str, MetricFamily] = {}
    problems: list[str] = []

    def fold(families: dict[str, MetricFamily], extra: dict[str, str]) -> None:
        for name, family in families.items():
            target = merged.setdefault(
                name, MetricFamily(name, kind=family.kind, help=family.help)
            )
            if target.kind == "untyped" and family.kind != "untyped":
                target.kind = family.kind
            if not target.help:
                target.help = family.help
            for sample in family.samples:
                labels = dict(extra)
                for key, value in sample.labels.items():
                    if key not in extra:
                        labels[key] = value
                    elif value != extra[key]:
                        labels[f"exported_{key}"] = value
                target.samples.append(Sample(sample.name, labels, sample.value))

    if base:
        try:
            fold(parse_exposition(base), {})
        except ExpositionError as exc:
            problems.append(f"base: {exc}")
    for extra, text in scrapes:
        try:
            fold(parse_exposition(text), dict(extra))
        except ExpositionError as exc:
            where = ",".join(f"{k}={v}" for k, v in sorted(extra.items()))
            problems.append(f"{where or 'scrape'}: {exc}")
    return render_families(merged), problems


def main(argv: list[str] | None = None) -> int:
    import argparse

    parser = argparse.ArgumentParser(
        description="Validate a Prometheus text-exposition payload."
    )
    parser.add_argument("path", help="file holding the scrape body ('-' for stdin)")
    parser.add_argument(
        "--require",
        action="append",
        default=[],
        metavar="NAME",
        help="metric family that must be present (repeatable)",
    )
    parser.add_argument(
        "--min-series",
        type=int,
        default=0,
        help="minimum number of distinct series",
    )
    args = parser.parse_args(argv)
    if args.path == "-":
        text = sys.stdin.read()
    else:
        with open(args.path, encoding="utf-8") as handle:
            text = handle.read()
    problems = validate(text, require=tuple(args.require), min_series=args.min_series)
    for problem in problems:
        print(f"exposition: {problem}", file=sys.stderr)
    if not problems:
        families = parse_exposition(text)
        series = sum(len(f.samples) for f in families.values())
        print(f"exposition OK: {len(families)} families, {series} series")
    return 1 if problems else 0


if __name__ == "__main__":
    raise SystemExit(main())
