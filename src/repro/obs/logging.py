"""Structured JSONL logging on top of the stdlib :mod:`logging` module.

Every record is one JSON object per line with a fixed envelope::

    {"ts": 1754524800.123, "level": "INFO", "logger": "repro.runner",
     "event": "unit-retry", "trace_id": "9f2...", "span": "runner.run",
     "fields": {"unit": 17, "attempt": 2}}

* ``ts`` — Unix seconds (float),
* ``level`` / ``logger`` — the stdlib record's,
* ``event`` — the log message (a short machine-greppable slug for
  instrumentation events; free text for ordinary log calls),
* ``trace_id`` / ``span`` — taken from the ambient
  :mod:`repro.obs.tracing` context unless the record carries its own,
* ``fields`` — any structured payload the call site attached.

Two entry points:

* :func:`get_logger` returns a :class:`logging.LoggerAdapter` whose
  calls accept ``fields=...`` and inject the current trace context —
  a drop-in replacement for ``logging.getLogger`` at instrumentation
  sites (``logger.warning("unit-retry", fields={"unit": 3})``).
* :func:`configure_jsonl` attaches a :class:`JsonLinesFormatter`
  handler (file or stream) to a logger subtree; it returns the
  handler so callers (the CLI, tests) can detach and close it.

Span emission (:func:`emit_span`) goes through the dedicated
``repro.obs.trace`` logger at INFO — with no handler attached the
stdlib short-circuits it, so always-on tracing costs one level check.
"""

from __future__ import annotations

import io
import json
import logging

__all__ = [
    "JsonLinesFormatter",
    "TRACE_LOGGER_NAME",
    "configure_jsonl",
    "emit_span",
    "get_logger",
    "log_event",
]

#: Spans are emitted through this logger; event logs use their own.
TRACE_LOGGER_NAME = "repro.obs.trace"

#: Envelope keys a call site cannot override from ``fields``.
_RESERVED = ("ts", "level", "logger", "event", "trace_id", "span")


class JsonLinesFormatter(logging.Formatter):
    """Formats each record as one JSON object on one line."""

    def format(self, record: logging.LogRecord) -> str:
        from repro.obs.tracing import current_span, current_trace_id

        trace_id = getattr(record, "trace_id", None)
        span_name = getattr(record, "span", None)
        if trace_id is None:
            trace_id = current_trace_id()
        if span_name is None:
            span = current_span()
            span_name = span.name if span is not None else None
        payload: dict = {
            "ts": record.created,
            "level": record.levelname,
            "logger": record.name,
            "event": record.getMessage(),
            "trace_id": trace_id,
            "span": span_name,
        }
        fields = getattr(record, "fields", None)
        if fields:
            payload["fields"] = {
                str(key): value for key, value in dict(fields).items()
            }
        if record.exc_info and record.exc_info[0] is not None:
            payload.setdefault("fields", {})["exception"] = self.formatException(
                record.exc_info
            )
        return json.dumps(payload, default=str, sort_keys=False)


class _FieldsAdapter(logging.LoggerAdapter):
    """Accepts ``fields=...`` and forwards it as record extras."""

    def process(self, msg, kwargs):
        extra = kwargs.setdefault("extra", {})
        fields = kwargs.pop("fields", None)
        if fields is not None:
            extra["fields"] = fields
        for key in ("trace_id", "span"):
            if key in kwargs:
                extra[key] = kwargs.pop(key)
        return msg, kwargs


def get_logger(name: str) -> _FieldsAdapter:
    """A structured-logging adapter over ``logging.getLogger(name)``.

    Plays fine with plain handlers too: without a
    :class:`JsonLinesFormatter` the ``fields`` payload simply rides
    along as record attributes.
    """
    return _FieldsAdapter(logging.getLogger(name), {})


def log_event(logger, event: str, level: int = logging.INFO, **fields) -> None:
    """One structured event: ``log_event(log, "wal-repair", path=...)``."""
    logger.log(level, event, fields=fields or None)


def configure_jsonl(
    target: str | io.TextIOBase,
    logger_name: str = "repro",
    level: int = logging.INFO,
) -> logging.Handler:
    """Attach a JSONL handler to ``logger_name`` (and the trace logger).

    ``target`` is a path (opened line-buffered, appended) or an open
    text stream.  The subtree's level is lowered to ``level`` so
    instrumentation events actually flow.  Returns the handler;
    detach with :func:`remove_handler`.
    """
    if isinstance(target, (str, bytes)) or hasattr(target, "__fspath__"):
        handler: logging.Handler = logging.FileHandler(target, encoding="utf-8")
    else:
        handler = logging.StreamHandler(target)
    handler.setFormatter(JsonLinesFormatter())
    handler.setLevel(level)
    for name in _attachment_points(logger_name):
        log = logging.getLogger(name)
        log.addHandler(handler)
        if log.level == logging.NOTSET or log.level > level:
            log.setLevel(level)
    return handler


def _attachment_points(logger_name: str) -> set[str]:
    """The base logger, plus the trace logger unless records already
    propagate to the base through the ``logging`` hierarchy (attaching
    to both would emit every span twice)."""
    names = {logger_name}
    if TRACE_LOGGER_NAME != logger_name and not TRACE_LOGGER_NAME.startswith(
        logger_name + "."
    ):
        names.add(TRACE_LOGGER_NAME)
    return names


def remove_handler(handler: logging.Handler, logger_name: str = "repro") -> None:
    """Detach and close a handler installed by :func:`configure_jsonl`."""
    for name in _attachment_points(logger_name):
        logging.getLogger(name).removeHandler(handler)
    handler.close()


def emit_span(span) -> None:
    """Emit a finished span as one JSONL record (if anyone listens)."""
    logger = logging.getLogger(TRACE_LOGGER_NAME)
    if not logger.isEnabledFor(logging.INFO):
        return
    record = span.to_record()
    logger.info(
        "span",
        extra={
            "trace_id": record["trace_id"],
            "span": record["span"],
            "fields": {
                "span_id": record["span_id"],
                "parent_id": record["parent_id"],
                "start": record["start"],
                "duration_ns": record["duration_ns"],
                **({"error": record["error"]} if "error" in record else {}),
                **record.get("fields", {}),
            },
        },
    )

