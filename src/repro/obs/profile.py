"""A sampling wall-clock profiler (stdlib only).

A daemon thread snapshots the target thread's stack via
``sys._current_frames()`` every ``interval`` seconds and accumulates:

* **self** samples — the function on top of the stack (where wall time
  is actually being spent, GIL permitting), and
* **cumulative** samples — every function anywhere on the stack
  (deduplicated per sample, so recursion doesn't double-count).

Because sampling happens from a separate thread, the profiled code
runs unmodified — no ``sys.settrace`` overhead, which is what lets
``repro compute --profile`` report on a production-sized
materialisation without distorting it.  Numpy kernels and mmap I/O
that hold the GIL *are* attributed to the Python frame that entered
them, which is exactly the attribution the flat table needs.

Usage::

    with SamplingProfiler() as profiler:
        expensive()
    print(profiler.report())
"""

from __future__ import annotations

import sys
import threading
import time

__all__ = ["SamplingProfiler"]


class SamplingProfiler:
    """Samples one thread's stack; renders a flat self/cumulative table."""

    def __init__(self, interval: float = 0.002, thread_ident: int | None = None):
        if interval <= 0:
            raise ValueError("interval must be positive")
        self.interval = interval
        self._target = thread_ident
        self._samples = 0
        self._self_counts: dict[tuple[str, str, int], int] = {}
        self._cumulative_counts: dict[tuple[str, str, int], int] = {}
        self._stop = threading.Event()
        self._thread: threading.Thread | None = None
        self._started_at: float | None = None
        self._elapsed = 0.0

    # ------------------------------------------------------------------
    def start(self) -> "SamplingProfiler":
        if self._thread is not None:
            raise RuntimeError("profiler already running")
        if self._target is None:
            self._target = threading.get_ident()
        self._stop.clear()
        self._started_at = time.perf_counter()
        self._thread = threading.Thread(
            target=self._run, name="repro-profiler", daemon=True
        )
        self._thread.start()
        return self

    def stop(self) -> "SamplingProfiler":
        if self._thread is None:
            return self
        self._stop.set()
        self._thread.join()
        self._thread = None
        if self._started_at is not None:
            self._elapsed += time.perf_counter() - self._started_at
            self._started_at = None
        return self

    def __enter__(self) -> "SamplingProfiler":
        return self.start()

    def __exit__(self, *exc_info) -> None:
        self.stop()

    # ------------------------------------------------------------------
    def _run(self) -> None:
        while not self._stop.wait(self.interval):
            frame = sys._current_frames().get(self._target)
            if frame is None:
                continue
            self._samples += 1
            top = True
            seen: set[tuple[str, str, int]] = set()
            while frame is not None:
                code = frame.f_code
                key = (code.co_name, code.co_filename, code.co_firstlineno)
                if top:
                    self._self_counts[key] = self._self_counts.get(key, 0) + 1
                    top = False
                if key not in seen:
                    seen.add(key)
                    self._cumulative_counts[key] = (
                        self._cumulative_counts.get(key, 0) + 1
                    )
                frame = frame.f_back
            del frame

    # ------------------------------------------------------------------
    @property
    def samples(self) -> int:
        return self._samples

    @property
    def elapsed(self) -> float:
        if self._started_at is not None:
            return self._elapsed + (time.perf_counter() - self._started_at)
        return self._elapsed

    def as_dict(self, limit: int = 30) -> dict:
        """JSON-friendly profile: rows ranked by self samples."""
        rows = []
        for key, self_count in sorted(
            self._self_counts.items(), key=lambda item: -item[1]
        )[:limit]:
            name, filename, line = key
            rows.append(
                {
                    "function": name,
                    "location": f"{_short_path(filename)}:{line}",
                    "self_samples": self_count,
                    "cumulative_samples": self._cumulative_counts.get(key, self_count),
                }
            )
        return {
            "samples": self._samples,
            "interval_seconds": self.interval,
            "elapsed_seconds": self.elapsed,
            "rows": rows,
        }

    def report(self, limit: int = 30) -> str:
        """The flat self/cumulative table, ready to print."""
        profile = self.as_dict(limit)
        total = max(profile["samples"], 1)
        lines = [
            f"# wall-clock sampling profile: {profile['samples']} samples "
            f"@ {self.interval * 1000:.1f}ms over {profile['elapsed_seconds']:.2f}s",
            f"{'self%':>7} {'cum%':>7} {'self':>6} {'cum':>6}  function (location)",
        ]
        for row in profile["rows"]:
            lines.append(
                f"{100 * row['self_samples'] / total:6.1f}% "
                f"{100 * row['cumulative_samples'] / total:6.1f}% "
                f"{row['self_samples']:>6} {row['cumulative_samples']:>6}  "
                f"{row['function']} ({row['location']})"
            )
        if not profile["rows"]:
            lines.append("  (no samples — the run finished within one interval)")
        return "\n".join(lines)


def _short_path(filename: str) -> str:
    """Trim a source path to the informative tail (``repro/...``)."""
    for marker in ("/repro/", "\\repro\\"):
        index = filename.rfind(marker)
        if index >= 0:
            return "repro/" + filename[index + len(marker):].replace("\\", "/")
    parts = filename.replace("\\", "/").rsplit("/", 2)
    return "/".join(parts[-2:])
