"""A sampling wall-clock profiler (stdlib only).

A daemon thread snapshots the target thread's stack via
``sys._current_frames()`` every ``interval`` seconds and accumulates:

* **self** samples — the function on top of the stack (where wall time
  is actually being spent, GIL permitting), and
* **cumulative** samples — every function anywhere on the stack
  (deduplicated per sample, so recursion doesn't double-count).

Because sampling happens from a separate thread, the profiled code
runs unmodified — no ``sys.settrace`` overhead, which is what lets
``repro compute --profile`` report on a production-sized
materialisation without distorting it.  Numpy kernels and mmap I/O
that hold the GIL *are* attributed to the Python frame that entered
them, which is exactly the attribution the flat table needs.

Usage::

    with SamplingProfiler() as profiler:
        expensive()
    print(profiler.report())

:class:`ContinuousProfiler` is the always-on variant servers run: a
low-Hz sampler over *all* threads accumulating collapsed stacks
(``root;caller;leaf count`` — the flamegraph input format) into
rotating time windows, optionally dumped to rotating files, served on
``GET /debug/profile``.
"""

from __future__ import annotations

import os
import sys
import threading
import time
from collections import deque
from pathlib import Path

__all__ = [
    "ContinuousProfiler",
    "SamplingProfiler",
    "get_continuous_profiler",
    "start_continuous_profiler",
    "stop_continuous_profiler",
]


class SamplingProfiler:
    """Samples one thread's stack; renders a flat self/cumulative table."""

    def __init__(self, interval: float = 0.002, thread_ident: int | None = None):
        if interval <= 0:
            raise ValueError("interval must be positive")
        self.interval = interval
        self._target = thread_ident
        self._samples = 0
        self._self_counts: dict[tuple[str, str, int], int] = {}
        self._cumulative_counts: dict[tuple[str, str, int], int] = {}
        self._stop = threading.Event()
        self._thread: threading.Thread | None = None
        self._started_at: float | None = None
        self._elapsed = 0.0

    # ------------------------------------------------------------------
    def start(self) -> "SamplingProfiler":
        if self._thread is not None:
            raise RuntimeError("profiler already running")
        if self._target is None:
            self._target = threading.get_ident()
        self._stop.clear()
        self._started_at = time.perf_counter()
        self._thread = threading.Thread(
            target=self._run, name="repro-profiler", daemon=True
        )
        self._thread.start()
        return self

    def stop(self) -> "SamplingProfiler":
        if self._thread is None:
            return self
        self._stop.set()
        self._thread.join()
        self._thread = None
        if self._started_at is not None:
            self._elapsed += time.perf_counter() - self._started_at
            self._started_at = None
        return self

    def __enter__(self) -> "SamplingProfiler":
        return self.start()

    def __exit__(self, *exc_info) -> None:
        self.stop()

    # ------------------------------------------------------------------
    def _run(self) -> None:
        while not self._stop.wait(self.interval):
            frame = sys._current_frames().get(self._target)
            if frame is None:
                continue
            self._samples += 1
            top = True
            seen: set[tuple[str, str, int]] = set()
            while frame is not None:
                code = frame.f_code
                key = (code.co_name, code.co_filename, code.co_firstlineno)
                if top:
                    self._self_counts[key] = self._self_counts.get(key, 0) + 1
                    top = False
                if key not in seen:
                    seen.add(key)
                    self._cumulative_counts[key] = (
                        self._cumulative_counts.get(key, 0) + 1
                    )
                frame = frame.f_back
            del frame

    # ------------------------------------------------------------------
    @property
    def samples(self) -> int:
        return self._samples

    @property
    def elapsed(self) -> float:
        if self._started_at is not None:
            return self._elapsed + (time.perf_counter() - self._started_at)
        return self._elapsed

    def as_dict(self, limit: int = 30) -> dict:
        """JSON-friendly profile: rows ranked by self samples."""
        rows = []
        for key, self_count in sorted(
            self._self_counts.items(), key=lambda item: -item[1]
        )[:limit]:
            name, filename, line = key
            rows.append(
                {
                    "function": name,
                    "location": f"{_short_path(filename)}:{line}",
                    "self_samples": self_count,
                    "cumulative_samples": self._cumulative_counts.get(key, self_count),
                }
            )
        return {
            "samples": self._samples,
            "interval_seconds": self.interval,
            "elapsed_seconds": self.elapsed,
            "rows": rows,
        }

    def report(self, limit: int = 30) -> str:
        """The flat self/cumulative table, ready to print."""
        profile = self.as_dict(limit)
        total = max(profile["samples"], 1)
        lines = [
            f"# wall-clock sampling profile: {profile['samples']} samples "
            f"@ {self.interval * 1000:.1f}ms over {profile['elapsed_seconds']:.2f}s",
            f"{'self%':>7} {'cum%':>7} {'self':>6} {'cum':>6}  function (location)",
        ]
        for row in profile["rows"]:
            lines.append(
                f"{100 * row['self_samples'] / total:6.1f}% "
                f"{100 * row['cumulative_samples'] / total:6.1f}% "
                f"{row['self_samples']:>6} {row['cumulative_samples']:>6}  "
                f"{row['function']} ({row['location']})"
            )
        if not profile["rows"]:
            lines.append("  (no samples — the run finished within one interval)")
        return "\n".join(lines)


def _short_path(filename: str) -> str:
    """Trim a source path to the informative tail (``repro/...``)."""
    for marker in ("/repro/", "\\repro\\"):
        index = filename.rfind(marker)
        if index >= 0:
            return "repro/" + filename[index + len(marker):].replace("\\", "/")
    parts = filename.replace("\\", "/").rsplit("/", 2)
    return "/".join(parts[-2:])


def _prof_metrics():
    from repro.obs.registry import get_registry

    registry = get_registry()
    return (
        registry.counter(
            "repro_obs_profiler_samples_total",
            "Stack samples taken by the continuous profiler.",
        ),
        registry.counter(
            "repro_obs_profiler_windows_total",
            "Profile windows rotated by the continuous profiler.",
        ),
    )


class ContinuousProfiler:
    """Always-on low-Hz sampler over all threads, collapsed-stack output.

    Samples every ``interval`` seconds (default 10 Hz — low enough
    that the sampling thread is invisible next to request work) and
    accumulates collapsed stacks per time window.  Windows rotate
    every ``window_seconds`` and the last ``windows`` are retained, so
    ``collapsed()`` always answers "where has this process spent the
    last few minutes" without unbounded growth.  With ``dump_dir``
    set, each rotated window is also written as a
    ``profile-<pid>-<seq>.collapsed`` file (``stack count`` lines —
    feed them straight to a flamegraph tool), keeping only the newest
    ``windows`` files.
    """

    def __init__(
        self,
        interval: float = 0.1,
        window_seconds: float = 60.0,
        windows: int = 5,
        dump_dir: str | os.PathLike | None = None,
        max_depth: int = 64,
    ):
        if interval <= 0:
            raise ValueError("interval must be positive")
        if windows < 1:
            raise ValueError("windows must be >= 1")
        self.interval = interval
        self.window_seconds = window_seconds
        self.windows = windows
        self.max_depth = max_depth
        self.dump_dir = Path(dump_dir) if dump_dir else None
        self._lock = threading.Lock()
        self._current: dict[str, int] = {}
        self._retained: deque[dict[str, int]] = deque(maxlen=max(1, windows - 1))
        self._samples = 0
        self._rotations = 0
        self._dump_seq = 0
        self._stop = threading.Event()
        self._thread: threading.Thread | None = None
        self._started_at: float | None = None
        if self.dump_dir is not None:
            self.dump_dir.mkdir(parents=True, exist_ok=True)

    # ------------------------------------------------------------------
    def start(self) -> "ContinuousProfiler":
        if self._thread is not None:
            return self
        self._stop.clear()
        self._started_at = time.time()
        self._thread = threading.Thread(
            target=self._run, name="repro-cont-profiler", daemon=True
        )
        self._thread.start()
        return self

    def stop(self) -> "ContinuousProfiler":
        if self._thread is None:
            return self
        self._stop.set()
        self._thread.join()
        self._thread = None
        return self

    @property
    def running(self) -> bool:
        return self._thread is not None

    # ------------------------------------------------------------------
    def _run(self) -> None:
        sampled, rotated = _prof_metrics()
        own_ident = threading.get_ident()
        window_start = time.monotonic()
        while not self._stop.wait(self.interval):
            now = time.monotonic()
            frames = sys._current_frames()
            stacks: list[str] = []
            for ident, frame in frames.items():
                if ident == own_ident:
                    continue
                parts: list[str] = []
                depth = 0
                while frame is not None and depth < self.max_depth:
                    code = frame.f_code
                    parts.append(f"{_short_path(code.co_filename)}:{code.co_name}")
                    frame = frame.f_back
                    depth += 1
                if parts:
                    stacks.append(";".join(reversed(parts)))
            del frames
            with self._lock:
                for stack in stacks:
                    self._current[stack] = self._current.get(stack, 0) + 1
                self._samples += len(stacks)
                if now - window_start >= self.window_seconds:
                    self._rotate_locked()
                    window_start = now
                    rotated.inc()
            sampled.inc(len(stacks))

    def _rotate_locked(self) -> None:
        window, self._current = self._current, {}
        self._retained.append(window)
        self._rotations += 1
        if self.dump_dir is not None and window:
            self._dump_seq += 1
            path = self.dump_dir / f"profile-{os.getpid()}-{self._dump_seq}.collapsed"
            try:
                with open(path, "w", encoding="utf-8") as handle:
                    for stack, count in sorted(window.items(), key=lambda kv: -kv[1]):
                        handle.write(f"{stack} {count}\n")
                dumps = sorted(
                    self.dump_dir.glob(f"profile-{os.getpid()}-*.collapsed"),
                    key=lambda p: int(p.stem.rsplit("-", 1)[1]),
                )
                if len(dumps) > self.windows:
                    for stale in dumps[: len(dumps) - self.windows]:
                        stale.unlink(missing_ok=True)
            except OSError:
                pass

    def rotate(self) -> None:
        """Force a window rotation (tests; shutdown flush)."""
        with self._lock:
            self._rotate_locked()

    # ------------------------------------------------------------------
    def collapsed(self) -> dict[str, int]:
        """Merged collapsed stacks over the retained windows + current."""
        merged: dict[str, int] = {}
        with self._lock:
            for window in list(self._retained) + [self._current]:
                for stack, count in window.items():
                    merged[stack] = merged.get(stack, 0) + count
        return merged

    def render(self, limit: int | None = None) -> str:
        """``stack count`` lines, hottest first (flamegraph input)."""
        rows = sorted(self.collapsed().items(), key=lambda kv: (-kv[1], kv[0]))
        if limit is not None:
            rows = rows[:limit]
        if not rows:
            return "(no samples yet)\n"
        return "\n".join(f"{stack} {count}" for stack, count in rows) + "\n"

    def as_dict(self, limit: int = 20) -> dict:
        rows = sorted(self.collapsed().items(), key=lambda kv: (-kv[1], kv[0]))[:limit]
        with self._lock:
            return {
                "interval_seconds": self.interval,
                "window_seconds": self.window_seconds,
                "windows_retained": len(self._retained),
                "samples": self._samples,
                "rotations": self._rotations,
                "running": self._thread is not None,
                "started_at": self._started_at,
                "hottest": [
                    {"stack": stack, "count": count} for stack, count in rows
                ],
            }


# ----------------------------------------------------------------------
# Process-wide continuous profiler

_CONTINUOUS: ContinuousProfiler | None = None
_CONTINUOUS_LOCK = threading.Lock()


def start_continuous_profiler(
    interval: float = 0.1,
    window_seconds: float = 60.0,
    windows: int = 5,
    dump_dir: str | os.PathLike | None = None,
) -> ContinuousProfiler:
    """Get-or-create-and-start the process-wide continuous profiler."""
    global _CONTINUOUS
    with _CONTINUOUS_LOCK:
        if _CONTINUOUS is None:
            _CONTINUOUS = ContinuousProfiler(
                interval=interval,
                window_seconds=window_seconds,
                windows=windows,
                dump_dir=dump_dir,
            )
        _CONTINUOUS.start()
        return _CONTINUOUS


def get_continuous_profiler() -> ContinuousProfiler | None:
    return _CONTINUOUS


def stop_continuous_profiler() -> None:
    global _CONTINUOUS
    with _CONTINUOUS_LOCK:
        if _CONTINUOUS is not None:
            _CONTINUOUS.stop()
            _CONTINUOUS = None
