"""Process-wide metrics registry with Prometheus text exposition.

One :class:`MetricsRegistry` instance (the module-level default,
:func:`get_registry`) carries every cross-layer series the system
emits — kernel dispatch, cubeMasking pruning, runner/parallel
resilience events, storage I/O — so a single scrape of ``/metrics``
(or :meth:`MetricsRegistry.render` anywhere) sees the whole pipeline.
The :class:`~repro.service.metrics.ServiceMetrics` request collector
is built on the same primitives with a private registry.

Three primitives, all stdlib and thread-safe:

* :class:`Counter` — monotonically increasing float, optional labels,
* :class:`Gauge` — settable value, optional labels, optionally backed
  by a callable sampled at render time (uptime, queue depths...),
* :class:`Histogram` — cumulative fixed buckets in the standard
  Prometheus layout (every observation lands in all buckets with
  ``le`` >= its value, plus ``+Inf``), with ``_sum``/``_count``.

Metric creation is *get-or-create*: asking twice for the same name
returns the same object (and raises :class:`ValueError` on a
kind/labelnames mismatch), so instrumentation sites never need import
ordering.  Label values are escaped per the exposition format
(``\\`` → ``\\\\``, ``"`` → ``\\"``, newline → ``\\n``) — the fix for
the unescaped interpolation the old request collector shipped with.
"""

from __future__ import annotations

import platform
import threading
import time
from bisect import bisect_left

__all__ = [
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "escape_label_value",
    "format_value",
    "get_registry",
    "install_standard_metrics",
]

#: Default histogram buckets (seconds) — latency-shaped.
DEFAULT_BUCKETS = (
    0.0005, 0.001, 0.0025, 0.005, 0.01, 0.025, 0.05, 0.1, 0.25, 0.5, 1.0, 2.5,
)

_ESCAPES = {"\\": "\\\\", '"': '\\"', "\n": "\\n"}


def escape_label_value(value) -> str:
    """Escape a label value for the text exposition format."""
    text = str(value)
    if '"' in text or "\\" in text or "\n" in text:
        text = "".join(_ESCAPES.get(ch, ch) for ch in text)
    return text


def format_value(value: float) -> str:
    """Render a sample value the way Prometheus clients do."""
    if isinstance(value, float):
        if value != value:  # NaN
            return "NaN"
        if value in (float("inf"), float("-inf")):
            return "+Inf" if value > 0 else "-Inf"
        if value.is_integer():
            return str(int(value))
        return repr(value)
    return str(value)


def _label_pairs(labelnames: tuple[str, ...], labels: dict) -> tuple:
    if set(labels) != set(labelnames):
        raise ValueError(
            f"labels {sorted(labels)} do not match declared labelnames {sorted(labelnames)}"
        )
    return tuple(str(labels[name]) for name in labelnames)


def _render_labels(labelnames: tuple[str, ...], values: tuple, extra: str = "") -> str:
    parts = [
        f'{name}="{escape_label_value(value)}"'
        for name, value in zip(labelnames, values)
    ]
    if extra:
        parts.append(extra)
    return "{" + ",".join(parts) + "}" if parts else ""


class _Metric:
    """Shared bookkeeping: name, help text, declared labels, a lock."""

    kind = "untyped"

    def __init__(self, name: str, help_text: str, labelnames: tuple[str, ...] = ()):
        self.name = name
        self.help = help_text
        self.labelnames = tuple(labelnames)
        self._lock = threading.Lock()

    def _header(self) -> list[str]:
        return [f"# HELP {self.name} {self.help}", f"# TYPE {self.name} {self.kind}"]


class Counter(_Metric):
    """A monotonically increasing value (per label set)."""

    kind = "counter"

    def __init__(self, name: str, help_text: str, labelnames: tuple[str, ...] = ()):
        super().__init__(name, help_text, labelnames)
        self._values: dict[tuple, float] = {}

    def inc(self, amount: float = 1.0, **labels) -> None:
        if amount < 0:
            raise ValueError(f"counter {self.name} cannot decrease (inc {amount})")
        key = _label_pairs(self.labelnames, labels)
        with self._lock:
            self._values[key] = self._values.get(key, 0.0) + amount

    def value(self, **labels) -> float:
        key = _label_pairs(self.labelnames, labels)
        with self._lock:
            return self._values.get(key, 0.0)

    def total(self) -> float:
        with self._lock:
            return sum(self._values.values())

    def items(self) -> list[tuple[dict, float]]:
        """``(labels, value)`` pairs for every live series."""
        with self._lock:
            return [
                (dict(zip(self.labelnames, key)), value)
                for key, value in sorted(self._values.items())
            ]

    def render(self) -> list[str]:
        lines = self._header()
        with self._lock:
            if not self._values and not self.labelnames:
                lines.append(f"{self.name} 0")
            for key in sorted(self._values):
                lines.append(
                    f"{self.name}{_render_labels(self.labelnames, key)} "
                    f"{format_value(self._values[key])}"
                )
        return lines

    def snapshot(self) -> dict:
        with self._lock:
            if not self.labelnames:
                return {"value": self._values.get((), 0.0)}
            return {
                "series": {
                    ",".join(f"{n}={v}" for n, v in zip(self.labelnames, key)): value
                    for key, value in sorted(self._values.items())
                }
            }


class Gauge(Counter):
    """A value that can go up, down, or be computed at render time."""

    kind = "gauge"

    def __init__(self, name: str, help_text: str, labelnames: tuple[str, ...] = ()):
        super().__init__(name, help_text, labelnames)
        self._function = None

    def inc(self, amount: float = 1.0, **labels) -> None:
        key = _label_pairs(self.labelnames, labels)
        with self._lock:
            self._values[key] = self._values.get(key, 0.0) + amount

    def dec(self, amount: float = 1.0, **labels) -> None:
        self.inc(-amount, **labels)

    def set(self, value: float, **labels) -> None:
        key = _label_pairs(self.labelnames, labels)
        with self._lock:
            self._values[key] = float(value)

    def set_function(self, function) -> None:
        """Sample ``function()`` at every render (unlabelled gauges only)."""
        if self.labelnames:
            raise ValueError(f"gauge {self.name}: set_function needs an unlabelled gauge")
        self._function = function

    def value(self, **labels) -> float:
        if self._function is not None and not labels:
            return float(self._function())
        return super().value(**labels)

    def render(self) -> list[str]:
        if self._function is not None:
            return self._header() + [f"{self.name} {format_value(float(self._function()))}"]
        return super().render()

    def snapshot(self) -> dict:
        if self._function is not None:
            return {"value": float(self._function())}
        return super().snapshot()


class Histogram(_Metric):
    """Cumulative fixed-bucket histogram with ``_sum`` and ``_count``."""

    kind = "histogram"

    def __init__(
        self,
        name: str,
        help_text: str,
        buckets: tuple[float, ...] = DEFAULT_BUCKETS,
        labelnames: tuple[str, ...] = (),
    ):
        super().__init__(name, help_text, labelnames)
        self.buckets = tuple(sorted(buckets))
        # key -> ([per-bucket counts..., +Inf count], sum, count)
        self._series: dict[tuple, list] = {}

    def observe(self, value: float, **labels) -> None:
        key = _label_pairs(self.labelnames, labels)
        with self._lock:
            state = self._series.get(key)
            if state is None:
                state = self._series[key] = [[0] * (len(self.buckets) + 1), 0.0, 0]
            state[0][bisect_left(self.buckets, value)] += 1
            state[1] += value
            state[2] += 1

    def count(self, **labels) -> int:
        key = _label_pairs(self.labelnames, labels)
        with self._lock:
            state = self._series.get(key)
            return state[2] if state is not None else 0

    def render(self) -> list[str]:
        lines = self._header()
        with self._lock:
            for key in sorted(self._series):
                counts, total, observations = self._series[key]
                cumulative = 0
                for bound, bucket_count in zip(self.buckets, counts):
                    cumulative += bucket_count
                    labels = _render_labels(
                        self.labelnames, key, f'le="{format_value(float(bound))}"'
                    )
                    lines.append(f"{self.name}_bucket{labels} {cumulative}")
                cumulative += counts[-1]
                labels = _render_labels(self.labelnames, key, 'le="+Inf"')
                lines.append(f"{self.name}_bucket{labels} {cumulative}")
                plain = _render_labels(self.labelnames, key)
                lines.append(f"{self.name}_sum{plain} {format_value(float(total))}")
                lines.append(f"{self.name}_count{plain} {observations}")
        return lines

    def snapshot(self) -> dict:
        with self._lock:
            return {
                "series": {
                    ",".join(f"{n}={v}" for n, v in zip(self.labelnames, key)) or "_": {
                        "count": state[2],
                        "sum": state[1],
                    }
                    for key, state in sorted(self._series.items())
                }
            }


class MetricsRegistry:
    """A named collection of metrics with one exposition writer.

    ``counter`` / ``gauge`` / ``histogram`` are get-or-create: the
    first call registers, later calls return the same object so any
    module can name a metric without coordinating imports.
    """

    def __init__(self):
        self._lock = threading.Lock()
        self._metrics: dict[str, _Metric] = {}

    # -- registration --------------------------------------------------
    def _get_or_create(self, cls, name: str, help_text: str, **kwargs) -> _Metric:
        with self._lock:
            existing = self._metrics.get(name)
            if existing is not None:
                if type(existing) is not cls:
                    raise ValueError(
                        f"metric {name!r} already registered as {existing.kind}"
                    )
                declared = kwargs.get("labelnames", ())
                if tuple(declared) != existing.labelnames:
                    raise ValueError(
                        f"metric {name!r} already registered with labels "
                        f"{existing.labelnames}, requested {tuple(declared)}"
                    )
                return existing
            metric = cls(name, help_text, **kwargs)
            self._metrics[name] = metric
            return metric

    def counter(self, name: str, help_text: str = "", labelnames=()) -> Counter:
        return self._get_or_create(Counter, name, help_text, labelnames=tuple(labelnames))

    def gauge(self, name: str, help_text: str = "", labelnames=()) -> Gauge:
        return self._get_or_create(Gauge, name, help_text, labelnames=tuple(labelnames))

    def histogram(
        self, name: str, help_text: str = "", buckets=DEFAULT_BUCKETS, labelnames=()
    ) -> Histogram:
        return self._get_or_create(
            Histogram, name, help_text, buckets=tuple(buckets), labelnames=tuple(labelnames)
        )

    def get(self, name: str) -> _Metric | None:
        with self._lock:
            return self._metrics.get(name)

    def names(self) -> list[str]:
        with self._lock:
            return sorted(self._metrics)

    # -- output --------------------------------------------------------
    def render(self) -> str:
        """The full registry in Prometheus text exposition format."""
        with self._lock:
            metrics = [self._metrics[name] for name in sorted(self._metrics)]
        lines: list[str] = []
        for metric in metrics:
            lines.extend(metric.render())
        return "\n".join(lines) + ("\n" if lines else "")

    def snapshot(self) -> dict:
        """A JSON-friendly dump (the ``/debug/vars`` payload)."""
        with self._lock:
            metrics = dict(self._metrics)
        return {
            name: {"kind": metric.kind, "help": metric.help, **metric.snapshot()}
            for name, metric in sorted(metrics.items())
        }

    def reset(self) -> None:
        """Drop every registered metric (test isolation only)."""
        with self._lock:
            self._metrics.clear()


# ----------------------------------------------------------------------
# The process-wide default registry.
# ----------------------------------------------------------------------
_DEFAULT = MetricsRegistry()


def install_standard_metrics(registry: MetricsRegistry) -> None:
    """Register the identity/uptime gauges every scrape target needs."""
    from repro._version import __version__

    build = registry.gauge(
        "repro_build_info",
        "Build identity; the value is always 1, the labels carry the versions.",
        labelnames=("version", "python"),
    )
    build.set(1, version=__version__, python=platform.python_version())
    started = time.time()
    start_gauge = registry.gauge(
        "repro_process_start_time_seconds",
        "Unix time this process registered its metrics.",
    )
    start_gauge.set(started)
    uptime = registry.gauge(
        "repro_process_uptime_seconds", "Seconds since process metrics registration."
    )
    uptime.set_function(lambda: time.time() - started)


install_standard_metrics(_DEFAULT)


def get_registry() -> MetricsRegistry:
    """The process-wide registry shared by every instrumented layer."""
    return _DEFAULT
