"""Structured JSONL slow-query log.

Requests slower than a threshold get one JSON line each with enough
context to diagnose them after the fact: trace/span IDs, endpoint and
status, wall time, the deadline budget (if the hop carried one), and
per-request annotations contributed by the layers the request crossed
— cache hit/miss from the engine, scatter fan-out width from the
router, kernel counter snapshots.  Layers annotate through a
contextvar (:func:`annotate`), so the handler that finally decides
"this was slow" sees everything the request touched without any layer
knowing about the log.

Records look like::

    {"ts": ..., "event": "slow_query", "trace_id": "...", "span_id": "...",
     "endpoint": "/contained", "status": 200, "duration_ms": 154.2,
     "threshold_ms": 100.0, "role": "server", "deadline_ms": 2000,
     "cache": "miss", "fanout": 4, "kernel_pairs": 123456}

The file is size-bounded the same way the span ring is: it rotates to
``<path>.1`` after ``max_records`` lines.
"""

from __future__ import annotations

import contextvars
import json
import os
import threading
import time
from pathlib import Path

__all__ = [
    "SlowQueryLog",
    "annotate",
    "get_slow_log",
    "install_slow_log",
    "request_annotations",
    "uninstall_slow_log",
]

DEFAULT_MAX_RECORDS = 10000

#: Per-request annotation dict; handlers bind a fresh one per request.
_ANNOTATIONS: contextvars.ContextVar[dict | None] = contextvars.ContextVar(
    "repro_obs_slowlog_annotations", default=None
)


def begin_request():
    """Bind a fresh annotation dict for this request; returns a token."""
    return _ANNOTATIONS.set({})


def end_request(token) -> None:
    _ANNOTATIONS.reset(token)


def annotate(**fields) -> None:
    """Attach fields to the current request's eventual slow record.

    A no-op outside a request (the engine can annotate
    unconditionally; CLI compute paths simply have no bound dict).
    """
    current = _ANNOTATIONS.get()
    if current is not None:
        current.update(fields)


def request_annotations() -> dict:
    """The current request's annotations (empty outside a request)."""
    current = _ANNOTATIONS.get()
    return dict(current) if current else {}


def _kernel_counters() -> dict:
    """Process kernel-counter totals at record time.

    Queries don't run kernels themselves, but a slow query racing a
    background recompute is a classic cause — the snapshot lets the
    reader correlate without joining against a scrape.
    """
    from repro.obs.registry import get_registry

    registry = get_registry()
    out = {}
    for name in ("repro_kernel_calls_total", "repro_kernel_pairs_total"):
        metric = registry.get(name)
        if metric is not None:
            out[name.removeprefix("repro_").removesuffix("_total")] = int(metric.total())
    return out


def _metrics():
    from repro.obs.registry import get_registry

    registry = get_registry()
    return (
        registry.counter(
            "repro_obs_slow_queries_total",
            "Requests recorded in the slow-query log.",
            labelnames=("endpoint",),
        ),
        registry.counter(
            "repro_obs_slowlog_write_errors_total",
            "Slow-query log writes that failed.",
        ),
    )


class SlowQueryLog:
    """Threshold-gated, size-bounded JSONL log of slow requests."""

    def __init__(
        self,
        path: str | os.PathLike,
        threshold_ms: float = 100.0,
        max_records: int = DEFAULT_MAX_RECORDS,
    ):
        self.path = Path(path)
        self.threshold_ms = float(threshold_ms)
        self.max_records = max_records
        self._lock = threading.Lock()
        self._handle = None
        self._file_records = 0
        self._recorded = 0
        self.path.parent.mkdir(parents=True, exist_ok=True)

    def maybe_record(
        self,
        endpoint: str,
        duration_s: float,
        status: int | None = None,
        trace_id: str | None = None,
        span_id: str | None = None,
        **fields,
    ) -> dict | None:
        """Record the request if it crossed the threshold.

        Merges the per-request annotations bound via :func:`annotate`;
        explicit keyword fields win.  Returns the record written, or
        None when the request was fast enough.
        """
        duration_ms = duration_s * 1000.0
        if duration_ms < self.threshold_ms:
            return None
        record = {
            "ts": time.time(),
            "event": "slow_query",
            "trace_id": trace_id,
            "span_id": span_id,
            "endpoint": endpoint,
            "status": status,
            "duration_ms": round(duration_ms, 3),
            "threshold_ms": self.threshold_ms,
        }
        record.update(request_annotations())
        record.update({k: v for k, v in fields.items() if v is not None})
        record.update(_kernel_counters())
        slow_total, write_errors = _metrics()
        with self._lock:
            self._recorded += 1
            try:
                if self._handle is None:
                    self._handle = open(self.path, "a", encoding="utf-8")
                    self._file_records = sum(
                        1 for _ in open(self.path, encoding="utf-8")
                    )
                self._handle.write(json.dumps(record, default=str) + "\n")
                self._handle.flush()
                self._file_records += 1
                if self._file_records >= self.max_records:
                    self._handle.close()
                    os.replace(self.path, f"{self.path}.1")
                    self._handle = open(self.path, "a", encoding="utf-8")
                    self._file_records = 0
            except OSError:
                write_errors.inc()
                try:
                    if self._handle is not None:
                        self._handle.close()
                except OSError:
                    pass
                self._handle = None
        slow_total.inc(endpoint=endpoint)
        return record

    def stats(self) -> dict:
        with self._lock:
            return {
                "path": str(self.path),
                "threshold_ms": self.threshold_ms,
                "recorded_total": self._recorded,
            }

    def close(self) -> None:
        with self._lock:
            if self._handle is not None:
                try:
                    self._handle.close()
                except OSError:
                    pass
                self._handle = None


# ----------------------------------------------------------------------
# Process-wide log

_LOG: SlowQueryLog | None = None
_LOG_LOCK = threading.Lock()


def install_slow_log(
    path: str | os.PathLike,
    threshold_ms: float = 100.0,
    max_records: int = DEFAULT_MAX_RECORDS,
) -> SlowQueryLog:
    """Get-or-create the process-wide slow-query log (first call wins)."""
    global _LOG
    with _LOG_LOCK:
        if _LOG is None:
            _LOG = SlowQueryLog(path, threshold_ms=threshold_ms, max_records=max_records)
        return _LOG


def get_slow_log() -> SlowQueryLog | None:
    return _LOG


def uninstall_slow_log() -> None:
    global _LOG
    with _LOG_LOCK:
        if _LOG is not None:
            _LOG.close()
            _LOG = None
