"""Bounded per-process span store with optional JSONL ring persistence.

Every finished span (see :mod:`repro.obs.tracing`) can be fed to a
:class:`SpanStore` — a thread-safe bounded ring of span records that
is queryable by trace ID.  Servers install the process-wide store at
boot (:func:`install_span_store`) and serve it on
``GET /debug/trace/<trace_id>``; the cluster router scatter/gathers
the shard stores and assembles one tree (:func:`assemble_trace`),
rendered by ``repro trace <id>`` (:func:`render_trace`).

Persistence is a two-file JSONL ring per process: records append to
``spans-<pid>.jsonl`` inside the configured directory and the file
rotates to ``spans-<pid>.jsonl.1`` once it holds ``max_records``
lines, so disk usage is bounded at roughly two rings regardless of
uptime.  Pool workers handed a span directory through the fan-out
metadata write their own per-PID ring into the same directory, which
is what lets ``repro trace --dir`` assemble a compute run's tree
across worker processes.
"""

from __future__ import annotations

import json
import os
import threading
from collections import deque
from pathlib import Path

__all__ = [
    "SpanStore",
    "assemble_trace",
    "get_span_store",
    "install_span_store",
    "read_span_files",
    "render_trace",
    "uninstall_span_store",
]

#: Environment variable servers and pool workers consult for a default
#: persistence directory (set by ``--span-dir`` / fan-out metadata).
SPAN_DIR_ENV = "REPRO_SPAN_DIR"

DEFAULT_MAX_RECORDS = 4096


def _metrics():
    from repro.obs.registry import get_registry

    registry = get_registry()
    return (
        registry.counter(
            "repro_obs_spans_recorded_total",
            "Finished spans appended to the process span store.",
        ),
        registry.counter(
            "repro_obs_spanstore_rotations_total",
            "JSONL span-ring file rotations.",
        ),
        registry.counter(
            "repro_obs_spanstore_write_errors_total",
            "Span-ring JSONL writes that failed (store stays in-memory).",
        ),
    )


class SpanStore:
    """Thread-safe bounded ring of span records, queryable by trace."""

    def __init__(
        self,
        path: str | os.PathLike | None = None,
        max_records: int = DEFAULT_MAX_RECORDS,
    ):
        self._lock = threading.Lock()
        self._ring: deque[dict] = deque(maxlen=max_records)
        self.max_records = max_records
        self._dir: Path | None = Path(path) if path else None
        self._handle = None
        self._file_records = 0
        self._recorded = 0
        if self._dir is not None:
            self._dir.mkdir(parents=True, exist_ok=True)
            self._current = self._dir / f"spans-{os.getpid()}.jsonl"

    # ------------------------------------------------------------------
    def record(self, record: dict) -> None:
        """Append one finished-span record (usable as a span sink)."""
        counters = _metrics()
        with self._lock:
            self._ring.append(record)
            self._recorded += 1
            if self._dir is not None:
                self._write_locked(record, counters)
        counters[0].inc()

    def _write_locked(self, record: dict, counters) -> None:
        try:
            if self._handle is None:
                self._handle = open(self._current, "a", encoding="utf-8")
                self._file_records = sum(1 for _ in open(self._current, encoding="utf-8"))
            self._handle.write(json.dumps(record, default=str) + "\n")
            self._handle.flush()
            self._file_records += 1
            if self._file_records >= self.max_records:
                self._handle.close()
                os.replace(self._current, f"{self._current}.1")
                self._handle = open(self._current, "a", encoding="utf-8")
                self._file_records = 0
                counters[1].inc()
        except OSError:
            # Persistence is best-effort: a full disk must not take the
            # traced request down with it.
            counters[2].inc()
            try:
                if self._handle is not None:
                    self._handle.close()
            except OSError:
                pass
            self._handle = None

    # ------------------------------------------------------------------
    def spans_for(self, trace_id: str) -> list[dict]:
        """All ring records belonging to ``trace_id`` (oldest first)."""
        with self._lock:
            return [r for r in self._ring if r.get("trace_id") == trace_id]

    def recent(self, limit: int = 50) -> list[dict]:
        with self._lock:
            items = list(self._ring)
        return items[-limit:]

    def trace_ids(self, limit: int = 50) -> list[str]:
        """Most recently seen trace IDs, newest first, deduplicated."""
        seen: dict[str, None] = {}
        with self._lock:
            for record in reversed(self._ring):
                tid = record.get("trace_id")
                if tid and tid not in seen:
                    seen[tid] = None
                    if len(seen) >= limit:
                        break
        return list(seen)

    def stats(self) -> dict:
        with self._lock:
            return {
                "spans": len(self._ring),
                "recorded_total": self._recorded,
                "max_records": self.max_records,
                "dir": str(self._dir) if self._dir else None,
            }

    def close(self) -> None:
        with self._lock:
            if self._handle is not None:
                try:
                    self._handle.close()
                except OSError:
                    pass
                self._handle = None


# ----------------------------------------------------------------------
# Process-wide store

_STORE: SpanStore | None = None
_STORE_LOCK = threading.Lock()


def install_span_store(
    path: str | os.PathLike | None = None,
    max_records: int = DEFAULT_MAX_RECORDS,
) -> SpanStore:
    """Get-or-create the process-wide store and hook it to the tracer.

    ``path`` defaults to ``$REPRO_SPAN_DIR`` when set, else the store
    is memory-only.  Idempotent: repeat calls return the existing
    store (the first caller's configuration wins).
    """
    global _STORE
    from repro.obs import tracing

    with _STORE_LOCK:
        if _STORE is None:
            if path is None:
                path = os.environ.get(SPAN_DIR_ENV) or None
            _STORE = SpanStore(path=path, max_records=max_records)
            tracing.add_span_sink(_STORE.record)
        return _STORE


def get_span_store() -> SpanStore | None:
    """The installed process-wide store, if any."""
    return _STORE


def uninstall_span_store() -> None:
    """Detach and drop the process-wide store (tests)."""
    global _STORE
    from repro.obs import tracing

    with _STORE_LOCK:
        if _STORE is not None:
            tracing.remove_span_sink(_STORE.record)
            _STORE.close()
            _STORE = None


# ----------------------------------------------------------------------
# Reading rings back and assembling trees


def read_span_files(target: str | os.PathLike, trace_id: str | None = None) -> list[dict]:
    """Load span records from a JSONL file or a span directory.

    A directory is scanned for every ``spans-*.jsonl`` ring (current
    and rotated), which covers multi-process runs — server plus pool
    workers writing their own per-PID rings.  Unparseable lines (a
    torn tail from a killed process) are skipped.
    """
    path = Path(target)
    files: list[Path]
    if path.is_dir():
        files = sorted(path.glob("spans-*.jsonl*"))
    else:
        files = [path]
    records: list[dict] = []
    for file in files:
        try:
            with open(file, encoding="utf-8") as handle:
                for line in handle:
                    line = line.strip()
                    if not line:
                        continue
                    try:
                        record = json.loads(line)
                    except ValueError:
                        continue
                    if trace_id is None or record.get("trace_id") == trace_id:
                        records.append(record)
        except OSError:
            continue
    return records


def assemble_trace(records: list[dict]) -> list[dict]:
    """Build parent/child trees from span records of one trace.

    Records may come from several processes (router + shards + pool
    workers); they are deduplicated by span ID and stitched by
    ``parent_id``.  Returns the list of root nodes, each
    ``{"record": <span record>, "children": [<node>, ...]}``, roots
    and children ordered by wall-clock start.  Spans whose parent is
    missing from the set (e.g. evicted from a ring) surface as roots
    rather than disappearing.
    """
    by_id: dict[str, dict] = {}
    for record in records:
        span_id = record.get("span_id")
        if span_id and span_id not in by_id:
            by_id[span_id] = record
    nodes = {
        span_id: {"record": record, "children": []}
        for span_id, record in by_id.items()
    }
    roots: list[dict] = []
    for span_id, node in nodes.items():
        parent_id = node["record"].get("parent_id")
        if parent_id and parent_id in nodes and parent_id != span_id:
            nodes[parent_id]["children"].append(node)
        else:
            roots.append(node)
    start = lambda node: node["record"].get("start") or 0.0  # noqa: E731
    for node in nodes.values():
        node["children"].sort(key=start)
    roots.sort(key=start)
    return roots


def _node_ms(record: dict) -> float:
    return (record.get("duration_ns") or 0) / 1e6


def _self_ms(node: dict) -> float:
    own = _node_ms(node["record"])
    children = sum(_node_ms(child["record"]) for child in node["children"])
    return max(0.0, own - children)


def render_trace(records: list[dict]) -> str:
    """Render one trace's records as an indented tree.

    Each line shows the span name, where it ran (the ``role`` field
    servers stamp on request spans), total and self wall time, and —
    for hops that carried an ``X-Deadline-Ms`` budget — how much of
    the budget the hop consumed, so a deadline overrun points at the
    hop that spent it.
    """
    roots = assemble_trace(records)
    if not roots:
        return "(no spans)\n"
    trace_id = roots[0]["record"].get("trace_id", "?")
    total = len({r.get("span_id") for r in records if r.get("span_id")})
    lines = [f"trace {trace_id} — {total} spans"]

    def walk(node: dict, depth: int) -> None:
        record = node["record"]
        fields = record.get("fields") or {}
        parts = [f"{'  ' * depth}{record.get('span', '?')}"]
        role = fields.get("role")
        if role:
            parts.append(f"[{role}]")
        for key in ("endpoint", "path", "shard", "replica", "status"):
            if key in fields:
                parts.append(f"{key}={fields[key]}")
        own = _node_ms(record)
        parts.append(f"{own:.2f}ms")
        if node["children"]:
            parts.append(f"(self {_self_ms(node):.2f}ms)")
        budget = fields.get("deadline_ms")
        if budget is not None:
            try:
                spent = 100.0 * own / float(budget) if float(budget) > 0 else 0.0
                parts.append(f"budget={budget}ms spent={spent:.0f}%")
            except (TypeError, ValueError):
                parts.append(f"budget={budget}")
        if record.get("error"):
            parts.append(f"ERROR: {record['error']}")
        lines.append("  ".join(parts))
        for child in node["children"]:
            walk(child, depth + 1)

    for root in roots:
        walk(root, 0)
    return "\n".join(lines) + "\n"
