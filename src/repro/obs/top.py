"""``repro top``: a live, curses-free terminal dashboard over a server.

Polls ``/metrics`` (and, best-effort, ``/debug/vars``) on a ``repro
serve`` or cluster router and renders a plain-text frame every
interval: request rate and RED latency percentiles, per-endpoint
breakdown, cache hit ratio, circuit-breaker state, shard/replica
health, changefeed consumer lag, slow-query and profiler counters.

Everything is computed from *deltas between two scrapes*, the way a
real Prometheus would — counters and histogram buckets are cumulative,
so the dashboard subtracts the previous snapshot.  The rendering is
deliberately dumb terminal text (an ANSI home+clear when stdout is a
tty, plain frames otherwise) so it works over ssh, in CI logs, and in
tests without curses.

The module splits into a side-effect-free core (:func:`percentiles`,
:func:`render_frame`) the tests exercise directly, and a small
``urllib`` fetch/poll loop (:func:`fetch_snapshot`, :func:`run_top`)
the CLI drives.
"""

from __future__ import annotations

import json
import math
import sys
import time
import urllib.error
import urllib.request

from repro.obs.exposition import MetricFamily, parse_exposition

__all__ = [
    "fetch_snapshot",
    "percentiles",
    "render_frame",
    "run_top",
]

_BREAKER_STATES = {0: "closed", 1: "half-open", 2: "OPEN"}

#: Endpoints shown in the per-endpoint table, busiest first.
_TABLE_ROWS = 8


# ----------------------------------------------------------------------
# Scraping


def fetch_snapshot(base_url: str, timeout: float = 5.0) -> dict:
    """One observation of the server: parsed scrape + debug vars.

    ``/metrics`` is required (errors propagate so the caller can show
    an unreachable banner); ``/debug/vars`` is best-effort — an older
    server without it still gets a dashboard.
    """
    base = base_url.rstrip("/")
    with urllib.request.urlopen(base + "/metrics", timeout=timeout) as response:
        families = parse_exposition(response.read().decode("utf-8"))
    debug_vars: dict = {}
    try:
        with urllib.request.urlopen(base + "/debug/vars", timeout=timeout) as response:
            debug_vars = json.loads(response.read())
    except (OSError, ValueError, urllib.error.URLError):
        pass
    return {"ts": time.monotonic(), "families": families, "vars": debug_vars}


# ----------------------------------------------------------------------
# Metric arithmetic (pure; tested directly)


def _samples(families: dict[str, MetricFamily], family: str):
    fam = families.get(family)
    return fam.samples if fam is not None else []


def _total(
    families: dict[str, MetricFamily],
    family: str,
    sample: str | None = None,
    where: dict[str, str] | None = None,
) -> float:
    """Sum of every matching sample value in one family."""
    name = sample or family
    out = 0.0
    for item in _samples(families, family):
        if item.name != name:
            continue
        if where and any(item.labels.get(k) != v for k, v in where.items()):
            continue
        out += item.value
    return out


def _gauge(families: dict[str, MetricFamily], family: str) -> float | None:
    fam = families.get(family)
    if fam is None or not fam.samples:
        return None
    return sum(sample.value for sample in fam.samples)


def _buckets(
    families: dict[str, MetricFamily],
    family: str,
    where: dict[str, str] | None = None,
) -> dict[float, float]:
    """Cumulative ``le -> count`` summed across label sets."""
    out: dict[float, float] = {}
    for sample in _samples(families, family):
        if sample.name != f"{family}_bucket":
            continue
        if where and any(sample.labels.get(k) != v for k, v in where.items()):
            continue
        le = sample.labels.get("le")
        if le is None:
            continue
        bound = math.inf if le == "+Inf" else float(le)
        out[bound] = out.get(bound, 0.0) + sample.value
    return out


def percentiles(
    prev: dict | None,
    curr: dict,
    family: str = "repro_request_latency_seconds",
    qs: tuple[float, ...] = (0.5, 0.95, 0.99),
    where: dict[str, str] | None = None,
) -> dict[float, float | None]:
    """Interpolated latency quantiles from histogram bucket *deltas*.

    With no previous snapshot (first frame) the cumulative counts are
    used as-is — an all-time percentile, better than nothing.  Returns
    ``{q: seconds | None}``; None when the window saw no requests.
    """
    now = _buckets(curr["families"], family, where=where)
    before = _buckets(prev["families"], family, where=where) if prev else {}
    deltas = [
        (bound, max(0.0, now[bound] - before.get(bound, 0.0)))
        for bound in sorted(now)
    ]
    total = deltas[-1][1] if deltas else 0.0
    out: dict[float, float | None] = {}
    for q in qs:
        if total <= 0:
            out[q] = None
            continue
        target = q * total
        lower = 0.0
        value: float | None = None
        prev_count = 0.0
        for bound, count in deltas:
            if count >= target:
                if math.isinf(bound):
                    # Over the last finite bound; report that bound.
                    value = lower if lower else None
                    break
                span = count - prev_count
                frac = (target - prev_count) / span if span > 0 else 1.0
                value = lower + (bound - lower) * frac
                break
            lower = 0.0 if math.isinf(bound) else bound
            prev_count = count
        out[q] = value
    return out


def _rate(prev: dict | None, curr: dict, family: str, **kwargs) -> float | None:
    """Per-second increase of a counter between snapshots."""
    if prev is None:
        return None
    elapsed = curr["ts"] - prev["ts"]
    if elapsed <= 0:
        return None
    delta = _total(curr["families"], family, **kwargs) - _total(
        prev["families"], family, **kwargs
    )
    return max(0.0, delta) / elapsed


# ----------------------------------------------------------------------
# Rendering


def _fmt_seconds(value: float | None) -> str:
    if value is None:
        return "    -"
    if value < 0.001:
        return f"{value * 1e6:4.0f}µs"
    if value < 1.0:
        return f"{value * 1e3:4.1f}ms"
    return f"{value:5.2f}s"


def _fmt_rate(value: float | None) -> str:
    return "   - " if value is None else f"{value:5.1f}"


def _fmt_ratio(value: float | None) -> str:
    return "  - " if value is None else f"{value * 100:3.0f}%"


def _endpoint_rows(prev: dict | None, curr: dict) -> list[tuple]:
    """(endpoint, qps|None, total, errors, p95|None), busiest first."""
    totals: dict[str, float] = {}
    errors: dict[str, float] = {}
    for sample in _samples(curr["families"], "repro_requests_total"):
        endpoint = sample.labels.get("endpoint", "?")
        totals[endpoint] = totals.get(endpoint, 0.0) + sample.value
        if sample.labels.get("status", "").startswith(("4", "5")):
            errors[endpoint] = errors.get(endpoint, 0.0) + sample.value
    rows = []
    for endpoint, total in totals.items():
        qps = _rate(
            prev, curr, "repro_requests_total", where={"endpoint": endpoint}
        )
        p95 = percentiles(prev, curr, qs=(0.95,), where={"endpoint": endpoint})[0.95]
        rows.append((endpoint, qps, total, errors.get(endpoint, 0.0), p95))
    rows.sort(key=lambda row: (-(row[1] or 0.0), -row[2], row[0]))
    return rows


def render_frame(prev: dict | None, curr: dict, base_url: str = "") -> str:
    """One dashboard frame as plain text (no ANSI; caller clears)."""
    families = curr["families"]
    window = (curr["ts"] - prev["ts"]) if prev else None
    lines = []
    header = "repro top"
    if base_url:
        header += f" — {base_url}"
    if window:
        header += f"  (window {window:.1f}s)"
    lines.append(header)

    requests = _total(families, "repro_requests_total")
    qps = _rate(prev, curr, "repro_requests_total")
    shed = _rate(prev, curr, "repro_shed_requests_total")
    pcts = percentiles(prev, curr)
    lines.append(
        f"requests  {int(requests):>8} total   qps {_fmt_rate(qps)}   "
        f"shed/s {_fmt_rate(shed)}"
    )
    lines.append(
        f"latency   p50 {_fmt_seconds(pcts.get(0.5))}   "
        f"p95 {_fmt_seconds(pcts.get(0.95))}   "
        f"p99 {_fmt_seconds(pcts.get(0.99))}"
    )

    hit_ratio = _gauge(families, "repro_cache_hit_ratio")
    entries = _gauge(families, "repro_cache_entries")
    lines.append(
        f"cache     hit {_fmt_ratio(hit_ratio)}   entries "
        f"{int(entries) if entries is not None else '-'}"
    )

    breaker = _gauge(families, "repro_breaker_state")
    if breaker is not None:
        rejections = _rate(prev, curr, "repro_breaker_rejections_total")
        lines.append(
            f"breaker   {_BREAKER_STATES.get(int(breaker), str(breaker))}"
            f"   rejections/s {_fmt_rate(rejections)}"
        )

    shards = _gauge(families, "repro_cluster_shards")
    if shards:
        up = {
            sample.labels.get("shard", "?"): int(sample.value)
            for sample in _samples(families, "repro_cluster_replicas_up")
        }
        failovers = _rate(prev, curr, "repro_cluster_failovers_total")
        health = " ".join(f"s{shard}:{count}" for shard, count in sorted(up.items()))
        lines.append(
            f"cluster   {int(shards)} shard(s)   replicas up [{health}]   "
            f"failovers/s {_fmt_rate(failovers)}"
        )

    head = _gauge(families, "repro_stream_feed_head_offset")
    if head is not None:
        lag = max(
            (sample.value for sample in _samples(families, "repro_stream_feed_lag")),
            default=None,
        )
        subscribers = _gauge(families, "repro_stream_sse_subscribers")
        lines.append(
            f"stream    head {int(head)}   max consumer lag "
            f"{int(lag) if lag is not None else '-'}   sse subscribers "
            f"{int(subscribers or 0)}"
        )

    slow = _total(families, "repro_obs_slow_queries_total")
    spans = _total(families, "repro_obs_spans_recorded_total")
    samples_taken = _total(families, "repro_obs_profiler_samples_total")
    lines.append(
        f"obs       slow queries {int(slow)}   spans {int(spans)}   "
        f"profiler samples {int(samples_taken)}"
    )

    rows = _endpoint_rows(prev, curr)
    if rows:
        lines.append("")
        lines.append(f"{'endpoint':<28} {'qps':>6} {'total':>8} {'errs':>6} {'p95':>7}")
        for endpoint, qps, total, errs, p95 in rows[:_TABLE_ROWS]:
            lines.append(
                f"{endpoint:<28} {_fmt_rate(qps):>6} {int(total):>8} "
                f"{int(errs):>6} {_fmt_seconds(p95):>7}"
            )
        if len(rows) > _TABLE_ROWS:
            lines.append(f"... and {len(rows) - _TABLE_ROWS} more endpoint(s)")
    return "\n".join(lines)


# ----------------------------------------------------------------------
# Poll loop


def run_top(
    base_url: str,
    interval: float = 2.0,
    iterations: int = 0,
    out=None,
    clear: bool | None = None,
) -> int:
    """Poll and redraw until interrupted (or for ``iterations`` frames).

    ``iterations=0`` means forever; tests and CI pass a small count.
    ``clear=None`` auto-detects a tty for ANSI clear-and-home.
    """
    out = out if out is not None else sys.stdout
    if clear is None:
        clear = bool(getattr(out, "isatty", lambda: False)())
    prev = None
    frame = 0
    while True:
        try:
            curr = fetch_snapshot(base_url)
        except (OSError, urllib.error.URLError, ValueError) as exc:
            text = f"repro top — {base_url} unreachable: {exc}"
            curr = None
        else:
            text = render_frame(prev, curr, base_url)
        if clear:
            out.write("\x1b[2J\x1b[H")
        out.write(text + "\n")
        if not clear:
            out.write("\n")
        out.flush()
        if curr is not None:
            prev = curr
        frame += 1
        if iterations and frame >= iterations:
            return 0
        try:
            time.sleep(interval)
        except KeyboardInterrupt:
            return 0
