"""Spans, trace IDs and the in-process span recorder.

A *span* is one timed operation (monotonic clock) with a name, a
trace ID shared by everything one request/run touches, a parent span,
and free-form fields.  Usage is one context manager::

    from repro.obs import trace

    with trace("cubemask.partial", cubes=len(lattice)) as span:
        ...
        span.fields["pairs"] = emitted

Trace IDs propagate through :mod:`contextvars`, so nested spans — and
anything logged through :mod:`repro.obs.logging` while a span is open
— carry the same ``trace_id`` automatically, across threads started
via the HTTP handler pool (each request binds its own context) and
into pool workers (the parallel fan-out ships the current trace ID in
its initializer metadata and calls :func:`set_trace_id` worker-side).

Every finished span is:

* appended to the process-wide :class:`SpanRecorder` (bounded ring of
  recent spans + per-name aggregates, served on ``/debug/vars``), and
* emitted as one structured JSONL record through the
  ``repro.obs.trace`` logger — a no-op unless a handler is attached
  (the CLI's ``--trace`` flag or :func:`repro.obs.logging.configure_jsonl`).
"""

from __future__ import annotations

import contextvars
import threading
import time
import uuid
from collections import deque
from contextlib import contextmanager

__all__ = [
    "Span",
    "SpanRecorder",
    "add_span_sink",
    "bind_parent_span",
    "bind_trace",
    "current_span",
    "current_span_id",
    "current_trace_id",
    "new_trace_id",
    "recorder",
    "remove_span_sink",
    "set_parent_span_id",
    "set_trace_id",
    "trace",
]

#: The innermost open span of this context (None at top level).
_CURRENT_SPAN: contextvars.ContextVar["Span | None"] = contextvars.ContextVar(
    "repro_obs_span", default=None
)
#: The trace ID bound to this context even when no span is open
#: (e.g. between CLI phases, or inside a pool worker).
_TRACE_ID: contextvars.ContextVar[str | None] = contextvars.ContextVar(
    "repro_obs_trace_id", default=None
)
#: A *remote* parent span ID bound to this context — the span on the
#: other side of an ``X-Span-Id`` HTTP hop or a pool-worker fan-out.
#: The first span opened in the context parents onto it, stitching the
#: cross-process tree together.
_REMOTE_PARENT: contextvars.ContextVar[str | None] = contextvars.ContextVar(
    "repro_obs_remote_parent", default=None
)


def new_trace_id() -> str:
    """A fresh 32-hex-char trace ID."""
    return uuid.uuid4().hex


def new_span_id() -> str:
    return uuid.uuid4().hex[:16]


def current_trace_id() -> str | None:
    """The trace ID bound to the current context, if any."""
    span = _CURRENT_SPAN.get()
    if span is not None:
        return span.trace_id
    return _TRACE_ID.get()


def current_span() -> "Span | None":
    return _CURRENT_SPAN.get()


def set_trace_id(trace_id: str | None):
    """Bind ``trace_id`` to the current context; returns a reset token."""
    return _TRACE_ID.set(trace_id)


def current_span_id() -> str | None:
    """The innermost open span's ID (what ``X-Span-Id`` should carry)."""
    span = _CURRENT_SPAN.get()
    return span.span_id if span is not None else None


def set_parent_span_id(span_id: str | None):
    """Bind a remote parent span ID to the current context.

    Pool workers call this from their initializer (the fan-out ships
    the parent's open span ID in its metadata) so worker-side spans
    parent onto the coordinating span across the process boundary.
    Returns a reset token.
    """
    return _REMOTE_PARENT.set(span_id)


@contextmanager
def bind_trace(trace_id: str | None = None):
    """Context manager: bind (or mint) a trace ID for the duration."""
    token = _TRACE_ID.set(trace_id if trace_id is not None else new_trace_id())
    try:
        yield _TRACE_ID.get()
    finally:
        _TRACE_ID.reset(token)


@contextmanager
def bind_parent_span(span_id: str | None):
    """Context manager: adopt a remote parent span ID for the duration.

    HTTP handlers bind the inbound ``X-Span-Id`` header here so the
    request span they open becomes a child of the caller's span —
    that is what lets ``/debug/trace/<id>`` assemble router and shard
    spans into one tree.
    """
    token = _REMOTE_PARENT.set(span_id)
    try:
        yield
    finally:
        _REMOTE_PARENT.reset(token)


class Span:
    """One timed, named operation inside a trace."""

    __slots__ = (
        "name",
        "trace_id",
        "span_id",
        "parent_id",
        "fields",
        "start_wall",
        "_start_ns",
        "_end_ns",
        "error",
    )

    def __init__(
        self,
        name: str,
        trace_id: str | None = None,
        parent_id: str | None = None,
        fields: dict | None = None,
    ):
        self.name = name
        self.trace_id = trace_id if trace_id is not None else new_trace_id()
        self.span_id = new_span_id()
        self.parent_id = parent_id
        self.fields = dict(fields or {})
        self.start_wall = time.time()
        self._start_ns = time.monotonic_ns()
        self._end_ns: int | None = None
        self.error: str | None = None

    # ------------------------------------------------------------------
    def finish(self) -> "Span":
        if self._end_ns is None:
            self._end_ns = time.monotonic_ns()
        return self

    @property
    def finished(self) -> bool:
        return self._end_ns is not None

    @property
    def duration_ns(self) -> int:
        end = self._end_ns if self._end_ns is not None else time.monotonic_ns()
        return end - self._start_ns

    def to_record(self) -> dict:
        """The JSONL-ready dict form of a finished span."""
        record = {
            "span": self.name,
            "trace_id": self.trace_id,
            "span_id": self.span_id,
            "parent_id": self.parent_id,
            "start": self.start_wall,
            "duration_ns": self.duration_ns,
        }
        if self.error is not None:
            record["error"] = self.error
        if self.fields:
            record["fields"] = {
                key: value for key, value in self.fields.items()
            }
        return record

    def __repr__(self) -> str:
        state = f"{self.duration_ns / 1e6:.3f}ms" if self.finished else "open"
        return f"Span({self.name!r}, trace={self.trace_id[:8]}, {state})"


class SpanRecorder:
    """Bounded ring of recent spans + per-name duration aggregates."""

    def __init__(self, maxlen: int = 1024):
        self._lock = threading.Lock()
        self._recent: deque[dict] = deque(maxlen=maxlen)
        # name -> [count, total_ns, max_ns]
        self._aggregate: dict[str, list] = {}

    def record(self, span: Span) -> None:
        record = span.to_record()
        with self._lock:
            self._recent.append(record)
            slot = self._aggregate.get(span.name)
            if slot is None:
                slot = self._aggregate[span.name] = [0, 0, 0]
            slot[0] += 1
            slot[1] += record["duration_ns"]
            slot[2] = max(slot[2], record["duration_ns"])

    def recent(self, limit: int = 50) -> list[dict]:
        with self._lock:
            items = list(self._recent)
        return items[-limit:]

    def top_spans(self, limit: int = 20) -> list[dict]:
        """Span names ranked by total time spent (the hot list)."""
        with self._lock:
            rows = [
                {
                    "span": name,
                    "count": count,
                    "total_ns": total,
                    "max_ns": peak,
                    "mean_ns": total // count if count else 0,
                }
                for name, (count, total, peak) in self._aggregate.items()
            ]
        rows.sort(key=lambda row: (-row["total_ns"], row["span"]))
        return rows[:limit]

    def reset(self) -> None:
        with self._lock:
            self._recent.clear()
            self._aggregate.clear()


_RECORDER = SpanRecorder()

#: Extra consumers of finished spans (the span store, test probes).
#: Sinks receive the JSONL-ready record dict; a sink that raises is
#: dropped from the path for that span but never breaks the traced
#: operation.
_SINKS: list = []
_SINKS_LOCK = threading.Lock()


def recorder() -> SpanRecorder:
    """The process-wide span recorder (the ``/debug/vars`` source)."""
    return _RECORDER


def add_span_sink(sink) -> None:
    """Register a callable fed every finished span's record dict."""
    with _SINKS_LOCK:
        if sink not in _SINKS:
            _SINKS.append(sink)


def remove_span_sink(sink) -> None:
    with _SINKS_LOCK:
        try:
            _SINKS.remove(sink)
        except ValueError:
            pass


@contextmanager
def trace(name: str, **fields):
    """Open a span named ``name`` as a child of the current context.

    The span inherits the context's trace ID (minting one if absent)
    and becomes the current span for the duration, so nested ``trace``
    calls build a parent/child chain.  On exit the span is finished,
    recorded, and emitted as a JSONL log record; an exception marks
    the span's ``error`` field and propagates.
    """
    parent = _CURRENT_SPAN.get()
    span = Span(
        name,
        trace_id=current_trace_id(),
        parent_id=parent.span_id if parent is not None else _REMOTE_PARENT.get(),
        fields=fields,
    )
    token = _CURRENT_SPAN.set(span)
    try:
        yield span
    except BaseException as exc:
        span.error = f"{type(exc).__name__}: {exc}"
        raise
    finally:
        _CURRENT_SPAN.reset(token)
        span.finish()
        _RECORDER.record(span)
        _emit(span)
        if _SINKS:
            record = span.to_record()
            with _SINKS_LOCK:
                sinks = list(_SINKS)
            for sink in sinks:
                try:
                    sink(record)
                except Exception:
                    pass


def _emit(span: Span) -> None:
    # Local import: obs.logging imports nothing from here at call time,
    # but keeping the tracer importable without the logging module
    # avoids any chance of an import cycle.
    from repro.obs.logging import emit_span

    emit_span(span)
