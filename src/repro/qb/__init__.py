"""RDF Data Cube (QB) model layer.

Bridges the RDF substrate and the relationship algorithms: a typed
object model for datasets, schemas, observations and hierarchical code
lists (:mod:`repro.qb.model`, :mod:`repro.qb.hierarchy`), loading from /
writing to RDF graphs (:mod:`repro.qb.loader`, :mod:`repro.qb.writer`),
and a CSV-to-QB converter (:mod:`repro.qb.csv2qb`).
"""

from repro.qb.csv2qb import csv_to_cubespace
from repro.qb.hierarchy import Hierarchy
from repro.qb.loader import load_cubespace
from repro.qb.model import CubeSpace, Dataset, DatasetSchema, Observation
from repro.qb.validation import Violation, is_well_formed, validate_graph
from repro.qb.writer import cubespace_to_graph, relationships_to_graph

__all__ = [
    "Hierarchy",
    "Observation",
    "DatasetSchema",
    "Dataset",
    "CubeSpace",
    "load_cubespace",
    "cubespace_to_graph",
    "relationships_to_graph",
    "csv_to_cubespace",
    "validate_graph",
    "is_well_formed",
    "Violation",
]
