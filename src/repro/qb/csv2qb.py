"""CSV-to-QB conversion (the approach of Sathe & Sarawagi [28] as used
in the paper's Section 4: column headers become dimension URIs, rows
become observations, and cell values are matched to code-list terms by
their identifiers).

The converter needs a :class:`ColumnSpec` per column saying whether it
is a dimension (with a code hierarchy) or a measure, plus a base URI
for minting observation URIs.
"""

from __future__ import annotations

import csv
import io
from dataclasses import dataclass
from typing import Iterable

from repro.errors import CubeModelError
from repro.qb.hierarchy import Hierarchy
from repro.qb.model import CubeSpace, Dataset, DatasetSchema, Observation
from repro.rdf.terms import URIRef

__all__ = ["ColumnSpec", "csv_to_cubespace"]


@dataclass(frozen=True)
class ColumnSpec:
    """How one CSV column maps into the cube.

    ``kind`` is ``'dimension'`` or ``'measure'``.  Dimension columns
    need the dimension property URI and the :class:`Hierarchy` whose
    codes the cell identifiers are matched against; measure columns
    need the measure property URI and a value parser (default
    ``float``).
    """

    header: str
    kind: str
    property_uri: URIRef
    hierarchy: Hierarchy | None = None
    parser: type = float

    def __post_init__(self) -> None:
        if self.kind not in ("dimension", "measure"):
            raise CubeModelError(f"unknown column kind {self.kind!r}")
        if self.kind == "dimension" and self.hierarchy is None:
            raise CubeModelError(f"dimension column {self.header!r} needs a hierarchy")


def _match_code(hierarchy: Hierarchy, identifier: str) -> URIRef:
    """Match a cell value to a code by its URI local name (ID matching).

    Mirrors the paper's conversion step: "automatically matching cell
    values to existing code list terms based on their IDs".
    """
    wanted = identifier.strip()
    for code in hierarchy:
        if isinstance(code, URIRef) and code.local_name() == wanted:
            return code
    raise CubeModelError(f"cell value {identifier!r} matches no code in {hierarchy!r}")


def csv_to_cubespace(
    text: str | Iterable[str],
    columns: list[ColumnSpec],
    dataset_uri: URIRef,
    space: CubeSpace | None = None,
) -> CubeSpace:
    """Convert CSV text into a single-dataset :class:`CubeSpace`.

    The first row must be a header naming every column in ``columns``
    (order-insensitive; extra CSV columns are ignored).  Empty dimension
    cells leave the dimension unbound (interpreted as the root value by
    the algorithms); empty measure cells are skipped.
    """
    if isinstance(text, str):
        reader = csv.reader(io.StringIO(text))
    else:
        reader = csv.reader(text)
    rows = iter(reader)
    try:
        header = next(rows)
    except StopIteration:
        raise CubeModelError("CSV input is empty") from None
    spec_by_header = {spec.header: spec for spec in columns}
    missing = set(spec_by_header) - set(header)
    if missing:
        raise CubeModelError(f"CSV header is missing columns: {sorted(missing)}")
    index_of = {name: i for i, name in enumerate(header)}

    target = space if space is not None else CubeSpace()
    dimensions = tuple(s.property_uri for s in columns if s.kind == "dimension")
    measures = tuple(s.property_uri for s in columns if s.kind == "measure")
    schema = DatasetSchema(dimensions=dimensions, measures=measures)
    for spec in columns:
        if spec.kind == "dimension":
            assert spec.hierarchy is not None
            target.add_hierarchy(spec.property_uri, spec.hierarchy)
    dataset = Dataset(dataset_uri, schema)

    # Resolve codes once per distinct cell value, not once per row.
    code_cache: dict[tuple[str, str], URIRef] = {}
    for row_number, row in enumerate(rows, start=1):
        if not any(cell.strip() for cell in row):
            continue
        dims: dict[URIRef, URIRef] = {}
        meas: dict[URIRef, object] = {}
        for spec in columns:
            cell = row[index_of[spec.header]].strip()
            if not cell:
                continue
            if spec.kind == "dimension":
                key = (spec.header, cell)
                code = code_cache.get(key)
                if code is None:
                    assert spec.hierarchy is not None
                    code = _match_code(spec.hierarchy, cell)
                    code_cache[key] = code
                dims[spec.property_uri] = code
            else:
                try:
                    meas[spec.property_uri] = spec.parser(cell)
                except ValueError as exc:
                    raise CubeModelError(
                        f"row {row_number}: cannot parse {cell!r} as {spec.parser.__name__}"
                    ) from exc
        if not meas:
            raise CubeModelError(f"row {row_number} has no measure values")
        uri = URIRef(f"{dataset_uri}/obs/{row_number}")
        dataset.add(Observation(uri, dataset_uri, dims, meas))
    target.add_dataset(dataset)
    return target
