"""Hierarchical code lists (Definition 2 of the paper).

A :class:`Hierarchy` is the coded value space of one dimension: a tree
of codes rooted at the dimension's top concept (``ALL``).  Ancestry is
*reflexive* (``c ≻ c`` for every code), exactly as Definition 2
requires, and :meth:`Hierarchy.is_ancestor` implements the ``≻``
relation used by all containment checks.

Ancestor sets are memoised as frozensets so that ``is_ancestor`` is an
O(1) set lookup — the hash-table trick Algorithm 4 relies on for
constant-time level checks.
"""

from __future__ import annotations

from typing import Hashable, Iterable, Iterator, Mapping

from repro.errors import HierarchyError

__all__ = ["Hierarchy"]

Code = Hashable


class Hierarchy:
    """A single-rooted code hierarchy with reflexive ancestry.

    Parameters
    ----------
    root:
        The top concept (``c_jroot``); an ancestor of every code.
    parents:
        Mapping of child code to parent code.  Every code must reach
        ``root`` through the parent chain; cycles are rejected.
    """

    __slots__ = ("root", "_parent", "_children", "_ancestors", "_levels", "_max_level")

    def __init__(self, root: Code, parents: Mapping[Code, Code] | None = None):
        self.root = root
        self._parent: dict[Code, Code] = {}
        self._children: dict[Code, set[Code]] = {root: set()}
        self._ancestors: dict[Code, frozenset[Code]] = {root: frozenset((root,))}
        self._levels: dict[Code, int] = {root: 0}
        self._max_level = 0
        if parents:
            # Insert in dependency order so parents exist before children.
            remaining = dict(parents)
            while remaining:
                progressed = False
                for child in list(remaining):
                    parent = remaining[child]
                    if parent in self._levels:
                        self.add(child, parent)
                        del remaining[child]
                        progressed = True
                if not progressed:
                    stuck = ", ".join(repr(c) for c in list(remaining)[:5])
                    raise HierarchyError(
                        f"codes unreachable from root {root!r} (cycle or missing parent): {stuck}"
                    )

    # ------------------------------------------------------------------
    def add(self, code: Code, parent: Code | None = None) -> None:
        """Insert ``code`` under ``parent`` (default: directly under root)."""
        if code in self._levels:
            existing = self._parent.get(code, self.root if code != self.root else None)
            wanted = parent if parent is not None else self.root
            if code == self.root or existing == wanted:
                return
            raise HierarchyError(f"code {code!r} already present under {existing!r}")
        parent = parent if parent is not None else self.root
        if parent not in self._levels:
            raise HierarchyError(f"parent {parent!r} of {code!r} is not in the hierarchy")
        self._parent[code] = parent
        self._children.setdefault(parent, set()).add(code)
        self._children.setdefault(code, set())
        self._ancestors[code] = self._ancestors[parent] | {code}
        level = self._levels[parent] + 1
        self._levels[code] = level
        if level > self._max_level:
            self._max_level = level

    # ------------------------------------------------------------------
    def __contains__(self, code: Code) -> bool:
        return code in self._levels

    def __len__(self) -> int:
        return len(self._levels)

    def __iter__(self) -> Iterator[Code]:
        return iter(self._levels)

    def parent(self, code: Code) -> Code | None:
        """Direct parent, or ``None`` for the root."""
        if code not in self._levels:
            raise HierarchyError(f"unknown code {code!r}")
        return self._parent.get(code)

    def children(self, code: Code) -> frozenset[Code]:
        if code not in self._levels:
            raise HierarchyError(f"unknown code {code!r}")
        return frozenset(self._children.get(code, ()))

    def ancestors(self, code: Code) -> frozenset[Code]:
        """Reflexive ancestor set: ``code`` itself up to the root."""
        try:
            return self._ancestors[code]
        except KeyError:
            raise HierarchyError(f"unknown code {code!r}") from None

    def strict_ancestors(self, code: Code) -> frozenset[Code]:
        return self.ancestors(code) - {code}

    def descendants(self, code: Code) -> frozenset[Code]:
        """Reflexive descendant set (subtree rooted at ``code``)."""
        if code not in self._levels:
            raise HierarchyError(f"unknown code {code!r}")
        out: set[Code] = set()
        stack = [code]
        while stack:
            node = stack.pop()
            out.add(node)
            stack.extend(self._children.get(node, ()))
        return frozenset(out)

    def is_ancestor(self, ancestor: Code, descendant: Code) -> bool:
        """The paper's ``ancestor ≻ descendant`` (reflexive) relation."""
        try:
            return ancestor in self._ancestors[descendant]
        except KeyError:
            raise HierarchyError(f"unknown code {descendant!r}") from None

    def level(self, code: Code) -> int:
        """Depth of ``code``; the root has level 0."""
        try:
            return self._levels[code]
        except KeyError:
            raise HierarchyError(f"unknown code {code!r}") from None

    @property
    def max_level(self) -> int:
        return self._max_level

    def codes_at_level(self, level: int) -> frozenset[Code]:
        return frozenset(c for c, l in self._levels.items() if l == level)

    def leaves(self) -> frozenset[Code]:
        return frozenset(c for c, kids in self._children.items() if not kids)

    def path_to_root(self, code: Code) -> list[Code]:
        """The chain ``[code, parent, ..., root]``."""
        if code not in self._levels:
            raise HierarchyError(f"unknown code {code!r}")
        path = [code]
        while path[-1] != self.root:
            path.append(self._parent[path[-1]])
        return path

    def items(self) -> Iterator[tuple[Code, Code | None]]:
        """Yield ``(code, parent)`` pairs; the root pairs with ``None``."""
        for code in self._levels:
            yield code, self._parent.get(code)

    def merge(self, other: "Hierarchy") -> "Hierarchy":
        """Union of two hierarchies over the same root.

        Used when datasets ship overlapping slices of a shared code
        list.  Conflicting parents raise :class:`HierarchyError`.
        """
        if other.root != self.root:
            raise HierarchyError(
                f"cannot merge hierarchies with different roots: {self.root!r} vs {other.root!r}"
            )
        merged = Hierarchy(self.root)
        pending: dict[Code, Code] = {}
        for source in (self, other):
            for code, parent in source.items():
                if code == source.root:
                    continue
                if code in pending and pending[code] != parent:
                    raise HierarchyError(
                        f"conflicting parents for {code!r}: {pending[code]!r} vs {parent!r}"
                    )
                pending[code] = parent  # type: ignore[assignment]
        return Hierarchy(self.root, pending)

    def __repr__(self) -> str:
        return f"Hierarchy(root={self.root!r}, codes={len(self)}, depth={self._max_level})"

    @classmethod
    def from_edges(cls, root: Code, edges: Iterable[tuple[Code, Code]]) -> "Hierarchy":
        """Build from ``(child, parent)`` pairs."""
        return cls(root, dict(edges))
