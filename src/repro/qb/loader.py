"""Load QB datasets from an RDF graph into a :class:`CubeSpace`.

Expected vocabulary (the standard Data Cube shapes):

* ``?ds a qb:DataSet ; qb:structure ?dsd``
* ``?dsd qb:component [ qb:dimension ?p ; qb:codeList ?cl ]``
  and ``[ qb:measure ?m ]`` / ``[ qb:attribute ?a ]``
* ``?cl skos:hasTopConcept ?root`` and ``?code skos:inScheme ?cl ;
  skos:broader ?parent``
* ``?obs a qb:Observation ; qb:dataSet ?ds ; ?p ?code ; ?m ?value``

Codes referenced by observations but missing from the scheme are
attached directly under the root (real-world dumps are frequently
incomplete in exactly this way).
"""

from __future__ import annotations

from repro.errors import CubeModelError
from repro.qb.hierarchy import Hierarchy
from repro.qb.model import CubeSpace, Dataset, DatasetSchema, Observation, Slice
from repro.rdf.graph import Graph
from repro.rdf.namespaces import QB, RDF, SKOS
from repro.rdf.terms import BNode, Literal, URIRef

__all__ = ["load_cubespace", "load_cubespace_dataset", "load_hierarchy"]


def load_cubespace_dataset(dataset) -> CubeSpace:
    """Load a multi-source :class:`~repro.rdf.dataset.RDFDataset`.

    Each named graph typically carries one publisher's cube (plus
    shared code lists in the default graph); everything is merged onto
    one reconciled cube space — shared hierarchies are unioned, dataset
    URIs must be globally unique.
    """
    spaces = [load_cubespace(dataset.default)] if len(dataset.default) else []
    for name in dataset.names():
        merged_view = dataset.graph(name) | dataset.default
        space = load_cubespace(merged_view)
        # Drop datasets already produced by another graph (the default
        # graph's own datasets are loaded once above).
        if spaces:
            known = {uri for s in spaces for uri in s.datasets}
            for uri in list(space.datasets):
                if uri in known:
                    del space.datasets[uri]
        spaces.append(space)
    return CubeSpace.merge_all(spaces)


def load_hierarchy(graph: Graph, scheme: URIRef) -> Hierarchy:
    """Build a :class:`Hierarchy` from a SKOS concept scheme.

    Parent links come from ``skos:broader`` (child → parent) or, when a
    publisher only ships the inverse direction, from ``skos:narrower``
    (parent → child).  Codes with neither link attach under the top
    concept.
    """
    root = graph.value(scheme, SKOS.hasTopConcept, None)
    if root is None:
        raise CubeModelError(f"concept scheme {scheme} has no skos:hasTopConcept")
    if not isinstance(root, URIRef):
        raise CubeModelError(f"top concept of {scheme} must be a URI, got {root!r}")
    parents: dict[URIRef, URIRef] = {}
    for code in graph.subjects(SKOS.inScheme, scheme):
        if not isinstance(code, URIRef) or code == root:
            continue
        parent = graph.value(code, SKOS.broader, None)
        if parent is None:
            # Inverse direction: some dumps publish skos:narrower only.
            parent = graph.value(None, SKOS.narrower, code)
        if parent is None:
            parent = root
        if not isinstance(parent, URIRef):
            raise CubeModelError(f"skos:broader of {code} must be a URI")
        parents[code] = parent
    return Hierarchy(root, parents)


def _component_properties(graph: Graph, dsd: URIRef | BNode) -> tuple[
    list[tuple[URIRef, URIRef | None]], list[URIRef], list[URIRef]
]:
    """Return (dimensions-with-codelists, measures, attributes) of a DSD."""
    dimensions: list[tuple[URIRef, URIRef | None]] = []
    measures: list[URIRef] = []
    attributes: list[URIRef] = []
    for component in graph.objects(dsd, QB.component):
        dim = graph.value(component, QB.dimension, None)  # type: ignore[arg-type]
        if isinstance(dim, URIRef):
            codelist = graph.value(component, QB.codeList, None)  # type: ignore[arg-type]
            dimensions.append((dim, codelist if isinstance(codelist, URIRef) else None))
            continue
        measure = graph.value(component, QB.measure, None)  # type: ignore[arg-type]
        if isinstance(measure, URIRef):
            measures.append(measure)
            continue
        attribute = graph.value(component, QB.attribute, None)  # type: ignore[arg-type]
        if isinstance(attribute, URIRef):
            attributes.append(attribute)
    dimensions.sort(key=lambda pair: str(pair[0]))
    measures.sort(key=str)
    attributes.sort(key=str)
    return dimensions, measures, attributes


def load_cubespace(graph: Graph) -> CubeSpace:
    """Parse every ``qb:DataSet`` in ``graph`` into one :class:`CubeSpace`.

    Raises :class:`~repro.errors.CubeModelError` for structurally broken
    cubes (no structure definition, observation without dataset, ...).
    """
    space = CubeSpace()
    scheme_cache: dict[URIRef, Hierarchy] = {}
    dataset_schemas: dict[URIRef, DatasetSchema] = {}
    dimension_codelist: dict[URIRef, URIRef | None] = {}

    for ds_term in sorted(graph.subjects(RDF.type, QB.DataSet), key=str):
        if not isinstance(ds_term, URIRef):
            raise CubeModelError(f"qb:DataSet must be a URI, got {ds_term!r}")
        dsd = graph.value(ds_term, QB.structure, None)
        if dsd is None:
            raise CubeModelError(f"dataset {ds_term} has no qb:structure")
        dimensions, measures, attributes = _component_properties(graph, dsd)  # type: ignore[arg-type]
        if not measures:
            raise CubeModelError(f"dataset {ds_term} declares no measures")
        schema = DatasetSchema(
            dimensions=tuple(d for d, _ in dimensions),
            measures=tuple(measures),
            attributes=tuple(attributes),
        )
        dataset_schemas[ds_term] = schema
        for dimension, codelist in dimensions:
            dimension_codelist.setdefault(dimension, codelist)
            if codelist is None:
                continue
            if codelist not in scheme_cache:
                scheme_cache[codelist] = load_hierarchy(graph, codelist)
            space.add_hierarchy(dimension, scheme_cache[codelist])
        label = graph.value(ds_term, URIRef("http://www.w3.org/2000/01/rdf-schema#label"), None)
        space.datasets[ds_term] = Dataset(
            ds_term, schema, [], str(label) if isinstance(label, Literal) else None
        )

    # Dimensions used without a code list get a flat hierarchy built from
    # the values observed below.
    flat_roots: dict[URIRef, Hierarchy] = {}

    for obs_term in graph.subjects(RDF.type, QB.Observation):
        if not isinstance(obs_term, URIRef):
            raise CubeModelError(f"qb:Observation must be a URI, got {obs_term!r}")
        ds = graph.value(obs_term, QB.dataSet, None)
        if not isinstance(ds, URIRef) or ds not in dataset_schemas:
            raise CubeModelError(f"observation {obs_term} has no known qb:dataSet")
        schema = dataset_schemas[ds]
        dims: dict[URIRef, URIRef] = {}
        meas: dict[URIRef, object] = {}
        attrs: dict[URIRef, object] = {}
        for _, predicate, obj in graph.triples(obs_term, None, None):
            if predicate in (RDF.type, QB.dataSet):
                continue
            if predicate in schema.dimensions:
                if not isinstance(obj, URIRef):
                    raise CubeModelError(
                        f"observation {obs_term}: dimension {predicate} has non-URI value {obj!r}"
                    )
                dims[predicate] = obj
            elif predicate in schema.measures:
                meas[predicate] = obj.to_python() if isinstance(obj, Literal) else obj
            elif predicate in schema.attributes:
                attrs[predicate] = obj.to_python() if isinstance(obj, Literal) else obj
            # Unknown predicates are annotation noise; ignore them.
        observation = Observation(obs_term, ds, dims, meas, attrs)
        space.datasets[ds].add(observation)

        for dimension, code in dims.items():
            hierarchy = space.hierarchies.get(dimension)
            if hierarchy is None:
                flat = flat_roots.get(dimension)
                if flat is None:
                    root = URIRef(str(dimension) + "/ALL")
                    flat = Hierarchy(root)
                    flat_roots[dimension] = flat
                if code not in flat:
                    flat.add(code)
            elif code not in hierarchy:
                hierarchy.add(code)

    for dimension, hierarchy in flat_roots.items():
        space.add_hierarchy(dimension, hierarchy)

    # Sort observations per dataset for deterministic downstream order.
    for dataset in space.datasets.values():
        dataset.observations.sort(key=lambda o: str(o.uri))

    # Slices: attached last so membership checks see all observations.
    for dataset in space.datasets.values():
        for slice_term in sorted(graph.objects(dataset.uri, QB.slice), key=str):
            if not isinstance(slice_term, URIRef):
                raise CubeModelError(f"qb:Slice of {dataset.uri} must be a URI")
            fixed: dict[URIRef, URIRef] = {}
            for dimension in dataset.schema.dimensions:
                value = graph.value(slice_term, dimension, None)
                if isinstance(value, URIRef):
                    fixed[dimension] = value
            members = tuple(
                sorted(
                    (o for o in graph.objects(slice_term, QB.observation) if isinstance(o, URIRef)),
                    key=str,
                )
            )
            label = graph.value(
                slice_term, URIRef("http://www.w3.org/2000/01/rdf-schema#label"), None
            )
            dataset.add_slice(
                Slice(
                    slice_term,
                    fixed,
                    members,
                    str(label) if isinstance(label, Literal) else None,
                )
            )
    return space
