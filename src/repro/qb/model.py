"""Typed object model for RDF Data Cube datasets.

:class:`CubeSpace` is the central container: all input datasets, their
schemas and observations, plus one :class:`~repro.qb.hierarchy.Hierarchy`
per dimension (the reconciled *dimension bus* of the paper's Section 2).
The relationship algorithms consume a :class:`CubeSpace` through
:class:`repro.core.space.ObservationSpace`.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Iterable, Iterator, Mapping

from repro.errors import CubeModelError
from repro.qb.hierarchy import Hierarchy
from repro.rdf.terms import URIRef

__all__ = ["Observation", "DatasetSchema", "Dataset", "Slice", "CubeSpace"]


@dataclass(frozen=True)
class Observation:
    """A single fact: dimension bindings plus measured values.

    ``dimensions`` maps dimension property URI -> code (URI from the
    dimension's code list).  Dimensions absent from the mapping are
    interpreted as the root (ALL) value by the algorithms, per the
    paper's convention.  ``measures`` maps measure property URI -> the
    measured value (any Python scalar).
    """

    uri: URIRef
    dataset: URIRef
    dimensions: Mapping[URIRef, URIRef]
    measures: Mapping[URIRef, Any]
    attributes: Mapping[URIRef, Any] = field(default_factory=dict)

    def __post_init__(self) -> None:
        object.__setattr__(self, "dimensions", dict(self.dimensions))
        object.__setattr__(self, "measures", dict(self.measures))
        object.__setattr__(self, "attributes", dict(self.attributes))
        if not self.measures:
            raise CubeModelError(f"observation {self.uri} has no measures")

    def value(self, dimension: URIRef) -> URIRef | None:
        """Code for ``dimension`` or ``None`` when the dimension is absent."""
        return self.dimensions.get(dimension)

    @property
    def measure_set(self) -> frozenset[URIRef]:
        return frozenset(self.measures)

    def __repr__(self) -> str:
        return f"Observation({self.uri.local_name()}, dims={len(self.dimensions)}, measures={len(self.measures)})"


@dataclass(frozen=True)
class DatasetSchema:
    """The schema part S_i = {P_i, M_i} of Definition 1."""

    dimensions: tuple[URIRef, ...]
    measures: tuple[URIRef, ...]
    attributes: tuple[URIRef, ...] = ()

    def __post_init__(self) -> None:
        if len(set(self.dimensions)) != len(self.dimensions):
            raise CubeModelError("schema has duplicate dimensions")
        if not self.measures:
            raise CubeModelError("schema must declare at least one measure")


@dataclass(frozen=True)
class Slice:
    """A ``qb:Slice``: a subset of a dataset with some dimensions fixed.

    ``fixed`` maps the pinned dimensions to their codes; ``observations``
    lists the member observation URIs.  Members must agree with the
    fixed values (checked by :meth:`Dataset.add_slice`).
    """

    uri: URIRef
    fixed: Mapping[URIRef, URIRef]
    observations: tuple[URIRef, ...] = ()
    label: str | None = None

    def __post_init__(self) -> None:
        object.__setattr__(self, "fixed", dict(self.fixed))
        object.__setattr__(self, "observations", tuple(self.observations))


@dataclass
class Dataset:
    """One source dataset D_i: a schema and its observations."""

    uri: URIRef
    schema: DatasetSchema
    observations: list[Observation] = field(default_factory=list)
    label: str | None = None
    slices: list[Slice] = field(default_factory=list)

    def add(self, observation: Observation) -> None:
        extra_dims = set(observation.dimensions) - set(self.schema.dimensions)
        if extra_dims:
            raise CubeModelError(
                f"observation {observation.uri} binds dimensions outside the schema: {sorted(extra_dims)}"
            )
        extra_measures = set(observation.measures) - set(self.schema.measures)
        if extra_measures:
            raise CubeModelError(
                f"observation {observation.uri} reports measures outside the schema: {sorted(extra_measures)}"
            )
        self.observations.append(observation)

    def add_slice(self, new_slice: Slice) -> None:
        """Attach a slice, checking member observations match its key."""
        unknown_dims = set(new_slice.fixed) - set(self.schema.dimensions)
        if unknown_dims:
            raise CubeModelError(
                f"slice {new_slice.uri} fixes dimensions outside the schema: {sorted(unknown_dims)}"
            )
        by_uri = {obs.uri: obs for obs in self.observations}
        for member in new_slice.observations:
            observation = by_uri.get(member)
            if observation is None:
                raise CubeModelError(f"slice {new_slice.uri}: unknown observation {member}")
            for dimension, code in new_slice.fixed.items():
                if observation.value(dimension) != code:
                    raise CubeModelError(
                        f"slice {new_slice.uri}: observation {member} disagrees on "
                        f"{dimension.local_name()}"
                    )
        self.slices.append(new_slice)

    def slice_members(self, slice_uri: URIRef) -> list[Observation]:
        """The observations of one slice, in dataset order."""
        for candidate in self.slices:
            if candidate.uri == slice_uri:
                wanted = set(candidate.observations)
                return [obs for obs in self.observations if obs.uri in wanted]
        raise CubeModelError(f"dataset {self.uri} has no slice {slice_uri}")

    def __len__(self) -> int:
        return len(self.observations)

    def __iter__(self) -> Iterator[Observation]:
        return iter(self.observations)

    def __repr__(self) -> str:
        return f"Dataset({self.uri.local_name()}, observations={len(self.observations)})"


class CubeSpace:
    """All input datasets plus the reconciled dimension hierarchies.

    This corresponds to the problem space of Section 2: the set ``D`` of
    datasets, the union ``P`` of dimensions, union ``M`` of measures and
    the code list ``C(p_j)`` of each dimension.
    """

    def __init__(self, hierarchies: Mapping[URIRef, Hierarchy] | None = None):
        self.datasets: dict[URIRef, Dataset] = {}
        self.hierarchies: dict[URIRef, Hierarchy] = dict(hierarchies or {})

    # ------------------------------------------------------------------
    def add_hierarchy(self, dimension: URIRef, hierarchy: Hierarchy) -> None:
        """Attach (or merge) the code list of ``dimension``."""
        existing = self.hierarchies.get(dimension)
        if existing is not None:
            hierarchy = existing.merge(hierarchy)
        self.hierarchies[dimension] = hierarchy

    def add_dataset(self, dataset: Dataset) -> None:
        if dataset.uri in self.datasets:
            raise CubeModelError(f"duplicate dataset {dataset.uri}")
        for dimension in dataset.schema.dimensions:
            if dimension not in self.hierarchies:
                raise CubeModelError(
                    f"dataset {dataset.uri} uses dimension {dimension} with no registered hierarchy"
                )
        self.datasets[dataset.uri] = dataset

    # ------------------------------------------------------------------
    @property
    def dimensions(self) -> tuple[URIRef, ...]:
        """The union P of all dimensions, in deterministic order."""
        seen: dict[URIRef, None] = {}
        for dataset in self.datasets.values():
            for dimension in dataset.schema.dimensions:
                seen.setdefault(dimension, None)
        return tuple(seen)

    @property
    def measures(self) -> tuple[URIRef, ...]:
        seen: dict[URIRef, None] = {}
        for dataset in self.datasets.values():
            for measure in dataset.schema.measures:
                seen.setdefault(measure, None)
        return tuple(seen)

    def observations(self) -> Iterator[Observation]:
        """All observations across all datasets, dataset insertion order."""
        for dataset in self.datasets.values():
            yield from dataset.observations

    def observation_count(self) -> int:
        return sum(len(d) for d in self.datasets.values())

    def validate(self) -> None:
        """Check every observation's codes appear in their hierarchies."""
        for dataset in self.datasets.values():
            for observation in dataset.observations:
                for dimension, code in observation.dimensions.items():
                    hierarchy = self.hierarchies.get(dimension)
                    if hierarchy is None:
                        raise CubeModelError(f"no hierarchy for dimension {dimension}")
                    if code not in hierarchy:
                        raise CubeModelError(
                            f"observation {observation.uri}: code {code} not in the "
                            f"hierarchy of {dimension}"
                        )

    def subspace(self, limit: int) -> "CubeSpace":
        """A copy containing only the first ``limit`` observations.

        Used by the benchmark harness to sweep input sizes the way the
        paper does (2k, 20k, 40k, ...).
        """
        out = CubeSpace(self.hierarchies)
        remaining = limit
        for dataset in self.datasets.values():
            take = dataset.observations[:remaining] if remaining > 0 else []
            copy = Dataset(dataset.uri, dataset.schema, list(take), dataset.label)
            out.datasets[dataset.uri] = copy
            remaining -= len(take)
        return out

    def __repr__(self) -> str:
        return (
            f"CubeSpace(datasets={len(self.datasets)}, observations={self.observation_count()}, "
            f"dimensions={len(self.hierarchies)})"
        )

    @classmethod
    def merge_all(cls, spaces: Iterable["CubeSpace"]) -> "CubeSpace":
        """Combine several cube spaces, merging shared hierarchies."""
        out = cls()
        for space in spaces:
            for dimension, hierarchy in space.hierarchies.items():
                out.add_hierarchy(dimension, hierarchy)
            for dataset in space.datasets.values():
                out.add_dataset(dataset)
        return out
