"""Well-formedness validation for RDF Data Cubes.

Implements the practically relevant subset of the QB specification's
integrity constraints (IC-1 … IC-21) over an RDF graph, mirroring what
the W3C recommendation's SPARQL ASK constraints check.  The paper's
pipeline assumes well-formed cubes; this validator is what a production
deployment runs before feeding data to the algorithms.

Checks implemented (numbers follow the QB spec):

* IC-1  unique dataset — every observation has exactly one ``qb:dataSet``
* IC-2  unique DSD — every dataset has exactly one ``qb:structure``
* IC-3  DSD includes at least one measure
* IC-11 all dimensions required — every observation carries a value for
  every dimension of its dataset's DSD
* IC-12 no duplicate observations — no two observations of one dataset
  agree on every dimension
* IC-14 all measures present — every observation carries every measure
  declared by its DSD
* IC-19 codes from code list — dimension values with a ``qb:codeList``
  must be in that scheme
* plus: dimension values must be IRIs, observation typed, components typed

Each violation is reported as a :class:`Violation` with the constraint
id, a message and the offending node; :func:`validate_graph` returns
them all instead of failing fast, so a data publisher sees every
problem at once.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.rdf.graph import Graph
from repro.rdf.namespaces import QB, RDF, SKOS
from repro.rdf.terms import BNode, Literal, Term, URIRef

__all__ = ["Violation", "validate_graph", "is_well_formed"]


@dataclass(frozen=True)
class Violation:
    """One integrity-constraint violation."""

    constraint: str
    message: str
    node: Term | None = None

    def __str__(self) -> str:
        location = f" [{self.node}]" if self.node is not None else ""
        return f"{self.constraint}: {self.message}{location}"


def _components(graph: Graph, dsd: Term) -> tuple[list[URIRef], list[URIRef], dict[URIRef, URIRef]]:
    """Dimensions, measures and dimension->codeList of a DSD."""
    dimensions: list[URIRef] = []
    measures: list[URIRef] = []
    codelists: dict[URIRef, URIRef] = {}
    for component in graph.objects(dsd, QB.component):  # type: ignore[arg-type]
        dim = graph.value(component, QB.dimension, None)  # type: ignore[arg-type]
        if isinstance(dim, URIRef):
            dimensions.append(dim)
            codelist = graph.value(component, QB.codeList, None)  # type: ignore[arg-type]
            if isinstance(codelist, URIRef):
                codelists[dim] = codelist
        measure = graph.value(component, QB.measure, None)  # type: ignore[arg-type]
        if isinstance(measure, URIRef):
            measures.append(measure)
    return dimensions, measures, codelists


def validate_graph(graph: Graph) -> list[Violation]:
    """Run the integrity checks; return every violation found."""
    violations: list[Violation] = []

    datasets = set(graph.subjects(RDF.type, QB.DataSet))
    observations = list(graph.subjects(RDF.type, QB.Observation))

    # --- IC-2 / IC-3: dataset structure ------------------------------
    structures: dict[Term, tuple[list[URIRef], list[URIRef], dict[URIRef, URIRef]]] = {}
    for dataset in sorted(datasets, key=str):
        dsds = list(graph.objects(dataset, QB.structure))
        if len(dsds) != 1:
            violations.append(
                Violation("IC-2", f"dataset has {len(dsds)} qb:structure links, expected 1", dataset)
            )
            continue
        dimensions, measures, codelists = _components(graph, dsds[0])
        if not measures:
            violations.append(Violation("IC-3", "DSD declares no measure component", dataset))
        structures[dataset] = (dimensions, measures, codelists)

    # --- membership of codes in code lists (IC-19 prep) ---------------
    scheme_members: dict[URIRef, set[Term]] = {}

    def in_scheme(code: Term, scheme: URIRef) -> bool:
        if scheme not in scheme_members:
            members = set(graph.subjects(SKOS.inScheme, scheme))
            top = graph.value(scheme, SKOS.hasTopConcept, None)
            if top is not None:
                members.add(top)
            scheme_members[scheme] = members
        return code in scheme_members[scheme]

    # --- per-observation checks ---------------------------------------
    seen_keys: dict[tuple, Term] = {}
    for observation in sorted(observations, key=str):
        dataset_links = list(graph.objects(observation, QB.dataSet))
        if len(dataset_links) != 1:
            violations.append(
                Violation(
                    "IC-1",
                    f"observation has {len(dataset_links)} qb:dataSet links, expected 1",
                    observation,
                )
            )
            continue
        dataset = dataset_links[0]
        if dataset not in structures:
            if dataset not in datasets:
                violations.append(
                    Violation("IC-1", "observation points to an undeclared dataset", observation)
                )
            continue
        dimensions, measures, codelists = structures[dataset]

        key_parts: list[tuple[URIRef, Term | None]] = []
        for dimension in dimensions:
            values = list(graph.objects(observation, dimension))
            if not values:
                violations.append(
                    Violation(
                        "IC-11",
                        f"missing value for dimension {dimension.local_name()}",
                        observation,
                    )
                )
                key_parts.append((dimension, None))
                continue
            value = values[0]
            key_parts.append((dimension, value))
            if isinstance(value, Literal):
                violations.append(
                    Violation(
                        "IC-19",
                        f"dimension {dimension.local_name()} has a literal value",
                        observation,
                    )
                )
            elif dimension in codelists and not in_scheme(value, codelists[dimension]):
                violations.append(
                    Violation(
                        "IC-19",
                        f"value {value} is not in the code list of {dimension.local_name()}",
                        observation,
                    )
                )
        for measure in measures:
            if graph.value(observation, measure, None) is None:
                violations.append(
                    Violation(
                        "IC-14",
                        f"missing value for measure {measure.local_name()}",
                        observation,
                    )
                )

        key = (dataset, tuple(sorted(key_parts, key=lambda kv: str(kv[0]))))
        previous = seen_keys.get(key)
        if previous is not None and None not in dict(key_parts).values():
            violations.append(
                Violation(
                    "IC-12",
                    f"duplicate of observation {previous} (same dimension values)",
                    observation,
                )
            )
        else:
            seen_keys.setdefault(key, observation)

    # --- orphan observations (typed but never checked above) ----------
    for subject in graph.subjects(QB.dataSet, None):
        if (subject, RDF.type, QB.Observation) not in graph:
            violations.append(
                Violation("IC-1", "resource uses qb:dataSet but is not typed qb:Observation", subject)
            )

    return violations


def is_well_formed(graph: Graph) -> bool:
    """True when :func:`validate_graph` finds no violations."""
    return not validate_graph(graph)
