"""Serialize cube spaces and relationship sets back to RDF.

``cubespace_to_graph`` emits standard QB shapes (inverse of the
loader).  ``relationships_to_graph`` materialises computed containment
and complementarity links with the extension vocabulary of the authors'
prior workshop paper [22] (namespace :data:`repro.rdf.namespaces.CCREL`):

* ``ccrel:fullyContains`` / ``ccrel:partiallyContains`` — directed,
* ``ccrel:complements`` — symmetric (both directions are written),
* partial links may carry reified ``ccrel:onDimension`` annotations.
"""

from __future__ import annotations

from typing import TYPE_CHECKING

from repro.qb.model import CubeSpace
from repro.rdf.graph import Graph
from repro.rdf.namespaces import CCREL, QB, RDF, RDFS, SKOS
from repro.rdf.terms import BNode, Literal, URIRef

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.core.results import RelationshipSet

__all__ = ["cubespace_to_graph", "relationships_to_graph"]


def _codelist_uri(dimension: URIRef) -> URIRef:
    return URIRef(str(dimension) + "/codelist")


def cubespace_to_graph(space: CubeSpace, graph: Graph | None = None) -> Graph:
    """Write all datasets, schemas, code lists and observations of ``space``."""
    target = graph if graph is not None else Graph()

    for dimension, hierarchy in space.hierarchies.items():
        scheme = _codelist_uri(dimension)
        target.add((scheme, RDF.type, SKOS.ConceptScheme))
        target.add((scheme, SKOS.hasTopConcept, hierarchy.root))
        for code, parent in hierarchy.items():
            target.add((code, RDF.type, SKOS.Concept))
            target.add((code, SKOS.inScheme, scheme))
            if parent is not None:
                target.add((code, SKOS.broader, parent))

    for dataset in space.datasets.values():
        dsd = URIRef(str(dataset.uri) + "/structure")
        target.add((dataset.uri, RDF.type, QB.DataSet))
        target.add((dataset.uri, QB.structure, dsd))
        if dataset.label:
            target.add((dataset.uri, RDFS.label, Literal(dataset.label)))
        target.add((dsd, RDF.type, QB.DataStructureDefinition))
        for dimension in dataset.schema.dimensions:
            component = BNode()
            target.add((dsd, QB.component, component))
            target.add((component, QB.dimension, dimension))
            target.add((component, QB.codeList, _codelist_uri(dimension)))
        for measure in dataset.schema.measures:
            component = BNode()
            target.add((dsd, QB.component, component))
            target.add((component, QB.measure, measure))
        for attribute in dataset.schema.attributes:
            component = BNode()
            target.add((dsd, QB.component, component))
            target.add((component, QB.attribute, attribute))

        for observation in dataset.observations:
            target.add((observation.uri, RDF.type, QB.Observation))
            target.add((observation.uri, QB.dataSet, dataset.uri))
            for dimension, code in observation.dimensions.items():
                target.add((observation.uri, dimension, code))
            for measure, value in observation.measures.items():
                literal = value if isinstance(value, Literal) else Literal(value)
                target.add((observation.uri, measure, literal))
            for attribute, value in observation.attributes.items():
                obj = value if isinstance(value, (Literal, URIRef)) else Literal(value)
                target.add((observation.uri, attribute, obj))

        for dataset_slice in dataset.slices:
            target.add((dataset.uri, QB.slice, dataset_slice.uri))
            target.add((dataset_slice.uri, RDF.type, QB.Slice))
            if dataset_slice.label:
                target.add((dataset_slice.uri, RDFS.label, Literal(dataset_slice.label)))
            key = URIRef(str(dataset_slice.uri) + "/key")
            target.add((dataset_slice.uri, QB.sliceStructure, key))
            target.add((key, RDF.type, QB.SliceKey))
            for dimension, code in dataset_slice.fixed.items():
                target.add((key, QB.componentProperty, dimension))
                target.add((dataset_slice.uri, dimension, code))
            for member in dataset_slice.observations:
                target.add((dataset_slice.uri, QB.observation, member))
    return target


def relationships_to_graph(
    result: "RelationshipSet",
    graph: Graph | None = None,
    annotate_partial_dimensions: bool = True,
) -> Graph:
    """Materialise a computed :class:`RelationshipSet` as RDF links."""
    target = graph if graph is not None else Graph()
    for a, b in sorted(result.full):
        target.add((a, CCREL.fullyContains, b))
    for a, b in sorted(result.complementary):
        target.add((a, CCREL.complements, b))
        target.add((b, CCREL.complements, a))
    for a, b in sorted(result.partial):
        target.add((a, CCREL.partiallyContains, b))
        degree = result.degree(a, b)
        if degree is not None:
            node = BNode()
            target.add((node, RDF.type, CCREL.PartialContainment))
            target.add((node, CCREL.container, a))
            target.add((node, CCREL.contained, b))
            target.add((node, CCREL.degree, Literal(degree)))
            if annotate_partial_dimensions:
                for dimension in sorted(result.partial_dimensions(a, b)):
                    target.add((node, CCREL.onDimension, dimension))
    return target
