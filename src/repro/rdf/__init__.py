"""RDF substrate: terms, graphs and serializations.

This subpackage replaces the external triple-store/RDF-library stack the
paper depends on (Virtuoso, Jena, rdflib) with a self-contained
implementation: an indexed in-memory :class:`~repro.rdf.graph.Graph`,
the term model, and Turtle / N-Triples parsers and serializers.
"""

from repro.rdf.dataset import Quad, RDFDataset
from repro.rdf.graph import Graph
from repro.rdf.namespaces import (
    CCREL,
    EX,
    PREFIXES,
    QB,
    RDF,
    RDFS,
    SDMX_ATTR,
    SDMX_DIMENSION,
    SDMX_MEASURE,
    SKOS,
    XSD,
)
from repro.rdf.nquads import iter_nquads, parse_nquads, serialize_nquads
from repro.rdf.ntriples import iter_ntriples, parse_ntriples, serialize_ntriples
from repro.rdf.terms import BNode, Literal, Namespace, Term, Triple, URIRef
from repro.rdf.trig import parse_trig, serialize_trig
from repro.rdf.turtle import parse_turtle, serialize_turtle

__all__ = [
    "Graph",
    "RDFDataset",
    "Quad",
    "parse_trig",
    "serialize_trig",
    "parse_nquads",
    "serialize_nquads",
    "iter_nquads",
    "Term",
    "URIRef",
    "BNode",
    "Literal",
    "Namespace",
    "Triple",
    "parse_turtle",
    "serialize_turtle",
    "parse_ntriples",
    "serialize_ntriples",
    "iter_ntriples",
    "RDF",
    "RDFS",
    "XSD",
    "SKOS",
    "QB",
    "SDMX_ATTR",
    "SDMX_DIMENSION",
    "SDMX_MEASURE",
    "CCREL",
    "EX",
    "PREFIXES",
]
