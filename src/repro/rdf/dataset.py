"""RDF datasets: a default graph plus named graphs.

The paper's setting is inherently multi-source — observations arrive
from different publishers.  :class:`RDFDataset` keeps each source in
its own named graph (provenance), while exposing the merged view the
algorithms consume.
"""

from __future__ import annotations

from typing import Iterable, Iterator

from repro.errors import RDFError
from repro.rdf.graph import Graph
from repro.rdf.terms import BNode, Term, Triple, URIRef

__all__ = ["RDFDataset", "Quad"]

GraphName = URIRef | None  # None = the default graph
Quad = tuple[URIRef | BNode, URIRef, Term, GraphName]


class RDFDataset:
    """A default graph and any number of named graphs."""

    def __init__(self) -> None:
        self.default = Graph()
        self._named: dict[URIRef, Graph] = {}

    # ------------------------------------------------------------------
    def graph(self, name: GraphName = None, create: bool = True) -> Graph:
        """The graph called ``name`` (the default graph for ``None``).

        With ``create`` (default) an empty named graph is materialised
        on first access; otherwise a missing name raises
        :class:`~repro.errors.RDFError`.
        """
        if name is None:
            return self.default
        if not isinstance(name, URIRef):
            raise RDFError(f"graph names must be URIs, got {name!r}")
        if name not in self._named:
            if not create:
                raise RDFError(f"no graph named {name}")
            self._named[name] = Graph()
        return self._named[name]

    def names(self) -> list[URIRef]:
        """Names of the non-empty named graphs, sorted."""
        return sorted(n for n, g in self._named.items() if len(g))

    def add(self, quad: Quad) -> bool:
        s, p, o, name = quad
        return self.graph(name).add((s, p, o))

    def update(self, quads: Iterable[Quad]) -> int:
        return sum(1 for quad in quads if self.add(quad))

    def discard(self, quad: Quad) -> bool:
        s, p, o, name = quad
        if name is not None and name not in self._named:
            return False
        return self.graph(name).discard((s, p, o))

    # ------------------------------------------------------------------
    def quads(
        self,
        subject=None,
        predicate=None,
        obj=None,
        name: GraphName | type(Ellipsis) = ...,
    ) -> Iterator[Quad]:
        """Match quads; ``name=...`` (default) searches every graph,
        ``name=None`` only the default graph."""
        if name is ...:
            sources: list[tuple[GraphName, Graph]] = [(None, self.default)]
            sources.extend(sorted(self._named.items()))
        else:
            if name is not None and name not in self._named:
                return
            sources = [(name, self.graph(name))]
        for graph_name, graph in sources:
            for s, p, o in graph.triples(subject, predicate, obj):
                yield (s, p, o, graph_name)

    def union_graph(self) -> Graph:
        """Default + all named graphs merged into one :class:`Graph`."""
        merged = self.default.copy()
        for graph in self._named.values():
            merged.update(graph)
        return merged

    def __len__(self) -> int:
        return len(self.default) + sum(len(g) for g in self._named.values())

    def __contains__(self, quad: Quad) -> bool:
        s, p, o, name = quad
        if name is not None and name not in self._named:
            return False
        return (s, p, o) in self.graph(name)

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, RDFDataset):
            return NotImplemented
        mine = {n: g for n, g in self._named.items() if len(g)}
        theirs = {n: g for n, g in other._named.items() if len(g)}
        return self.default == other.default and mine == theirs

    def __ne__(self, other: object) -> bool:
        result = self.__eq__(other)
        if result is NotImplemented:
            return result
        return not result

    def __repr__(self) -> str:
        return (
            f"RDFDataset(default={len(self.default)} triples, "
            f"named_graphs={len(self.names())})"
        )
