"""In-memory indexed triple store.

:class:`Graph` keeps three hash indexes (SPO, POS, OSP) so that every
triple-pattern shape resolves through at most two dictionary lookups.
This is the storage substrate underneath the QB loader, the SPARQL
engine and the rule engine — the role Virtuoso/Jena play in the paper.
"""

from __future__ import annotations

from typing import Iterable, Iterator

from repro.errors import RDFError
from repro.rdf.terms import BNode, Literal, Term, Triple, URIRef

__all__ = ["Graph"]

_Subject = URIRef | BNode
_Node = Term | None


def _check_triple(triple: Triple) -> Triple:
    s, p, o = triple
    if not isinstance(s, (URIRef, BNode)):
        raise RDFError(f"triple subject must be a URIRef or BNode, got {s!r}")
    if not isinstance(p, URIRef):
        raise RDFError(f"triple predicate must be a URIRef, got {p!r}")
    if not isinstance(o, (URIRef, BNode, Literal)):
        raise RDFError(f"triple object must be an RDF term, got {o!r}")
    return triple


class Graph:
    """A set of RDF triples with pattern-matching indexes.

    Supports the container protocol (``len``, ``in``, iteration), set-style
    bulk operations, and wildcard matching through :meth:`triples` where
    ``None`` acts as a wildcard.
    """

    __slots__ = ("_spo", "_pos", "_osp", "_size")

    def __init__(self, triples: Iterable[Triple] | None = None):
        self._spo: dict[_Subject, dict[URIRef, set[Term]]] = {}
        self._pos: dict[URIRef, dict[Term, set[_Subject]]] = {}
        self._osp: dict[Term, dict[_Subject, set[URIRef]]] = {}
        self._size = 0
        if triples is not None:
            self.update(triples)

    # ------------------------------------------------------------------
    # Mutation
    # ------------------------------------------------------------------
    def add(self, triple: Triple) -> bool:
        """Insert one triple; return ``True`` if it was not present."""
        s, p, o = _check_triple(triple)
        objects = self._spo.setdefault(s, {}).setdefault(p, set())
        if o in objects:
            return False
        objects.add(o)
        self._pos.setdefault(p, {}).setdefault(o, set()).add(s)
        self._osp.setdefault(o, {}).setdefault(s, set()).add(p)
        self._size += 1
        return True

    def update(self, triples: Iterable[Triple]) -> int:
        """Insert many triples; return how many were new."""
        added = 0
        for triple in triples:
            if self.add(triple):
                added += 1
        return added

    def discard(self, triple: Triple) -> bool:
        """Remove one triple if present; return ``True`` if it was."""
        s, p, o = triple
        objects = self._spo.get(s, {}).get(p)
        if objects is None or o not in objects:
            return False
        objects.discard(o)
        if not objects:
            del self._spo[s][p]
            if not self._spo[s]:
                del self._spo[s]
        self._pos[p][o].discard(s)
        if not self._pos[p][o]:
            del self._pos[p][o]
            if not self._pos[p]:
                del self._pos[p]
        self._osp[o][s].discard(p)
        if not self._osp[o][s]:
            del self._osp[o][s]
            if not self._osp[o]:
                del self._osp[o]
        self._size -= 1
        return True

    def clear(self) -> None:
        self._spo.clear()
        self._pos.clear()
        self._osp.clear()
        self._size = 0

    # ------------------------------------------------------------------
    # Lookup
    # ------------------------------------------------------------------
    def triples(
        self,
        subject: _Node = None,
        predicate: _Node = None,
        obj: _Node = None,
    ) -> Iterator[Triple]:
        """Yield all triples matching the pattern; ``None`` is a wildcard."""
        s, p, o = subject, predicate, obj
        if s is not None:
            by_pred = self._spo.get(s)
            if by_pred is None:
                return
            if p is not None:
                objects = by_pred.get(p)
                if objects is None:
                    return
                if o is not None:
                    if o in objects:
                        yield (s, p, o)  # type: ignore[misc]
                    return
                for obj_term in objects:
                    yield (s, p, obj_term)  # type: ignore[misc]
                return
            for pred, objects in by_pred.items():
                if o is not None:
                    if o in objects:
                        yield (s, pred, o)  # type: ignore[misc]
                else:
                    for obj_term in objects:
                        yield (s, pred, obj_term)  # type: ignore[misc]
            return
        if p is not None:
            by_obj = self._pos.get(p)
            if by_obj is None:
                return
            if o is not None:
                for subj in by_obj.get(o, ()):
                    yield (subj, p, o)
                return
            for obj_term, subjects in by_obj.items():
                for subj in subjects:
                    yield (subj, p, obj_term)
            return
        if o is not None:
            by_subj = self._osp.get(o)
            if by_subj is None:
                return
            for subj, preds in by_subj.items():
                for pred in preds:
                    yield (subj, pred, o)
            return
        for subj, by_pred in self._spo.items():
            for pred, objects in by_pred.items():
                for obj_term in objects:
                    yield (subj, pred, obj_term)

    def subjects(self, predicate: _Node = None, obj: _Node = None) -> Iterator[_Subject]:
        """Yield distinct subjects of triples matching ``(?, predicate, obj)``."""
        if predicate is not None and obj is not None:
            yield from self._pos.get(predicate, {}).get(obj, ())
            return
        seen: set[_Subject] = set()
        for s, _, _ in self.triples(None, predicate, obj):
            if s not in seen:
                seen.add(s)
                yield s

    def predicates(self, subject: _Node = None, obj: _Node = None) -> Iterator[URIRef]:
        seen: set[URIRef] = set()
        for _, p, _ in self.triples(subject, None, obj):
            if p not in seen:
                seen.add(p)
                yield p

    def objects(self, subject: _Node = None, predicate: _Node = None) -> Iterator[Term]:
        if subject is not None and predicate is not None:
            yield from self._spo.get(subject, {}).get(predicate, ())
            return
        seen: set[Term] = set()
        for _, _, o in self.triples(subject, predicate, None):
            if o not in seen:
                seen.add(o)
                yield o

    def value(self, subject: _Node = None, predicate: _Node = None, obj: _Node = None) -> Term | None:
        """Return one term completing the pattern, or ``None``.

        Exactly one of the three positions must be ``None``; the value at
        that position of an arbitrary matching triple is returned.
        """
        wildcards = [subject, predicate, obj].count(None)
        if wildcards != 1:
            raise RDFError("Graph.value requires exactly one wildcard position")
        for s, p, o in self.triples(subject, predicate, obj):
            if subject is None:
                return s
            if predicate is None:
                return p
            return o
        return None

    def __contains__(self, triple: Triple) -> bool:
        s, p, o = triple
        return o in self._spo.get(s, {}).get(p, ())

    def __iter__(self) -> Iterator[Triple]:
        return self.triples()

    def __len__(self) -> int:
        return self._size

    def __bool__(self) -> bool:
        return self._size > 0

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, Graph):
            return NotImplemented
        return self._size == other._size and all(t in other for t in self)

    def __ne__(self, other: object) -> bool:
        result = self.__eq__(other)
        if result is NotImplemented:
            return result
        return not result

    def __repr__(self) -> str:
        return f"Graph(<{self._size} triples>)"

    # ------------------------------------------------------------------
    # Set-style operations
    # ------------------------------------------------------------------
    def copy(self) -> "Graph":
        return Graph(self)

    def __or__(self, other: "Graph") -> "Graph":
        merged = self.copy()
        merged.update(other)
        return merged

    def __sub__(self, other: "Graph") -> "Graph":
        return Graph(t for t in self if t not in other)

    def __and__(self, other: "Graph") -> "Graph":
        small, large = (self, other) if len(self) <= len(other) else (other, self)
        return Graph(t for t in small if t in large)

    # ------------------------------------------------------------------
    # Derived traversals
    # ------------------------------------------------------------------
    def transitive_objects(self, subject: Term, predicate: URIRef) -> Iterator[Term]:
        """Yield ``subject`` and everything reachable via ``predicate`` edges."""
        seen: set[Term] = set()
        stack: list[Term] = [subject]
        while stack:
            node = stack.pop()
            if node in seen:
                continue
            seen.add(node)
            yield node
            if isinstance(node, (URIRef, BNode)):
                stack.extend(self._spo.get(node, {}).get(predicate, ()))

    def transitive_subjects(self, obj: Term, predicate: URIRef) -> Iterator[Term]:
        """Yield ``obj`` and everything that reaches it via ``predicate``."""
        seen: set[Term] = set()
        stack: list[Term] = [obj]
        while stack:
            node = stack.pop()
            if node in seen:
                continue
            seen.add(node)
            yield node
            stack.extend(self._pos.get(predicate, {}).get(node, ()))

    # ------------------------------------------------------------------
    # Serialization conveniences (rdflib-style)
    # ------------------------------------------------------------------
    def parse(self, text: str, format: str = "turtle") -> "Graph":
        """Parse ``text`` into this graph; returns ``self`` for chaining.

        ``format`` is ``"turtle"``/``"ttl"`` or ``"ntriples"``/``"nt"``.
        """
        from repro.rdf import ntriples, turtle

        if format in ("turtle", "ttl"):
            turtle.parse_turtle(text, graph=self)
        elif format in ("ntriples", "nt", "n-triples"):
            ntriples.parse_ntriples(text, graph=self)
        else:
            raise RDFError(f"unknown serialization format {format!r}")
        return self

    def serialize(self, format: str = "turtle") -> str:
        """Serialize this graph as Turtle (default) or N-Triples."""
        from repro.rdf import ntriples, turtle

        if format in ("turtle", "ttl"):
            return turtle.serialize_turtle(self)
        if format in ("ntriples", "nt", "n-triples"):
            return ntriples.serialize_ntriples(self) or ""
        raise RDFError(f"unknown serialization format {format!r}")
