"""Well-known vocabularies used throughout the library.

Bundles the namespaces the paper relies on: RDF/RDFS/XSD core, SKOS for
code-list hierarchies, the W3C Data Cube Vocabulary (QB), the SDMX
attribute/measure/dimension extensions, and the authors' relationship
vocabulary from their SemStats 2014 workshop paper (here under ``CCREL``).
"""

from __future__ import annotations

from repro.rdf.terms import Namespace

__all__ = [
    "RDF",
    "RDFS",
    "XSD",
    "SKOS",
    "QB",
    "SDMX_ATTR",
    "SDMX_DIMENSION",
    "SDMX_MEASURE",
    "CCREL",
    "EX",
    "PREFIXES",
]

RDF = Namespace("http://www.w3.org/1999/02/22-rdf-syntax-ns#")
RDFS = Namespace("http://www.w3.org/2000/01/rdf-schema#")
XSD = Namespace("http://www.w3.org/2001/XMLSchema#")
SKOS = Namespace("http://www.w3.org/2004/02/skos/core#")
QB = Namespace("http://purl.org/linked-data/cube#")
SDMX_ATTR = Namespace("http://purl.org/linked-data/sdmx/2009/attribute#")
SDMX_DIMENSION = Namespace("http://purl.org/linked-data/sdmx/2009/dimension#")
SDMX_MEASURE = Namespace("http://purl.org/linked-data/sdmx/2009/measure#")
# Containment/complementarity relationship vocabulary (after Meimaris &
# Papastefanatos, SemStats 2014).
CCREL = Namespace("http://www.diachron-fp7.eu/qb/relationship#")
EX = Namespace("http://example.org/")

#: Default prefix table used by the Turtle serializer and SPARQL parser.
PREFIXES: dict[str, Namespace] = {
    "rdf": RDF,
    "rdfs": RDFS,
    "xsd": XSD,
    "skos": SKOS,
    "qb": QB,
    "sdmx-attribute": SDMX_ATTR,
    "sdmx-dimension": SDMX_DIMENSION,
    "sdmx-measure": SDMX_MEASURE,
    "ccrel": CCREL,
    "ex": EX,
}
