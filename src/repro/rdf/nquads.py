"""N-Quads parser and serializer (N-Triples plus an optional graph term)."""

from __future__ import annotations

import re
from typing import Iterable, Iterator, TextIO

from repro.errors import ParseError
from repro.rdf.dataset import Quad, RDFDataset
from repro.rdf.terms import BNode, Literal, Term, URIRef, unescape_string

__all__ = ["parse_nquads", "serialize_nquads", "iter_nquads"]

_IRI = r"<([^<>\"{}|^`\\\x00-\x20]*)>"
_BNODE = r"_:([A-Za-z0-9_.\-]+)"
_LITERAL = r'"((?:[^"\\]|\\.)*)"(?:\^\^<([^<>]*)>|@([A-Za-z]+(?:-[A-Za-z0-9]+)*))?'

_QUAD_RE = re.compile(
    rf"^\s*(?:{_IRI}|{_BNODE})"  # subject: groups 1-2
    rf"\s+{_IRI}"  # predicate: group 3
    rf"\s+(?:{_IRI}|{_BNODE}|{_LITERAL})"  # object: groups 4-8
    rf"(?:\s+{_IRI})?"  # graph: group 9
    r"\s*\.\s*(?:#.*)?$"
)


def _parse_line(line: str, lineno: int) -> Quad:
    match = _QUAD_RE.match(line)
    if match is None:
        raise ParseError(f"invalid N-Quads statement: {line.strip()!r}", line=lineno)
    s_iri, s_bnode, pred, o_iri, o_bnode, o_lit, o_dt, o_lang, graph_iri = match.groups()
    subject = URIRef(s_iri) if s_iri is not None else BNode(s_bnode)
    predicate = URIRef(pred)
    obj: Term
    if o_iri is not None:
        obj = URIRef(o_iri)
    elif o_bnode is not None:
        obj = BNode(o_bnode)
    else:
        obj = Literal(unescape_string(o_lit), datatype=o_dt, language=o_lang)
    name = URIRef(graph_iri) if graph_iri is not None else None
    return (subject, predicate, obj, name)


def iter_nquads(text: str | Iterable[str]) -> Iterator[Quad]:
    """Stream quads from N-Quads text or an iterable of lines."""
    lines = text.splitlines() if isinstance(text, str) else text
    for lineno, line in enumerate(lines, start=1):
        stripped = line.strip()
        if not stripped or stripped.startswith("#"):
            continue
        yield _parse_line(line, lineno)


def parse_nquads(text: str | Iterable[str], dataset: RDFDataset | None = None) -> RDFDataset:
    """Parse N-Quads into ``dataset`` (a fresh one when omitted)."""
    target = dataset if dataset is not None else RDFDataset()
    target.update(iter_nquads(text))
    return target


def serialize_nquads(dataset: RDFDataset, out: TextIO | None = None) -> str | None:
    """Serialize as sorted N-Quads; deterministic like the N-Triples writer."""

    def sort_key(quad: Quad):
        s, p, o, name = quad
        return (name or "", s._sort_key(), p._sort_key(), o._sort_key())

    lines = []
    for s, p, o, name in sorted(dataset.quads(), key=sort_key):
        graph_part = f" {name.n3()}" if name is not None else ""
        lines.append(f"{s.n3()} {p.n3()} {o.n3()}{graph_part} .")
    if out is not None:
        for line in lines:
            out.write(line + "\n")
        return None
    return "\n".join(lines) + ("\n" if lines else "")
