"""N-Triples parser and serializer.

N-Triples is the line-oriented subset of Turtle: one triple per line,
absolute IRIs only, no prefixes.  It is the exchange format the data
generators use for large files because parsing is streaming and cheap.
"""

from __future__ import annotations

import re
from typing import Iterable, Iterator, TextIO

from repro.errors import ParseError
from repro.rdf.graph import Graph
from repro.rdf.terms import BNode, Literal, Term, Triple, URIRef, unescape_string

__all__ = ["parse_ntriples", "serialize_ntriples", "iter_ntriples"]

_IRI = r"<([^<>\"{}|^`\\\x00-\x20]*)>"
_BNODE = r"_:([A-Za-z0-9_.\-]+)"
_LITERAL = r'"((?:[^"\\]|\\.)*)"(?:\^\^<([^<>]*)>|@([A-Za-z]+(?:-[A-Za-z0-9]+)*))?'

_TRIPLE_RE = re.compile(
    rf"^\s*(?:{_IRI}|{_BNODE})"  # subject: groups 1 (iri), 2 (bnode)
    rf"\s+{_IRI}"  # predicate: group 3
    rf"\s+(?:{_IRI}|{_BNODE}|{_LITERAL})"  # object: groups 4-8
    r"\s*\.\s*(?:#.*)?$"
)


def _parse_line(line: str, lineno: int) -> Triple:
    match = _TRIPLE_RE.match(line)
    if match is None:
        raise ParseError(f"invalid N-Triples statement: {line.strip()!r}", line=lineno)
    s_iri, s_bnode, pred, o_iri, o_bnode, o_lit, o_dt, o_lang = match.groups()
    subject = URIRef(s_iri) if s_iri is not None else BNode(s_bnode)
    predicate = URIRef(pred)
    obj: Term
    if o_iri is not None:
        obj = URIRef(o_iri)
    elif o_bnode is not None:
        obj = BNode(o_bnode)
    else:
        obj = Literal(unescape_string(o_lit), datatype=o_dt, language=o_lang)
    return (subject, predicate, obj)


def iter_ntriples(text: str | Iterable[str]) -> Iterator[Triple]:
    """Stream triples from N-Triples text or an iterable of lines."""
    lines = text.splitlines() if isinstance(text, str) else text
    for lineno, line in enumerate(lines, start=1):
        stripped = line.strip()
        if not stripped or stripped.startswith("#"):
            continue
        yield _parse_line(line, lineno)


def parse_ntriples(text: str | Iterable[str], graph: Graph | None = None) -> Graph:
    """Parse N-Triples into ``graph`` (a fresh one when omitted)."""
    target = graph if graph is not None else Graph()
    target.update(iter_ntriples(text))
    return target


def serialize_ntriples(graph: Graph, out: TextIO | None = None) -> str | None:
    """Serialize ``graph`` as sorted N-Triples.

    When ``out`` is given, lines are written to it and ``None`` is
    returned; otherwise the document is returned as a string.  Sorting
    makes output deterministic, which the round-trip tests rely on.
    """
    lines = (
        f"{s.n3()} {p.n3()} {o.n3()} ."
        for s, p, o in sorted(graph, key=lambda t: (t[0]._sort_key(), t[1]._sort_key(), t[2]._sort_key()))
    )
    if out is not None:
        for line in lines:
            out.write(line + "\n")
        return None
    return "\n".join(lines) + ("\n" if len(graph) else "")
