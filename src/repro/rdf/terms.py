"""RDF term model: URIs, blank nodes, literals and namespaces.

This module implements the value layer of the RDF substrate.  Terms are
immutable, hashable and totally ordered (URIRef < BNode < Literal, then
lexicographic), which gives graphs and query results a deterministic
iteration order that the test-suite and the benchmark harness rely on.

Literals carry an optional datatype URI or language tag and expose
``to_python()`` to convert the common XSD datatypes to native values.
"""

from __future__ import annotations

import itertools
import re
from decimal import Decimal, InvalidOperation
from typing import Any, Union

from repro.errors import TermError

__all__ = [
    "Term",
    "URIRef",
    "BNode",
    "Literal",
    "Namespace",
    "Triple",
    "XSD_STRING",
    "XSD_INTEGER",
    "XSD_DECIMAL",
    "XSD_DOUBLE",
    "XSD_BOOLEAN",
]

_XSD = "http://www.w3.org/2001/XMLSchema#"
XSD_STRING = _XSD + "string"
XSD_INTEGER = _XSD + "integer"
XSD_DECIMAL = _XSD + "decimal"
XSD_DOUBLE = _XSD + "double"
XSD_BOOLEAN = _XSD + "boolean"

# Sort keys used to order terms of different kinds deterministically.
_KIND_URI = 0
_KIND_BNODE = 1
_KIND_LITERAL = 2

_URI_FORBIDDEN = re.compile(r"[\x00-\x20<>\"{}|^`\\]")

_bnode_counter = itertools.count()


class Term:
    """Abstract base class of all RDF terms."""

    __slots__ = ()

    _kind: int = -1

    def n3(self) -> str:
        """Return the N-Triples / Turtle serialization of this term."""
        raise NotImplementedError

    def _sort_key(self) -> tuple:
        raise NotImplementedError

    def __lt__(self, other: "Term") -> bool:
        if not isinstance(other, Term):
            return NotImplemented
        return self._sort_key() < other._sort_key()

    def __le__(self, other: "Term") -> bool:
        if not isinstance(other, Term):
            return NotImplemented
        return self._sort_key() <= other._sort_key()

    def __gt__(self, other: "Term") -> bool:
        if not isinstance(other, Term):
            return NotImplemented
        return self._sort_key() > other._sort_key()

    def __ge__(self, other: "Term") -> bool:
        if not isinstance(other, Term):
            return NotImplemented
        return self._sort_key() >= other._sort_key()


class URIRef(Term, str):
    """An IRI reference.

    Subclasses :class:`str`, so a ``URIRef`` can be used anywhere a plain
    string URI is expected (dictionary keys, sorting, formatting).
    """

    __slots__ = ()

    _kind = _KIND_URI

    def __new__(cls, value: str) -> "URIRef":
        if not value:
            raise TermError("URIRef cannot be empty")
        if _URI_FORBIDDEN.search(value):
            raise TermError(f"URIRef contains forbidden characters: {value!r}")
        return str.__new__(cls, value)

    def n3(self) -> str:
        return f"<{str(self)}>"

    def local_name(self) -> str:
        """Return the suffix after the last ``#`` or ``/`` separator.

        This is the string the alignment module matches on, mirroring how
        LIMES configurations in the paper compare URI suffixes.
        """
        text = str(self).rstrip("#/")
        if not text:
            return str(self)
        for sep in ("#", "/"):
            if sep in text:
                tail = text.rsplit(sep, 1)[1]
                if tail:
                    return tail
        return text

    def _sort_key(self) -> tuple:
        return (_KIND_URI, str(self))

    def __repr__(self) -> str:
        return f"URIRef({str(self)!r})"

    # str defines rich comparisons; restore Term's cross-kind ordering.
    def __lt__(self, other: Any) -> bool:
        if isinstance(other, Term):
            return self._sort_key() < other._sort_key()
        return str.__lt__(self, other)

    def __gt__(self, other: Any) -> bool:
        if isinstance(other, Term):
            return self._sort_key() > other._sort_key()
        return str.__gt__(self, other)

    def __le__(self, other: Any) -> bool:
        if isinstance(other, Term):
            return self._sort_key() <= other._sort_key()
        return str.__le__(self, other)

    def __ge__(self, other: Any) -> bool:
        if isinstance(other, Term):
            return self._sort_key() >= other._sort_key()
        return str.__ge__(self, other)


class BNode(Term, str):
    """A blank node with a stable label.

    Constructing ``BNode()`` without arguments mints a fresh label from a
    process-wide counter.
    """

    __slots__ = ()

    _kind = _KIND_BNODE

    def __new__(cls, label: str | None = None) -> "BNode":
        if label is None:
            label = f"b{next(_bnode_counter)}"
        if not re.fullmatch(r"[A-Za-z0-9_.\-]+", label):
            raise TermError(f"invalid blank node label: {label!r}")
        return str.__new__(cls, label)

    def n3(self) -> str:
        return f"_:{str(self)}"

    def _sort_key(self) -> tuple:
        return (_KIND_BNODE, str(self))

    def __repr__(self) -> str:
        return f"BNode({str(self)!r})"

    def __lt__(self, other: Any) -> bool:
        if isinstance(other, Term):
            return self._sort_key() < other._sort_key()
        return str.__lt__(self, other)

    def __gt__(self, other: Any) -> bool:
        if isinstance(other, Term):
            return self._sort_key() > other._sort_key()
        return str.__gt__(self, other)

    def __le__(self, other: Any) -> bool:
        if isinstance(other, Term):
            return self._sort_key() <= other._sort_key()
        return str.__le__(self, other)

    def __ge__(self, other: Any) -> bool:
        if isinstance(other, Term):
            return self._sort_key() >= other._sort_key()
        return str.__ge__(self, other)


_ESCAPES = {
    "\\": "\\\\",
    '"': '\\"',
    "\n": "\\n",
    "\r": "\\r",
    "\t": "\\t",
}

_UNESCAPES = {
    "\\": "\\",
    '"': '"',
    "n": "\n",
    "r": "\r",
    "t": "\t",
    "'": "'",
    "b": "\b",
    "f": "\f",
}


def _escape_literal(text: str) -> str:
    out = []
    for ch in text:
        escaped = _ESCAPES.get(ch)
        if escaped is not None:
            out.append(escaped)
        elif ch < " " or ch in "\x85\u2028\u2029":
            # Control characters and Unicode line separators would break
            # line-oriented N-Triples parsing if emitted raw.
            out.append(f"\\u{ord(ch):04X}")
        else:
            out.append(ch)
    return "".join(out)


def unescape_string(text: str) -> str:
    """Resolve ``\\n``-style and ``\\uXXXX`` escapes in a literal body."""
    if "\\" not in text:
        return text
    out: list[str] = []
    i = 0
    length = len(text)
    while i < length:
        ch = text[i]
        if ch != "\\":
            out.append(ch)
            i += 1
            continue
        if i + 1 >= length:
            raise TermError("dangling backslash in literal")
        nxt = text[i + 1]
        if nxt in _UNESCAPES:
            out.append(_UNESCAPES[nxt])
            i += 2
        elif nxt == "u":
            out.append(chr(int(text[i + 2 : i + 6], 16)))
            i += 6
        elif nxt == "U":
            out.append(chr(int(text[i + 2 : i + 10], 16)))
            i += 10
        else:
            raise TermError(f"unknown escape sequence \\{nxt}")
    return "".join(out)


class Literal(Term):
    """An RDF literal with optional datatype or language tag.

    The constructor accepts native Python values and infers the XSD
    datatype (``int`` -> ``xsd:integer``, ``float`` -> ``xsd:double``,
    ``bool`` -> ``xsd:boolean``, ``Decimal`` -> ``xsd:decimal``).
    """

    __slots__ = ("lexical", "datatype", "language")

    _kind = _KIND_LITERAL

    def __init__(
        self,
        value: Any,
        datatype: str | None = None,
        language: str | None = None,
    ):
        if datatype is not None and language is not None:
            raise TermError("a literal cannot have both a datatype and a language tag")
        if isinstance(value, bool):
            lexical = "true" if value else "false"
            datatype = datatype or XSD_BOOLEAN
        elif isinstance(value, int):
            lexical = str(value)
            datatype = datatype or XSD_INTEGER
        elif isinstance(value, float):
            lexical = repr(value)
            datatype = datatype or XSD_DOUBLE
        elif isinstance(value, Decimal):
            lexical = str(value)
            datatype = datatype or XSD_DECIMAL
        else:
            lexical = str(value)
        if language is not None and not re.fullmatch(r"[A-Za-z]+(-[A-Za-z0-9]+)*", language):
            raise TermError(f"invalid language tag: {language!r}")
        object.__setattr__(self, "lexical", lexical)
        object.__setattr__(self, "datatype", URIRef(datatype) if datatype else None)
        object.__setattr__(self, "language", language)

    def __setattr__(self, name: str, value: Any) -> None:
        raise AttributeError("Literal is immutable")

    def to_python(self) -> Any:
        """Convert to a native Python value based on the XSD datatype.

        Unknown datatypes and plain literals are returned as strings.
        """
        dt = str(self.datatype) if self.datatype else None
        try:
            if dt == XSD_INTEGER or (dt and dt.startswith(_XSD) and "int" in dt.lower()):
                return int(self.lexical)
            if dt == XSD_DOUBLE or dt == _XSD + "float":
                return float(self.lexical)
            if dt == XSD_DECIMAL:
                return Decimal(self.lexical)
            if dt == XSD_BOOLEAN:
                return self.lexical.strip().lower() in ("true", "1")
        except (ValueError, InvalidOperation) as exc:
            raise TermError(f"literal {self.lexical!r} is not a valid {dt}") from exc
        return self.lexical

    def n3(self) -> str:
        body = f'"{_escape_literal(self.lexical)}"'
        if self.language:
            return f"{body}@{self.language}"
        if self.datatype and str(self.datatype) != XSD_STRING:
            return f"{body}^^{self.datatype.n3()}"
        return body

    def _sort_key(self) -> tuple:
        return (
            _KIND_LITERAL,
            self.lexical,
            str(self.datatype) if self.datatype else "",
            self.language or "",
        )

    def __eq__(self, other: Any) -> bool:
        if not isinstance(other, Literal):
            return NotImplemented
        return (
            self.lexical == other.lexical
            and self.datatype == other.datatype
            and self.language == other.language
        )

    def __ne__(self, other: Any) -> bool:
        result = self.__eq__(other)
        if result is NotImplemented:
            return result
        return not result

    def __hash__(self) -> int:
        return hash((self.lexical, self.datatype, self.language))

    def __repr__(self) -> str:
        extra = ""
        if self.datatype:
            extra = f", datatype={str(self.datatype)!r}"
        elif self.language:
            extra = f", language={self.language!r}"
        return f"Literal({self.lexical!r}{extra})"

    def __str__(self) -> str:
        return self.lexical


class Namespace(str):
    """A URI prefix that mints :class:`URIRef` terms via attribute access.

    >>> EX = Namespace("http://example.org/")
    >>> EX.population
    URIRef('http://example.org/population')
    >>> EX["refArea"]
    URIRef('http://example.org/refArea')
    """

    def __new__(cls, base: str) -> "Namespace":
        return str.__new__(cls, base)

    def __getattr__(self, name: str) -> URIRef:
        if name.startswith("__"):
            raise AttributeError(name)
        return URIRef(str(self) + name)

    def __getitem__(self, name: str) -> URIRef:  # type: ignore[override]
        return URIRef(str(self) + name)

    def term(self, name: str) -> URIRef:
        """Explicit form of attribute access, for names that collide."""
        return URIRef(str(self) + name)


Triple = tuple[Union[URIRef, BNode], URIRef, Term]
