"""TriG parser and serializer (Turtle with named-graph blocks).

Supported shapes::

    @prefix ex: <http://e/> .

    ex:defaultSubject ex:p ex:o .          # default graph

    GRAPH ex:g1 { ex:a ex:p ex:b . }       # named graph, GRAPH keyword

    ex:g2 { ex:c ex:p ex:d . }             # named graph, bare label
"""

from __future__ import annotations

from repro.errors import ParseError
from repro.rdf.dataset import RDFDataset
from repro.rdf.graph import Graph
from repro.rdf.namespaces import PREFIXES
from repro.rdf.terms import Namespace, URIRef
from repro.rdf.turtle import _TurtleParser, serialize_turtle

__all__ = ["parse_trig", "serialize_trig"]


class _TrigParser(_TurtleParser):
    """Extends the Turtle parser with graph blocks."""

    def __init__(self, text: str, dataset: RDFDataset, base: str | None):
        super().__init__(text, dataset.default, base)
        self._dataset = dataset

    def parse_dataset(self) -> RDFDataset:
        while self._peek().kind != "eof":
            token = self._peek()
            if token.kind == "prefix_directive":
                self._parse_directive()
            elif token.kind == "graph_kw":
                self._next()
                self._parse_graph_block()
            elif self._looks_like_graph_block():
                self._parse_graph_block()
            elif token.kind == "punct" and token.value == "{":
                # Anonymous block: triples for the default graph.
                self._parse_block_into(self._dataset.default)
            else:
                self._parse_triples_block()
        return self._dataset

    def _looks_like_graph_block(self) -> bool:
        """A graph label is an IRI/pname directly followed by '{'."""
        token = self._peek()
        if token.kind not in ("iri", "pname"):
            return False
        nxt = self._tokens[self._index + 1]
        return nxt.kind == "punct" and nxt.value == "{"

    def _parse_graph_block(self) -> None:
        term = self._parse_term()
        if not isinstance(term, URIRef):
            raise self._error("graph names must be IRIs", self._peek())
        graph = self._dataset.graph(term)
        self._parse_block_into(graph)

    def _parse_block_into(self, graph: Graph) -> None:
        token = self._next()
        if token.kind != "punct" or token.value != "{":
            raise self._error(f"expected '{{', found {token.value!r}", token)
        previous = self._graph
        self._graph = graph
        try:
            while not (self._peek().kind == "punct" and self._peek().value == "}"):
                if self._peek().kind == "eof":
                    raise self._error("unterminated graph block", token)
                self._parse_triples_block()
        finally:
            self._graph = previous
        self._next()  # consume '}'

    def _parse_triples_block(self) -> None:
        # TriG allows omitting the final '.' before '}'.
        subject = self._parse_subject()
        self._parse_predicate_object_list(subject)
        nxt = self._peek()
        if nxt.kind == "punct" and nxt.value == ".":
            self._next()
        elif not (nxt.kind == "punct" and nxt.value == "}"):
            raise self._error(f"expected '.', found {nxt.value!r}", nxt)


def parse_trig(text: str, dataset: RDFDataset | None = None, base: str | None = None) -> RDFDataset:
    """Parse a TriG document into ``dataset`` (a fresh one when omitted)."""
    target = dataset if dataset is not None else RDFDataset()
    return _TrigParser(text, target, base).parse_dataset()


def serialize_trig(dataset: RDFDataset, prefixes: dict[str, Namespace] | None = None) -> str:
    """Serialize a dataset as TriG: default graph first, then one
    ``GRAPH <name> { ... }`` block per non-empty named graph."""
    parts: list[str] = []
    table = dict(PREFIXES)
    if prefixes:
        table.update(prefixes)
    declared: list[str] = []
    if len(dataset.default):
        text = serialize_turtle(dataset.default, prefixes)
        parts.append(text.rstrip("\n"))
    for name in dataset.names():
        body = serialize_turtle(dataset.graph(name), prefixes).rstrip("\n")
        # Hoist @prefix lines out of the block.
        lines = body.splitlines()
        content = [line for line in lines if not line.startswith("@prefix")]
        for line in lines:
            if line.startswith("@prefix") and line not in declared:
                declared.append(line)
        indented = "\n".join(f"    {line}" if line else "" for line in content).strip("\n")
        parts.append(f"GRAPH {name.n3()} {{\n{indented}\n}}")
    # Deduplicate prefix declarations across parts: collect from default too.
    rendered = "\n\n".join(parts)
    header_lines = [line for line in declared if line not in rendered]
    if header_lines:
        rendered = "\n".join(header_lines) + "\n\n" + rendered
    return rendered + ("\n" if rendered else "")
