"""Turtle parser and serializer.

Implements the Turtle constructs that real-world QB dumps use:

* ``@prefix`` / ``@base`` directives (and the SPARQL-style ``PREFIX``),
* prefixed names and the ``a`` keyword,
* predicate lists (``;``) and object lists (``,``),
* anonymous blank nodes ``[ ... ]`` and labelled ``_:`` nodes,
* RDF collections ``( ... )``,
* typed/lang literals, bare integers, decimals, doubles and booleans,
* triple-quoted long strings.

The serializer groups triples by subject and emits predicate/object lists
with the default prefix table, producing output the parser round-trips.
"""

from __future__ import annotations

import re
from typing import Iterator

from repro.errors import ParseError
from repro.rdf.graph import Graph
from repro.rdf.namespaces import PREFIXES, RDF, XSD
from repro.rdf.terms import (
    BNode,
    Literal,
    Namespace,
    Term,
    Triple,
    URIRef,
    unescape_string,
)

__all__ = ["parse_turtle", "serialize_turtle"]

_TOKEN_RE = re.compile(
    r"""
    (?P<ws>\s+|\#[^\n]*)
  | (?P<iri><[^<>"{}|^`\\\x00-\x20]*>)
  | (?P<long_string>\"\"\"(?:[^"\\]|\\.|"(?!""))*\"\"\")
  | (?P<string>"(?:[^"\\\n]|\\.)*")
  | (?P<prefix_directive>@prefix\b|@base\b|PREFIX\b|BASE\b)
  | (?P<graph_kw>GRAPH\b|graph\b)
  | (?P<langtag>@[A-Za-z]+(?:-[A-Za-z0-9]+)*)
  | (?P<double>[+-]?(?:\d+\.\d*|\.\d+|\d+)[eE][+-]?\d+)
  | (?P<decimal>[+-]?\d*\.\d+)
  | (?P<integer>[+-]?\d+)
  | (?P<bnode>_:[A-Za-z0-9_.\-]+)
  | (?P<pname>(?:[A-Za-z_][\w\-.]*)?:[\w\-.%]*)
  | (?P<keyword>\ba\b|\btrue\b|\bfalse\b)
  | (?P<punct>\^\^|[;,.\[\](){}])
    """,
    re.VERBOSE,
)


class _Token:
    __slots__ = ("kind", "value", "pos")

    def __init__(self, kind: str, value: str, pos: int):
        self.kind = kind
        self.value = value
        self.pos = pos

    def __repr__(self) -> str:
        return f"_Token({self.kind}, {self.value!r})"


def _tokenize(text: str) -> Iterator[_Token]:
    pos = 0
    length = len(text)
    while pos < length:
        match = _TOKEN_RE.match(text, pos)
        if match is None:
            line = text.count("\n", 0, pos) + 1
            raise ParseError(f"unexpected character {text[pos]!r}", line=line)
        pos = match.end()
        kind = match.lastgroup or ""
        if kind == "ws":
            continue
        yield _Token(kind, match.group(), match.start())
    yield _Token("eof", "", length)


class _TurtleParser:
    """Recursive-descent parser over the token stream."""

    def __init__(self, text: str, graph: Graph, base: str | None):
        self._text = text
        self._graph = graph
        self._base = base or ""
        self._prefixes: dict[str, str] = {}
        self._tokens = list(_tokenize(text))
        self._index = 0

    # -- token helpers -------------------------------------------------
    def _peek(self) -> _Token:
        return self._tokens[self._index]

    def _next(self) -> _Token:
        token = self._tokens[self._index]
        self._index += 1
        return token

    def _error(self, message: str, token: _Token) -> ParseError:
        line = self._text.count("\n", 0, token.pos) + 1
        return ParseError(message, line=line)

    def _expect_punct(self, value: str) -> None:
        token = self._next()
        if token.kind != "punct" or token.value != value:
            raise self._error(f"expected {value!r}, found {token.value!r}", token)

    # -- grammar -------------------------------------------------------
    def parse(self) -> Graph:
        while self._peek().kind != "eof":
            token = self._peek()
            if token.kind == "prefix_directive":
                self._parse_directive()
            else:
                self._parse_triples_block()
        return self._graph

    def _parse_directive(self) -> None:
        directive = self._next()
        keyword = directive.value.lstrip("@").lower()
        if keyword == "prefix":
            name_token = self._next()
            if name_token.kind != "pname" or not name_token.value.endswith(":"):
                raise self._error("expected prefix name ending in ':'", name_token)
            iri_token = self._next()
            if iri_token.kind != "iri":
                raise self._error("expected IRI after prefix name", iri_token)
            self._prefixes[name_token.value[:-1]] = self._resolve_iri(iri_token.value[1:-1])
        elif keyword == "base":
            iri_token = self._next()
            if iri_token.kind != "iri":
                raise self._error("expected IRI after @base", iri_token)
            self._base = iri_token.value[1:-1]
        # Turtle directives end with '.', SPARQL-style ones do not.
        if directive.value.startswith("@"):
            self._expect_punct(".")
        elif self._peek().kind == "punct" and self._peek().value == ".":
            self._next()

    def _resolve_iri(self, iri: str) -> str:
        if self._base and not re.match(r"^[A-Za-z][A-Za-z0-9+.\-]*:", iri):
            return self._base + iri
        return iri

    def _parse_triples_block(self) -> None:
        subject = self._parse_subject()
        self._parse_predicate_object_list(subject)
        self._expect_punct(".")

    def _parse_subject(self) -> URIRef | BNode:
        token = self._peek()
        if token.kind == "punct" and token.value == "[":
            return self._parse_blank_node_property_list()
        if token.kind == "punct" and token.value == "(":
            return self._parse_collection()
        term = self._parse_term()
        if not isinstance(term, (URIRef, BNode)):
            raise self._error(f"subject must be an IRI or blank node, got {term!r}", token)
        return term

    def _parse_predicate_object_list(self, subject: URIRef | BNode) -> None:
        while True:
            predicate = self._parse_predicate()
            while True:
                obj = self._parse_object()
                self._graph.add((subject, predicate, obj))
                if self._peek().kind == "punct" and self._peek().value == ",":
                    self._next()
                    continue
                break
            if self._peek().kind == "punct" and self._peek().value == ";":
                self._next()
                # Trailing ';' before '.' or ']' is legal Turtle.
                nxt = self._peek()
                if nxt.kind == "punct" and nxt.value in (".", "]"):
                    return
                continue
            return

    def _parse_predicate(self) -> URIRef:
        token = self._peek()
        if token.kind == "keyword" and token.value == "a":
            self._next()
            return RDF.type
        term = self._parse_term()
        if not isinstance(term, URIRef):
            raise self._error(f"predicate must be an IRI, got {term!r}", token)
        return term

    def _parse_object(self) -> Term:
        token = self._peek()
        if token.kind == "punct" and token.value == "[":
            return self._parse_blank_node_property_list()
        if token.kind == "punct" and token.value == "(":
            return self._parse_collection()
        return self._parse_term()

    def _parse_blank_node_property_list(self) -> BNode:
        self._expect_punct("[")
        node = BNode()
        if not (self._peek().kind == "punct" and self._peek().value == "]"):
            self._parse_predicate_object_list(node)
        self._expect_punct("]")
        return node

    def _parse_collection(self) -> URIRef | BNode:
        self._expect_punct("(")
        items: list[Term] = []
        while not (self._peek().kind == "punct" and self._peek().value == ")"):
            items.append(self._parse_object())
        self._next()  # consume ')'
        if not items:
            return RDF.nil
        head = BNode()
        node = head
        for i, item in enumerate(items):
            self._graph.add((node, RDF.first, item))
            if i + 1 < len(items):
                nxt = BNode()
                self._graph.add((node, RDF.rest, nxt))
                node = nxt
            else:
                self._graph.add((node, RDF.rest, RDF.nil))
        return head

    def _parse_term(self) -> Term:
        token = self._next()
        if token.kind == "iri":
            return URIRef(self._resolve_iri(token.value[1:-1]))
        if token.kind == "bnode":
            return BNode(token.value[2:])
        if token.kind == "pname":
            prefix, _, local = token.value.partition(":")
            if prefix not in self._prefixes:
                raise self._error(f"undefined prefix {prefix!r}", token)
            return URIRef(self._prefixes[prefix] + local)
        if token.kind in ("string", "long_string"):
            body = token.value[3:-3] if token.kind == "long_string" else token.value[1:-1]
            value = unescape_string(body)
            nxt = self._peek()
            if nxt.kind == "langtag":
                self._next()
                return Literal(value, language=nxt.value[1:])
            if nxt.kind == "punct" and nxt.value == "^^":
                self._next()
                dt = self._parse_term()
                if not isinstance(dt, URIRef):
                    raise self._error("datatype must be an IRI", nxt)
                return Literal(value, datatype=str(dt))
            return Literal(value)
        if token.kind == "integer":
            return Literal(token.value, datatype=str(XSD.integer))
        if token.kind == "decimal":
            return Literal(token.value, datatype=str(XSD.decimal))
        if token.kind == "double":
            return Literal(token.value, datatype=str(XSD.double))
        if token.kind == "keyword" and token.value in ("true", "false"):
            return Literal(token.value, datatype=str(XSD.boolean))
        raise self._error(f"unexpected token {token.value!r}", token)


def parse_turtle(text: str, graph: Graph | None = None, base: str | None = None) -> Graph:
    """Parse a Turtle document into ``graph`` (a fresh one when omitted)."""
    target = graph if graph is not None else Graph()
    return _TurtleParser(text, target, base).parse()


# ----------------------------------------------------------------------
# Serialization
# ----------------------------------------------------------------------
def _shrink(term: URIRef, prefixes: dict[str, Namespace]) -> str:
    text = str(term)
    best: tuple[int, str] | None = None
    for name, ns in prefixes.items():
        base = str(ns)
        if text.startswith(base) and len(base) > (best[0] if best else 0):
            local = text[len(base):]
            if re.fullmatch(r"[\w\-.]*", local) and not local.startswith("."):
                best = (len(base), f"{name}:{local}")
    return best[1] if best else term.n3()


def _term_text(term: Term, prefixes: dict[str, Namespace]) -> str:
    if isinstance(term, URIRef):
        if term == RDF.type:
            return "a"
        return _shrink(term, prefixes)
    if isinstance(term, Literal) and term.datatype is not None:
        dt = str(term.datatype)
        if dt in (str(XSD.integer), str(XSD.decimal), str(XSD.boolean)):
            return term.lexical
        if term.language is None and dt != str(XSD.string):
            body = term.n3().split("^^")[0]
            return f"{body}^^{_shrink(term.datatype, prefixes)}"
    return term.n3()


def serialize_turtle(graph: Graph, prefixes: dict[str, Namespace] | None = None) -> str:
    """Serialize ``graph`` as Turtle grouped by subject.

    Only prefixes that actually occur in the output are declared.  The
    subject/predicate/object order is sorted for determinism.
    """
    table = dict(PREFIXES)
    if prefixes:
        table.update(prefixes)
    lines: list[str] = []
    used_prefixes: set[str] = set()

    def register(text: str) -> str:
        # Track prefixed names, including datatype suffixes ("..."^^xsd:int).
        candidate = text
        if "^^" in candidate:
            candidate = candidate.rsplit("^^", 1)[1]
        if ":" in candidate and not candidate.startswith(("<", '"', "_:")):
            used_prefixes.add(candidate.split(":", 1)[0])
        return text

    by_subject: dict[URIRef | BNode, list[tuple[URIRef, Term]]] = {}
    for s, p, o in graph:
        by_subject.setdefault(s, []).append((p, o))

    for subject in sorted(by_subject, key=lambda t: t._sort_key()):
        pairs = sorted(by_subject[subject], key=lambda po: (po[0]._sort_key(), po[1]._sort_key()))
        subject_text = register(
            subject.n3() if isinstance(subject, BNode) else _shrink(subject, table)
        )
        by_predicate: dict[URIRef, list[Term]] = {}
        for p, o in pairs:
            by_predicate.setdefault(p, []).append(o)
        predicate_lines = []
        for p in by_predicate:
            objects = ", ".join(register(_term_text(o, table)) for o in by_predicate[p])
            predicate_lines.append(f"    {register(_term_text(p, table))} {objects}")
        lines.append(subject_text + "\n" + " ;\n".join(predicate_lines) + " .")

    header = [
        f"@prefix {name}: <{table[name]}> ."
        for name in sorted(used_prefixes)
        if name in table and name != "a"
    ]
    parts = []
    if header:
        parts.append("\n".join(header))
    parts.extend(lines)
    return "\n\n".join(parts) + ("\n" if parts else "")
