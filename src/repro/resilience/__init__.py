"""repro.resilience — fault injection and the hardened serving path.

The subsystem in one breath: :mod:`~repro.resilience.faults` makes
failure an injectable, deterministic input at named sites across the
stack; :mod:`~repro.resilience.deadline`,
:mod:`~repro.resilience.breaker` and :mod:`~repro.resilience.shed`
bound how much damage a slow disk or an overload can do to the serving
path; :mod:`~repro.resilience.scrub` finds and repairs at-rest
corruption before a query does; and :mod:`~repro.resilience.chaos`
proves the whole stack's crash-consistency story with hundreds of
randomized SIGKILL trials.  See ``docs/resilience.md``.

``scrub`` and ``chaos`` import the storage layer, which imports
``repro.core`` — whose package init imports *this* package for the
fault seam.  They are therefore exposed lazily (PEP 562) so importing
``repro.resilience`` never re-enters a partially-initialised
``repro.core``.
"""

from repro.resilience.breaker import CLOSED, HALF_OPEN, OPEN, CircuitBreaker
from repro.resilience.deadline import (
    Deadline,
    bind_deadline,
    check_deadline,
    current_deadline,
    remaining_ms,
)
from repro.resilience.faults import (
    CHAOS_ENV,
    KILL_EXIT_CODE,
    SITES,
    Fault,
    FaultInjector,
    FaultPlan,
    InjectedFault,
    SiteFault,
    clear_injector,
    get_injector,
    inject,
    injector_from_env,
    install_injector,
    parse_chaos_spec,
    truncate_file,
)
from repro.resilience.shed import LoadShedder

__all__ = [
    "CHAOS_ENV",
    "CLOSED",
    "HALF_OPEN",
    "KILL_EXIT_CODE",
    "OPEN",
    "SITES",
    "BackgroundScrubber",
    "CircuitBreaker",
    "Deadline",
    "Fault",
    "FaultInjector",
    "FaultPlan",
    "InjectedFault",
    "LoadShedder",
    "SiteFault",
    "bind_deadline",
    "check_deadline",
    "clear_injector",
    "crash_trial",
    "current_deadline",
    "get_injector",
    "inject",
    "injector_from_env",
    "install_injector",
    "parse_chaos_spec",
    "remaining_ms",
    "run_crash_trials",
    "scrub_store",
    "truncate_file",
]

_LAZY = {
    "BackgroundScrubber": "repro.resilience.scrub",
    "scrub_store": "repro.resilience.scrub",
    "crash_trial": "repro.resilience.chaos",
    "run_crash_trials": "repro.resilience.chaos",
}


def __getattr__(name: str):
    module_name = _LAZY.get(name)
    if module_name is None:
        raise AttributeError(f"module {__name__!r} has no attribute {name!r}")
    import importlib

    return getattr(importlib.import_module(module_name), name)
