"""A circuit breaker for the storage read path.

When the disk under a serving process degrades — a failing device
throwing ``EIO``, an NFS mount stalling, a corrupt segment raising on
every decode — naive retries turn one slow/broken dependency into a
pile-up of blocked handler threads.  A :class:`CircuitBreaker` watches
a sliding window of recent outcomes and **fails fast** once the
dependency is evidently unhealthy:

* **closed** — normal operation; outcomes are recorded.
* **open** — trips when, with at least ``min_samples`` outcomes in the
  window, the failure rate reaches ``failure_threshold`` *or* the
  fraction of calls slower than ``latency_threshold`` seconds reaches
  ``latency_fraction`` (a disk that "works" at 30s/read is down).
  Every call is refused with :class:`~repro.errors.CircuitOpenError`
  (HTTP 503 + ``Retry-After``) until ``reset_timeout`` elapses.
* **half-open** — after the cool-down, up to ``half_open_probes``
  trial calls are let through.  All succeeding closes the breaker
  (window cleared); any failure re-opens it and restarts the timer.

State transitions are counted in
``repro_breaker_transitions_total{from,to}``, the live state is the
``repro_breaker_state`` gauge (0 closed / 1 half-open / 2 open), and
refusals land in ``repro_breaker_rejections_total`` — all on the
process-wide registry, so a single ``/metrics`` scrape tells the whole
story.
"""

from __future__ import annotations

import threading
import time
from collections import deque

from repro.errors import CircuitOpenError

__all__ = ["CircuitBreaker", "CLOSED", "HALF_OPEN", "OPEN"]

CLOSED = "closed"
OPEN = "open"
HALF_OPEN = "half-open"

_STATE_VALUES = {CLOSED: 0, HALF_OPEN: 1, OPEN: 2}

# Registry metrics resolved once per process; see docs/observability.md.
_METRICS = None


def _metrics():
    global _METRICS
    if _METRICS is None:
        from repro.obs.registry import get_registry

        registry = get_registry()
        _METRICS = {
            "transitions": registry.counter(
                "repro_breaker_transitions_total",
                "Circuit-breaker state transitions.",
                labelnames=("from", "to"),
            ),
            "state": registry.gauge(
                "repro_breaker_state",
                "Storage circuit-breaker state (0 closed, 1 half-open, 2 open).",
            ),
            "rejections": registry.counter(
                "repro_breaker_rejections_total",
                "Calls refused because the breaker was open.",
            ),
        }
    return _METRICS


class CircuitBreaker:
    """Sliding-window failure-rate + latency circuit breaker."""

    def __init__(
        self,
        window: int = 32,
        failure_threshold: float = 0.5,
        min_samples: int = 8,
        latency_threshold: float | None = None,
        latency_fraction: float = 0.5,
        reset_timeout: float = 5.0,
        half_open_probes: int = 1,
        name: str = "storage",
        clock=time.monotonic,
    ):
        if not 0.0 < failure_threshold <= 1.0:
            raise ValueError(f"failure_threshold must be in (0, 1], got {failure_threshold}")
        self.window = int(window)
        self.failure_threshold = failure_threshold
        self.min_samples = int(min_samples)
        self.latency_threshold = latency_threshold
        self.latency_fraction = latency_fraction
        self.reset_timeout = float(reset_timeout)
        self.half_open_probes = int(half_open_probes)
        self.name = name
        self._clock = clock
        self._lock = threading.Lock()
        # (ok: bool, latency: float | None) outcomes, newest last
        self._outcomes: deque = deque(maxlen=self.window)
        self._state = CLOSED
        self._opened_at: float | None = None
        self._probes_inflight = 0
        self._probe_failures = 0
        _metrics()["state"].set(0)

    # ------------------------------------------------------------------
    @property
    def state(self) -> str:
        with self._lock:
            self._maybe_half_open()
            return self._state

    def _transition(self, to: str) -> None:
        if to == self._state:
            return
        _metrics()["transitions"].inc(**{"from": self._state, "to": to})
        _metrics()["state"].set(_STATE_VALUES[to])
        from repro.obs.logging import get_logger

        get_logger("repro.resilience").info(
            "breaker %s: %s -> %s", self.name, self._state, to
        )
        self._state = to
        if to == OPEN:
            self._opened_at = self._clock()
            self._probes_inflight = 0
            self._probe_failures = 0
        elif to == CLOSED:
            self._outcomes.clear()
            self._opened_at = None

    def _maybe_half_open(self) -> None:
        if self._state == OPEN and self._clock() - self._opened_at >= self.reset_timeout:
            self._transition(HALF_OPEN)

    def _unhealthy(self) -> bool:
        samples = len(self._outcomes)
        if samples < self.min_samples:
            return False
        failures = sum(1 for ok, _ in self._outcomes if not ok)
        if failures / samples >= self.failure_threshold:
            return True
        if self.latency_threshold is not None:
            slow = sum(
                1
                for ok, latency in self._outcomes
                if latency is not None and latency > self.latency_threshold
            )
            if slow / samples >= self.latency_fraction:
                return True
        return False

    # ------------------------------------------------------------------
    def allow(self) -> bool:
        """May a call proceed right now?  (Half-open admits probes.)"""
        with self._lock:
            self._maybe_half_open()
            if self._state == CLOSED:
                return True
            if self._state == HALF_OPEN and self._probes_inflight < self.half_open_probes:
                self._probes_inflight += 1
                return True
            _metrics()["rejections"].inc()
            return False

    def retry_after(self) -> float:
        """Seconds a refused caller should wait before retrying."""
        with self._lock:
            if self._opened_at is None:
                return self.reset_timeout
            return max(0.1, self.reset_timeout - (self._clock() - self._opened_at))

    def record_success(self, latency: float | None = None) -> None:
        with self._lock:
            if self._state == HALF_OPEN:
                self._probes_inflight = max(0, self._probes_inflight - 1)
                if self._probes_inflight == 0 and self._probe_failures == 0:
                    self._transition(CLOSED)
                return
            self._outcomes.append((True, latency))
            # A slow success can still trip the latency trigger.
            if self._state == CLOSED and self._unhealthy():
                self._transition(OPEN)

    def record_failure(self, latency: float | None = None) -> None:
        with self._lock:
            if self._state == HALF_OPEN:
                self._probes_inflight = max(0, self._probes_inflight - 1)
                self._probe_failures += 1
                self._transition(OPEN)
                return
            self._outcomes.append((False, latency))
            if self._state == CLOSED and self._unhealthy():
                self._transition(OPEN)

    # ------------------------------------------------------------------
    def call(self, fn, *args, **kwargs):
        """Run ``fn`` under the breaker, timing it.

        Refused calls raise :class:`CircuitOpenError`; failures
        (any exception from ``fn``) are recorded and re-raised.
        """
        if not self.allow():
            raise CircuitOpenError(
                f"{self.name} circuit breaker is {self._state}; "
                "reads are failing fast while the dependency recovers",
                retry_after=self.retry_after(),
            )
        started = self._clock()
        try:
            value = fn(*args, **kwargs)
        except Exception:
            self.record_failure(self._clock() - started)
            raise
        self.record_success(self._clock() - started)
        return value

    def stats(self) -> dict:
        with self._lock:
            self._maybe_half_open()
            samples = len(self._outcomes)
            failures = sum(1 for ok, _ in self._outcomes if not ok)
            return {
                "state": self._state,
                "samples": samples,
                "failures": failures,
                "failure_rate": failures / samples if samples else 0.0,
            }

    def __repr__(self) -> str:
        return f"CircuitBreaker(name={self.name!r}, state={self.state!r})"
