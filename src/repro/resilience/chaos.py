"""Crash-consistency harness: prove the store survives SIGKILL anywhere.

The storage engine's durability protocol (atomic segment writes, the
manifest as single commit point, CRC-framed fsynced WAL appends)
promises that a crash at *any* instruction leaves a store that opens,
replays, and serves every acknowledged write.  This harness turns that
promise into a falsifiable experiment, repeated across hundreds of
randomized crash points:

1. The parent builds a small seeded store.
2. A **forked child** installs a chaos rule drawn from the trial's
   seed — a torn ``wal.append``, a kill between flush and fsync, a
   kill right before the manifest commit of a compaction — then runs a
   write schedule (appends, then a compact), recording an fsynced
   **ack** marker after each write the store acknowledged.  The
   injected fault hard-exits the child mid-operation
   (``os._exit``, indistinguishable from SIGKILL: no flushes, no
   ``atexit``, no cleanup).
3. The parent reaps the child and verifies **recovery**: the store
   opens, loads (repairing a torn WAL tail at most), contains every
   acked write, and passes a deep CRC scrub.

A trial fails only on *silent data loss* (an acked write missing after
recovery) or an *unrecoverable state* (open/load/scrub raising).  A
child that happens not to crash (fault scheduled past its last write)
is still a valid trial — the no-fault path must be consistent too.

``benchmarks/bench_chaos.py`` drives this at scale (the acceptance bar
is ≥200 crash points, zero losses), ``tests/resilience/`` runs a
smaller randomized sample per CI run, and the ``chaos-smoke`` CI job
runs the same schedule as a real subprocess under ``REPRO_CHAOS``.
"""

from __future__ import annotations

import os
import random
from pathlib import Path

from repro.core.results import RelationshipDelta, RelationshipSet
from repro.rdf.terms import URIRef

__all__ = ["crash_trial", "run_crash_trials", "build_seed_store", "child_schedule"]

#: The crash points a trial draws from: (site, mode).  ``after`` — how
#: many hits of the site pass before the fault fires — is drawn per
#: trial, so the same site is hit at different depths across trials.
CRASH_POINTS = (
    ("wal.append", "torn"),
    ("wal.append", "kill"),
    ("wal.fsync", "kill"),
    ("manifest.commit", "kill"),
    ("segment.write", "kill"),
)


def _marker_pair(trial: int, index: int) -> tuple[URIRef, URIRef]:
    return (
        URIRef(f"urn:chaos:{trial}:{index}:container"),
        URIRef(f"urn:chaos:{trial}:{index}:contained"),
    )


def build_seed_store(path: str | os.PathLike) -> None:
    """A small committed generation for trials to mutate."""
    from repro.storage.store import SegmentStore

    result = RelationshipSet()
    for i in range(4):
        result.add_full(URIRef(f"urn:chaos:seed:{i}:a"), URIRef(f"urn:chaos:seed:{i}:b"))
        result.add_partial(
            URIRef(f"urn:chaos:seed:{i}:a"),
            URIRef(f"urn:chaos:seed:{i}:c"),
            degree=0.5,
        )
    SegmentStore.create(path, result).close()


def child_schedule(store_dir, ack_path, trial: int, ops: int) -> None:
    """The write schedule a trial's child runs until its fault fires.

    Appends ``ops`` marker deltas — fsyncing an ack record after each
    acknowledged append — then compacts.  Runs either to completion or
    to the injected hard exit; never returns control to the caller's
    runtime (callers fork, or exec a fresh interpreter).
    """
    from repro.storage.store import SegmentStore

    store = SegmentStore.open(store_dir)
    ack = open(ack_path, "a", encoding="utf-8")
    for index in range(ops):
        container, contained = _marker_pair(trial, index)
        delta = RelationshipDelta(added_full={(container, contained)})
        store.append_delta(delta)  # fsynced before returning
        ack.write(f"append {index}\n")
        ack.flush()
        os.fsync(ack.fileno())
    store.compact()
    ack.write("compacted\n")
    ack.flush()
    os.fsync(ack.fileno())
    ack.close()
    store.close()


def trial_spec(seed: int) -> tuple[str, int]:
    """(chaos spec, ops) for one trial, deterministic in ``seed``."""
    rng = random.Random(seed)
    ops = rng.randint(1, 6)
    site, mode = CRASH_POINTS[rng.randrange(len(CRASH_POINTS))]
    if site.startswith("wal."):
        # Each append hits wal.append and wal.fsync once; `after` in
        # [0, ops+compact-extra) lands the crash anywhere in the
        # schedule, including inside the compact's bookkeeping.
        after = rng.randint(0, ops)
    else:
        after = 0
    return f"{site}:{mode}:after={after}", ops


def _verify_recovery(store_dir, ack_path, trial: int) -> None:
    """Assert the recovered store serves every acknowledged write."""
    from repro.resilience.scrub import scrub_store
    from repro.storage.store import SegmentStore

    acked: list[str] = []
    if Path(ack_path).exists():
        acked = Path(ack_path).read_text(encoding="utf-8").splitlines()
    compacted = "compacted" in acked
    acked_appends = [int(line.split()[1]) for line in acked if line.startswith("append ")]

    store = SegmentStore.open(store_dir)  # manifest must parse: old or new gen
    loaded = store.load(apply_wal=True)   # repairs a torn WAL tail at most
    for index in acked_appends:
        pair = _marker_pair(trial, index)
        if pair not in loaded.full:
            raise AssertionError(
                f"trial {trial}: acked append {index} missing after recovery "
                f"(silent data loss)"
            )
    if compacted and store.wal.record_count() != 0:
        raise AssertionError(
            f"trial {trial}: compact acked but WAL still has records"
        )
    report = scrub_store(store, repair=False, deep=True)
    if report["quarantined"] or report["irreparable"] or report["wal"].get("error"):
        raise AssertionError(
            f"trial {trial}: recovered store fails CRC scrub: {report}"
        )
    store.close()


def crash_trial(base_dir: str | os.PathLike, seed: int) -> dict:
    """Run one randomized crash trial; returns its outcome record.

    Raises :class:`AssertionError` on silent data loss or an
    unrecoverable store — the two states the storage engine promises
    are impossible.
    """
    if not hasattr(os, "fork"):  # pragma: no cover - non-POSIX
        raise RuntimeError("crash trials need os.fork")
    base = Path(base_dir)
    store_dir = base / f"trial-{seed}.rseg"
    ack_path = base / f"trial-{seed}.ack"
    build_seed_store(store_dir)
    spec, ops = trial_spec(seed)

    pid = os.fork()
    if pid == 0:
        # Child: arm the chaos, run the schedule, never return.
        try:
            from repro.resilience.faults import install_injector

            install_injector(spec)
            child_schedule(store_dir, ack_path, seed, ops)
            os._exit(0)
        except BaseException:
            # An injected error (or anything else) mid-schedule is a
            # crash for the parent's purposes.
            os._exit(70)
    _, status = os.waitpid(pid, 0)
    exit_code = os.waitstatus_to_exitcode(status)
    _verify_recovery(store_dir, ack_path, seed)
    return {
        "seed": seed,
        "spec": spec,
        "ops": ops,
        "child_exit": exit_code,
        "crashed": exit_code != 0,
    }


def run_crash_trials(
    base_dir: str | os.PathLike, points: int, seed: int = 0, progress=None
) -> dict:
    """Run ``points`` randomized crash trials; returns the tally.

    Every trial must pass — the first inconsistency raises.  The tally
    reports how many trials actually crashed (vs ran clean) and the
    per-crash-point distribution, so a run that never exercised a site
    is visible instead of silently green.
    """
    by_spec: dict[str, int] = {}
    crashed = 0
    for i in range(points):
        outcome = crash_trial(base_dir, seed=seed * 1_000_003 + i)
        site = outcome["spec"].split(":")[0] + ":" + outcome["spec"].split(":")[1]
        by_spec[site] = by_spec.get(site, 0) + 1
        crashed += 1 if outcome["crashed"] else 0
        if progress is not None:
            progress(i + 1, points, outcome)
    return {
        "points": points,
        "crashed": crashed,
        "clean": points - crashed,
        "by_crash_point": dict(sorted(by_spec.items())),
    }
