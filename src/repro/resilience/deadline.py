"""Per-request deadlines, propagated through the whole read path.

A serving process must never let one slow request hold a handler
thread (and the resources under it) indefinitely.  A :class:`Deadline`
is an absolute monotonic expiry carried in a :mod:`contextvars`
context variable, so it flows from the HTTP handler (the
``X-Deadline-Ms`` request header) through the query engine's cache
miss, into the lazy index build and down to every individual segment
decode — with zero plumbing through signatures.

The layers cooperate by calling :func:`check_deadline` at natural
cancellation points (before a cache-miss compute, per segment file,
before WAL replay).  An expired deadline raises
:class:`~repro.errors.DeadlineExceededError`, which the HTTP layer
maps to **504 Gateway Timeout** — the work is abandoned at the next
checkpoint rather than cancelled preemptively, which is the strongest
guarantee a cooperative runtime can give.

Expiries are counted per-site in ``repro_deadline_expiries_total`` so
operators can see *where* budgets die (all in ``segment.read`` means
storage is the bottleneck; all in ``engine.query`` means compute).
"""

from __future__ import annotations

import contextlib
import contextvars
import time

from repro.errors import DeadlineExceededError

__all__ = [
    "Deadline",
    "bind_deadline",
    "check_deadline",
    "current_deadline",
    "remaining_ms",
]

_CURRENT: contextvars.ContextVar["Deadline | None"] = contextvars.ContextVar(
    "repro_deadline", default=None
)

# Registry metrics resolved once per process; see docs/observability.md.
_METRICS = None


def _metrics():
    global _METRICS
    if _METRICS is None:
        from repro.obs.registry import get_registry

        _METRICS = {
            "expiries": get_registry().counter(
                "repro_deadline_expiries_total",
                "Request deadlines noticed expired, by checkpoint site.",
                labelnames=("site",),
            ),
        }
    return _METRICS


class Deadline:
    """An absolute expiry on the monotonic clock."""

    __slots__ = ("expires_at", "budget_ms")

    def __init__(self, budget_ms: float):
        if budget_ms <= 0:
            raise ValueError(f"deadline budget must be positive, got {budget_ms}")
        self.budget_ms = float(budget_ms)
        self.expires_at = time.monotonic() + budget_ms / 1000.0

    @classmethod
    def after_ms(cls, budget_ms: float) -> "Deadline":
        return cls(budget_ms)

    def remaining(self) -> float:
        """Seconds left (negative once expired)."""
        return self.expires_at - time.monotonic()

    @property
    def expired(self) -> bool:
        return time.monotonic() >= self.expires_at

    def check(self, site: str = "") -> None:
        """Raise :class:`DeadlineExceededError` if the budget is gone."""
        overrun = time.monotonic() - self.expires_at
        if overrun >= 0:
            _metrics()["expiries"].inc(site=site or "unknown")
            raise DeadlineExceededError(site=site, overrun_ms=overrun * 1000.0)

    def __repr__(self) -> str:
        return f"Deadline(budget_ms={self.budget_ms:.0f}, remaining={self.remaining():.3f}s)"


def current_deadline() -> Deadline | None:
    """The deadline bound to this context, if any."""
    return _CURRENT.get()


@contextlib.contextmanager
def bind_deadline(deadline: Deadline | None):
    """Bind ``deadline`` for the duration of the ``with`` block.

    Binding ``None`` explicitly clears an inherited deadline (used by
    background work that must not die with the request that spawned
    it).
    """
    token = _CURRENT.set(deadline)
    try:
        yield deadline
    finally:
        _CURRENT.reset(token)


def check_deadline(site: str = "") -> None:
    """Cooperative cancellation point: no-op unless a bound deadline
    has expired, in which case :class:`DeadlineExceededError`."""
    deadline = _CURRENT.get()
    if deadline is not None:
        deadline.check(site)


def remaining_ms() -> float | None:
    """Milliseconds left on the bound deadline (None when unbound)."""
    deadline = _CURRENT.get()
    return None if deadline is None else deadline.remaining() * 1000.0
