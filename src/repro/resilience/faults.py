"""Process-wide deterministic fault injection.

Resilience code that is only exercised by real crashes is untestable;
this module makes failure a first-class, *reproducible* input at two
granularities:

**Named injection sites** (:class:`FaultInjector`).  Hot paths across
the stack call :func:`inject` with a well-known site name; an installed
injector decides — deterministically, from a seeded RNG and per-rule
hit counters — whether that call errors, stalls, tears its write, or
kills the process.  The sites:

===================  ====================================================
site                 fired at
===================  ====================================================
``segment.read``     :meth:`SegmentStore._decode_file` entry (per file)
``mmap.attach``      immediately before a segment file is memory-mapped
``wal.append``       before a WAL record's bytes are written (torn-capable)
``wal.fsync``        between a WAL append's flush and its fsync
``segment.write``    per segment file written during a generation commit
``manifest.commit``  before the manifest's atomic replace (torn-capable)
``worker.start``     pool-worker initializer (parallel cubeMasking)
``http.handler``     the HTTP handler, before routing a request
``scrub.segment``    per-segment verification inside the scrubber
===================  ====================================================

Injectors are configured from a **chaos spec** — a comma-separated list
of ``site:mode[:key=value...]`` clauses (see :func:`parse_chaos_spec`)
— via ``repro serve --chaos``, the ``REPRO_CHAOS`` environment variable
(:func:`injector_from_env`, honoured by every entry point so child
processes inherit the chaos), or :func:`install_injector` in tests.
No monkeypatching anywhere: the sites are permanent, the injector is
swappable, and with none installed :func:`inject` is a near-free
dictionary miss.

**Unit-targeted plans** (:class:`FaultPlan`).  The materialisation
runner's original harness — "kill the worker processing unit 3",
"raise in unit 5, twice" — consulted at unit boundaries.  It moved
here unchanged from the superseded ``repro.core.faults`` so the whole
failure vocabulary lives in one module:

* ``before_unit(unit_id)`` runs at the start of every execution
  attempt of a unit, in whichever process executes it.  Matching
  faults fire at most ``times`` attempts each, then stop — so a plan
  with ``times=1`` models a transient fault that a retry survives.
* ``after_unit(completed_count)`` runs in the parent after a unit's
  delta is durably checkpointed, and implements the simulated SIGINT
  (``interrupt_after``) by raising :class:`KeyboardInterrupt` — the
  same exception a real Ctrl-C delivers, exercising the same
  flush-then-exit path.

Because worker processes do not share memory with the parent, attempt
counting for ``kill``/cross-process faults uses one-shot token files
in ``state_dir`` (created with ``O_EXCL``, so exactly one claimant
wins each token even across a respawned pool).  Purely in-process
plans may omit ``state_dir`` and count in memory.

:func:`truncate_file` completes the harness: it chops a checkpoint
mid-line to model a crash during an append, letting tests prove the
loader's torn-tail recovery.
"""

from __future__ import annotations

import os
import random
import threading
import time
from dataclasses import dataclass
from pathlib import Path
from typing import Iterable

from repro.errors import ComputationError

__all__ = [
    "Fault",
    "FaultAction",
    "FaultInjector",
    "FaultPlan",
    "InjectedFault",
    "SiteFault",
    "clear_injector",
    "get_injector",
    "inject",
    "injector_from_env",
    "install_injector",
    "parse_chaos_spec",
    "truncate_file",
    "CHAOS_ENV",
    "KILL_EXIT_CODE",
    "SITES",
]

#: Environment variable every entry point consults for a chaos spec.
CHAOS_ENV = "REPRO_CHAOS"

#: Exit status used by ``kill`` faults — distinctive, so a harness can
#: tell an injected death from a genuine crash.
KILL_EXIT_CODE = 23

#: The documented injection sites (open set — unknown sites are legal,
#: this tuple exists for docs, validation hints and preregistration).
SITES = (
    "segment.read",
    "mmap.attach",
    "wal.append",
    "wal.fsync",
    "segment.write",
    "manifest.commit",
    "worker.start",
    "http.handler",
    "scrub.segment",
)

_MODES = ("error", "delay", "torn", "kill")

# Registry metrics resolved once per process; see docs/observability.md.
_METRICS = None


def _metrics():
    global _METRICS
    if _METRICS is None:
        from repro.obs.registry import get_registry

        _METRICS = {
            "injected": get_registry().counter(
                "repro_faults_injected_total",
                "Faults fired by the process-wide injector.",
                labelnames=("site", "mode"),
            ),
        }
    return _METRICS


class InjectedFault(ComputationError):
    """The error raised by a ``"raise"``/``"error"`` fault — retryable
    by design."""


# ----------------------------------------------------------------------
# Site-named injection
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class SiteFault:
    """One chaos rule: what happens at ``site``, how often.

    ``mode`` is one of:

    ``"error"``
        Raise :class:`InjectedFault` at the site.
    ``"delay"``
        Sleep ``seconds`` before the site's work proceeds.
    ``"torn"``
        At a torn-capable write site (``wal.append``,
        ``manifest.commit``) the caller writes only a prefix of its
        payload and hard-exits — a crash mid-write.  At any other site
        it degrades to ``error``.
    ``"kill"``
        Hard-exit the process with ``os._exit(KILL_EXIT_CODE)`` —
        models SIGKILL/power loss at exactly this point.

    ``after`` skips the first N matching hits; ``times`` bounds the
    firings (``None`` = unlimited); ``probability`` gates each
    remaining hit through the injector's seeded RNG.
    """

    site: str
    mode: str = "error"
    times: int | None = 1
    after: int = 0
    probability: float = 1.0
    seconds: float = 0.0

    def __post_init__(self) -> None:
        if self.mode not in _MODES:
            raise ValueError(f"unknown fault mode {self.mode!r} (want one of {_MODES})")
        if not 0.0 <= self.probability <= 1.0:
            raise ValueError(f"fault probability must be in [0, 1], got {self.probability}")


class FaultAction:
    """What :func:`inject` decided should happen at a site.

    ``error``/``delay``/``kill`` are applied before the caller sees
    anything; ``torn`` is returned to the (torn-capable) caller, which
    writes ``fraction`` of its payload and then calls :meth:`die`.
    """

    __slots__ = ("site", "mode", "seconds", "fraction")

    def __init__(self, site: str, mode: str, seconds: float = 0.0, fraction: float = 0.5):
        self.site = site
        self.mode = mode
        self.seconds = seconds
        self.fraction = fraction

    def die(self) -> None:
        """The torn write happened; crash the process."""
        os._exit(KILL_EXIT_CODE)

    def __repr__(self) -> str:
        return f"FaultAction(site={self.site!r}, mode={self.mode!r})"


class FaultInjector:
    """Deterministic, seeded, thread-safe site-fault dispatcher.

    Determinism contract: given the same rules, seed and sequence of
    :meth:`fire` calls, the same calls fault the same way — which is
    what lets a crash-consistency trial be replayed from its seed.
    """

    def __init__(self, faults: Iterable[SiteFault] = (), seed: int = 0):
        self.faults = tuple(faults)
        self.seed = seed
        self._rng = random.Random(seed)
        self._lock = threading.Lock()
        self._hits: dict[int, int] = {}
        self._fired: dict[int, int] = {}

    # ------------------------------------------------------------------
    def _select(self, site: str) -> SiteFault | None:
        """The first matching rule that should fire for this hit."""
        for index, fault in enumerate(self.faults):
            if fault.site != site and fault.site != "*":
                continue
            hit = self._hits.get(index, 0)
            self._hits[index] = hit + 1
            if hit < fault.after:
                continue
            if fault.times is not None and self._fired.get(index, 0) >= fault.times:
                continue
            if fault.probability < 1.0 and self._rng.random() >= fault.probability:
                continue
            self._fired[index] = self._fired.get(index, 0) + 1
            return fault
        return None

    def fire(self, site: str, torn_capable: bool = False) -> FaultAction | None:
        """Apply any matching fault at ``site``.

        ``error`` raises, ``delay`` sleeps, ``kill`` exits — all right
        here.  ``torn`` is returned as a :class:`FaultAction` when the
        caller declared itself ``torn_capable`` (it must write a
        partial payload and call :meth:`FaultAction.die`); otherwise it
        degrades to ``error``.
        """
        with self._lock:
            fault = self._select(site)
        if fault is None:
            return None
        _metrics()["injected"].inc(site=site, mode=fault.mode)
        if fault.mode == "delay":
            time.sleep(fault.seconds)
            return None
        if fault.mode == "kill":
            os._exit(KILL_EXIT_CODE)
        if fault.mode == "torn" and torn_capable:
            return FaultAction(site, "torn", seconds=fault.seconds)
        raise InjectedFault(f"injected fault at site {site!r} ({fault.mode})")

    def counts(self) -> dict[str, int]:
        """``{"site:mode": fired}`` — how often each rule fired."""
        with self._lock:
            return {
                f"{self.faults[i].site}:{self.faults[i].mode}": n
                for i, n in sorted(self._fired.items())
            }

    def __repr__(self) -> str:
        return f"FaultInjector({len(self.faults)} rule(s), seed={self.seed})"


# ----------------------------------------------------------------------
# Chaos-spec parsing and the process-wide injector
# ----------------------------------------------------------------------
def parse_chaos_spec(spec: str) -> FaultInjector:
    """Build an injector from a chaos spec string.

    Grammar: comma-separated clauses.  ``seed=N`` seeds the injector's
    RNG; every other clause is ``site:mode[:key=value...]`` with keys
    ``times`` (int, or ``inf`` for unlimited), ``after`` (int), ``p``
    (float probability) and ``seconds`` (float).  Examples::

        segment.read:error:times=2
        wal.append:torn:after=3
        seed=7,segment.read:delay:seconds=0.2:p=0.5:times=inf
        manifest.commit:kill

    Raises :class:`ValueError` on anything malformed, so a typo in
    ``--chaos`` is an immediate CLI error rather than silent calm.
    """
    faults: list[SiteFault] = []
    seed = 0
    for clause in spec.split(","):
        clause = clause.strip()
        if not clause:
            continue
        if clause.startswith("seed="):
            seed = int(clause[len("seed="):])
            continue
        parts = clause.split(":")
        if len(parts) < 2:
            raise ValueError(
                f"chaos clause {clause!r} must be site:mode[:key=value...]"
            )
        site, mode = parts[0], parts[1]
        kwargs: dict = {}
        for option in parts[2:]:
            key, sep, value = option.partition("=")
            if not sep:
                raise ValueError(f"chaos option {option!r} must be key=value")
            if key == "times":
                kwargs["times"] = None if value == "inf" else int(value)
            elif key == "after":
                kwargs["after"] = int(value)
            elif key == "p":
                kwargs["probability"] = float(value)
            elif key == "seconds":
                kwargs["seconds"] = float(value)
            else:
                raise ValueError(f"unknown chaos option {key!r} in {clause!r}")
        faults.append(SiteFault(site, mode, **kwargs))
    return FaultInjector(faults, seed=seed)


_INSTALLED: FaultInjector | None = None
_ENV_CHECKED = False


def install_injector(injector: FaultInjector | str | None) -> FaultInjector | None:
    """Install the process-wide injector (a spec string is parsed).

    Returns the installed injector; ``None`` uninstalls.
    """
    global _INSTALLED, _ENV_CHECKED
    if isinstance(injector, str):
        injector = parse_chaos_spec(injector)
    _INSTALLED = injector
    _ENV_CHECKED = True  # an explicit install wins over the environment
    return injector


def clear_injector() -> None:
    """Remove any installed injector (and re-arm env discovery)."""
    global _INSTALLED, _ENV_CHECKED
    _INSTALLED = None
    _ENV_CHECKED = False


def injector_from_env() -> FaultInjector | None:
    """The injector the ``REPRO_CHAOS`` environment variable asks for."""
    spec = os.environ.get(CHAOS_ENV)
    return parse_chaos_spec(spec) if spec else None


def get_injector() -> FaultInjector | None:
    """The currently-installed injector (env-activated on first call)."""
    global _INSTALLED, _ENV_CHECKED
    if not _ENV_CHECKED:
        _ENV_CHECKED = True
        _INSTALLED = injector_from_env()
    return _INSTALLED


def inject(site: str, torn_capable: bool = False) -> FaultAction | None:
    """The one-line site hook: fault here if an injector says so.

    With no injector installed (the overwhelmingly common case) this
    is two attribute loads and a ``None`` check.
    """
    injector = _INSTALLED if _ENV_CHECKED else get_injector()
    if injector is None:
        return None
    return injector.fire(site, torn_capable=torn_capable)


# ----------------------------------------------------------------------
# Unit-targeted plans (the materialisation runner's harness)
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class Fault:
    """One deterministic unit-targeted fault.

    ``unit`` is the work-unit id the fault targets (an int range index,
    a ``"cluster-3"`` style string...).  ``action`` is one of:

    ``"raise"``
        Raise :class:`InjectedFault` in the executing process.
    ``"kill"``
        Hard-exit the executing process with ``os._exit`` — in a pool
        worker this surfaces as ``BrokenProcessPool`` in the parent.
        Ignored outside a worker: it models *worker* death, so the
        sequential degradation path (and plain sequential runs) are
        immune to it by design.
    ``"delay"``
        Sleep ``seconds`` before executing (drives timeout paths).

    ``times`` bounds how many *attempts* the fault affects; afterwards
    the unit executes normally, which is how retry recovery is modelled.
    """

    unit: int | str
    action: str = "raise"
    times: int = 1
    seconds: float = 0.0

    def __post_init__(self) -> None:
        if self.action not in ("raise", "kill", "delay"):
            raise ValueError(f"unknown fault action {self.action!r}")


class FaultPlan:
    """A reproducible failure schedule consulted by the runner.

    Picklable, so the same plan travels into pool workers via the
    initializer.  ``state_dir`` (required when any ``kill`` fault is
    present) holds the cross-process one-shot claim tokens.
    """

    def __init__(
        self,
        faults: Iterable[Fault] = (),
        interrupt_after: int | None = None,
        state_dir: str | os.PathLike | None = None,
    ):
        self.faults = tuple(faults)
        self.interrupt_after = interrupt_after
        self.state_dir = os.fspath(state_dir) if state_dir is not None else None
        self._memory_claims = {}
        if self.state_dir is None and any(f.action == "kill" for f in self.faults):
            raise ValueError("kill faults need a state_dir for cross-process claim tokens")

    # ------------------------------------------------------------------
    def _claim(self, fault: Fault, index: int) -> bool:
        """Atomically claim one firing of ``fault``; True if this
        process (attempt) should be affected."""
        key = f"{fault.unit}-{fault.action}-{index}"
        for attempt in range(fault.times):
            token = f"{key}-{attempt}"
            if self.state_dir is not None:
                path = Path(self.state_dir) / f"fault-{token}"
                try:
                    fd = os.open(path, os.O_CREAT | os.O_EXCL | os.O_WRONLY)
                except FileExistsError:
                    continue
                os.close(fd)
                return True
            if not self._memory_claims.get(token):
                self._memory_claims[token] = True
                return True
        return False

    # ------------------------------------------------------------------
    def before_unit(self, unit_id: int | str, in_worker: bool = False) -> None:
        """Apply faults targeting ``unit_id`` for this attempt."""
        for index, fault in enumerate(self.faults):
            if fault.unit != unit_id:
                continue
            if fault.action == "kill" and not in_worker:
                continue  # kill models worker death; the parent is immune
            if not self._claim(fault, index):
                continue
            if fault.action == "delay":
                time.sleep(fault.seconds)
            elif fault.action == "kill":
                os._exit(17)
            else:
                raise InjectedFault(f"injected fault in unit {unit_id!r} (raise)")

    def after_unit(self, completed_count: int) -> None:
        """Simulated SIGINT: interrupt after N durably completed units."""
        if self.interrupt_after is not None and completed_count >= self.interrupt_after:
            raise KeyboardInterrupt(
                f"injected interrupt after {completed_count} completed unit(s)"
            )


def truncate_file(path: str | os.PathLike, keep_bytes: int | None = None, drop_bytes: int = 7) -> int:
    """Truncate ``path`` to model a crash mid-append.

    Keeps ``keep_bytes`` when given, otherwise drops ``drop_bytes``
    from the end (enough to tear the final JSONL record).  Returns the
    resulting size.
    """
    size = os.path.getsize(path)
    new_size = keep_bytes if keep_bytes is not None else max(0, size - drop_bytes)
    with open(path, "r+b") as handle:
        handle.truncate(new_size)
    return new_size
