"""Segment-store scrubbing: verify, quarantine, repair, report.

Bit rot and torn writes are detected *on access* by the store's CRC
checks — but a segment nobody has read since the corruption happened
is a landmine waiting for a query.  The scrubber walks the whole store
proactively:

1. **Verify** every manifest-listed segment: file present, byte count
   and CRC-32 match the manifest, and (``deep=True``) the segment
   decodes and its pair counts match what the manifest promises.
2. **Quarantine** anything corrupt: the file is renamed to
   ``<name>.quarantine`` so no future read trips over it, and the
   evidence survives for forensics.
3. **Repair** where possible: a crash between a generation commit and
   its cleanup can leave the *previous* generation's segment files on
   disk; a candidate with the same partition key whose decoded counts
   match the manifest entry is re-adopted (bytes copied back, manifest
   CRC updated atomically).  The WAL's torn tail, if any, is repaired
   by the standard replay path.
4. **Report** irreparable losses instead of hiding them: with
   ``repair=True`` the dead entry is dropped from the manifest (so the
   store serves its surviving partitions instead of erroring on every
   load) and recorded under the manifest's ``"quarantined"`` key with
   its lost pair counts.

Scrubbing takes the store's writer ``flock`` (idempotently — a serving
process that already holds it scrubs in-process), so a scrub can never
race ``repro compact`` rotating files out from under it; the two
mutually exclude across processes exactly like two writers.

:class:`BackgroundScrubber` runs :func:`scrub_store` on a daemon
thread at a fixed interval inside ``repro serve``.  Findings are
metrics (``repro_scrub_*``) and structured log events, so a quietly
degrading disk shows up on ``/metrics`` long before queries fail.
"""

from __future__ import annotations

import json
import shutil
import threading
import zlib
from pathlib import Path

from repro.errors import StorageError
from repro.resilience.faults import inject

__all__ = ["BackgroundScrubber", "scrub_store"]

QUARANTINE_SUFFIX = ".quarantine"

# Registry metrics resolved once per process; see docs/observability.md.
_METRICS = None


def _metrics():
    global _METRICS
    if _METRICS is None:
        from repro.obs.registry import get_registry

        registry = get_registry()
        _METRICS = {
            "runs": registry.counter(
                "repro_scrub_runs_total", "Store scrub passes completed."
            ),
            "verified": registry.counter(
                "repro_scrub_segments_verified_total",
                "Segments that passed CRC (and deep) verification.",
            ),
            "corrupt": registry.counter(
                "repro_scrub_corrupt_segments_total",
                "Segments found corrupt by a scrub pass.",
            ),
            "quarantined": registry.counter(
                "repro_scrub_quarantines_total",
                "Corrupt segment files renamed aside for forensics.",
            ),
            "rebuilt": registry.counter(
                "repro_scrub_rebuilt_total",
                "Quarantined segments restored from a prior generation.",
            ),
            "irreparable": registry.counter(
                "repro_scrub_irreparable_total",
                "Segments lost with no recoverable copy (reported, dropped).",
            ),
            "last_ok": registry.gauge(
                "repro_scrub_last_ok",
                "1 when the most recent scrub found a fully healthy store.",
            ),
        }
    return _METRICS


def _segment_problem(store, entry: dict, deep: bool) -> str | None:
    """Why this manifest entry's file is bad (None when healthy)."""
    from repro.storage.format import decode_segment, segment_counts

    path = store.path / entry["name"]
    try:
        blob = path.read_bytes()
    except FileNotFoundError:
        return "missing"
    except OSError as exc:
        return f"unreadable: {exc}"
    if len(blob) != entry["bytes"]:
        return f"size mismatch: {len(blob)} bytes, manifest says {entry['bytes']}"
    if zlib.crc32(blob) != entry["crc32"]:
        return "CRC-32 mismatch"
    if deep:
        try:
            part = decode_segment(memoryview(blob), context=str(path))
        except StorageError as exc:
            return f"decode failed: {exc}"
        counts = segment_counts(part)
        for field in ("full", "partial", "complementary"):
            if counts[field] != entry.get(field):
                return (
                    f"count mismatch: {counts[field]} {field} pair(s), "
                    f"manifest says {entry.get(field)}"
                )
    return None


def _rebuild_candidate(store, entry: dict) -> Path | None:
    """A leftover file that can stand in for a corrupt segment.

    Generation commits unlink the previous generation best-effort, so
    a crash (or a slow cleanup) can leave ``seg-*.rseg`` files the
    manifest no longer references.  One whose partition key and pair
    counts match the damaged entry carries the same data.
    """
    from repro.storage.format import decode_segment, segment_counts

    listed = {e["name"] for e in store.manifest.get("segments", ())}
    for path in sorted(store.path.glob("seg-*.rseg"), reverse=True):
        if path.name in listed or path.name == entry["name"]:
            continue
        try:
            blob = path.read_bytes()
            part = decode_segment(memoryview(blob), context=str(path))
        except (OSError, StorageError):
            continue
        counts = segment_counts(part)
        if all(
            counts[field] == entry.get(field)
            for field in ("full", "partial", "complementary")
        ):
            return path
    return None


def _commit_manifest(store) -> None:
    from repro.store import atomic_write_text

    atomic_write_text(
        store.path / "MANIFEST.json", json.dumps(store.manifest, indent=2)
    )


def scrub_store(store_or_path, repair: bool = True, deep: bool = True) -> dict:
    """Scrub one segment store; returns the findings report.

    ``repair=False`` is a pure audit: nothing on disk changes, corrupt
    segments are reported but not quarantined.  With ``repair=True``
    (the default, and what ``repro scrub`` / the background scrubber
    use) corrupt files are quarantined, rebuilt when a prior-generation
    copy survives, and dropped from the manifest (with the loss
    recorded) when not.

    Report shape::

        {"ok": bool, "generation": int, "segments": int,
         "verified": int, "quarantined": [name...], "rebuilt": [name...],
         "irreparable": [{"name", "full", "partial", "complementary"}...],
         "wal": {"records": int | None, "torn_tail": bool}}
    """
    from repro.obs.logging import get_logger
    from repro.obs.tracing import trace
    from repro.storage.store import SegmentStore

    store = (
        store_or_path
        if isinstance(store_or_path, SegmentStore)
        else SegmentStore.open(store_or_path)
    )
    logger = get_logger("repro.resilience")
    metrics = _metrics()
    held = store._lock_handle is not None
    if repair:
        # Mutating scrub must not race a compaction in another process.
        store.acquire_writer_lock()
    report: dict = {
        "ok": True,
        "generation": store.manifest.get("generation", 0),
        "segments": len(store.manifest.get("segments", ())),
        "verified": 0,
        "quarantined": [],
        "rebuilt": [],
        "irreparable": [],
        "wal": {"records": None, "torn_tail": False},
    }
    try:
        with trace("resilience.scrub", segments=report["segments"]):
            surviving = []
            manifest_dirty = False
            for entry in store.manifest.get("segments", ()):
                inject("scrub.segment")
                problem = _segment_problem(store, entry, deep)
                if problem is None:
                    metrics["verified"].inc()
                    report["verified"] += 1
                    surviving.append(entry)
                    continue
                report["ok"] = False
                metrics["corrupt"].inc()
                logger.warning(
                    "scrub: segment %s is corrupt (%s)", entry["name"], problem
                )
                if not repair:
                    report["quarantined"].append(entry["name"])
                    surviving.append(entry)
                    continue
                path = store.path / entry["name"]
                if path.exists():
                    path.rename(path.with_name(path.name + QUARANTINE_SUFFIX))
                metrics["quarantined"].inc()
                report["quarantined"].append(entry["name"])
                candidate = _rebuild_candidate(store, entry)
                if candidate is not None:
                    shutil.copyfile(candidate, path)
                    blob = path.read_bytes()
                    entry = {**entry, "bytes": len(blob), "crc32": zlib.crc32(blob)}
                    manifest_dirty = True
                    metrics["rebuilt"].inc()
                    report["rebuilt"].append(entry["name"])
                    logger.info(
                        "scrub: rebuilt %s from prior-generation copy %s",
                        entry["name"],
                        candidate.name,
                    )
                    surviving.append(entry)
                    continue
                metrics["irreparable"].inc()
                loss = {
                    "name": entry["name"],
                    "full": entry.get("full", 0),
                    "partial": entry.get("partial", 0),
                    "complementary": entry.get("complementary", 0),
                }
                report["irreparable"].append(loss)
                manifest_dirty = True
                logger.error(
                    "scrub: segment %s is irreparable; dropping from manifest "
                    "(lost %s full / %s partial / %s complementary pair(s))",
                    entry["name"],
                    loss["full"],
                    loss["partial"],
                    loss["complementary"],
                )
            if repair and manifest_dirty:
                store.manifest["segments"] = surviving
                quarantine_log = store.manifest.setdefault("quarantined", [])
                quarantine_log.extend(report["irreparable"])
                _commit_manifest(store)
            # The WAL: a torn tail is normal crash damage; replay
            # repairs it.  Mid-file corruption is reported, not hidden.
            try:
                records, repaired = store.wal.records(repair=repair)
                report["wal"] = {"records": len(records), "torn_tail": repaired}
                if repaired:
                    report["ok"] = False
                    logger.warning("scrub: WAL torn tail repaired")
            except StorageError as exc:
                report["ok"] = False
                report["wal"] = {"records": None, "torn_tail": False, "error": str(exc)}
                logger.error("scrub: WAL is corrupt mid-file: %s", exc)
        metrics["runs"].inc()
        metrics["last_ok"].set(1 if report["ok"] else 0)
        return report
    finally:
        if repair and not held:
            store.release_writer_lock()


class BackgroundScrubber:
    """Periodic in-process scrubbing for a serving store."""

    def __init__(self, store, interval: float = 300.0, deep: bool = False):
        self.store = store
        self.interval = float(interval)
        self.deep = deep
        self.last_report: dict | None = None
        self._stop = threading.Event()
        self._thread: threading.Thread | None = None

    def start(self) -> "BackgroundScrubber":
        self._thread = threading.Thread(
            target=self._run, name="repro-scrubber", daemon=True
        )
        self._thread.start()
        return self

    def _run(self) -> None:
        from repro.obs.logging import get_logger

        while not self._stop.wait(self.interval):
            try:
                self.last_report = scrub_store(self.store, repair=True, deep=self.deep)
            except Exception as exc:  # pragma: no cover - defensive
                get_logger("repro.resilience").error("background scrub failed: %s", exc)

    def stop(self) -> None:
        self._stop.set()
        if self._thread is not None:
            self._thread.join(timeout=2.0)
