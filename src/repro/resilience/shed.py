"""Bounded-queue admission control for the serving layer.

``ThreadingHTTPServer`` spawns a thread per connection, so without a
bound an overload (or a storage stall holding requests open) grows the
thread pile until memory or the OS gives out — the classic congestion
collapse.  :class:`LoadShedder` puts two bounds in front of request
handling:

* at most ``max_inflight`` requests execute concurrently;
* at most ``max_queued`` more may *wait* (up to ``queue_timeout``
  seconds) for a slot.

Anything beyond that is **shed immediately** with
:class:`~repro.errors.OverloadedError`, which the HTTP layer maps to
**503 Service Unavailable** plus a ``Retry-After`` hint — the
well-behaved-client backpressure signal.  Shedding a request costs
microseconds; serving it during an overload can cost unbounded memory.

The shedder doubles as the server's **drain** primitive for graceful
shutdown: :meth:`close` makes new admissions fail, and
:meth:`drain` blocks until in-flight requests complete (or a timeout
passes), so a SIGTERM'd server finishes what it accepted, flushes its
WAL and releases its writer lock before exiting.

Gauges ``repro_inflight_requests`` / ``repro_queued_requests`` and the
``repro_shed_requests_total`` counter live on the process-wide
registry.
"""

from __future__ import annotations

import contextlib
import threading

from repro.errors import OverloadedError

__all__ = ["LoadShedder"]

# Registry metrics resolved once per process; see docs/observability.md.
_METRICS = None


def _metrics():
    global _METRICS
    if _METRICS is None:
        from repro.obs.registry import get_registry

        registry = get_registry()
        _METRICS = {
            "shed": registry.counter(
                "repro_shed_requests_total",
                "Requests refused with 503 by admission control.",
            ),
            "inflight": registry.gauge(
                "repro_inflight_requests",
                "Requests currently executing in the serving layer.",
            ),
            "queued": registry.gauge(
                "repro_queued_requests",
                "Requests waiting for an execution slot.",
            ),
        }
    return _METRICS


class LoadShedder:
    """Two-stage admission: bounded concurrency, bounded wait queue."""

    def __init__(
        self,
        max_inflight: int = 64,
        max_queued: int = 128,
        queue_timeout: float = 0.5,
        retry_after: float = 1.0,
    ):
        if max_inflight < 1:
            raise ValueError(f"max_inflight must be >= 1, got {max_inflight}")
        self.max_inflight = int(max_inflight)
        self.max_queued = int(max_queued)
        self.queue_timeout = float(queue_timeout)
        self.retry_after = float(retry_after)
        self._lock = threading.Lock()
        self._slot_freed = threading.Condition(self._lock)
        self._inflight = 0
        self._queued = 0
        self._closed = False

    # ------------------------------------------------------------------
    def acquire(self) -> None:
        """Admit one request or raise :class:`OverloadedError`.

        Fast path: a free slot.  Slow path: wait (bounded in count and
        time) for one.  A closed shedder (draining server) refuses
        everything.
        """
        metrics = _metrics()
        with self._lock:
            if self._closed:
                metrics["shed"].inc()
                raise OverloadedError(
                    "server is shutting down", retry_after=self.retry_after
                )
            if self._inflight < self.max_inflight:
                self._inflight += 1
                metrics["inflight"].set(self._inflight)
                return
            if self._queued >= self.max_queued:
                metrics["shed"].inc()
                raise OverloadedError(
                    f"request queue full ({self._inflight} in flight, "
                    f"{self._queued} queued)",
                    retry_after=self.retry_after,
                )
            self._queued += 1
            metrics["queued"].set(self._queued)
            try:
                granted = self._slot_freed.wait_for(
                    lambda: self._closed or self._inflight < self.max_inflight,
                    timeout=self.queue_timeout,
                )
            finally:
                self._queued -= 1
                metrics["queued"].set(self._queued)
            if not granted or self._closed:
                metrics["shed"].inc()
                raise OverloadedError(
                    "timed out waiting for an execution slot",
                    retry_after=self.retry_after,
                )
            self._inflight += 1
            metrics["inflight"].set(self._inflight)

    def release(self) -> None:
        with self._lock:
            self._inflight = max(0, self._inflight - 1)
            _metrics()["inflight"].set(self._inflight)
            self._slot_freed.notify()

    @contextlib.contextmanager
    def admitted(self):
        """``with shedder.admitted(): handle(request)``"""
        self.acquire()
        try:
            yield
        finally:
            self.release()

    # -- graceful shutdown ---------------------------------------------
    @property
    def closed(self) -> bool:
        """True once draining — long-lived streams use this to end."""
        with self._lock:
            return self._closed

    def close(self) -> None:
        """Refuse all new admissions (draining)."""
        with self._lock:
            self._closed = True
            self._slot_freed.notify_all()

    def drain(self, timeout: float = 10.0) -> bool:
        """Wait for in-flight requests to finish; True when drained."""
        with self._lock:
            return self._slot_freed.wait_for(
                lambda: self._inflight == 0, timeout=timeout
            )

    def stats(self) -> dict:
        with self._lock:
            return {
                "inflight": self._inflight,
                "queued": self._queued,
                "max_inflight": self.max_inflight,
                "max_queued": self.max_queued,
                "closed": self._closed,
            }

    def __repr__(self) -> str:
        stats = self.stats()
        return (
            f"LoadShedder(inflight={stats['inflight']}/{self.max_inflight}, "
            f"queued={stats['queued']}/{self.max_queued})"
        )
