"""Forward-chaining rule engine (Jena generic-rule-reasoner analogue).

The paper's rule-based comparator encodes containment and
complementarity as forward rules with universal/existential
quantification over dimension values.  This subpackage provides:

* a Jena-like rule syntax (:mod:`repro.rules.parser`),
* builtins such as ``notEqual`` (:mod:`repro.rules.builtins`),
* a semi-naive forward-chaining engine (:mod:`repro.rules.engine`).
"""

from repro.rules.ast import Atom, BuiltinCall, Rule, RuleVar
from repro.rules.engine import RuleEngine
from repro.rules.parser import parse_rules

__all__ = ["Rule", "Atom", "BuiltinCall", "RuleVar", "RuleEngine", "parse_rules"]
