"""Rule AST: variables, triple atoms, builtin calls and rules."""

from __future__ import annotations

from dataclasses import dataclass
from typing import Union

from repro.rdf.terms import Term

__all__ = ["RuleVar", "Atom", "BuiltinCall", "Rule", "RuleElement"]


@dataclass(frozen=True)
class RuleVar:
    """A rule variable (``?x`` in rule syntax)."""

    name: str

    def __repr__(self) -> str:
        return f"?{self.name}"


Node = Union[Term, RuleVar]


@dataclass(frozen=True)
class Atom:
    """A triple pattern ``(s p o)`` in a rule body or head."""

    subject: Node
    predicate: Node
    obj: Node

    def variables(self) -> set[RuleVar]:
        return {n for n in (self.subject, self.predicate, self.obj) if isinstance(n, RuleVar)}


@dataclass(frozen=True)
class BuiltinCall:
    """A builtin invocation such as ``notEqual(?a, ?b)`` in a body."""

    name: str
    args: tuple[Node, ...]

    def variables(self) -> set[RuleVar]:
        return {a for a in self.args if isinstance(a, RuleVar)}


RuleElement = Union[Atom, BuiltinCall]


@dataclass(frozen=True)
class Rule:
    """A forward rule ``[name: body -> head]``.

    The body mixes triple atoms and builtin calls; the head is a list of
    triple atoms asserted under the matching substitution.  Every head
    variable must occur in a body atom (safety condition).
    """

    name: str
    body: tuple[RuleElement, ...]
    head: tuple[Atom, ...]

    def __post_init__(self) -> None:
        bound = set()
        for element in self.body:
            if isinstance(element, Atom):
                bound |= element.variables()
        unsafe = set()
        for atom in self.head:
            unsafe |= atom.variables() - bound
        if unsafe:
            names = ", ".join(sorted(f"?{v.name}" for v in unsafe))
            raise ValueError(f"rule {self.name!r} has unsafe head variables: {names}")
