"""Builtin predicates for rule bodies.

Builtins are pure guards: they receive fully-bound argument terms and
return ``True``/``False``.  Mirrors the subset of Jena builtins the
paper's comparator rules need (``notEqual``) plus the common companions.
"""

from __future__ import annotations

from typing import Callable

from repro.errors import RuleEvaluationError
from repro.rdf.terms import Literal, Term

__all__ = ["BUILTINS", "register_builtin"]


def _numeric(term: Term) -> float:
    if not isinstance(term, Literal):
        raise RuleEvaluationError(f"numeric builtin applied to non-literal {term!r}")
    value = term.to_python()
    if isinstance(value, bool) or not isinstance(value, (int, float)):
        try:
            value = float(str(value))
        except ValueError as exc:
            raise RuleEvaluationError(f"not a number: {term!r}") from exc
    return float(value)


def _equal(a: Term, b: Term) -> bool:
    return a == b


def _not_equal(a: Term, b: Term) -> bool:
    return a != b


def _less_than(a: Term, b: Term) -> bool:
    return _numeric(a) < _numeric(b)


def _greater_than(a: Term, b: Term) -> bool:
    return _numeric(a) > _numeric(b)


def _le(a: Term, b: Term) -> bool:
    return _numeric(a) <= _numeric(b)


def _ge(a: Term, b: Term) -> bool:
    return _numeric(a) >= _numeric(b)


def _is_literal(a: Term) -> bool:
    return isinstance(a, Literal)


BUILTINS: dict[str, Callable[..., bool]] = {
    "equal": _equal,
    "notEqual": _not_equal,
    "lessThan": _less_than,
    "greaterThan": _greater_than,
    "le": _le,
    "ge": _ge,
    "isLiteral": _is_literal,
}


def register_builtin(name: str, function: Callable[..., bool]) -> None:
    """Register a custom builtin guard under ``name``."""
    BUILTINS[name] = function
