"""Semi-naive forward-chaining engine.

:class:`RuleEngine` materialises the closure of a rule set over a
graph.  Each iteration matches every rule with the requirement that at
least one body atom touches the delta (triples new in the previous
iteration), which avoids re-deriving the same consequences — the
standard semi-naive evaluation strategy.

Builtin guards are evaluated as soon as all of their variables are
bound; a guard over variables that never get bound raises
:class:`~repro.errors.RuleEvaluationError`.
"""

from __future__ import annotations

from typing import Iterator

from repro.errors import RuleEvaluationError
from repro.rdf.graph import Graph
from repro.rdf.terms import BNode, Literal, Term, Triple, URIRef
from repro.rules.ast import Atom, BuiltinCall, Rule, RuleVar
from repro.rules.builtins import BUILTINS

__all__ = ["RuleEngine"]

Substitution = dict[RuleVar, Term]


def _resolve(node, substitution: Substitution):
    if isinstance(node, RuleVar):
        return substitution.get(node)
    return node


class RuleEngine:
    """Forward-chaining materialisation over a rule set.

    Parameters
    ----------
    rules:
        The rules to apply, e.g. from :func:`repro.rules.parse_rules`.
    max_iterations:
        Safety bound on fixpoint iterations (the closure of a finite
        graph always terminates, but a bound keeps pathological rule
        sets from spinning).
    """

    def __init__(self, rules: list[Rule], max_iterations: int = 10_000):
        self.rules = list(rules)
        self.max_iterations = max_iterations
        for rule in self.rules:
            for element in rule.body:
                if isinstance(element, BuiltinCall) and element.name not in BUILTINS:
                    raise RuleEvaluationError(
                        f"rule {rule.name!r} uses unknown builtin {element.name!r}"
                    )

    # ------------------------------------------------------------------
    def run(self, graph: Graph, in_place: bool = False) -> Graph:
        """Compute the closure; returns the materialised graph.

        With ``in_place=False`` (default) the input graph is left
        untouched and a copy including all derived triples is returned.
        """
        store = graph if in_place else graph.copy()
        delta = Graph(store)
        iterations = 0
        while len(delta) and iterations < self.max_iterations:
            iterations += 1
            first = iterations == 1
            new_delta = Graph()
            for rule in self.rules:
                for derived in self._apply_rule(rule, store, delta, first=first):
                    if derived not in store:
                        new_delta.add(derived)
            store.update(new_delta)
            delta = new_delta
        if iterations >= self.max_iterations and len(delta):
            raise RuleEvaluationError(
                f"fixpoint not reached within {self.max_iterations} iterations"
            )
        self.last_iterations = iterations
        return store

    def inferred(self, graph: Graph) -> Graph:
        """Return only the derived triples (closure minus input)."""
        return self.run(graph) - graph

    # ------------------------------------------------------------------
    def _apply_rule(
        self, rule: Rule, store: Graph, delta: Graph, first: bool = False
    ) -> Iterator[Triple]:
        atoms = [e for e in rule.body if isinstance(e, Atom)]
        builtins = [e for e in rule.body if isinstance(e, BuiltinCall)]
        if not atoms:
            # A body of only builtins fires once if all guards pass on
            # the empty substitution (only possible with 0-var guards).
            if all(self._check_builtin(b, {}) for b in builtins):
                yield from self._instantiate_head(rule, {})
            return
        # Semi-naive: for each atom position, require that atom to match
        # the delta while the others match the full store.  On the first
        # iteration delta == store, so one position suffices.
        seen: set[tuple] = set()
        positions = range(1) if first else range(len(atoms))
        for delta_index in positions:
            for substitution in self._match_atoms(atoms, builtins, store, delta, delta_index):
                fingerprint = tuple(sorted((v.name, t) for v, t in substitution.items()))
                if fingerprint in seen:
                    continue
                seen.add(fingerprint)
                yield from self._instantiate_head(rule, substitution)

    def _match_atoms(
        self,
        atoms: list[Atom],
        builtins: list[BuiltinCall],
        store: Graph,
        delta: Graph,
        delta_index: int,
    ) -> Iterator[Substitution]:
        # Match the delta atom first (restricting the join to new facts),
        # then greedily pick the most-bound remaining atom so the join
        # stays connected instead of degenerating into cross products.
        first_atom = atoms[delta_index]
        ordered = [first_atom]
        bound: set[RuleVar] = first_atom.variables()
        remaining_atoms = atoms[:delta_index] + atoms[delta_index + 1 :]
        while remaining_atoms:
            def boundness(atom: Atom) -> int:
                score = 0
                for node in (atom.subject, atom.predicate, atom.obj):
                    if not isinstance(node, RuleVar) or node in bound:
                        score += 1
                return score

            best = max(remaining_atoms, key=boundness)
            remaining_atoms.remove(best)
            ordered.append(best)
            bound |= best.variables()
        sources = [delta] + [store] * (len(atoms) - 1)

        def recurse(index: int, substitution: Substitution, pending: list[BuiltinCall]) -> Iterator[Substitution]:
            ready = [b for b in pending if self._is_bound(b, substitution)]
            for guard in ready:
                if not self._check_builtin(guard, substitution):
                    return
            remaining = [b for b in pending if not self._is_bound(b, substitution)]
            if index == len(ordered):
                if remaining:
                    names = ", ".join(b.name for b in remaining)
                    raise RuleEvaluationError(f"builtins with unbound variables: {names}")
                yield substitution
                return
            atom = ordered[index]
            source = sources[index]
            s = _resolve(atom.subject, substitution)
            p = _resolve(atom.predicate, substitution)
            o = _resolve(atom.obj, substitution)
            if isinstance(s, Literal):
                return
            for ts, tp, to in source.triples(s, p, o):  # type: ignore[arg-type]
                extended = dict(substitution)
                ok = True
                for node, value in ((atom.subject, ts), (atom.predicate, tp), (atom.obj, to)):
                    if isinstance(node, RuleVar):
                        bound = extended.get(node)
                        if bound is None:
                            extended[node] = value
                        elif bound != value:
                            ok = False
                            break
                if ok:
                    yield from recurse(index + 1, extended, remaining)

        yield from recurse(0, {}, list(builtins))

    @staticmethod
    def _is_bound(guard: BuiltinCall, substitution: Substitution) -> bool:
        return all(not isinstance(a, RuleVar) or a in substitution for a in guard.args)

    @staticmethod
    def _check_builtin(guard: BuiltinCall, substitution: Substitution) -> bool:
        function = BUILTINS[guard.name]
        args = [_resolve(a, substitution) for a in guard.args]
        return function(*args)

    @staticmethod
    def _instantiate_head(rule: Rule, substitution: Substitution) -> Iterator[Triple]:
        for atom in rule.head:
            s = _resolve(atom.subject, substitution)
            p = _resolve(atom.predicate, substitution)
            o = _resolve(atom.obj, substitution)
            if not isinstance(s, (URIRef, BNode)) or not isinstance(p, URIRef) or o is None:
                raise RuleEvaluationError(
                    f"rule {rule.name!r} produced an invalid triple ({s!r}, {p!r}, {o!r})"
                )
            yield (s, p, o)
