"""Parser for the Jena-like rule syntax.

Rule files look like::

    @prefix ex: <http://example.org/> .

    [fullContains:
        (?o1 rdf:type qb:Observation), (?o2 rdf:type qb:Observation),
        notEqual(?o1, ?o2),
        (?o1 ex:geo ?v1), (?o2 ex:geo ?v2), (?v1 ex:contains ?v2)
        -> (?o1 ex:fullyContains ?o2)]

Commas between atoms are optional.  The default prefix table from
:mod:`repro.rdf.namespaces` is pre-loaded.
"""

from __future__ import annotations

import re

from repro.errors import RuleSyntaxError
from repro.rdf.namespaces import PREFIXES, RDF, XSD
from repro.rdf.terms import Literal, Term, URIRef, unescape_string
from repro.rules.ast import Atom, BuiltinCall, Rule, RuleElement, RuleVar

__all__ = ["parse_rules"]

_TOKEN_RE = re.compile(
    r"""
    (?P<ws>\s+|\#[^\n]*|//[^\n]*)
  | (?P<arrow>->)
  | (?P<prefix>@prefix\b)
  | (?P<iri><[^<>"{}|^`\\\x00-\x20]*>)
  | (?P<string>"(?:[^"\\\n]|\\.)*")
  | (?P<var>\?[A-Za-z_][A-Za-z0-9_]*)
  | (?P<double>[+-]?(?:\d+\.\d*|\.\d+|\d+)[eE][+-]?\d+)
  | (?P<decimal>[+-]?\d*\.\d+)
  | (?P<integer>[+-]?\d+)
  | (?P<pname>(?:[A-Za-z_][\w\-.]*)?:[\w\-.%]*)
  | (?P<name>[A-Za-z_][A-Za-z0-9_]*)
  | (?P<punct>[\[\]():,.])
    """,
    re.VERBOSE,
)


class _Token:
    __slots__ = ("kind", "value", "pos")

    def __init__(self, kind: str, value: str, pos: int):
        self.kind = kind
        self.value = value
        self.pos = pos


def _tokenize(text: str) -> list[_Token]:
    tokens: list[_Token] = []
    pos = 0
    while pos < len(text):
        match = _TOKEN_RE.match(text, pos)
        if match is None:
            line = text.count("\n", 0, pos) + 1
            raise RuleSyntaxError(f"unexpected character {text[pos]!r} at line {line}")
        pos = match.end()
        if match.lastgroup == "ws":
            continue
        tokens.append(_Token(match.lastgroup or "", match.group(), match.start()))
    tokens.append(_Token("eof", "", len(text)))
    return tokens


class _RuleParser:
    def __init__(self, text: str):
        self._text = text
        self._tokens = _tokenize(text)
        self._index = 0
        self._prefixes: dict[str, str] = {name: str(ns) for name, ns in PREFIXES.items()}
        self._anonymous = 0

    def _peek(self) -> _Token:
        return self._tokens[self._index]

    def _next(self) -> _Token:
        token = self._tokens[self._index]
        if token.kind != "eof":
            self._index += 1
        return token

    def _error(self, message: str, token: _Token | None = None) -> RuleSyntaxError:
        token = token or self._peek()
        line = self._text.count("\n", 0, token.pos) + 1
        return RuleSyntaxError(f"{message} at line {line}")

    def _expect(self, value: str) -> None:
        token = self._next()
        if token.value != value:
            raise self._error(f"expected {value!r}, found {token.value!r}", token)

    def parse(self) -> list[Rule]:
        rules: list[Rule] = []
        while self._peek().kind != "eof":
            token = self._peek()
            if token.kind == "prefix":
                self._parse_prefix()
            elif token.value == "[":
                rules.append(self._parse_rule())
            else:
                raise self._error(f"expected '[' or @prefix, found {token.value!r}")
        return rules

    def _parse_prefix(self) -> None:
        self._next()
        name_token = self._next()
        if name_token.kind != "pname" or not name_token.value.endswith(":"):
            raise self._error("expected 'name:' after @prefix", name_token)
        iri_token = self._next()
        if iri_token.kind != "iri":
            raise self._error("expected <iri> after prefix name", iri_token)
        self._prefixes[name_token.value[:-1]] = iri_token.value[1:-1]
        if self._peek().value == ".":
            self._next()

    def _parse_rule(self) -> Rule:
        self._expect("[")
        name: str
        token = self._peek()
        if token.kind == "name" and self._tokens[self._index + 1].value == ":":
            name = self._next().value
            self._next()  # ':'
        elif token.kind == "pname" and token.value.endswith(":") and token.value.count(":") == 1:
            # 'ruleName:' lexes as a prefixed name with empty local part.
            name = self._next().value[:-1]
        else:
            self._anonymous += 1
            name = f"rule{self._anonymous}"
        body: list[RuleElement] = []
        while self._peek().kind != "arrow":
            body.append(self._parse_element())
            if self._peek().value == ",":
                self._next()
        self._next()  # '->'
        head: list[Atom] = []
        while self._peek().value != "]":
            element = self._parse_element()
            if not isinstance(element, Atom):
                raise self._error("rule heads may only contain triple atoms")
            head.append(element)
            if self._peek().value == ",":
                self._next()
        self._next()  # ']'
        try:
            return Rule(name=name, body=tuple(body), head=tuple(head))
        except ValueError as exc:
            raise RuleSyntaxError(str(exc)) from exc

    def _parse_element(self) -> RuleElement:
        token = self._peek()
        if token.value == "(":
            self._next()
            subject = self._parse_node()
            predicate = self._parse_node()
            obj = self._parse_node()
            self._expect(")")
            return Atom(subject, predicate, obj)
        if token.kind == "name":
            self._next()
            self._expect("(")
            args: list = []
            while self._peek().value != ")":
                args.append(self._parse_node())
                if self._peek().value == ",":
                    self._next()
            self._next()  # ')'
            return BuiltinCall(token.value, tuple(args))
        raise self._error(f"expected '(' or builtin name, found {token.value!r}")

    def _parse_node(self) -> Term | RuleVar:
        token = self._next()
        if token.kind == "var":
            return RuleVar(token.value[1:])
        if token.kind == "iri":
            return URIRef(token.value[1:-1])
        if token.kind == "pname":
            prefix, _, local = token.value.partition(":")
            if prefix not in self._prefixes:
                raise self._error(f"undefined prefix {prefix!r}", token)
            return URIRef(self._prefixes[prefix] + local)
        if token.kind == "string":
            return Literal(unescape_string(token.value[1:-1]))
        if token.kind == "integer":
            return Literal(token.value, datatype=str(XSD.integer))
        if token.kind == "decimal":
            return Literal(token.value, datatype=str(XSD.decimal))
        if token.kind == "double":
            return Literal(token.value, datatype=str(XSD.double))
        if token.kind == "name" and token.value == "a":
            return RDF.type
        raise self._error(f"expected a term or variable, found {token.value!r}", token)


def parse_rules(text: str) -> list[Rule]:
    """Parse rule text into a list of :class:`Rule` objects."""
    return _RuleParser(text).parse()
