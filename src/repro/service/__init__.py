"""The relationship query service.

Turns a materialised :class:`~repro.core.results.RelationshipSet` (plus
optionally its :class:`~repro.core.space.ObservationSpace`) into a
queryable, servable artifact:

``index``
    :class:`RelationshipIndex` — forward/reverse adjacency over
    S_F/S_P/S_C, per-dataset and per-cube groupings, degree-sorted
    neighbour lists; O(answer) point lookups, O(|delta|) incremental
    maintenance.
``engine``
    :class:`QueryEngine` — point lookups, top-k related queries,
    transitive containment walks and filters behind a generation-
    stamped LRU cache and a readers–writer lock.
``server``
    :class:`RelationshipServer` / :func:`start_server` — the stdlib
    ``ThreadingHTTPServer`` JSON API (``repro serve``).
``metrics``
    :class:`ServiceMetrics` — request counters, latency histograms and
    cache hit rate in Prometheus text exposition.
``cache`` / ``rwlock``
    The supporting LRU cache and readers–writer lock primitives.

Quickstart::

    from repro import compute_relationships, load_relationships
    from repro.service import QueryEngine, start_server

    engine = QueryEngine(load_relationships("links.json"))
    print(engine.containers(some_observation_uri))

    server = start_server(engine, port=8080)   # background thread
    # curl http://127.0.0.1:8080/healthz
"""

from repro.service.cache import LRUCache
from repro.service.engine import QueryEngine
from repro.service.index import RelationshipIndex
from repro.service.metrics import ServiceMetrics
from repro.service.rwlock import RWLock
from repro.service.server import RelationshipServer, start_server

__all__ = [
    "RelationshipIndex",
    "QueryEngine",
    "RelationshipServer",
    "start_server",
    "ServiceMetrics",
    "LRUCache",
    "RWLock",
]
