"""Size-bounded, generation-aware LRU cache for the query engine.

Every cached value is stamped with the index *generation* it was
computed from.  Incremental writes bump the engine's generation
counter; a subsequent ``get`` for an entry stamped with an older
generation is a miss (and evicts the stale entry), so a write
invalidates the whole cache in O(1) without walking it — stale entries
simply age out or are dropped on first touch.

``maxsize=0`` disables caching entirely (every lookup is a miss); the
throughput benchmark uses that to measure the uncached path.
"""

from __future__ import annotations

import threading
from collections import OrderedDict
from typing import Any, Hashable

__all__ = ["LRUCache"]

_MISS = object()


class LRUCache:
    """Thread-safe LRU with hit/miss accounting and generation stamps."""

    def __init__(self, maxsize: int = 1024):
        if maxsize < 0:
            raise ValueError(f"maxsize must be >= 0, got {maxsize}")
        self.maxsize = maxsize
        self._data: OrderedDict[Hashable, tuple[int, Any]] = OrderedDict()
        self._lock = threading.Lock()
        self.hits = 0
        self.misses = 0
        self.evictions = 0
        self.invalidations = 0

    # ------------------------------------------------------------------
    def get(self, key: Hashable, generation: int) -> Any:
        """Return the cached value, or ``LRUCache.MISS`` sentinel.

        An entry stamped with a generation other than ``generation``
        counts as a miss and is discarded.
        """
        with self._lock:
            entry = self._data.get(key, _MISS)
            if entry is _MISS:
                self.misses += 1
                return _MISS
            stamped, value = entry
            if stamped != generation:
                del self._data[key]
                self.invalidations += 1
                self.misses += 1
                return _MISS
            self._data.move_to_end(key)
            self.hits += 1
            return value

    def put(self, key: Hashable, generation: int, value: Any) -> None:
        if self.maxsize == 0:
            return
        with self._lock:
            self._data[key] = (generation, value)
            self._data.move_to_end(key)
            while len(self._data) > self.maxsize:
                self._data.popitem(last=False)
                self.evictions += 1

    def clear(self) -> None:
        with self._lock:
            self._data.clear()

    # ------------------------------------------------------------------
    def __len__(self) -> int:
        with self._lock:
            return len(self._data)

    @property
    def hit_rate(self) -> float:
        total = self.hits + self.misses
        return self.hits / total if total else 0.0

    def stats(self) -> dict:
        return {
            "size": len(self),
            "maxsize": self.maxsize,
            "hits": self.hits,
            "misses": self.misses,
            "evictions": self.evictions,
            "invalidations": self.invalidations,
            "hit_rate": self.hit_rate,
        }


#: Public miss sentinel (``cache.get(...) is LRUCache.MISS``).
LRUCache.MISS = _MISS
